//! Domain scenario: the paper's headline experiment — NPB-BT's z_solve
//! kernel (Listing 2) through all four variants on NVHPC and GCC, with
//! per-kernel simulated metrics. Shows why bulk load dominates: the GCC
//! `kernels`-directive baseline is latency-bound.
//!
//! Run with: `cargo run --release --example npb_bt_speedup`

use acc_saturator::{evaluate_benchmark, speedup, Variant};
use accsat_compilers::{Compiler, CompilerModel};
use accsat_gpusim::Device;
use accsat_ir::Model;

fn main() {
    let dev = Device::a100_pcie_40gb();
    let npb = accsat_benchmarks::npb_benchmarks();
    let bt = &npb[0];

    for compiler in [Compiler::Nvhpc, Compiler::Gcc] {
        let cm = CompilerModel::new(compiler, Model::OpenAcc);
        let original = evaluate_benchmark(bt, Variant::Original, &cm, &dev).expect("original");
        println!("== NPB-BT on {} — original {:.2}s ==", compiler.name(), original.total_time_s);
        for k in &original.kernels {
            println!(
                "   {}: {:.4} ms/launch, {:.1} Minstr, mem {:.0}%, {} regs, occ {:.0}%",
                k.function,
                k.metrics.time_ms,
                k.metrics.instructions / 1e6,
                k.metrics.mem_util * 100.0,
                k.metrics.regs_per_thread,
                k.metrics.occupancy * 100.0
            );
        }
        for v in Variant::all() {
            let r = evaluate_benchmark(bt, v, &cm, &dev).expect("variant");
            println!(
                "   {:>9}: {:.2}s  speedup {:.2}x",
                v.label(),
                r.total_time_s,
                speedup(&original, &r)
            );
        }
        println!();
    }
}
