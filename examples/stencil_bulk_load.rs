//! Domain scenario: a 3-D Jacobi stencil (the SPEC `ostencil` pattern)
//! showing the bulk-load transformation in the generated source and its
//! effect in the warp scoreboard — memory-level parallelism from issuing
//! all halo loads before the first use.
//!
//! Run with: `cargo run --release --example stencil_bulk_load`

use acc_saturator::{optimize_program, Variant};
use accsat_compilers::{compile_kernel, Compiler, CompilerModel};
use accsat_gpusim::{simulate, Device};
use accsat_ir::{parse_program, print_program, Model};
use std::collections::HashMap;

fn main() {
    let src = accsat_benchmarks::spec::ostencil_source();
    let prog = parse_program(&src).unwrap();
    let dev = Device::a100_pcie_40gb();
    let cm = CompilerModel::new(Compiler::Gcc, Model::OpenAcc);
    let bindings: HashMap<String, i64> =
        [("nx".to_string(), 256i64), ("gp".to_string(), 8i64)].into();

    for variant in [Variant::Cse, Variant::AccSat] {
        let (opt, _) = optimize_program(&prog, variant).unwrap();
        println!("=== {} ===\n{}", variant.label(), print_program(&opt));
        let k = compile_kernel(&opt.functions[0], &cm, &bindings).unwrap();
        let sim = simulate(&k.trace, k.launch.warps_per_block, &dev);
        let (flops, _, _, loads, stores) = k.trace.op_counts();
        println!(
            "// trace: {flops} flops, {loads} loads, {stores} stores — \
             {} cycles/block, {} B DRAM\n",
            sim.cycles, sim.dram_bytes
        );
    }
    println!(
        "ACCSAT issues the six halo loads back-to-back (sorted by index),\n\
         so their ~500-cycle latencies overlap instead of serializing."
    );
}
