//! Using the e-graph engine directly: define custom rewrite rules, run
//! saturation, and extract — the extension point §V-A leaves open ("an
//! arbitrary set of rewriting rules").
//!
//! Run with: `cargo run --release --example custom_rules`

use accsat_egraph::{all_rules, reorder_rules, EGraph, Node, Op, Rewrite, Runner};
use accsat_extract::{extract, CostModel};
use std::time::Duration;

fn main() {
    // Build (a - b*c) + (b*c - a) by hand.
    let mut eg = EGraph::new();
    let a = eg.add(Node::sym("a"));
    let b = eg.add(Node::sym("b"));
    let c = eg.add(Node::sym("c"));
    let bc = eg.add(Node::new(Op::Mul, vec![b, c]));
    let l = eg.add(Node::new(Op::Sub, vec![a, bc]));
    let r = eg.add(Node::new(Op::Sub, vec![bc, a]));
    let sum = eg.add(Node::new(Op::Add, vec![l, r]));

    println!("before: {} ({} classes)", eg.term_string(sum), eg.num_classes());

    // Table I rules + the optional reorder set + a user rule: x + (-x) → 0.
    let mut rules = all_rules();
    rules.extend(reorder_rules());
    rules.push(Rewrite::new("CANCEL-ADD", "(+ ?x (neg ?x))", "0"));

    let report = Runner::new(rules).run(&mut eg);
    println!(
        "saturation: {:?} after {} iterations, {} rule applications, {} e-nodes",
        report.stop_reason,
        report.iterations.len(),
        report.total_applied(),
        eg.total_nodes()
    );

    let cm = CostModel::paper();
    let sel = extract(&eg, &[sum], &cm, Duration::from_millis(200));
    println!("extracted: {} (cost {})", sel.term_string(&eg, sum), sel.dag_cost(&eg, &cm, &[sum]));
    // (a - bc) + (bc - a) = 0 — the custom cancellation rule plus the
    // reorder set proves it, so extraction returns the free constant.
}
