//! Phase attribution for the two e-matching engines on the NPB-BT z_solve
//! shape: how saturation time splits between search, apply and rebuild.
//!
//! This hand-replays `Runner::run_compiled`'s loop WITHOUT the backoff
//! scheduler or node/time limits (neither engine bans a rule on this
//! workload within the 4-iteration budget, so the totals line up with the
//! `saturation_engine_bt_zsolve` bench in `crates/bench/benches/
//! optimizer.rs`) — it exists only to attribute time to phases, which the
//! runner does not expose. If the runner's loop changes shape, update this
//! replay to match.

use accsat_egraph::{all_rules, EGraph, FxHashSet, Id, VarSubst};
use accsat_ir::parse_program;
use std::time::{Duration, Instant};

fn main() {
    let bt = accsat_benchmarks::npb_benchmarks().remove(0);
    let prog = parse_program(&bt.acc_source).unwrap();
    let f = &prog.functions[0];
    let body = accsat_ir::innermost_parallel_loops(f)[0].body.clone();
    let rules = all_rules();
    let kernel = accsat_ssa::build_kernel(&body);

    for engine in ["compiled", "legacy"] {
        let mut eg: EGraph = kernel.egraph.clone();
        let mut t_search = Duration::ZERO;
        let mut t_apply = Duration::ZERO;
        let mut t_rebuild = Duration::ZERO;
        let mut seen: FxHashSet<(usize, Id, VarSubst)> = FxHashSet::default();
        for it in 0..4 {
            let t0 = Instant::now();
            if engine == "compiled" {
                let dirty = if it == 0 {
                    eg.clear_search_dirty();
                    None
                } else {
                    Some(eg.take_search_dirty())
                };
                let mut all = Vec::new();
                for (ri, r) in rules.iter().enumerate() {
                    for m in r.search_filtered(&eg, dirty.as_ref()) {
                        all.push((ri, m));
                    }
                }
                t_search += t0.elapsed();
                let t1 = Instant::now();
                for (ri, m) in all {
                    if !seen.insert((ri, m.class, m.subst.clone())) {
                        continue;
                    }
                    rules[ri].apply_match(&mut eg, m.class, &m.subst);
                }
                t_apply += t1.elapsed();
            } else {
                let mut all = Vec::new();
                for (ri, r) in rules.iter().enumerate() {
                    for m in r.search_legacy(&eg) {
                        all.push((ri, m));
                    }
                }
                t_search += t0.elapsed();
                let t1 = Instant::now();
                for (ri, (class, subst)) in all {
                    rules[ri].apply_match_legacy(&mut eg, class, &subst);
                }
                t_apply += t1.elapsed();
            }
            let t2 = Instant::now();
            eg.rebuild();
            t_rebuild += t2.elapsed();
        }
        println!(
            "{engine}: search={t_search:?} apply={t_apply:?} rebuild={t_rebuild:?} nodes={}",
            eg.total_nodes()
        );
    }
}
