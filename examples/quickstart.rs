//! Quickstart: optimize one OpenACC kernel end-to-end and print the
//! generated code — the `% accsat nvc …` flow of the paper's Fig. 1.
//!
//! Run with: `cargo run --release --example quickstart`

use acc_saturator::{optimize_program, Variant};
use accsat_ir::{parse_program, print_program};

fn main() {
    // Listing 1 of the paper: matrix multiplication with OpenACC directives.
    let src = r#"
void matmul(double a[64][64], double b[64][64], double c[64][64],
            double r[64][64], double alpha, double beta, int cy, int cx, int ax) {
  #pragma acc kernels loop independent
  for (int i = 0; i < cy; i++) {
    #pragma acc loop independent gang(16) vector(256)
    for (int j = 0; j < cx; j++) {
      double tmp = 0.0;
      for (int l = 0; l < ax; l++) {
        tmp += a[i][l] * b[l][j];
      }
      r[i][j] = alpha * tmp + beta * c[i][j];
    }
  }
}
"#;
    let prog = parse_program(src).expect("valid OpenACC C");

    println!("=== original ===\n{}", print_program(&prog));

    for variant in [Variant::Cse, Variant::AccSat] {
        let (optimized, stats) = optimize_program(&prog, variant).expect("pipeline");
        println!("=== {} ===\n{}", variant.label(), print_program(&optimized));
        for s in &stats {
            println!(
                "// kernel `{}`: {} e-nodes, {} saturation iterations, \
                 extracted cost {}, ssa+codegen {:?}",
                s.function, s.egraph_nodes, s.saturation_iters, s.extracted_cost, s.ssa_codegen
            );
        }
    }
}
