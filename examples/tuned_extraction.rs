//! Domain scenario: simulation-guided autotuning on a 2-D dissipation
//! stencil (the NPB BT `rhs` pattern) — the case where the §V-B static
//! cost model and the warp scoreboard *disagree* about which extracted
//! code is best.
//!
//! The three component statements share their `[k-1][j]`/`[k][j]`/
//! `[k+1][j]` index arithmetic. Branch-and-bound extraction shares those
//! classes across statements (lower static cost); greedy extraction
//! re-derives them per statement (more work on paper — but the simulated
//! GCC back end, with its 2-instruction value-numbering and
//! load-scheduling windows, issues the duplicated shape slightly better
//! and finishes in fewer cycles). The tuner simulates every harvested
//! candidate and ships the one the scoreboard prefers, instead of
//! trusting the static model.
//!
//! Run with: `cargo run --release --example tuned_extraction`

use acc_saturator::autotune::TuneConfig;
use acc_saturator::{tune_function, SaturatorConfig, Variant};
use accsat_ir::{parse_program, print_program, Program};
use std::collections::HashMap;

const SRC: &str = r#"
void dissip2d(double rhs[3][64][64], double u[3][64][64], double dssp, int k) {
  #pragma acc parallel loop gang vector
  for (int j = 1; j < 63; j++) {
    rhs[0][k][j] = rhs[0][k][j] - dssp * (u[0][k - 1][j] - 2.0 * u[0][k][j] + u[0][k + 1][j]);
    rhs[1][k][j] = rhs[1][k][j] - dssp * (u[1][k - 1][j] - 2.0 * u[1][k][j] + u[1][k + 1][j]);
    rhs[2][k][j] = rhs[2][k][j] - dssp * (u[2][k - 1][j] - 2.0 * u[2][k][j] + u[2][k + 1][j]);
  }
}
"#;

fn main() {
    let prog = parse_program(SRC).unwrap();
    let config = SaturatorConfig::default();
    let tcfg = TuneConfig::default();
    let (tuned, stats) =
        tune_function(&prog.functions[0], Variant::AccSat, &config, &tcfg, &HashMap::new())
            .unwrap();

    println!("compiler model: {} / device: {}\n", tcfg.compiler.compiler.name(), tcfg.device.name);
    for s in &stats {
        let t = s.tuning.as_ref().expect("tune mode records candidates");
        println!(
            "kernel `{}`: {} candidates harvested, {} simulated",
            t.function,
            t.harvested,
            t.candidates.len()
        );
        println!(
            "  {:<22} {:>7} {:>9} {:>6} {:>5}  verdict",
            "candidate", "static", "cycles", "instr", "regs"
        );
        for (ci, c) in t.candidates.iter().enumerate() {
            let verdict = match (ci == t.winner, ci == t.static_winner) {
                (true, true) => "<- sim+static",
                (true, false) => "<- sim winner",
                (false, true) => "<- static winner",
                _ => "",
            };
            println!(
                "  {:<22} {:>7} {:>9} {:>6} {:>5}  {verdict}",
                c.label, c.static_cost, c.cycles, c.metrics.sim.issued, c.metrics.regs_per_thread,
            );
        }
        println!(
            "\n  divergent: {} — the scoreboard {} the static model's pick\n",
            t.divergent(),
            if t.divergent() { "overrules" } else { "confirms" }
        );
    }
    println!(
        "=== tuned kernel (simulated winner) ===\n{}",
        print_program(&Program { functions: vec![tuned] })
    );
}
