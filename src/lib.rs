//! Root crate of the ACC Saturator reproduction — a façade over the
//! workspace. Use [`accsat`] (re-exported here in full) for the pipeline,
//! or the individual substrate crates.
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub use accsat::*;
