//! OpenACC / OpenMP directive model.
//!
//! Directives are attached to `for` loops in the AST. ACC Saturator never
//! rewrites directives (paper §IV: "compilers are limited to respect users'
//! decisions"), but the compiler models interpret them to derive launch
//! configurations, so the clause set below covers everything the NPB and
//! SPEC ACCEL kernels use.

use crate::Ident;
use std::fmt;

/// The programming model a pragma belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Model {
    /// `#pragma acc …`
    OpenAcc,
    /// `#pragma omp …`
    OpenMp,
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Model::OpenAcc => write!(f, "acc"),
            Model::OpenMp => write!(f, "omp"),
        }
    }
}

/// Directive kinds recognized by the front end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirectiveKind {
    /// OpenACC `parallel loop` — single explicit kernel region.
    AccParallelLoop,
    /// OpenACC `kernels loop` — compiler-discovered kernels region.
    AccKernelsLoop,
    /// OpenACC `loop` — nested loop annotation inside a region.
    AccLoop,
    /// OpenMP `target teams distribute` (optionally `parallel for [simd]`).
    OmpTargetTeamsDistribute,
    /// OpenMP `parallel for` (optionally `simd`) inside a target region.
    OmpParallelFor,
}

impl DirectiveKind {
    /// Does this directive open an offloaded (kernel) region?
    pub fn is_region_head(&self) -> bool {
        matches!(
            self,
            DirectiveKind::AccParallelLoop
                | DirectiveKind::AccKernelsLoop
                | DirectiveKind::OmpTargetTeamsDistribute
        )
    }

    /// Which model the directive belongs to.
    pub fn model(&self) -> Model {
        match self {
            DirectiveKind::AccParallelLoop
            | DirectiveKind::AccKernelsLoop
            | DirectiveKind::AccLoop => Model::OpenAcc,
            _ => Model::OpenMp,
        }
    }
}

/// Reduction operators supported in `reduction(op: var)` clauses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReductionOp {
    Add,
    Mul,
    Max,
    Min,
}

impl ReductionOp {
    /// Clause spelling (`+`, `*`, `max`, `min`).
    pub fn c_name(&self) -> &'static str {
        match self {
            ReductionOp::Add => "+",
            ReductionOp::Mul => "*",
            ReductionOp::Max => "max",
            ReductionOp::Min => "min",
        }
    }
}

/// Directive clauses.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    /// `gang` / `gang(n)` — coarse OpenACC parallelism (thread blocks).
    Gang(Option<u32>),
    /// `worker` / `worker(n)` — intermediate OpenACC parallelism.
    Worker(Option<u32>),
    /// `vector` / `vector(n)` — fine OpenACC parallelism (threads).
    Vector(Option<u32>),
    /// `num_gangs(n)`.
    NumGangs(u32),
    /// `num_workers(n)`.
    NumWorkers(u32),
    /// `vector_length(n)`.
    VectorLength(u32),
    /// `independent` — asserts no loop-carried dependences.
    Independent,
    /// `collapse(n)` — fuse `n` perfectly nested loops.
    Collapse(u32),
    /// `reduction(op: vars…)`.
    Reduction(ReductionOp, Vec<Ident>),
    /// `private(vars…)`.
    Private(Vec<Ident>),
    /// `simd` (OpenMP).
    Simd,
    /// `num_teams(n)` (OpenMP).
    NumTeams(u32),
    /// `thread_limit(n)` (OpenMP).
    ThreadLimit(u32),
}

/// A parsed directive: model, kind, and clause list, in source order.
#[derive(Debug, Clone, PartialEq)]
pub struct Directive {
    pub kind: DirectiveKind,
    pub clauses: Vec<Clause>,
}

impl Directive {
    /// New directive with no clauses.
    pub fn new(kind: DirectiveKind) -> Directive {
        Directive { kind, clauses: Vec::new() }
    }

    /// Builder-style clause attachment.
    pub fn with(mut self, clause: Clause) -> Directive {
        self.clauses.push(clause);
        self
    }

    /// Look up the requested gang count: `num_gangs(n)` or `gang(n)`.
    pub fn num_gangs(&self) -> Option<u32> {
        self.clauses.iter().find_map(|c| match c {
            Clause::NumGangs(n) => Some(*n),
            Clause::Gang(Some(n)) => Some(*n),
            Clause::NumTeams(n) => Some(*n),
            _ => None,
        })
    }

    /// Look up the requested worker count.
    pub fn num_workers(&self) -> Option<u32> {
        self.clauses.iter().find_map(|c| match c {
            Clause::NumWorkers(n) => Some(*n),
            Clause::Worker(Some(n)) => Some(*n),
            _ => None,
        })
    }

    /// Look up the requested vector length.
    pub fn vector_length(&self) -> Option<u32> {
        self.clauses.iter().find_map(|c| match c {
            Clause::VectorLength(n) => Some(*n),
            Clause::Vector(Some(n)) => Some(*n),
            _ => None,
        })
    }

    /// Does the directive expose gang-level parallelism?
    pub fn has_gang(&self) -> bool {
        self.kind.is_region_head()
            || self
                .clauses
                .iter()
                .any(|c| matches!(c, Clause::Gang(_) | Clause::NumGangs(_) | Clause::NumTeams(_)))
    }

    /// Does the directive expose worker-level parallelism?
    pub fn has_worker(&self) -> bool {
        self.clauses.iter().any(|c| matches!(c, Clause::Worker(_) | Clause::NumWorkers(_)))
    }

    /// Does the directive expose vector-level parallelism?
    pub fn has_vector(&self) -> bool {
        self.clauses
            .iter()
            .any(|c| matches!(c, Clause::Vector(_) | Clause::VectorLength(_) | Clause::Simd))
    }

    /// Reduction clauses attached to this directive.
    pub fn reductions(&self) -> impl Iterator<Item = (&ReductionOp, &Vec<Ident>)> {
        self.clauses.iter().filter_map(|c| match c {
            Clause::Reduction(op, vars) => Some((op, vars)),
            _ => None,
        })
    }

    /// Render the directive back to pragma text (without `#pragma `).
    pub fn render(&self) -> String {
        let mut s = String::new();
        match self.kind {
            DirectiveKind::AccParallelLoop => s.push_str("acc parallel loop"),
            DirectiveKind::AccKernelsLoop => s.push_str("acc kernels loop"),
            DirectiveKind::AccLoop => s.push_str("acc loop"),
            DirectiveKind::OmpTargetTeamsDistribute => s.push_str("omp target teams distribute"),
            DirectiveKind::OmpParallelFor => s.push_str("omp parallel for"),
        }
        for c in &self.clauses {
            s.push(' ');
            match c {
                Clause::Gang(None) => s.push_str("gang"),
                Clause::Gang(Some(n)) => s.push_str(&format!("gang({n})")),
                Clause::Worker(None) => s.push_str("worker"),
                Clause::Worker(Some(n)) => s.push_str(&format!("worker({n})")),
                Clause::Vector(None) => s.push_str("vector"),
                Clause::Vector(Some(n)) => s.push_str(&format!("vector({n})")),
                Clause::NumGangs(n) => s.push_str(&format!("num_gangs({n})")),
                Clause::NumWorkers(n) => s.push_str(&format!("num_workers({n})")),
                Clause::VectorLength(n) => s.push_str(&format!("vector_length({n})")),
                Clause::Independent => s.push_str("independent"),
                Clause::Collapse(n) => s.push_str(&format!("collapse({n})")),
                Clause::Reduction(op, vars) => {
                    s.push_str(&format!("reduction({}:{})", op.c_name(), vars.join(",")))
                }
                Clause::Private(vars) => s.push_str(&format!("private({})", vars.join(","))),
                Clause::Simd => s.push_str("simd"),
                Clause::NumTeams(n) => s.push_str(&format!("num_teams({n})")),
                Clause::ThreadLimit(n) => s.push_str(&format!("thread_limit({n})")),
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_round_trip_text() {
        let d = Directive::new(DirectiveKind::AccParallelLoop)
            .with(Clause::Gang(None))
            .with(Clause::NumGangs(63))
            .with(Clause::NumWorkers(4))
            .with(Clause::VectorLength(32));
        assert_eq!(
            d.render(),
            "acc parallel loop gang num_gangs(63) num_workers(4) vector_length(32)"
        );
    }

    #[test]
    fn parallelism_queries() {
        let d = Directive::new(DirectiveKind::AccLoop)
            .with(Clause::Independent)
            .with(Clause::Gang(Some(16)))
            .with(Clause::Vector(Some(256)));
        assert!(d.has_gang());
        assert!(d.has_vector());
        assert!(!d.has_worker());
        assert_eq!(d.num_gangs(), Some(16));
        assert_eq!(d.vector_length(), Some(256));
    }

    #[test]
    fn region_head_classification() {
        assert!(DirectiveKind::AccParallelLoop.is_region_head());
        assert!(DirectiveKind::AccKernelsLoop.is_region_head());
        assert!(DirectiveKind::OmpTargetTeamsDistribute.is_region_head());
        assert!(!DirectiveKind::AccLoop.is_region_head());
    }

    #[test]
    fn reduction_rendering() {
        let d = Directive::new(DirectiveKind::AccParallelLoop)
            .with(Clause::Reduction(ReductionOp::Add, vec!["sum".into()]));
        assert_eq!(d.render(), "acc parallel loop reduction(+:sum)");
        assert_eq!(d.reductions().count(), 1);
    }

    #[test]
    fn model_classification() {
        assert_eq!(DirectiveKind::AccLoop.model(), Model::OpenAcc);
        assert_eq!(DirectiveKind::OmpParallelFor.model(), Model::OpenMp);
        assert_eq!(Model::OpenAcc.to_string(), "acc");
    }
}
