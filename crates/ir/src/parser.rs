//! Recursive-descent parser for the C subset plus OpenACC/OpenMP pragmas.

use crate::ast::*;
use crate::directive::*;
use crate::lexer::{Lexer, Token, TokenKind};

/// Parse error with a message and the offending source line.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub message: String,
    pub line: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

/// Parse a full translation unit.
pub fn parse_program(src: &str) -> PResult<Program> {
    let tokens = Lexer::new(src).tokenize();
    let mut p = Parser { tokens, pos: 0 };
    p.program()
}

/// Parse a single expression (used by tests and the rule DSL).
pub fn parse_expr(src: &str) -> PResult<Expr> {
    let tokens = Lexer::new(src).tokenize();
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].kind
    }

    fn line(&self) -> usize {
        self.tokens[self.pos.min(self.tokens.len() - 1)].line
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].kind.clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> PResult<T> {
        Err(ParseError { message: msg.into(), line: self.line() })
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if matches!(self.peek(), TokenKind::Punct(q) if *q == p) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> PResult<()> {
        if self.eat_punct(p) {
            Ok(())
        } else {
            self.err(format!("expected `{p}`, found {}", self.peek()))
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Ident(s) if s == kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> PResult<String> {
        match self.bump() {
            TokenKind::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn expect_eof(&mut self) -> PResult<()> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            self.err(format!("trailing input: {}", self.peek()))
        }
    }

    fn peek_type(&self) -> Option<Type> {
        match self.peek() {
            TokenKind::Ident(s) => match s.as_str() {
                "int" | "long" | "unsigned" | "size_t" => Some(Type::Int),
                "float" => Some(Type::Float),
                "double" => Some(Type::Double),
                "void" => Some(Type::Void),
                _ => None,
            },
            _ => None,
        }
    }

    fn parse_type(&mut self) -> PResult<Type> {
        let ty = self
            .peek_type()
            .ok_or_else(|| ParseError { message: "expected type".into(), line: self.line() })?;
        self.bump();
        // allow `long long`, `unsigned int`
        while matches!(self.peek(), TokenKind::Ident(s) if matches!(s.as_str(), "long" | "int"))
            && ty == Type::Int
        {
            self.bump();
        }
        Ok(ty)
    }

    // ---------------------------------------------------------- program

    fn program(&mut self) -> PResult<Program> {
        let mut functions = Vec::new();
        while !matches!(self.peek(), TokenKind::Eof) {
            functions.push(self.function()?);
        }
        Ok(Program { functions })
    }

    fn function(&mut self) -> PResult<Function> {
        let ret = self.parse_type()?;
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.eat_punct(")") {
            loop {
                params.push(self.param()?);
                if self.eat_punct(")") {
                    break;
                }
                self.expect_punct(",")?;
            }
        }
        let body = self.block()?;
        Ok(Function { name, ret, params, body })
    }

    fn param(&mut self) -> PResult<Param> {
        let ty = self.parse_type()?;
        // optional `*` (pointer parameters treated as 1-D arrays)
        let is_ptr = self.eat_punct("*");
        let name = self.expect_ident()?;
        let mut dims = Vec::new();
        while self.eat_punct("[") {
            match self.bump() {
                TokenKind::Int(n) => dims.push(n as usize),
                TokenKind::Punct("]") => {
                    // unsized leading dimension `a[]` — use 0 as a marker
                    dims.push(0);
                    continue;
                }
                other => return self.err(format!("expected array dimension, found {other}")),
            }
            self.expect_punct("]")?;
        }
        if is_ptr && dims.is_empty() {
            dims.push(0);
        }
        Ok(Param { name, ty, dims })
    }

    // ---------------------------------------------------------- statements

    fn block(&mut self) -> PResult<Block> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.eat_punct("}") {
            if matches!(self.peek(), TokenKind::Eof) {
                return self.err("unterminated block");
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    /// Parse either a braced block or a single statement as a block.
    fn block_or_stmt(&mut self) -> PResult<Block> {
        if matches!(self.peek(), TokenKind::Punct("{")) {
            self.block()
        } else {
            Ok(Block { stmts: vec![self.stmt()?] })
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        // pragma: attach to the following `for`
        if let TokenKind::Pragma(_) = self.peek() {
            let text = match self.bump() {
                TokenKind::Pragma(t) => t,
                _ => unreachable!(),
            };
            let directive =
                parse_directive(&text).map_err(|m| ParseError { message: m, line: self.line() })?;
            // skip any stacked pragma (e.g. commented OpenMP equivalent appears
            // as a comment and is already gone; stacked pragmas override)
            let stmt = self.stmt()?;
            return match stmt {
                Stmt::For(mut l) => {
                    l.directive = Some(directive);
                    Ok(Stmt::For(l))
                }
                other => {
                    // Pragma over a non-loop statement: keep the statement and
                    // drop the directive (data pragmas are out of scope).
                    Ok(other)
                }
            };
        }

        if self.eat_ident("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.block_or_stmt()?;
            let els = if self.eat_ident("else") { Some(self.block_or_stmt()?) } else { None };
            return Ok(Stmt::If { cond, then, els });
        }

        if self.eat_ident("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block_or_stmt()?;
            return Ok(Stmt::While { cond, body });
        }

        if self.eat_ident("for") {
            return self.for_loop();
        }

        if self.eat_ident("return") {
            if self.eat_punct(";") {
                return Ok(Stmt::Return(None));
            }
            let e = self.expr()?;
            self.expect_punct(";")?;
            return Ok(Stmt::Return(Some(e)));
        }

        if matches!(self.peek(), TokenKind::Punct("{")) {
            return Ok(Stmt::Block(self.block()?));
        }

        // declaration?
        if self.peek_type().is_some() {
            let ty = self.parse_type()?;
            let name = self.expect_ident()?;
            let mut decls = vec![];
            let init = if self.eat_punct("=") { Some(self.expr()?) } else { None };
            decls.push(Stmt::Decl { ty: ty.clone(), name, init });
            // comma-separated declarators: `double a, b = 1, c;`
            while self.eat_punct(",") {
                let name = self.expect_ident()?;
                let init = if self.eat_punct("=") { Some(self.expr()?) } else { None };
                decls.push(Stmt::Decl { ty: ty.clone(), name, init });
            }
            self.expect_punct(";")?;
            if decls.len() == 1 {
                return Ok(decls.pop().unwrap());
            }
            return Ok(Stmt::Block(Block { stmts: decls }));
        }

        // assignment or expression statement
        let stmt = self.assign_or_expr()?;
        self.expect_punct(";")?;
        Ok(stmt)
    }

    fn assign_or_expr(&mut self) -> PResult<Stmt> {
        let e = self.expr()?;
        let op = match self.peek() {
            TokenKind::Punct("=") => Some(AssignOp::Assign),
            TokenKind::Punct("+=") => Some(AssignOp::AddAssign),
            TokenKind::Punct("-=") => Some(AssignOp::SubAssign),
            TokenKind::Punct("*=") => Some(AssignOp::MulAssign),
            TokenKind::Punct("/=") => Some(AssignOp::DivAssign),
            TokenKind::Punct("++") => {
                self.bump();
                let lhs = self.expr_to_lvalue(e)?;
                let rhs = Expr::bin(BinOp::Add, lvalue_to_expr(&lhs), Expr::Int(1));
                return Ok(Stmt::Assign { lhs, op: AssignOp::Assign, rhs });
            }
            TokenKind::Punct("--") => {
                self.bump();
                let lhs = self.expr_to_lvalue(e)?;
                let rhs = Expr::bin(BinOp::Sub, lvalue_to_expr(&lhs), Expr::Int(1));
                return Ok(Stmt::Assign { lhs, op: AssignOp::Assign, rhs });
            }
            _ => None,
        };
        match op {
            Some(op) => {
                self.bump();
                let lhs = self.expr_to_lvalue(e)?;
                let rhs = self.expr()?;
                Ok(Stmt::Assign { lhs, op, rhs })
            }
            None => Ok(Stmt::Expr(e)),
        }
    }

    fn expr_to_lvalue(&self, e: Expr) -> PResult<LValue> {
        match e {
            Expr::Var(n) => Ok(LValue::Var(n)),
            Expr::Index { base, indices } => Ok(LValue::Index { base, indices }),
            _ => self.err("invalid assignment target"),
        }
    }

    fn for_loop(&mut self) -> PResult<Stmt> {
        self.expect_punct("(")?;
        let declares_var = self.peek_type().is_some();
        if declares_var {
            self.parse_type()?;
        }
        let var = self.expect_ident()?;
        self.expect_punct("=")?;
        let init = self.expr()?;
        self.expect_punct(";")?;
        let cond = self.expr()?;
        self.expect_punct(";")?;
        // step forms: i++, i--, i += k, i = i + k
        let step = self.for_step(&var)?;
        self.expect_punct(")")?;
        let body = self.block_or_stmt()?;
        Ok(Stmt::For(ForLoop { var, declares_var, init, cond, step, body, directive: None }))
    }

    fn for_step(&mut self, var: &str) -> PResult<Expr> {
        let name = self.expect_ident()?;
        if name != var {
            return self.err(format!(
                "for-loop step must update induction variable `{var}`, found `{name}`"
            ));
        }
        match self.bump() {
            TokenKind::Punct("++") => Ok(Expr::Int(1)),
            TokenKind::Punct("--") => Ok(Expr::Int(-1)),
            TokenKind::Punct("+=") => self.expr(),
            TokenKind::Punct("-=") => Ok(Expr::neg(self.expr()?)),
            TokenKind::Punct("=") => {
                // i = i + k  or  i = k + i
                let e = self.expr()?;
                match e {
                    Expr::Binary { op: BinOp::Add, lhs, rhs } => match (*lhs, *rhs) {
                        (Expr::Var(v), k) if v == var => Ok(k),
                        (k, Expr::Var(v)) if v == var => Ok(k),
                        _ => self.err("unsupported for-loop step"),
                    },
                    Expr::Binary { op: BinOp::Sub, lhs, rhs } => match (*lhs, *rhs) {
                        (Expr::Var(v), k) if v == var => Ok(Expr::neg(k)),
                        _ => self.err("unsupported for-loop step"),
                    },
                    _ => self.err("unsupported for-loop step"),
                }
            }
            other => self.err(format!("unsupported for-loop step: {other}")),
        }
    }

    // ---------------------------------------------------------- expressions

    fn expr(&mut self) -> PResult<Expr> {
        self.ternary()
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.binary(0)?;
        if self.eat_punct("?") {
            let then = self.expr()?;
            self.expect_punct(":")?;
            let els = self.ternary()?;
            Ok(Expr::Ternary { cond: Box::new(cond), then: Box::new(then), els: Box::new(els) })
        } else {
            Ok(cond)
        }
    }

    fn bin_op(&self) -> Option<(BinOp, u8)> {
        // (operator, binding power) — higher binds tighter
        match self.peek() {
            TokenKind::Punct("||") => Some((BinOp::Or, 1)),
            TokenKind::Punct("&&") => Some((BinOp::And, 2)),
            TokenKind::Punct("==") => Some((BinOp::Eq, 3)),
            TokenKind::Punct("!=") => Some((BinOp::Ne, 3)),
            TokenKind::Punct("<") => Some((BinOp::Lt, 4)),
            TokenKind::Punct("<=") => Some((BinOp::Le, 4)),
            TokenKind::Punct(">") => Some((BinOp::Gt, 4)),
            TokenKind::Punct(">=") => Some((BinOp::Ge, 4)),
            TokenKind::Punct("+") => Some((BinOp::Add, 5)),
            TokenKind::Punct("-") => Some((BinOp::Sub, 5)),
            TokenKind::Punct("*") => Some((BinOp::Mul, 6)),
            TokenKind::Punct("/") => Some((BinOp::Div, 6)),
            TokenKind::Punct("%") => Some((BinOp::Mod, 6)),
            _ => None,
        }
    }

    fn binary(&mut self, min_bp: u8) -> PResult<Expr> {
        let mut lhs = self.unary()?;
        while let Some((op, bp)) = self.bin_op() {
            if bp < min_bp {
                break;
            }
            self.bump();
            let rhs = self.binary(bp + 1)?;
            lhs = Expr::bin(op, lhs, rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> PResult<Expr> {
        if self.eat_punct("-") {
            return Ok(Expr::neg(self.unary()?));
        }
        if self.eat_punct("+") {
            return self.unary();
        }
        if self.eat_punct("!") {
            return Ok(Expr::Unary { op: UnOp::Not, operand: Box::new(self.unary()?) });
        }
        self.postfix()
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            if self.eat_punct("[") {
                let idx = self.expr()?;
                self.expect_punct("]")?;
                e = match e {
                    Expr::Var(base) => Expr::Index { base, indices: vec![idx] },
                    Expr::Index { base, mut indices } => {
                        indices.push(idx);
                        Expr::Index { base, indices }
                    }
                    _ => return self.err("cannot index a non-array expression"),
                };
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn primary(&mut self) -> PResult<Expr> {
        let line = self.line();
        match self.bump() {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::Float(v) => Ok(Expr::Float(v)),
            TokenKind::Punct("(") => {
                // cast or parenthesized expression
                if let Some(ty) = self.peek_type() {
                    self.bump();
                    self.expect_punct(")")?;
                    let inner = self.unary()?;
                    return Ok(Expr::Cast { ty, expr: Box::new(inner) });
                }
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.eat_punct("(") {
                    let mut args = Vec::new();
                    if !self.eat_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if self.eat_punct(")") {
                                break;
                            }
                            self.expect_punct(",")?;
                        }
                    }
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(ParseError {
                message: format!("unexpected token in expression: {other}"),
                line,
            }),
        }
    }
}

fn lvalue_to_expr(lv: &LValue) -> Expr {
    match lv {
        LValue::Var(n) => Expr::Var(n.clone()),
        LValue::Index { base, indices } => {
            Expr::Index { base: base.clone(), indices: indices.clone() }
        }
    }
}

// ------------------------------------------------------------- directives

/// Parse directive text (the part after `#pragma `).
pub fn parse_directive(text: &str) -> Result<Directive, String> {
    let mut words = DirectiveLexer::new(text);
    let model = match words.next_word().as_deref() {
        Some("acc") => Model::OpenAcc,
        Some("omp") => Model::OpenMp,
        other => return Err(format!("unknown pragma model: {other:?}")),
    };
    let kind = match model {
        Model::OpenAcc => match words.next_word().as_deref() {
            Some("parallel") => {
                words.eat_word("loop");
                DirectiveKind::AccParallelLoop
            }
            Some("kernels") => {
                words.eat_word("loop");
                DirectiveKind::AccKernelsLoop
            }
            Some("loop") => DirectiveKind::AccLoop,
            other => return Err(format!("unknown acc directive: {other:?}")),
        },
        Model::OpenMp => match words.next_word().as_deref() {
            Some("target") => {
                words.eat_word("teams");
                words.eat_word("distribute");
                // optional `parallel for [simd]` merged into the head
                if words.eat_word("parallel") {
                    words.eat_word("for");
                }
                DirectiveKind::OmpTargetTeamsDistribute
            }
            Some("parallel") => {
                words.eat_word("for");
                DirectiveKind::OmpParallelFor
            }
            other => return Err(format!("unknown omp directive: {other:?}")),
        },
    };
    let mut clauses = Vec::new();
    while let Some(word) = words.next_word() {
        let clause = match word.as_str() {
            "gang" => Clause::Gang(words.opt_int_arg()?),
            "worker" => Clause::Worker(words.opt_int_arg()?),
            "vector" => Clause::Vector(words.opt_int_arg()?),
            "num_gangs" => Clause::NumGangs(words.int_arg("num_gangs")?),
            "num_workers" => Clause::NumWorkers(words.int_arg("num_workers")?),
            "vector_length" => Clause::VectorLength(words.int_arg("vector_length")?),
            "independent" => Clause::Independent,
            "collapse" => Clause::Collapse(words.int_arg("collapse")?),
            "simd" => Clause::Simd,
            "num_teams" => Clause::NumTeams(words.int_arg("num_teams")?),
            "thread_limit" => Clause::ThreadLimit(words.int_arg("thread_limit")?),
            "reduction" => {
                let body = words.paren_arg("reduction")?;
                let (op, vars) = body
                    .split_once(':')
                    .ok_or_else(|| format!("malformed reduction clause: {body}"))?;
                let op = match op.trim() {
                    "+" => ReductionOp::Add,
                    "*" => ReductionOp::Mul,
                    "max" => ReductionOp::Max,
                    "min" => ReductionOp::Min,
                    other => return Err(format!("unknown reduction op: {other}")),
                };
                Clause::Reduction(op, vars.split(',').map(|v| v.trim().to_string()).collect())
            }
            "private" => {
                let body = words.paren_arg("private")?;
                Clause::Private(body.split(',').map(|v| v.trim().to_string()).collect())
            }
            // clauses we accept and ignore (data movement is out of scope)
            "copy" | "copyin" | "copyout" | "present" | "create" | "map" | "schedule"
            | "default" | "firstprivate" | "shared" | "device" => {
                let _ = words.opt_paren_arg();
                continue;
            }
            other => return Err(format!("unknown clause: {other}")),
        };
        clauses.push(clause);
    }
    Ok(Directive { kind, clauses })
}

/// Tiny word/paren lexer for directive clause lists.
struct DirectiveLexer<'a> {
    rest: &'a str,
}

impl<'a> DirectiveLexer<'a> {
    fn new(text: &'a str) -> Self {
        DirectiveLexer { rest: text.trim() }
    }

    fn next_word(&mut self) -> Option<String> {
        self.rest = self.rest.trim_start();
        if self.rest.is_empty() {
            return None;
        }
        let end = self
            .rest
            .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_'))
            .unwrap_or(self.rest.len());
        if end == 0 {
            // skip stray punctuation
            self.rest = &self.rest[1..];
            return self.next_word();
        }
        let (word, rest) = self.rest.split_at(end);
        self.rest = rest;
        Some(word.to_string())
    }

    fn eat_word(&mut self, w: &str) -> bool {
        let trimmed = self.rest.trim_start();
        if trimmed.starts_with(w)
            && trimmed[w.len()..]
                .chars()
                .next()
                .is_none_or(|c| !(c.is_ascii_alphanumeric() || c == '_'))
        {
            self.rest = &trimmed[w.len()..];
            true
        } else {
            false
        }
    }

    fn opt_paren_arg(&mut self) -> Option<String> {
        let trimmed = self.rest.trim_start();
        if !trimmed.starts_with('(') {
            return None;
        }
        let mut depth = 0usize;
        for (i, c) in trimmed.char_indices() {
            match c {
                '(' => depth += 1,
                ')' => {
                    depth -= 1;
                    if depth == 0 {
                        let body = trimmed[1..i].to_string();
                        self.rest = &trimmed[i + 1..];
                        return Some(body);
                    }
                }
                _ => {}
            }
        }
        None
    }

    fn paren_arg(&mut self, clause: &str) -> Result<String, String> {
        self.opt_paren_arg().ok_or_else(|| format!("clause `{clause}` requires (…) argument"))
    }

    fn int_arg(&mut self, clause: &str) -> Result<u32, String> {
        let body = self.paren_arg(clause)?;
        body.trim()
            .parse::<u32>()
            .map_err(|_| format!("clause `{clause}` requires an integer, got `{body}`"))
    }

    fn opt_int_arg(&mut self) -> Result<Option<u32>, String> {
        match self.opt_paren_arg() {
            None => Ok(None),
            Some(body) => body
                .trim()
                .parse::<u32>()
                .map(Some)
                .map_err(|_| format!("expected integer clause argument, got `{body}`")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_listing1() {
        // Listing 1 of the paper (matrix multiplication kernel).
        let src = r#"
void mm(double a[64][64], double b[64][64], double c[64][64], double r[64][64],
        double alpha, double beta, int cy, int cx, int ax) {
  #pragma acc kernels loop independent
  for (int i = 0; i < cy; i++) {
    #pragma acc loop independent gang(16) vector(256)
    for (int j = 0; j < cx; j++) {
      double tmp = 0.0;
      for (int l = 0; l < ax; l++)
        tmp += a[i][l] * b[l][j];
      r[i][j] = alpha * tmp + beta * c[i][j];
    }
  }
}
"#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.functions.len(), 1);
        let f = &prog.functions[0];
        assert_eq!(f.params.len(), 9);
        let outer = match &f.body.stmts[0] {
            Stmt::For(l) => l,
            other => panic!("expected for, got {other:?}"),
        };
        assert_eq!(outer.directive.as_ref().unwrap().kind, DirectiveKind::AccKernelsLoop);
        let inner = match &outer.body.stmts[0] {
            Stmt::For(l) => l,
            other => panic!("expected for, got {other:?}"),
        };
        let d = inner.directive.as_ref().unwrap();
        assert_eq!(d.num_gangs(), Some(16));
        assert_eq!(d.vector_length(), Some(256));
    }

    #[test]
    fn precedence() {
        let e = parse_expr("a + b * c").unwrap();
        match e {
            Expr::Binary { op: BinOp::Add, rhs, .. } => {
                assert!(matches!(*rhs, Expr::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn comparison_and_logical_precedence() {
        let e = parse_expr("a < b && c >= d || e == f").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn unary_minus_binds_tight() {
        let e = parse_expr("-a * b").unwrap();
        match e {
            Expr::Binary { op: BinOp::Mul, lhs, .. } => {
                assert!(matches!(*lhs, Expr::Unary { op: UnOp::Neg, .. }));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn multidim_index() {
        let e = parse_expr("lhsZ[0][0][k][i][j]").unwrap();
        match e {
            Expr::Index { base, indices } => {
                assert_eq!(base, "lhsZ");
                assert_eq!(indices.len(), 5);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn ternary_parses() {
        let e = parse_expr("a < b ? a : b").unwrap();
        assert!(matches!(e, Expr::Ternary { .. }));
    }

    #[test]
    fn cast_parses() {
        let e = parse_expr("(double)n * 0.5").unwrap();
        match e {
            Expr::Binary { op: BinOp::Mul, lhs, .. } => {
                assert!(matches!(*lhs, Expr::Cast { ty: Type::Double, .. }));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn call_parses() {
        let e = parse_expr("sqrt(x * x + y * y)").unwrap();
        match e {
            Expr::Call { name, args } => {
                assert_eq!(name, "sqrt");
                assert_eq!(args.len(), 1);
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn compound_assign_and_incr() {
        let src = r#"
void f(double a[8]) {
  int i = 0;
  a[0] += 1.0;
  a[1] *= 2.0;
  i++;
}
"#;
        let prog = parse_program(src).unwrap();
        let body = &prog.functions[0].body.stmts;
        assert!(matches!(&body[1], Stmt::Assign { op: AssignOp::AddAssign, .. }));
        assert!(matches!(&body[2], Stmt::Assign { op: AssignOp::MulAssign, .. }));
        assert!(matches!(&body[3], Stmt::Assign { op: AssignOp::Assign, .. }));
    }

    #[test]
    fn for_step_forms() {
        for (step_src, expect) in [
            ("i++", Expr::Int(1)),
            ("i += 2", Expr::Int(2)),
            ("i = i + 3", Expr::Int(3)),
            ("i = 4 + i", Expr::Int(4)),
        ] {
            let src = format!("void f() {{ for (int i = 0; i < 10; {step_src}) {{ }} }}");
            let prog = parse_program(&src).unwrap();
            match &prog.functions[0].body.stmts[0] {
                Stmt::For(l) => assert_eq!(&l.step, &expect, "step {step_src}"),
                other => panic!("expected for, got {other:?}"),
            }
        }
    }

    #[test]
    fn multi_declarator() {
        let src = "void f() { double a, b = 1.0, c; }";
        let prog = parse_program(src).unwrap();
        match &prog.functions[0].body.stmts[0] {
            Stmt::Block(b) => assert_eq!(b.stmts.len(), 3),
            other => panic!("expected block of decls, got {other:?}"),
        }
    }

    #[test]
    fn omp_directive_parses() {
        let d =
            parse_directive("omp target teams distribute parallel for simd num_teams(8)").unwrap();
        assert_eq!(d.kind, DirectiveKind::OmpTargetTeamsDistribute);
        assert!(d.has_vector()); // simd
        assert_eq!(d.num_gangs(), Some(8));
    }

    #[test]
    fn ignored_data_clauses() {
        let d = parse_directive("acc parallel loop copyin(a[0:n]) gang vector").unwrap();
        assert_eq!(d.clauses.len(), 2);
    }

    #[test]
    fn error_messages_carry_line() {
        let err = parse_program("void f() {\n  int x = ;\n}").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn directive_reduction_roundtrip() {
        let d = parse_directive("acc parallel loop reduction(+:sum) vector_length(128)").unwrap();
        assert_eq!(d.render(), "acc parallel loop reduction(+:sum) vector_length(128)");
    }
}
