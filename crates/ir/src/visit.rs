//! Traversal utilities over the AST.

use crate::ast::*;

/// Visitor over expressions. `visit` is called for every node, parents first.
pub trait ExprVisitor {
    fn visit(&mut self, e: &Expr);
}

impl<F: FnMut(&Expr)> ExprVisitor for F {
    fn visit(&mut self, e: &Expr) {
        self(e)
    }
}

/// Walk an expression tree, calling the visitor on every node (pre-order).
pub fn walk_expr<V: ExprVisitor>(e: &Expr, v: &mut V) {
    v.visit(e);
    match e {
        Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => {}
        Expr::Index { indices, .. } => {
            for i in indices {
                walk_expr(i, v);
            }
        }
        Expr::Unary { operand, .. } => walk_expr(operand, v),
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, v);
            walk_expr(rhs, v);
        }
        Expr::Call { args, .. } => {
            for a in args {
                walk_expr(a, v);
            }
        }
        Expr::Ternary { cond, then, els } => {
            walk_expr(cond, v);
            walk_expr(then, v);
            walk_expr(els, v);
        }
        Expr::Cast { expr, .. } => walk_expr(expr, v),
    }
}

/// Walk every expression contained in a statement (pre-order over the
/// statement tree; conditions before bodies).
pub fn walk_stmt<V: ExprVisitor>(s: &Stmt, v: &mut V) {
    match s {
        Stmt::Decl { init, .. } => {
            if let Some(e) = init {
                walk_expr(e, v);
            }
        }
        Stmt::Assign { lhs, rhs, .. } => {
            if let LValue::Index { indices, .. } = lhs {
                for i in indices {
                    walk_expr(i, v);
                }
            }
            walk_expr(rhs, v);
        }
        Stmt::If { cond, then, els } => {
            walk_expr(cond, v);
            for s in &then.stmts {
                walk_stmt(s, v);
            }
            if let Some(e) = els {
                for s in &e.stmts {
                    walk_stmt(s, v);
                }
            }
        }
        Stmt::For(l) => {
            walk_expr(&l.init, v);
            walk_expr(&l.cond, v);
            walk_expr(&l.step, v);
            for s in &l.body.stmts {
                walk_stmt(s, v);
            }
        }
        Stmt::While { cond, body } => {
            walk_expr(cond, v);
            for s in &body.stmts {
                walk_stmt(s, v);
            }
        }
        Stmt::Block(b) => {
            for s in &b.stmts {
                walk_stmt(s, v);
            }
        }
        Stmt::Expr(e) => walk_expr(e, v),
        Stmt::Return(Some(e)) => walk_expr(e, v),
        Stmt::Return(None) => {}
    }
}

/// Collect the names of all arrays referenced (read or written) in a block.
pub fn referenced_arrays(block: &Block) -> Vec<String> {
    let mut names = Vec::new();
    for s in &block.stmts {
        // catch array stores first, whose base is in the LValue not an Expr
        collect_store_bases(s, &mut names);
    }
    let mut visitor = |e: &Expr| {
        if let Expr::Index { base, .. } = e {
            if !names.contains(base) {
                names.push(base.clone());
            }
        }
    };
    for s in &block.stmts {
        walk_stmt(s, &mut visitor);
    }
    names
}

fn collect_store_bases(s: &Stmt, names: &mut Vec<String>) {
    match s {
        Stmt::Assign { lhs: LValue::Index { base, .. }, .. } if !names.contains(base) => {
            names.push(base.clone());
        }
        Stmt::If { then, els, .. } => {
            for s in &then.stmts {
                collect_store_bases(s, names);
            }
            if let Some(e) = els {
                for s in &e.stmts {
                    collect_store_bases(s, names);
                }
            }
        }
        Stmt::For(l) => {
            for s in &l.body.stmts {
                collect_store_bases(s, names);
            }
        }
        Stmt::While { body, .. } => {
            for s in &body.stmts {
                collect_store_bases(s, names);
            }
        }
        Stmt::Block(b) => {
            for s in &b.stmts {
                collect_store_bases(s, names);
            }
        }
        _ => {}
    }
}

/// Count loads (array reads) and arithmetic operations in a block — a quick
/// static profile used by tests and the compiler models.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct StaticProfile {
    pub loads: usize,
    pub stores: usize,
    pub flops: usize,
    pub calls: usize,
    pub divs: usize,
}

/// Compute a [`StaticProfile`] for a block.
pub fn static_profile(block: &Block) -> StaticProfile {
    let mut p = StaticProfile::default();
    fn go_expr(e: &Expr, p: &mut StaticProfile) {
        match e {
            Expr::Index { indices, .. } => {
                p.loads += 1;
                for i in indices {
                    go_expr(i, p);
                }
            }
            Expr::Unary { operand, .. } => {
                p.flops += 1;
                go_expr(operand, p);
            }
            Expr::Binary { op, lhs, rhs } => {
                match op {
                    BinOp::Div | BinOp::Mod => p.divs += 1,
                    _ => p.flops += 1,
                }
                go_expr(lhs, p);
                go_expr(rhs, p);
            }
            Expr::Call { args, .. } => {
                p.calls += 1;
                for a in args {
                    go_expr(a, p);
                }
            }
            Expr::Ternary { cond, then, els } => {
                p.flops += 1;
                go_expr(cond, p);
                go_expr(then, p);
                go_expr(els, p);
            }
            Expr::Cast { expr, .. } => go_expr(expr, p),
            _ => {}
        }
    }
    fn go_stmt(s: &Stmt, p: &mut StaticProfile) {
        match s {
            Stmt::Decl { init, .. } => {
                if let Some(e) = init {
                    go_expr(e, p);
                }
            }
            Stmt::Assign { lhs, op, rhs } => {
                if let LValue::Index { indices, .. } = lhs {
                    p.stores += 1;
                    for i in indices {
                        go_expr(i, p);
                    }
                    // compound assignment also loads the old value
                    if op.binop().is_some() {
                        p.loads += 1;
                    }
                }
                if op.binop().is_some() {
                    p.flops += 1;
                }
                go_expr(rhs, p);
            }
            Stmt::If { cond, then, els } => {
                go_expr(cond, p);
                for s in &then.stmts {
                    go_stmt(s, p);
                }
                if let Some(e) = els {
                    for s in &e.stmts {
                        go_stmt(s, p);
                    }
                }
            }
            Stmt::For(l) => {
                go_expr(&l.cond, p);
                for s in &l.body.stmts {
                    go_stmt(s, p);
                }
            }
            Stmt::While { cond, body } => {
                go_expr(cond, p);
                for s in &body.stmts {
                    go_stmt(s, p);
                }
            }
            Stmt::Block(b) => {
                for s in &b.stmts {
                    go_stmt(s, p);
                }
            }
            Stmt::Expr(e) => go_expr(e, p),
            Stmt::Return(Some(e)) => go_expr(e, p),
            Stmt::Return(None) => {}
        }
    }
    for s in &block.stmts {
        go_stmt(s, &mut p);
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn body_of(src: &str) -> Block {
        parse_program(src).unwrap().functions[0].body.clone()
    }

    #[test]
    fn walk_counts_nodes() {
        let b = body_of("void f(double a[4]) { a[0] = a[1] + a[2] * 3.0; }");
        let mut n = 0usize;
        for s in &b.stmts {
            walk_stmt(s, &mut |_: &Expr| n += 1);
        }
        // rhs: +, a[1], 1, *, a[2], 2, 3.0  plus lhs index 0
        assert_eq!(n, 8);
    }

    #[test]
    fn referenced_arrays_includes_stores() {
        let b = body_of("void f(double a[4], double b[4]) { b[0] = 1.0; double x = a[1]; }");
        let names = referenced_arrays(&b);
        assert!(names.contains(&"a".to_string()));
        assert!(names.contains(&"b".to_string()));
    }

    #[test]
    fn static_profile_counts() {
        let b = body_of("void f(double a[4], double b[4]) { b[0] = a[0] * a[1] + a[2] / a[3]; }");
        let p = static_profile(&b);
        assert_eq!(p.loads, 4);
        assert_eq!(p.stores, 1);
        assert_eq!(p.flops, 2); // * and +
        assert_eq!(p.divs, 1);
    }

    #[test]
    fn compound_assign_counts_extra_load() {
        let b = body_of("void f(double a[4]) { a[0] += 1.0; }");
        let p = static_profile(&b);
        assert_eq!(p.loads, 1);
        assert_eq!(p.stores, 1);
        assert_eq!(p.flops, 1);
    }
}
