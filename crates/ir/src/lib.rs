//! `accsat-ir` — the source-level intermediate representation for ACC Saturator.
//!
//! The paper's tool parses OpenACC/OpenMP C sources through XcodeML; this
//! crate provides the equivalent substrate: a C-subset abstract syntax tree
//! with `#pragma acc` / `#pragma omp` directive attachments, a hand-written
//! lexer and recursive-descent parser, a pretty-printer that regenerates
//! compilable C, and traversal utilities used by the SSA builder and the
//! compiler models.
//!
//! The subset covers everything the optimizer touches: scalar and array
//! declarations, assignments (including compound assignments), `if`/`else`,
//! `for` and `while` loops, function calls, ternary expressions, and
//! multi-dimensional array references — i.e. the sequential bodies of
//! innermost parallel loops that ACC Saturator rewrites.

pub mod ast;
pub mod directive;
pub mod fingerprint;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod visit;

pub use ast::{AssignOp, BinOp, Block, Expr, Function, LValue, Param, Program, Stmt, Type, UnOp};
pub use directive::{Clause, Directive, DirectiveKind, Model};
pub use fingerprint::{fingerprint_block, fingerprint_function, fnv1a, fnv1a_mix};
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_expr, parse_program, ParseError};
pub use printer::{print_block_string, print_expr, print_program, print_stmt};
pub use visit::{walk_expr, walk_stmt, ExprVisitor};

/// Identifier type used throughout the IR. Kernel sources are small, so a
/// plain `String` keeps the API simple; hot paths intern on their own side.
pub type Ident = String;

/// Locate every innermost parallel loop in a function body.
///
/// ACC Saturator creates one e-graph per innermost *parallel* loop
/// (paper §IV-A): the deepest directive-annotated loop such that no loop in
/// its body carries another parallelism directive. Sequential `for` loops
/// inside the body are part of the optimized region (they become φ nodes).
pub fn innermost_parallel_loops(f: &Function) -> Vec<&ast::ForLoop> {
    let mut out = Vec::new();
    collect_innermost(&f.body, &mut out);
    out
}

fn collect_innermost<'a>(block: &'a Block, out: &mut Vec<&'a ast::ForLoop>) {
    for stmt in &block.stmts {
        match stmt {
            Stmt::For(l) => {
                if l.directive.is_some() {
                    if has_directive_loop(&l.body) {
                        collect_innermost(&l.body, out);
                    } else {
                        out.push(l);
                    }
                } else {
                    collect_innermost(&l.body, out);
                }
            }
            Stmt::If { then, els, .. } => {
                collect_innermost(then, out);
                if let Some(e) = els {
                    collect_innermost(e, out);
                }
            }
            Stmt::While { body, .. } => collect_innermost(body, out),
            Stmt::Block(b) => collect_innermost(b, out),
            _ => {}
        }
    }
}

/// Mutable variant of [`innermost_parallel_loops`]: the same loops, in the
/// same program order, borrowed mutably. The autotuner uses this to splice
/// a tuned candidate body back into a cloned function.
pub fn innermost_parallel_loops_mut(f: &mut Function) -> Vec<&mut ast::ForLoop> {
    let mut out = Vec::new();
    collect_innermost_mut(&mut f.body, &mut out);
    out
}

fn collect_innermost_mut<'a>(block: &'a mut Block, out: &mut Vec<&'a mut ast::ForLoop>) {
    for stmt in &mut block.stmts {
        match stmt {
            Stmt::For(l) => {
                if l.directive.is_some() {
                    if has_directive_loop(&l.body) {
                        collect_innermost_mut(&mut l.body, out);
                    } else {
                        out.push(l);
                    }
                } else {
                    collect_innermost_mut(&mut l.body, out);
                }
            }
            Stmt::If { then, els, .. } => {
                collect_innermost_mut(then, out);
                if let Some(e) = els {
                    collect_innermost_mut(e, out);
                }
            }
            Stmt::While { body, .. } => collect_innermost_mut(body, out),
            Stmt::Block(b) => collect_innermost_mut(b, out),
            _ => {}
        }
    }
}

/// Does the block contain a loop that carries a parallelism directive?
pub fn has_directive_loop(block: &Block) -> bool {
    block.stmts.iter().any(|s| match s {
        Stmt::For(l) => l.directive.is_some() || has_directive_loop(&l.body),
        Stmt::If { then, els, .. } => {
            has_directive_loop(then) || els.as_ref().is_some_and(has_directive_loop)
        }
        Stmt::While { body, .. } => has_directive_loop(body),
        Stmt::Block(b) => has_directive_loop(b),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn innermost_detection_matmul() {
        let src = r#"
void matmul(double a[512][512], double b[512][512], double c[512][512],
            double r[512][512], double alpha, double beta) {
  #pragma acc kernels loop independent
  for (int i = 0; i < 512; i++) {
    #pragma acc loop independent gang(16) vector(256)
    for (int j = 0; j < 512; j++) {
      double tmp = 0.0;
      for (int l = 0; l < 512; l++) {
        tmp = tmp + a[i][l] * b[l][j];
      }
      r[i][j] = alpha * tmp + beta * c[i][j];
    }
  }
}
"#;
        let prog = parse_program(src).expect("parse");
        let loops = innermost_parallel_loops(&prog.functions[0]);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].var, "j");
        // the sequential l-loop stays inside the optimized region
        assert!(loops[0]
            .body
            .stmts
            .iter()
            .any(|s| matches!(s, Stmt::For(l) if l.var == "l" && l.directive.is_none())));
    }

    #[test]
    fn innermost_detection_single_loop() {
        let src = r#"
void axpy(double x[1024], double y[1024], double a) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 1024; i++) {
    y[i] = a * x[i] + y[i];
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let loops = innermost_parallel_loops(&prog.functions[0]);
        assert_eq!(loops.len(), 1);
        assert_eq!(loops[0].var, "i");
    }
}
