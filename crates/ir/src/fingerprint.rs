//! Content hashing of kernels for the content-addressed stage cache.
//!
//! The hash is FNV-1a over the *canonical printed form* of the IR, not
//! over source bytes: parsing strips comments and normalizes whitespace,
//! so a kernel whose source changed only cosmetically fingerprints the
//! same and reuses every cached stage. (The service additionally keys a
//! cheap `parsed` level on raw source bytes; that one intentionally
//! misses on comment edits, and the kernel-level hash here is what still
//! hits.)
//!
//! FNV-1a is the same hash family `Selection::content_hash` already uses —
//! not cryptographic, which is fine: keys come from trusted local input,
//! and a collision costs a wrong cache hit under an astronomically
//! unlikely 64-bit coincidence, the accepted trade everywhere else in the
//! repo's content-addressed plumbing.

use crate::ast::{Block, Function};
use crate::printer::{print_block_string, print_function};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte string.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Mix an additional 64-bit word into an FNV-1a hash (little-endian bytes,
/// so the result is platform-independent).
pub fn fnv1a_mix(mut h: u64, word: u64) -> u64 {
    for b in word.to_le_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content hash of a kernel body: FNV-1a over its canonical printed form.
pub fn fingerprint_block(b: &Block) -> u64 {
    fnv1a(print_block_string(b).as_bytes())
}

/// Content hash of a whole function (signature + body, canonical form).
pub fn fingerprint_function(f: &Function) -> u64 {
    let mut out = String::new();
    print_function(f, &mut out);
    fnv1a(out.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    const KERNEL: &str = r#"
void k(double a[16], double out[16], double c0) {
  #pragma acc parallel loop gang vector
  for (int i = 1; i < 15; i++) {
    out[i] = a[i] * c0 + a[i - 1];
  }
}
"#;

    #[test]
    fn comment_and_whitespace_edits_do_not_change_the_fingerprint() {
        let edited = KERNEL
            .replace("out[i] =", "/* cost-irrelevant comment */ out[i]   =")
            .replace("double c0", "double   c0");
        let a = parse_program(KERNEL).unwrap();
        let b = parse_program(&edited).unwrap();
        assert_eq!(
            fingerprint_function(&a.functions[0]),
            fingerprint_function(&b.functions[0]),
            "cosmetic edits must fingerprint identically"
        );
        assert_eq!(
            fingerprint_block(&a.functions[0].body),
            fingerprint_block(&b.functions[0].body)
        );
    }

    #[test]
    fn semantic_edits_change_the_fingerprint() {
        let changed = KERNEL.replace("a[i - 1]", "a[i + 1]");
        let a = parse_program(KERNEL).unwrap();
        let b = parse_program(&changed).unwrap();
        assert_ne!(
            fingerprint_block(&a.functions[0].body),
            fingerprint_block(&b.functions[0].body),
            "a real edit must change the hash"
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x85944171f73967e8);
        assert_ne!(fnv1a_mix(fnv1a(b"x"), 1), fnv1a_mix(fnv1a(b"x"), 2));
    }
}
