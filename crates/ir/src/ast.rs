//! Abstract syntax tree for the C subset ACC Saturator optimizes.

use crate::directive::Directive;
use crate::Ident;

/// Scalar and array types of the C subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// `int` (also used for `long`, which the optimizer treats identically).
    Int,
    /// `float` — single precision.
    Float,
    /// `double` — the dominant type in the HPC kernels of the evaluation.
    Double,
    /// `void` — function return type only.
    Void,
}

impl Type {
    /// Is this a floating-point type?
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float | Type::Double)
    }

    /// C spelling of this type.
    pub fn c_name(&self) -> &'static str {
        match self {
            Type::Int => "int",
            Type::Float => "float",
            Type::Double => "double",
            Type::Void => "void",
        }
    }
}

/// Binary operators. Comparison and logical operators appear in loop and
/// branch conditions; arithmetic operators in kernel bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// C spelling of the operator.
    pub fn c_name(&self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }

    /// Does this operator produce a boolean (0/1) result in C?
    pub fn is_comparison(&self) -> bool {
        matches!(self, BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!x`.
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Floating literal (parsed as `f64`).
    Float(f64),
    /// Scalar variable reference.
    Var(Ident),
    /// Multi-dimensional array reference `base[i0][i1]…`.
    Index { base: Ident, indices: Vec<Expr> },
    /// Unary operation.
    Unary { op: UnOp, operand: Box<Expr> },
    /// Binary operation.
    Binary { op: BinOp, lhs: Box<Expr>, rhs: Box<Expr> },
    /// Function call, e.g. `sqrt(x)`.
    Call { name: Ident, args: Vec<Expr> },
    /// Ternary conditional `c ? t : e`.
    Ternary { cond: Box<Expr>, then: Box<Expr>, els: Box<Expr> },
    /// C cast `(double)x` — kept for fidelity; the optimizer treats it as a
    /// unit-cost conversion.
    Cast { ty: Type, expr: Box<Expr> },
}

impl Expr {
    /// Convenience constructor for binary expressions.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) }
    }

    /// Convenience constructor for `-x`.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(e: Expr) -> Expr {
        Expr::Unary { op: UnOp::Neg, operand: Box::new(e) }
    }

    /// Convenience constructor for a variable reference.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }

    /// Number of nodes in this expression tree (used in size heuristics and
    /// tests).
    pub fn size(&self) -> usize {
        match self {
            Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => 1,
            Expr::Index { indices, .. } => 1 + indices.iter().map(Expr::size).sum::<usize>(),
            Expr::Unary { operand, .. } => 1 + operand.size(),
            Expr::Binary { lhs, rhs, .. } => 1 + lhs.size() + rhs.size(),
            Expr::Call { args, .. } => 1 + args.iter().map(Expr::size).sum::<usize>(),
            Expr::Ternary { cond, then, els } => 1 + cond.size() + then.size() + els.size(),
            Expr::Cast { expr, .. } => 1 + expr.size(),
        }
    }
}

/// Assignment targets: either a scalar or an array element.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Scalar assignment target.
    Var(Ident),
    /// Array element assignment target.
    Index { base: Ident, indices: Vec<Expr> },
}

impl LValue {
    /// Name of the variable or array being assigned.
    pub fn base(&self) -> &str {
        match self {
            LValue::Var(n) => n,
            LValue::Index { base, .. } => base,
        }
    }
}

/// Assignment operators. Compound assignments are desugared by the SSA
/// builder (`a += b` behaves as `a = a + b`) but preserved in the AST so the
/// printer can round-trip user code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignOp {
    Assign,
    AddAssign,
    SubAssign,
    MulAssign,
    DivAssign,
}

impl AssignOp {
    /// The binary operator a compound assignment desugars to.
    pub fn binop(&self) -> Option<BinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::AddAssign => Some(BinOp::Add),
            AssignOp::SubAssign => Some(BinOp::Sub),
            AssignOp::MulAssign => Some(BinOp::Mul),
            AssignOp::DivAssign => Some(BinOp::Div),
        }
    }

    /// C spelling.
    pub fn c_name(&self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
            AssignOp::DivAssign => "/=",
        }
    }
}

/// A `for` loop, possibly carrying an OpenACC/OpenMP directive.
///
/// Loops are normalized to the canonical `for (init; cond; step)` shape with
/// a single induction variable, matching the loops that directive-based GPU
/// codes offload.
#[derive(Debug, Clone, PartialEq)]
pub struct ForLoop {
    /// Induction variable name.
    pub var: Ident,
    /// Whether the loop declares its induction variable (`for (int i = …`).
    pub declares_var: bool,
    /// Initial value expression.
    pub init: Expr,
    /// Loop condition (evaluated before each iteration).
    pub cond: Expr,
    /// Step expression: the value added to `var` each iteration
    /// (`i++` ⇒ `1`, `i += 4` ⇒ `4`).
    pub step: Expr,
    /// Loop body.
    pub body: Block,
    /// Attached parallelism directive, if any.
    pub directive: Option<Directive>,
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Scalar declaration with optional initializer.
    Decl { ty: Type, name: Ident, init: Option<Expr> },
    /// Assignment (simple or compound).
    Assign { lhs: LValue, op: AssignOp, rhs: Expr },
    /// `if`/`else`.
    If { cond: Expr, then: Block, els: Option<Block> },
    /// `for` loop.
    For(ForLoop),
    /// `while` loop (rare in kernels; not rewritten, only round-tripped).
    While { cond: Expr, body: Block },
    /// Nested block.
    Block(Block),
    /// Expression statement (function call for effect).
    Expr(Expr),
    /// `return;` or `return e;`.
    Return(Option<Expr>),
}

/// A brace-delimited statement sequence.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

impl Block {
    /// Create a block from statements.
    pub fn new(stmts: Vec<Stmt>) -> Block {
        Block { stmts }
    }

    /// Total number of statements in this block, recursively.
    pub fn stmt_count(&self) -> usize {
        self.stmts
            .iter()
            .map(|s| match s {
                Stmt::If { then, els, .. } => {
                    1 + then.stmt_count() + els.as_ref().map_or(0, Block::stmt_count)
                }
                Stmt::For(l) => 1 + l.body.stmt_count(),
                Stmt::While { body, .. } => 1 + body.stmt_count(),
                Stmt::Block(b) => b.stmt_count(),
                _ => 1,
            })
            .sum()
    }
}

/// A function parameter. Array parameters carry their declared dimensions so
/// the interpreter and simulator can allocate and bound-check storage.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    pub name: Ident,
    pub ty: Type,
    /// Empty for scalars; `[d0, d1, …]` for array parameters.
    pub dims: Vec<usize>,
}

impl Param {
    /// Scalar parameter constructor.
    pub fn scalar(name: &str, ty: Type) -> Param {
        Param { name: name.to_string(), ty, dims: Vec::new() }
    }

    /// Array parameter constructor.
    pub fn array(name: &str, ty: Type, dims: &[usize]) -> Param {
        Param { name: name.to_string(), ty, dims: dims.to_vec() }
    }

    /// Is this parameter an array?
    pub fn is_array(&self) -> bool {
        !self.dims.is_empty()
    }

    /// Total number of elements of an array parameter (1 for scalars).
    pub fn len(&self) -> usize {
        self.dims.iter().product::<usize>().max(1)
    }

    /// True if an array parameter has a zero-sized dimension.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    pub name: Ident,
    pub ret: Type,
    pub params: Vec<Param>,
    pub body: Block,
}

/// A translation unit: an ordered list of function definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub functions: Vec<Function>,
}

impl Program {
    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_size_counts_nodes() {
        // a[i] + 2.0 * b  has nodes: +, a[i], i, *, 2.0, b  = 6
        let e = Expr::bin(
            BinOp::Add,
            Expr::Index { base: "a".into(), indices: vec![Expr::var("i")] },
            Expr::bin(BinOp::Mul, Expr::Float(2.0), Expr::var("b")),
        );
        assert_eq!(e.size(), 6);
    }

    #[test]
    fn compound_assign_desugars() {
        assert_eq!(AssignOp::AddAssign.binop(), Some(BinOp::Add));
        assert_eq!(AssignOp::Assign.binop(), None);
    }

    #[test]
    fn block_stmt_count_recurses() {
        let inner = Block::new(vec![
            Stmt::Assign { lhs: LValue::Var("x".into()), op: AssignOp::Assign, rhs: Expr::Int(1) },
            Stmt::Assign { lhs: LValue::Var("y".into()), op: AssignOp::Assign, rhs: Expr::Int(2) },
        ]);
        let b = Block::new(vec![Stmt::If { cond: Expr::var("c"), then: inner, els: None }]);
        assert_eq!(b.stmt_count(), 3);
    }

    #[test]
    fn param_helpers() {
        let p = Param::array("a", Type::Double, &[4, 8]);
        assert!(p.is_array());
        assert_eq!(p.len(), 32);
        let s = Param::scalar("x", Type::Int);
        assert!(!s.is_array());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn type_properties() {
        assert!(Type::Double.is_float());
        assert!(!Type::Int.is_float());
        assert_eq!(Type::Float.c_name(), "float");
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Le.is_comparison());
        assert!(!BinOp::Add.is_comparison());
    }
}
