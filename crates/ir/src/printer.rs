//! C pretty-printer: regenerates compilable C (with the original pragmas)
//! from the AST. ACC Saturator's output "is compatible with NVHPC, GCC and
//! Clang" (paper §III) — the printer is what makes the optimized AST a valid
//! drop-in replacement for the user's source.

use crate::ast::*;
use std::fmt::Write;

/// Print a whole translation unit.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, f) in p.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        print_function(f, &mut out);
    }
    out
}

/// Print a single function definition.
pub fn print_function(f: &Function, out: &mut String) {
    write!(out, "{} {}(", f.ret.c_name(), f.name).unwrap();
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "{} {}", p.ty.c_name(), p.name).unwrap();
        for d in &p.dims {
            if *d == 0 {
                out.push_str("[]");
            } else {
                write!(out, "[{d}]").unwrap();
            }
        }
    }
    out.push_str(") ");
    print_block(&f.body, 0, out);
    out.push('\n');
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Print a block (braces included) at indentation level 0.
///
/// This is the *canonical form* the stage cache hashes: comments and
/// incidental whitespace are gone after parsing, so two sources differing
/// only cosmetically print — and therefore hash — identically.
pub fn print_block_string(b: &Block) -> String {
    let mut out = String::new();
    print_block(b, 0, &mut out);
    out
}

fn print_block(b: &Block, level: usize, out: &mut String) {
    out.push_str("{\n");
    for s in &b.stmts {
        print_stmt_indented(s, level + 1, out);
    }
    indent(level, out);
    out.push('}');
}

/// Print a statement at indentation level 0 (for tests and snippets).
pub fn print_stmt(s: &Stmt) -> String {
    let mut out = String::new();
    print_stmt_indented(s, 0, &mut out);
    out
}

fn print_stmt_indented(s: &Stmt, level: usize, out: &mut String) {
    match s {
        Stmt::Decl { ty, name, init } => {
            indent(level, out);
            write!(out, "{} {name}", ty.c_name()).unwrap();
            if let Some(e) = init {
                write!(out, " = {}", print_expr(e)).unwrap();
            }
            out.push_str(";\n");
        }
        Stmt::Assign { lhs, op, rhs } => {
            indent(level, out);
            let lhs_s = match lhs {
                LValue::Var(n) => n.clone(),
                LValue::Index { base, indices } => {
                    let mut s = base.clone();
                    for i in indices {
                        write!(s, "[{}]", print_expr(i)).unwrap();
                    }
                    s
                }
            };
            writeln!(out, "{lhs_s} {} {};", op.c_name(), print_expr(rhs)).unwrap();
        }
        Stmt::If { cond, then, els } => {
            indent(level, out);
            write!(out, "if ({}) ", print_expr(cond)).unwrap();
            print_block(then, level, out);
            if let Some(e) = els {
                out.push_str(" else ");
                print_block(e, level, out);
            }
            out.push('\n');
        }
        Stmt::For(l) => {
            if let Some(d) = &l.directive {
                indent(level, out);
                writeln!(out, "#pragma {}", d.render()).unwrap();
            }
            indent(level, out);
            let decl = if l.declares_var { "int " } else { "" };
            let step = match &l.step {
                Expr::Int(1) => format!("{}++", l.var),
                Expr::Int(-1) => format!("{}--", l.var),
                e => format!("{} += {}", l.var, print_expr(e)),
            };
            write!(
                out,
                "for ({decl}{} = {}; {}; {step}) ",
                l.var,
                print_expr(&l.init),
                print_expr(&l.cond)
            )
            .unwrap();
            print_block(&l.body, level, out);
            out.push('\n');
        }
        Stmt::While { cond, body } => {
            indent(level, out);
            write!(out, "while ({}) ", print_expr(cond)).unwrap();
            print_block(body, level, out);
            out.push('\n');
        }
        Stmt::Block(b) => {
            indent(level, out);
            print_block(b, level, out);
            out.push('\n');
        }
        Stmt::Expr(e) => {
            indent(level, out);
            writeln!(out, "{};", print_expr(e)).unwrap();
        }
        Stmt::Return(e) => {
            indent(level, out);
            match e {
                Some(e) => writeln!(out, "return {};", print_expr(e)).unwrap(),
                None => out.push_str("return;\n"),
            }
        }
    }
}

/// Print an expression with minimal but safe parenthesization.
pub fn print_expr(e: &Expr) -> String {
    print_prec(e, 0)
}

fn prec(e: &Expr) -> u8 {
    match e {
        Expr::Ternary { .. } => 1,
        Expr::Binary { op, .. } => match op {
            BinOp::Or => 2,
            BinOp::And => 3,
            BinOp::Eq | BinOp::Ne => 4,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => 5,
            BinOp::Add | BinOp::Sub => 6,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 7,
        },
        Expr::Unary { .. } | Expr::Cast { .. } => 8,
        _ => 9,
    }
}

fn print_prec(e: &Expr, min: u8) -> String {
    let p = prec(e);
    let s = match e {
        Expr::Int(v) => format!("{v}"),
        Expr::Float(v) => {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                format!("{v:.1}")
            } else {
                format!("{v}")
            }
        }
        Expr::Var(n) => n.clone(),
        Expr::Index { base, indices } => {
            let mut s = base.clone();
            for i in indices {
                write!(s, "[{}]", print_prec(i, 0)).unwrap();
            }
            s
        }
        Expr::Unary { op, operand } => {
            let inner = print_prec(operand, p + 1);
            match op {
                UnOp::Neg => format!("-{inner}"),
                UnOp::Not => format!("!{inner}"),
            }
        }
        Expr::Binary { op, lhs, rhs } => {
            // left-associative: rhs needs strictly higher precedence
            format!("{} {} {}", print_prec(lhs, p), op.c_name(), print_prec(rhs, p + 1))
        }
        Expr::Call { name, args } => {
            let args: Vec<_> = args.iter().map(|a| print_prec(a, 0)).collect();
            format!("{name}({})", args.join(", "))
        }
        Expr::Ternary { cond, then, els } => {
            format!(
                "{} ? {} : {}",
                print_prec(cond, p + 1),
                print_prec(then, 0),
                print_prec(els, p)
            )
        }
        Expr::Cast { ty, expr } => format!("({}){}", ty.c_name(), print_prec(expr, p)),
    };
    if p < min {
        format!("({s})")
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    /// Round-trip: parse → print → parse must be a fixpoint on the AST.
    fn roundtrip_expr(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let printed = print_expr(&e1);
        let e2 = parse_expr(&printed).unwrap_or_else(|err| {
            panic!("reparse of `{printed}` failed: {err}");
        });
        assert_eq!(e1, e2, "round-trip mismatch: `{src}` → `{printed}`");
    }

    #[test]
    fn expr_roundtrips() {
        for src in [
            "a + b * c",
            "(a + b) * c",
            "a - (b - c)",
            "a / b / c",
            "-a * -b",
            "a[i][j] + b[j][i]",
            "f(x, y + 1)",
            "a < b ? a : b",
            "x % 4 == 0 && y != 2",
            "alpha * tmp + beta * c[i][j]",
            "-(a + b)",
            "(double)n / 2.0",
        ] {
            roundtrip_expr(src);
        }
    }

    #[test]
    fn program_roundtrips() {
        let src = r#"
void k(double a[16][16], double b[16][16], int n) {
  #pragma acc parallel loop gang num_gangs(8) vector_length(32)
  for (int i = 0; i < n; i++) {
    #pragma acc loop vector
    for (int j = 0; j < n; j++) {
      double t = a[i][j];
      if (t < 0.0) {
        t = -t;
      }
      b[i][j] = t * 2.0 + 1.0;
    }
  }
}
"#;
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed).unwrap();
        assert_eq!(p1, p2, "program round-trip failed:\n{printed}");
        assert!(printed.contains("#pragma acc parallel loop gang num_gangs(8)"));
    }

    #[test]
    fn negative_step_prints() {
        let src = "void f() { for (int i = 10; i > 0; i--) { } }";
        let p = parse_program(src).unwrap();
        let printed = print_program(&p);
        assert!(printed.contains("i--"), "{printed}");
    }

    #[test]
    fn float_formatting_stays_float() {
        // 2.0 must not print as `2` (integer division hazards in C)
        let e = parse_expr("x / 2.0").unwrap();
        assert_eq!(print_expr(&e), "x / 2.0");
    }
}
