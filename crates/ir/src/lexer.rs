//! Hand-written lexer for the C subset.
//!
//! Pragma lines (`#pragma …`) are lexed as single [`TokenKind::Pragma`]
//! tokens carrying the raw directive text; the parser re-lexes the clause
//! list. Line (`//`) and block (`/* */`) comments are skipped. Backslash
//! line-continuations inside pragmas are honoured, matching how the NPB
//! sources spell long directives.

use std::fmt;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// A full `#pragma` line (without the leading `#pragma`).
    Pragma(String),
    /// Punctuation / operator, e.g. `+`, `<=`, `+=`, `(`, `{`.
    Punct(&'static str),
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Int(v) => write!(f, "integer `{v}`"),
            TokenKind::Float(v) => write!(f, "float `{v}`"),
            TokenKind::Pragma(p) => write!(f, "#pragma {p}"),
            TokenKind::Punct(p) => write!(f, "`{p}`"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source line (1-based) for error reporting.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
}

/// The lexer. Construct with [`Lexer::new`] and drain with
/// [`Lexer::tokenize`].
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

/// Multi-character punctuation, longest first so maximal munch works.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "++", "--", "+=", "-=", "*=", "/=",
    "%=", "->", "<<", ">>", "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~", "?",
    ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
];

impl<'a> Lexer<'a> {
    /// Create a lexer over `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src: src.as_bytes(), pos: 0, line: 1 }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match (self.peek(), self.peek2()) {
                (Some(c), _) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                (Some(b'/'), Some(b'/')) => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                (Some(b'/'), Some(b'*')) => {
                    self.bump();
                    self.bump();
                    loop {
                        match (self.peek(), self.peek2()) {
                            (Some(b'*'), Some(b'/')) => {
                                self.bump();
                                self.bump();
                                break;
                            }
                            (None, _) => break,
                            _ => {
                                self.bump();
                            }
                        }
                    }
                }
                _ => break,
            }
        }
    }

    fn lex_pragma(&mut self) -> Token {
        let line = self.line;
        // consume `#`
        self.bump();
        let mut text = String::new();
        // read to end of line, honouring backslash continuations
        loop {
            match self.peek() {
                None | Some(b'\n') => break,
                Some(b'\\') => {
                    // continuation: skip backslash + newline, keep lexing
                    self.bump();
                    while matches!(self.peek(), Some(b'\r')) {
                        self.bump();
                    }
                    if matches!(self.peek(), Some(b'\n')) {
                        self.bump();
                        text.push(' ');
                    } else {
                        text.push('\\');
                    }
                }
                Some(c) => {
                    text.push(c as char);
                    self.bump();
                }
            }
        }
        // strip leading "pragma"
        let trimmed = text.trim_start();
        let body = trimmed.strip_prefix("pragma").unwrap_or(trimmed).trim().to_string();
        Token { kind: TokenKind::Pragma(body), line }
    }

    fn lex_number(&mut self) -> Token {
        let line = self.line;
        let start = self.pos;
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => {
                    self.bump();
                }
                b'.' => {
                    // avoid consuming `..` (not in subset, but be safe)
                    is_float = true;
                    self.bump();
                }
                b'e' | b'E' => {
                    is_float = true;
                    self.bump();
                    if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                        self.bump();
                    }
                }
                b'x' | b'X' if self.pos == start + 1 && self.src[start] == b'0' => {
                    // hex literal
                    self.bump();
                    while matches!(self.peek(), Some(c) if c.is_ascii_hexdigit()) {
                        self.bump();
                    }
                    let text = std::str::from_utf8(&self.src[start + 2..self.pos]).unwrap();
                    let v = i64::from_str_radix(text, 16).unwrap_or(0);
                    return Token { kind: TokenKind::Int(v), line };
                }
                _ => break,
            }
        }
        // suffixes: f F l L u U
        let text_end = self.pos;
        while matches!(self.peek(), Some(b'f' | b'F' | b'l' | b'L' | b'u' | b'U')) {
            if matches!(self.peek(), Some(b'f' | b'F')) {
                is_float = true;
            }
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..text_end]).unwrap();
        let kind = if is_float {
            TokenKind::Float(text.parse::<f64>().unwrap_or(0.0))
        } else {
            TokenKind::Int(text.parse::<i64>().unwrap_or(0))
        };
        Token { kind, line }
    }

    fn lex_ident(&mut self) -> Token {
        let line = self.line;
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap().to_string();
        Token { kind: TokenKind::Ident(text), line }
    }

    fn lex_punct(&mut self) -> Option<Token> {
        let line = self.line;
        let rest = &self.src[self.pos..];
        for p in PUNCTS {
            if rest.starts_with(p.as_bytes()) {
                for _ in 0..p.len() {
                    self.bump();
                }
                return Some(Token { kind: TokenKind::Punct(p), line });
            }
        }
        None
    }

    /// Produce the next token.
    pub fn next_token(&mut self) -> Token {
        self.skip_trivia();
        let line = self.line;
        match self.peek() {
            None => Token { kind: TokenKind::Eof, line },
            Some(b'#') => self.lex_pragma(),
            Some(c) if c.is_ascii_digit() => self.lex_number(),
            Some(b'.') if matches!(self.peek2(), Some(d) if d.is_ascii_digit()) => {
                self.lex_number()
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.lex_ident(),
            Some(_) => self.lex_punct().unwrap_or_else(|| {
                // skip unknown byte rather than looping forever
                self.bump();
                Token { kind: TokenKind::Punct("?"), line }
            }),
        }
    }

    /// Lex the entire input into a token vector terminated by `Eof`.
    pub fn tokenize(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        loop {
            let t = self.next_token();
            let done = t.kind == TokenKind::Eof;
            out.push(t);
            if done {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src).tokenize().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        let ks = kinds("int x = 42;");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("int".into()),
                TokenKind::Ident("x".into()),
                TokenKind::Punct("="),
                TokenKind::Int(42),
                TokenKind::Punct(";"),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn float_literals() {
        assert_eq!(kinds("0.5")[0], TokenKind::Float(0.5));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5e-2")[0], TokenKind::Float(0.025));
        assert_eq!(kinds("0.f")[0], TokenKind::Float(0.0));
        assert_eq!(kinds("1.0e+1")[0], TokenKind::Float(10.0));
    }

    #[test]
    fn hex_and_suffixes() {
        assert_eq!(kinds("0x10")[0], TokenKind::Int(16));
        assert_eq!(kinds("7L")[0], TokenKind::Int(7));
        assert_eq!(kinds("3u")[0], TokenKind::Int(3));
    }

    #[test]
    fn pragma_single_line() {
        let ks = kinds("#pragma acc parallel loop gang\nint x;");
        assert_eq!(ks[0], TokenKind::Pragma("acc parallel loop gang".into()));
        assert_eq!(ks[1], TokenKind::Ident("int".into()));
    }

    #[test]
    fn pragma_continuation() {
        let src = "#pragma acc parallel loop gang num_gangs(63)\\\n  num_workers(4)\nx;";
        let ks = kinds(src);
        match &ks[0] {
            TokenKind::Pragma(p) => {
                assert!(p.contains("num_gangs(63)"));
                assert!(p.contains("num_workers(4)"));
            }
            other => panic!("expected pragma, got {other:?}"),
        }
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("a /* block */ b // line\nc");
        assert_eq!(
            ks,
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn maximal_munch_operators() {
        let ks = kinds("a<=b ==c+=1");
        assert_eq!(ks[1], TokenKind::Punct("<="));
        assert_eq!(ks[3], TokenKind::Punct("=="));
        assert_eq!(ks[5], TokenKind::Punct("+="));
    }

    #[test]
    fn line_numbers_advance() {
        let toks = Lexer::new("a\nb\n\nc").tokenize();
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
        assert_eq!(toks[2].line, 4);
    }

    /// Render a token stream back to lexable text. Floats use Rust's `{:?}`,
    /// which always includes a decimal point or exponent, so they re-lex as
    /// floats; pragmas get their own line.
    fn render(tokens: &[Token]) -> String {
        let mut out = String::new();
        for t in tokens {
            match &t.kind {
                TokenKind::Ident(s) => {
                    out.push_str(s);
                    out.push(' ');
                }
                TokenKind::Int(v) => {
                    assert!(*v >= 0, "lexer never produces negative literals");
                    out.push_str(&v.to_string());
                    out.push(' ');
                }
                TokenKind::Float(v) => {
                    out.push_str(&format!("{v:?} "));
                }
                TokenKind::Pragma(p) => {
                    out.push_str(&format!("\n#pragma {p}\n"));
                }
                TokenKind::Punct(p) => {
                    out.push_str(p);
                    out.push(' ');
                }
                TokenKind::Eof => {}
            }
        }
        out
    }

    fn assert_token_roundtrip(src: &str) {
        let original = Lexer::new(src).tokenize();
        let rendered = render(&original);
        let relexed = Lexer::new(&rendered).tokenize();
        let ks = |ts: &[Token]| ts.iter().map(|t| t.kind.clone()).collect::<Vec<_>>();
        assert_eq!(
            ks(&original),
            ks(&relexed),
            "token stream changed across render/relex\n--- rendered:\n{rendered}"
        );
    }

    #[test]
    fn roundtrip_pragma_heavy_kernel() {
        assert_token_roundtrip(
            "void z_solve(double lhs[64][64], double rhs[64], int nz) {\n\
             #pragma acc parallel loop gang num_gangs(63) num_workers(4) \\\n\
                 vector_length(32) present(lhs, rhs)\n\
             for (int k = 1; k < nz - 1; k++) {\n\
               #pragma acc loop vector reduction(+:sum)\n\
               for (int i = 0; i < 64; i++) {\n\
                 lhs[k][i] = lhs[k][i] - rhs[i] * 0.5 + 1e-6;\n\
               }\n\
             }\n\
             #pragma omp target teams distribute\n\
             for (int j = 0; j < 64; j++) { rhs[j] = 0.0; }\n\
             }\n",
        );
    }

    #[test]
    fn roundtrip_operator_soup() {
        assert_token_roundtrip(
            "a += b * c / d % e; x <<= 2; y >>= 1; p = q == r != s <= t >= u && v || !w;\n\
             n++; m--; f = g ? h : i; arr[j] = *ptr + (k & l | m ^ 0x1f) << 3 >> 1;",
        );
    }

    #[test]
    fn roundtrip_numeric_edge_cases() {
        assert_token_roundtrip("0 1 42 0x0 0xff 3u 7L 0.5 .5 1. 1e3 2.5e-2 1.0e+1 0.f 6.25e-4");
    }

    #[test]
    fn roundtrip_every_benchmark_pragma_shape() {
        // The pragma spellings the benchmark suites actually use, including
        // continuations and clause lists with nested parens.
        for pragma in [
            "acc parallel loop gang vector_length(128)",
            "acc kernels loop independent",
            "acc loop worker(4) vector(32)",
            "acc parallel loop reduction(+:norm) present(a, b)",
            "omp target teams distribute num_teams(120)",
            "omp parallel for simd reduction(max:err)",
        ] {
            assert_token_roundtrip(&format!(
                "#pragma {pragma}\nfor (int i = 0; i < n; i++) x[i] = 0;"
            ));
        }
    }
}
