//! Trace-file validation: a dependency-free JSON parser plus structural
//! checks over Chrome trace events, used by the `accsat trace-check`
//! subcommand and by CI's trace smoke step.
//!
//! The checks are structural, not temporal-semantic: the file must parse
//! as JSON, expose a `traceEvents` array, every event must carry the
//! required fields for its phase, and within each thread the recorded
//! complete spans (`"ph":"X"`) must be properly nested — any two spans on
//! one thread are either disjoint or one contains the other. That is
//! exactly the invariant the RAII [`crate::trace::Span`] guard guarantees
//! by construction, so a violation means a corrupted or hand-edited file.

use std::collections::BTreeMap;

/// Summary of a validated trace file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Total number of trace events.
    pub events: usize,
    /// Number of complete spans (`"ph":"X"`).
    pub spans: usize,
    /// Number of instant events (`"ph":"i"`).
    pub instants: usize,
    /// Number of counter samples (`"ph":"C"`).
    pub counters: usize,
    /// Number of distinct thread ids seen.
    pub threads: usize,
    /// Maximum span end timestamp in microseconds (0 when no spans).
    pub span_end_us: u64,
    /// Distinct categories seen, sorted.
    pub categories: Vec<String>,
}

/// A minimal JSON value — just enough to hold a Chrome trace file.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number, kept as f64.
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is irrelevant for validation.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parse a JSON document. Rejects trailing garbage.
pub fn parse_json(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                        // surrogate pairs are not emitted by our tracer;
                        // map lone surrogates to the replacement char
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 scalar
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {}", *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {}", *pos));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => {
                *pos += 1;
            }
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Validate a Chrome trace JSON document and summarise it.
///
/// Checks: the document parses, has a `traceEvents` array, every event has
/// `name`/`ph`/`ts`/`pid`/`tid` with a known phase, complete events carry
/// `dur`, and within each thread the complete spans are properly nested
/// (pairwise disjoint or contained).
pub fn validate_trace(src: &str) -> Result<TraceSummary, String> {
    let doc = parse_json(src)?;
    let events = doc.get("traceEvents").ok_or("missing traceEvents")?;
    let Json::Arr(events) = events else {
        return Err("traceEvents is not an array".to_string());
    };

    let mut summary = TraceSummary { events: events.len(), ..TraceSummary::default() };
    let mut cats: Vec<String> = Vec::new();
    // per-tid list of (start, end) for nesting checks
    let mut per_tid: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();

    for (i, e) in events.iter().enumerate() {
        let ph =
            e.get("ph").and_then(Json::as_str).ok_or_else(|| format!("event {i}: missing ph"))?;
        e.get("name").and_then(Json::as_str).ok_or_else(|| format!("event {i}: missing name"))?;
        let ts =
            e.get("ts").and_then(Json::as_u64).ok_or_else(|| format!("event {i}: missing ts"))?;
        e.get("pid").and_then(Json::as_u64).ok_or_else(|| format!("event {i}: missing pid"))?;
        let tid =
            e.get("tid").and_then(Json::as_u64).ok_or_else(|| format!("event {i}: missing tid"))?;
        if let Some(cat) = e.get("cat").and_then(Json::as_str) {
            if !cats.iter().any(|c| c == cat) {
                cats.push(cat.to_string());
            }
        }
        match ph {
            "X" => {
                let dur = e
                    .get("dur")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| format!("event {i}: complete event without dur"))?;
                summary.spans += 1;
                let end = ts.saturating_add(dur);
                summary.span_end_us = summary.span_end_us.max(end);
                per_tid.entry(tid).or_default().push((ts, end));
            }
            "i" => summary.instants += 1,
            "C" => summary.counters += 1,
            other => return Err(format!("event {i}: unknown phase {other:?}")),
        }
    }

    // collect distinct tids across all phases
    let mut tids: Vec<u64> = Vec::new();
    for e in events {
        if let Some(t) = e.get("tid").and_then(Json::as_u64) {
            if !tids.contains(&t) {
                tids.push(t);
            }
        }
    }
    summary.threads = tids.len();

    // nesting check: on each thread, sorted by (start, -len), every span
    // must nest inside the enclosing open span or start after it ends
    for (tid, spans) in per_tid.iter_mut() {
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64)> = Vec::new();
        for &(start, end) in spans.iter() {
            while let Some(&(_, open_end)) = stack.last() {
                if start >= open_end {
                    stack.pop();
                } else {
                    break;
                }
            }
            if let Some(&(_, open_end)) = stack.last() {
                if end > open_end {
                    return Err(format!(
                        "tid {tid}: span [{start},{end}) overlaps enclosing span ending at {open_end}"
                    ));
                }
            }
            stack.push((start, end));
        }
    }

    cats.sort();
    summary.categories = cats;
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_parser_round_trips_values() {
        let doc = parse_json(r#"{"a":[1,2.5,-3],"b":"x\n\"y\\","c":true,"d":null,"e":{},"u":"A"}"#)
            .unwrap();
        assert_eq!(
            doc.get("a"),
            Some(&Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-3.0)]))
        );
        assert_eq!(doc.get("b").and_then(Json::as_str), Some("x\n\"y\\"));
        assert_eq!(doc.get("c"), Some(&Json::Bool(true)));
        assert_eq!(doc.get("d"), Some(&Json::Null));
        assert_eq!(doc.get("u").and_then(Json::as_str), Some("A"));
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("{\"k\":}").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    fn ev(name: &str, ph: &str, ts: u64, dur: Option<u64>, tid: u64) -> String {
        let dur = dur.map(|d| format!(",\"dur\":{d}")).unwrap_or_default();
        format!(
            "{{\"name\":\"{name}\",\"cat\":\"t\",\"ph\":\"{ph}\",\"ts\":{ts},\"pid\":1,\"tid\":{tid}{dur}}}"
        )
    }

    #[test]
    fn validates_nested_spans() {
        let json = format!(
            "{{\"traceEvents\":[{},{},{},{}]}}",
            ev("outer", "X", 0, Some(100), 1),
            ev("inner", "X", 10, Some(20), 1),
            ev("sibling", "X", 40, Some(60), 1),
            ev("other-thread", "X", 5, Some(500), 2),
        );
        let s = validate_trace(&json).unwrap();
        assert_eq!(s.events, 4);
        assert_eq!(s.spans, 4);
        assert_eq!(s.threads, 2);
        assert_eq!(s.span_end_us, 505);
        assert_eq!(s.categories, vec!["t".to_string()]);
    }

    #[test]
    fn rejects_overlapping_spans_on_one_thread() {
        let json = format!(
            "{{\"traceEvents\":[{},{}]}}",
            ev("a", "X", 0, Some(50), 1),
            ev("b", "X", 25, Some(50), 1),
        );
        let err = validate_trace(&json).unwrap_err();
        assert!(err.contains("overlaps"), "got: {err}");
    }

    #[test]
    fn rejects_malformed_events() {
        assert!(validate_trace("{\"traceEvents\":{}}").is_err());
        assert!(validate_trace("{}").is_err());
        let no_dur = format!("{{\"traceEvents\":[{}]}}", ev("a", "X", 0, None, 1));
        assert!(validate_trace(&no_dur).unwrap_err().contains("without dur"));
        let bad_ph = format!("{{\"traceEvents\":[{}]}}", ev("a", "Z", 0, None, 1));
        assert!(validate_trace(&bad_ph).unwrap_err().contains("unknown phase"));
    }
}
