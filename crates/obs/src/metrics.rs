//! The deterministic metrics registry: named counters and power-of-two
//! histograms, rendered as stable text or JSON.
//!
//! # Determinism discipline
//!
//! A registry is a **passive value**, not a global: drivers build one
//! explicitly from per-run statistics that are themselves deterministic
//! (per-kernel [`OptStats`]-style counters, cache hit/miss totals,
//! per-rule match counts) and merge partial registries with
//! [`MetricsRegistry::merge`]. Because counters merge by addition and
//! histograms by per-bucket addition, merging is commutative and
//! associative — worker completion order cannot show in the result. The
//! registry deliberately has **no API that accepts a duration**: wall
//! clock belongs to the trace sink ([`crate::trace`]) alone. Rendering
//! iterates `BTreeMap`s, so two registries with equal contents render
//! byte-identically.
//!
//! [`OptStats`]: https://example.invalid/accsat
//!
//! # Histograms
//!
//! [`Histogram`] buckets by bit length: value `0` lands in bucket `0`,
//! and a value `v > 0` in bucket `⌊log2 v⌋ + 1` (so bucket `k` covers
//! `[2^(k-1), 2^k)`). Exact count and sum are kept alongside, which is
//! enough to read growth distributions (e-graph nodes per iteration,
//! explored nodes per kernel) without any floating-point arithmetic.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A power-of-two bucket histogram over `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples observed.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// `buckets[0]` counts zero samples; `buckets[k]` (k ≥ 1) counts
    /// samples in `[2^(k-1), 2^k)`.
    pub buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram { count: 0, sum: 0, buckets: [0; 65] }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        let b = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
        self.buckets[b] += 1;
    }

    /// Add another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
    }

    /// Render the non-empty buckets as `lo:count` pairs (`lo` is the
    /// bucket's inclusive lower bound), comma-separated, in order.
    pub fn render_buckets(&self) -> String {
        let mut out = String::new();
        for (k, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !out.is_empty() {
                out.push(',');
            }
            let lo: u64 = if k == 0 { 0 } else { 1u64 << (k - 1) };
            let _ = write!(out, "{lo}:{n}");
        }
        out
    }
}

/// Named counters + histograms with deterministic rendering.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `v` to counter `name` (created at zero on first use).
    pub fn add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Record one sample into histogram `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.hists.entry(name.to_string()).or_default().observe(v);
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name, if any sample was ever recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.hists.get(name)
    }

    /// True when no counter or histogram was ever touched.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.hists.is_empty()
    }

    /// Merge another registry into this one. Counter values add,
    /// histogram buckets add — commutative and associative, so the merge
    /// order of per-worker partial registries cannot show in the result.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, h) in &other.hists {
            self.hists.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Render as the deterministic line-oriented text report (the
    /// `--metrics` file format): a version header, then one sorted
    /// `counter` line per counter and one sorted `hist` line per
    /// histogram.
    pub fn to_text(&self) -> String {
        let mut out = String::from("accsat-metrics v1\n");
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k} {v}");
        }
        for (k, h) in &self.hists {
            let _ = writeln!(
                out,
                "hist {k} count={} sum={} buckets={}",
                h.count,
                h.sum,
                h.render_buckets()
            );
        }
        out
    }

    /// Render as a single-line JSON object (the serve protocol's
    /// `metrics` reply body). Same content and ordering as
    /// [`MetricsRegistry::to_text`].
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", escape(k), v);
        }
        out.push_str("},\"hists\":{");
        for (i, (k, h)) in self.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"buckets\":{{",
                escape(k),
                h.count,
                h.sum
            );
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                let lo: u64 = if b == 0 { 0 } else { 1u64 << (b - 1) };
                let _ = write!(out, "\"{lo}\":{n}");
            }
            out.push_str("}}");
        }
        out.push_str("}}");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_render_sorted() {
        let mut r = MetricsRegistry::new();
        r.add("b.two", 2);
        r.add("a.one", 1);
        r.add("b.two", 3);
        assert_eq!(r.counter("b.two"), 5);
        assert_eq!(r.counter("missing"), 0);
        let text = r.to_text();
        assert_eq!(text, "accsat-metrics v1\ncounter a.one 1\ncounter b.two 5\n");
        assert_eq!(r.to_json(), "{\"counters\":{\"a.one\":1,\"b.two\":5},\"hists\":{}}");
    }

    #[test]
    fn histogram_buckets_by_bit_length() {
        let mut h = Histogram::default();
        for v in [0, 1, 2, 3, 4, 7, 8, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 1049);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2, 3
        assert_eq!(h.buckets[3], 2); // 4, 7
        assert_eq!(h.buckets[4], 1); // 8..16
        assert_eq!(h.buckets[11], 1); // 1024..2048
        assert_eq!(h.render_buckets(), "0:1,1:1,2:2,4:2,8:1,1024:1");
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = MetricsRegistry::new();
        a.add("x", 1);
        a.observe("h", 3);
        a.observe("h", 100);
        let mut b = MetricsRegistry::new();
        b.add("x", 2);
        b.add("y", 7);
        b.observe("h", 5);
        b.observe("g", 0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_text(), ba.to_text());
        assert_eq!(ab.to_json(), ba.to_json());
        assert_eq!(ab.counter("x"), 3);
        assert_eq!(ab.histogram("h").unwrap().count, 3);
    }

    #[test]
    fn u64_extremes_do_not_overflow() {
        let mut h = Histogram::default();
        h.observe(u64::MAX);
        h.observe(u64::MAX);
        assert_eq!(h.sum, u64::MAX, "sum saturates");
        assert_eq!(h.buckets[64], 2);
        assert!(h.render_buckets().starts_with(&format!("{}:2", 1u64 << 63)));
    }
}
