//! `accsat-obs` — the observability substrate of the ACC Saturator
//! reproduction: a lightweight hierarchical span tracer and a
//! deterministic counter/histogram metrics registry.
//!
//! The two halves serve two different questions and obey two different
//! disciplines:
//!
//! * [`trace`] answers *"where did the wall clock go"*: hierarchical spans
//!   (parse → SSA → saturation iterations → per-rule search → extraction
//!   strategies → codegen → cache probes) recorded into a process-global
//!   collector and rendered as a Chrome-trace-event JSON file, loadable in
//!   Perfetto or `chrome://tracing`. Tracing is **off by default** and the
//!   disabled path is a single relaxed atomic load per span site, so the
//!   instrumentation can stay in release builds. Trace output carries wall
//!   clock and is therefore *not* deterministic — it never feeds any
//!   report the repo diffs.
//! * [`metrics`] answers *"what did the run do"*: counter-valued metrics
//!   (e-graph growth, rule matches, branch-and-bound explored/pruned,
//!   cache hits by level) assembled explicitly from per-run statistics
//!   into a [`metrics::MetricsRegistry`] and rendered as deterministic
//!   text/JSON. No wall clock ever enters a registry, registries merge
//!   commutatively, and rendering iterates sorted maps — so a metrics
//!   report is byte-identical at any thread count, exactly like the
//!   repo's stable JSON reports.
//!
//! [`validate`] closes the loop for CI: a dependency-free JSON parser and
//! a span-nesting checker so `accsat trace-check` can assert that an
//! emitted trace file is well-formed without any external tooling.

#![warn(missing_docs)]

pub mod metrics;
pub mod trace;
pub mod validate;

pub use metrics::MetricsRegistry;
pub use trace::{span, span_args, ArgVal, Span};
