//! The hierarchical span tracer: Chrome-trace-event collection with a
//! zero-overhead-when-disabled static handle.
//!
//! # Model
//!
//! One process-global collector, guarded by an [`AtomicBool`]. Span sites
//! call [`span`] (or [`span_args`] / [`instant`] / [`counter`]); when
//! tracing is disabled each site costs one relaxed atomic load and
//! returns an inert guard — no allocation, no lock, no clock read. When
//! enabled, the guard records a monotonic start timestamp and, on drop,
//! appends one Chrome *complete* event (`"ph":"X"`) with the span's
//! duration. Threads are numbered in first-use order by a thread-local
//! id, so scoped worker threads of the saturation search and the
//! extraction portfolio appear as separate rows in Perfetto.
//!
//! # Lifecycle
//!
//! [`start`] arms the collector (resetting any previous buffer);
//! [`finish`] disarms it and renders the buffered events as a Chrome
//! trace JSON object (`{"traceEvents":[…]}`). The driver owning the
//! `--trace-out` flag brackets the run with these two calls and writes
//! the returned string to disk. Spans still open at `finish` time are
//! simply not recorded — the validator treats that as fine, because every
//! recorded event was complete by construction.
//!
//! # Determinism discipline
//!
//! Trace files contain wall-clock timestamps and thread ids: they are
//! **diagnostic output only** and must never be diffed or fed into the
//! deterministic reports. The repo-wide rule "all wall clock lives only
//! in the trace sink" is enforced by construction: the metrics registry
//! ([`crate::metrics`]) has no API that accepts a duration.

use std::borrow::Cow;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: Mutex<Option<Collector>> = Mutex::new(None);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// One buffered trace event (rendered lazily by [`finish`]).
struct Event {
    name: Cow<'static, str>,
    cat: &'static str,
    /// Chrome phase: `'X'` complete, `'i'` instant, `'C'` counter.
    ph: char,
    /// Microseconds since [`start`].
    ts: u64,
    /// Duration in microseconds (complete events only).
    dur: Option<u64>,
    tid: u64,
    args: Vec<(&'static str, ArgVal)>,
}

struct Collector {
    epoch: Instant,
    events: Vec<Event>,
}

/// A trace-event argument value (rendered into the event's `args` map).
#[derive(Debug, Clone)]
pub enum ArgVal {
    /// Unsigned integer argument.
    U64(u64),
    /// Signed integer argument.
    I64(i64),
    /// String argument (escaped on render).
    Str(String),
}

impl From<u64> for ArgVal {
    fn from(v: u64) -> ArgVal {
        ArgVal::U64(v)
    }
}

impl From<usize> for ArgVal {
    fn from(v: usize) -> ArgVal {
        ArgVal::U64(v as u64)
    }
}

impl From<i64> for ArgVal {
    fn from(v: i64) -> ArgVal {
        ArgVal::I64(v)
    }
}

impl From<&str> for ArgVal {
    fn from(v: &str) -> ArgVal {
        ArgVal::Str(v.to_string())
    }
}

impl From<String> for ArgVal {
    fn from(v: String) -> ArgVal {
        ArgVal::Str(v)
    }
}

/// Is tracing currently enabled? One relaxed atomic load — this is the
/// whole cost of a span site in a disabled run.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Arm the tracer: reset the event buffer and start the clock. Callers
/// bracket a run with `start()` … [`finish`]`()` and write the returned
/// JSON to the `--trace-out` path.
pub fn start() {
    let mut guard = COLLECTOR.lock().expect("trace collector");
    *guard = Some(Collector { epoch: Instant::now(), events: Vec::with_capacity(4096) });
    drop(guard);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Disarm the tracer and render everything collected since [`start`] as a
/// Chrome trace JSON object. `None` when the tracer was never started.
pub fn finish() -> Option<String> {
    ENABLED.store(false, Ordering::Relaxed);
    let collector = COLLECTOR.lock().expect("trace collector").take()?;
    Some(render(&collector.events))
}

/// RAII span guard: records one Chrome complete event on drop (inert when
/// tracing was disabled at construction).
pub struct Span {
    armed: Option<SpanData>,
}

struct SpanData {
    cat: &'static str,
    name: Cow<'static, str>,
    args: Vec<(&'static str, ArgVal)>,
    t0: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.armed.take() else { return };
        let now = Instant::now();
        let mut guard = COLLECTOR.lock().expect("trace collector");
        let Some(collector) = guard.as_mut() else { return };
        // saturating: the span can predate a racing re-`start()`.
        // Both endpoints truncate against the epoch — never compute the
        // duration first: `floor(start) + floor(end - start)` is not
        // monotone in the real end time, and the ±1 µs it loses is enough
        // to render a child span outliving its parent.
        let ts = data.t0.saturating_duration_since(collector.epoch).as_micros() as u64;
        let end = now.saturating_duration_since(collector.epoch).as_micros() as u64;
        let dur = end.saturating_sub(ts);
        let tid = TID.with(|t| *t);
        collector.events.push(Event {
            name: data.name,
            cat: data.cat,
            ph: 'X',
            ts,
            dur: Some(dur),
            tid,
            args: data.args,
        });
    }
}

/// Open a span. The guard records the span as one complete event when it
/// drops; when tracing is disabled this is a no-op costing one atomic
/// load.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> Span {
    if !enabled() {
        return Span { armed: None };
    }
    Span {
        armed: Some(SpanData {
            cat,
            name: Cow::Borrowed(name),
            args: Vec::new(),
            t0: Instant::now(),
        }),
    }
}

/// Open a span with arguments. The closure runs only when tracing is
/// enabled, so argument construction (formatting, cloning names) costs
/// nothing in a disabled run.
#[inline]
pub fn span_args(
    cat: &'static str,
    name: &'static str,
    args: impl FnOnce() -> Vec<(&'static str, ArgVal)>,
) -> Span {
    if !enabled() {
        return Span { armed: None };
    }
    Span {
        armed: Some(SpanData { cat, name: Cow::Borrowed(name), args: args(), t0: Instant::now() }),
    }
}

/// Open a span whose name is computed at runtime (e.g. a rewrite-rule
/// name). The closure runs only when tracing is enabled.
#[inline]
pub fn span_named(cat: &'static str, name: impl FnOnce() -> String) -> Span {
    if !enabled() {
        return Span { armed: None };
    }
    Span {
        armed: Some(SpanData {
            cat,
            name: Cow::Owned(name()),
            args: Vec::new(),
            t0: Instant::now(),
        }),
    }
}

/// Record an instant event (a point in time, rendered as a marker). The
/// argument closure runs only when tracing is enabled.
#[inline]
pub fn instant(
    cat: &'static str,
    name: &'static str,
    args: impl FnOnce() -> Vec<(&'static str, ArgVal)>,
) {
    if !enabled() {
        return;
    }
    push_point(cat, name, 'i', args());
}

/// Record a counter sample (rendered as a stacked counter track in
/// Perfetto — e.g. the serve daemon's queue depth over time).
#[inline]
pub fn counter(cat: &'static str, name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    push_point(cat, name, 'C', vec![("value", ArgVal::U64(value))]);
}

fn push_point(cat: &'static str, name: &'static str, ph: char, args: Vec<(&'static str, ArgVal)>) {
    let mut guard = COLLECTOR.lock().expect("trace collector");
    let Some(collector) = guard.as_mut() else { return };
    let ts = collector.epoch.elapsed().as_micros() as u64;
    let tid = TID.with(|t| *t);
    collector.events.push(Event { name: Cow::Borrowed(name), cat, ph, ts, dur: None, tid, args });
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render(events: &[Event]) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(events.len() * 96 + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, e) in events.iter().enumerate() {
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            escape_json(&e.name),
            e.cat,
            e.ph,
            e.ts,
            e.tid
        );
        if let Some(dur) = e.dur {
            let _ = write!(out, ",\"dur\":{dur}");
        }
        if e.ph == 'i' {
            // instant scope: thread-local marker
            out.push_str(",\"s\":\"t\"");
        }
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (ai, (k, v)) in e.args.iter().enumerate() {
                if ai > 0 {
                    out.push(',');
                }
                match v {
                    ArgVal::U64(n) => {
                        let _ = write!(out, "\"{k}\":{n}");
                    }
                    ArgVal::I64(n) => {
                        let _ = write!(out, "\"{k}\":{n}");
                    }
                    ArgVal::Str(s) => {
                        let _ = write!(out, "\"{k}\":\"{}\"", escape_json(s));
                    }
                }
            }
            out.push('}');
        }
        out.push('}');
        out.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tracer is a process-global; every lifecycle assertion lives in
    /// this one test so concurrent test threads cannot interleave
    /// `start`/`finish` calls.
    #[test]
    fn lifecycle_spans_and_rendering() {
        assert!(!enabled());
        // disabled spans are inert
        {
            let _s = span("test", "ignored");
            instant("test", "ignored", Vec::new);
            counter("test", "ignored", 1);
        }
        assert!(finish().is_none(), "never started: nothing to render");

        start();
        assert!(enabled());
        {
            let _outer = span("test", "outer");
            {
                let _inner = span_args("test", "inner", || vec![("k", ArgVal::U64(7))]);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            let _named = span_named("test", || "dyn\"name".to_string());
            instant("test", "mark", || vec![("s", ArgVal::Str("x\n".into()))]);
            counter("test", "depth", 3);
        }
        let json = finish().expect("started tracer renders");
        assert!(!enabled());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"outer\""));
        assert!(json.contains("\"name\":\"inner\""));
        assert!(json.contains("\"args\":{\"k\":7}"));
        assert!(json.contains("dyn\\\"name"));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        // the emitted trace passes its own validator
        let summary = crate::validate::validate_trace(&json).expect("valid trace");
        assert_eq!(summary.spans, 3);
        assert!(summary.events >= 5);

        // spans opened before finish() but dropped after are not recorded
        start();
        let late = span("test", "late");
        let json = finish().unwrap();
        drop(late);
        assert!(!json.contains("late"));
    }
}
