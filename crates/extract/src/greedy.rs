//! Greedy fixpoint extraction (egg's default bottom-up extractor).
//!
//! Computes, for every e-class, the minimum *tree* cost over its nodes
//! (`cost(node) = op_cost + Σ cost(child)`) by iterating to a fixpoint, then
//! selects the argmin node per class. Tree-optimal, DAG-suboptimal; used as
//! the branch-and-bound incumbent and the timeout fallback.

use crate::cost::CostModel;
use crate::selection::Selection;
use accsat_egraph::{EGraph, Id};

/// Extract the tree-cost-minimal selection covering everything reachable
/// from `roots` (in fact, the fixpoint covers all finite-cost classes).
pub fn extract_greedy(eg: &EGraph, roots: &[Id], cm: &CostModel) -> Selection {
    let costs = class_costs(eg, cm);
    let mut sel = Selection::new();
    for (id, class) in eg.classes() {
        let mut best: Option<(u64, usize)> = None;
        for (i, node) in class.nodes.iter().enumerate() {
            if let Some(c) = node_cost(eg, cm, node, &costs) {
                if best.is_none_or(|(bc, _)| c < bc) {
                    best = Some((c, i));
                }
            }
        }
        if let Some((_, i)) = best {
            sel.choose(eg, id, class.nodes[i].clone());
        }
    }
    // every root must have been covered
    for &r in roots {
        assert!(
            sel.get(eg, r).is_some(),
            "root {r} has infinite cost (cyclic class with no leaf escape?)"
        );
    }
    sel
}

/// Fixpoint tree cost per canonical class (`None` = unreachable/infinite).
pub fn class_costs(eg: &EGraph, cm: &CostModel) -> Vec<Option<u64>> {
    let n = eg.classes().map(|(id, _)| id.index() + 1).max().unwrap_or(0);
    let mut costs: Vec<Option<u64>> = vec![None; n];
    let mut changed = true;
    while changed {
        changed = false;
        for (id, class) in eg.classes() {
            let cur = costs[id.index()];
            let mut best = cur;
            for node in &class.nodes {
                let c = node_cost_vec(eg, cm, node, &costs);
                if let Some(c) = c {
                    if best.is_none_or(|b| c < b) {
                        best = Some(c);
                    }
                }
            }
            if best != cur {
                costs[id.index()] = best;
                changed = true;
            }
        }
    }
    costs
}

fn node_cost_vec(
    eg: &EGraph,
    cm: &CostModel,
    node: &accsat_egraph::Node,
    costs: &[Option<u64>],
) -> Option<u64> {
    let mut total = cm.op_cost(&node.op);
    for &c in &node.children {
        total = total.saturating_add(costs[eg.find(c).index()]?);
    }
    Some(total)
}

fn node_cost(
    eg: &EGraph,
    cm: &CostModel,
    node: &accsat_egraph::Node,
    costs: &[Option<u64>],
) -> Option<u64> {
    node_cost_vec(eg, cm, node, costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_egraph::{Node, Op};

    #[test]
    fn picks_cheapest_node_per_class() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let div = eg.add(Node::new(Op::Div, vec![a, b]));
        let mul = eg.add(Node::new(Op::Mul, vec![a, b]));
        eg.union(div, mul);
        eg.rebuild();
        let cm = CostModel::paper();
        let sel = extract_greedy(&eg, &[div], &cm);
        assert_eq!(sel.node(&eg, div).op, Op::Mul, "mul (10) beats div (100)");
    }

    #[test]
    fn costs_propagate_through_depth() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let n1 = eg.add(Node::new(Op::Neg, vec![a]));
        let n2 = eg.add(Node::new(Op::Neg, vec![n1]));
        let n3 = eg.add(Node::new(Op::Neg, vec![n2]));
        let cm = CostModel::paper();
        let costs = class_costs(&eg, &cm);
        assert_eq!(costs[eg.find(a).index()], Some(1));
        assert_eq!(costs[eg.find(n3).index()], Some(31));
    }

    #[test]
    fn selection_is_acyclic_by_construction() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let r = eg.add(Node::new(Op::Mul, vec![ab, ab]));
        let cm = CostModel::paper();
        let sel = extract_greedy(&eg, &[r], &cm);
        // reachable() panics on cycles; this must not panic
        let order = sel.reachable(&eg, &[r]);
        assert_eq!(order.len(), 4);
    }
}
