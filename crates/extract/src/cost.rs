//! The paper's cost model (§V-B).

use accsat_egraph::Op;

/// Cost model over e-node operators. The default values are the paper's:
/// "constant numbers pose no cost, each input variable or φ counts as 1,
/// all computational operations except division and modular arithmetic
/// count as 10, and each memory access, division, modular arithmetic, or
/// function call counts as 100."
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Literal constants.
    pub constant: u64,
    /// Input variables and φ nodes.
    pub variable: u64,
    /// Ordinary computational operations (+, *, comparisons, FMA, …).
    pub operation: u64,
    /// Memory accesses, division, modulo, function calls.
    pub heavy: u64,
}

impl CostModel {
    /// The paper's §V-B values.
    pub const fn paper() -> CostModel {
        CostModel { constant: 0, variable: 1, operation: 10, heavy: 100 }
    }

    /// Variant for the cost-model-sensitivity ablation: scale the memory
    /// cost while keeping the rest.
    pub const fn with_heavy(heavy: u64) -> CostModel {
        CostModel { heavy, ..CostModel::paper() }
    }

    /// Cost of one operator (excluding children).
    pub fn op_cost(&self, op: &Op) -> u64 {
        match op {
            Op::Int(_) | Op::Float(_) => self.constant,
            // input variables and φs count as 1
            Op::Sym(_) | Op::LoopCond(_) | Op::Select | Op::PhiLoop => self.variable,
            // memory accesses, div/mod, calls count as heavy
            Op::Load | Op::Store | Op::Div | Op::Mod | Op::Call(_) => self.heavy,
            // casts are register moves — treat as free computation
            Op::CastInt | Op::CastFloat => self.constant,
            // everything else is an ordinary operation
            Op::Add
            | Op::Sub
            | Op::Mul
            | Op::Neg
            | Op::Fma
            | Op::Lt
            | Op::Le
            | Op::Gt
            | Op::Ge
            | Op::Eq
            | Op::Ne
            | Op::And
            | Op::Or
            | Op::Not => self.operation,
        }
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_values() {
        let cm = CostModel::paper();
        assert_eq!(cm.op_cost(&Op::Int(7)), 0);
        assert_eq!(cm.op_cost(&Op::float(2.5)), 0);
        assert_eq!(cm.op_cost(&Op::Sym("x".into())), 1);
        assert_eq!(cm.op_cost(&Op::Select), 1);
        assert_eq!(cm.op_cost(&Op::PhiLoop), 1);
        assert_eq!(cm.op_cost(&Op::Add), 10);
        assert_eq!(cm.op_cost(&Op::Fma), 10);
        assert_eq!(cm.op_cost(&Op::Div), 100);
        assert_eq!(cm.op_cost(&Op::Mod), 100);
        assert_eq!(cm.op_cost(&Op::Load), 100);
        assert_eq!(cm.op_cost(&Op::Store), 100);
        assert_eq!(cm.op_cost(&Op::Call("sqrt".into())), 100);
    }

    #[test]
    fn fma_is_cheaper_than_add_plus_mul() {
        let cm = CostModel::paper();
        assert!(cm.op_cost(&Op::Fma) < cm.op_cost(&Op::Add) + cm.op_cost(&Op::Mul));
    }

    #[test]
    fn ablation_heavy_override() {
        let cm = CostModel::with_heavy(1000);
        assert_eq!(cm.op_cost(&Op::Load), 1000);
        assert_eq!(cm.op_cost(&Op::Add), 10);
    }
}
