//! `accsat-extract` — optimal code selection from the e-graph.
//!
//! Implements §IV-B and §V-B of the paper: "We extract the lowest-cost
//! expression that contains all the e-classes of assignments … The total
//! cost is calculated as the sum of the cost of each e-class, with common
//! e-classes being counted only once. To attain this, we use linear
//! programming techniques."
//!
//! The paper solves the shared-cost objective with the CBC LP solver. We
//! implement the same objective with solvers built from scratch, layered:
//!
//! * [`extract_greedy`] — the classic bottom-up fixpoint that minimizes
//!   *tree* cost per class (egg's default extractor). Fast, always sound,
//!   used as the incumbent and the budget-exhausted fallback.
//! * [`refine`] — DAG-aware incumbent refinement: hill climbing over
//!   candidate switches and a sequential marginal greedy that scores
//!   committed classes as free; deterministic, and the source of the
//!   best known selections on the hardest suite kernels.
//! * [`extract_exact`] — branch-and-bound over per-class node choices that
//!   minimizes the true *DAG* cost (shared classes counted once),
//!   strengthened by symmetry breaking, dominated-node and closure-subset
//!   pruning, the LP-relaxation required-set bound of [`lp`], φ-chain
//!   forced closures and best-first class ordering (see [`bnb`]), under a
//!   deterministic explored-node budget with a wall-clock safety valve
//!   mirroring the paper's 30-second extraction limit. Budget-stopped
//!   searches also report the strongest certified lower bound.
//! * [`extract_portfolio`] — greedy → refinement → diversified [`bnb`]
//!   strategies racing on scoped worker threads; first provably-optimal
//!   or best-at-budget selection wins, deterministically (see
//!   [`portfolio`]). This is what the pipeline and the `accsat batch`
//!   driver call.
//!
//! The cost model is the paper's §V-B, verbatim: constants are free, each
//! input variable or φ costs 1, every computational operation costs 10
//! except division/modulo, and each memory access, division, modulo, or
//! function call costs 100.

#![warn(missing_docs)]

pub mod bnb;
pub mod cost;
pub mod greedy;
pub mod lp;
pub mod portfolio;
pub mod refine;
pub mod selection;

pub use bnb::{
    extract_exact, extract_exact_in, extract_exact_with, extract_unpruned, ClassOrder,
    ContextOptions, ExactResult, SearchContext, SearchOptions,
};
pub use cost::CostModel;
pub use greedy::extract_greedy;
pub use lp::LpBound;
pub use portfolio::{
    extract_portfolio, extract_portfolio_budgeted, extract_portfolio_k,
    extract_portfolio_k_budgeted, intern_strategy, HarvestedSelection, PortfolioConfig,
    PortfolioHarvest, PortfolioResult, WorkerOutcome, STRATEGY_COUNT,
};
pub use refine::{climb, marginal_greedy};
pub use selection::{Selection, SelectionError};

// Compile-time guarantee that extraction state crosses threads: the
// portfolio borrows the e-graph from several scoped workers and sends
// selections back.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Selection>();
    assert_send_sync::<ExactResult>();
    assert_send_sync::<PortfolioResult>();
};

use accsat_egraph::{EGraph, Id};
use std::time::Duration;

/// Extract with the default pipeline: exact branch-and-bound under `budget`,
/// falling back to (and seeded by) the greedy extraction. Returns the best
/// selection found.
pub fn extract(eg: &EGraph, roots: &[Id], cost: &CostModel, budget: Duration) -> Selection {
    extract_exact(eg, roots, cost, budget).selection
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_egraph::{all_rules, Node, Op, Runner};

    /// The paper's Fig. 1 cost example: choosing FMA beats +/* chains.
    #[test]
    fn fma_extraction_beats_add_mul() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let bc = eg.add(Node::new(Op::Mul, vec![b, c]));
        let sum = eg.add(Node::new(Op::Add, vec![a, bc]));
        Runner::new(all_rules()).run(&mut eg);
        let cm = CostModel::paper();
        let sel = extract(&eg, &[sum], &cm, Duration::from_millis(200));
        assert_eq!(sel.node(&eg, sum).op, Op::Fma, "FMA (10+3) must beat + and * (20+3)");
        // cost: fma 10 + three syms 3 = 13
        assert_eq!(sel.dag_cost(&eg, &cm, &[sum]), 13);
    }

    /// Shared subexpressions must be counted once (the LP objective).
    #[test]
    fn shared_subexpression_counted_once() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let r1 = eg.add(Node::new(Op::Mul, vec![ab, a]));
        let r2 = eg.add(Node::new(Op::Mul, vec![ab, b]));
        let cm = CostModel::paper();
        let sel = extract(&eg, &[r1, r2], &cm, Duration::from_millis(200));
        // classes: a(1) b(1) ab(10) r1(10) r2(10) = 32, ab counted once
        assert_eq!(sel.dag_cost(&eg, &cm, &[r1, r2]), 32);
    }

    /// DAG-aware extraction must beat tree-cost extraction when sharing pays:
    /// the cheaper-as-a-tree node can be more expensive as a DAG.
    #[test]
    fn exact_beats_greedy_on_sharing() {
        let mut eg = EGraph::new();
        // x = f(s); two roots: g(x, x) representations…
        // Build: big = (a+b)+(c+d); alt  = same class but via cheap-looking
        // distinct structure. Construct sharing scenario:
        //   r1 = (a + b) * (a + b)      — shares (a+b)
        //   r2 class also contains  fma(a, a, b)-ish alternative? Simpler:
        // r = h + h where h = a/b (cost 100). Alternative node in r's class:
        // r = (a/b) * 2 — as a tree: 100+1+1+0+… both fine. Keep simple and
        // just assert exact ≤ greedy on a random-ish graph.
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let div = eg.add(Node::new(Op::Div, vec![a, b]));
        let sum = eg.add(Node::new(Op::Add, vec![div, div]));
        let two = eg.add(Node::int(2));
        let alt = eg.add(Node::new(Op::Mul, vec![div, two]));
        eg.union(sum, alt);
        eg.rebuild();
        let cm = CostModel::paper();
        let g = extract_greedy(&eg, &[sum], &cm);
        let e = extract(&eg, &[sum], &cm, Duration::from_millis(200));
        assert!(
            e.dag_cost(&eg, &cm, &[sum]) <= g.dag_cost(&eg, &cm, &[sum]),
            "exact must never be worse than greedy"
        );
    }

    #[test]
    fn constant_folding_extracts_free_literal() {
        let mut eg = EGraph::new();
        let two = eg.add(Node::int(2));
        let three = eg.add(Node::int(3));
        let sum = eg.add(Node::new(Op::Add, vec![two, three]));
        let cm = CostModel::paper();
        let sel = extract(&eg, &[sum], &cm, Duration::from_millis(100));
        assert_eq!(sel.node(&eg, sum).op, Op::Int(5), "folded constant is free");
        assert_eq!(sel.dag_cost(&eg, &cm, &[sum]), 0);
    }
}
