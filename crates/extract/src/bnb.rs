//! Exact DAG-cost extraction via branch-and-bound — the from-scratch
//! replacement for the paper's CBC linear-programming extraction.
//!
//! Objective (paper §IV-B): select one node per required e-class such that
//! the sum of op costs over *distinct* selected classes is minimal. The
//! search branches on the node choice of one undecided class at a time.
//!
//! Beyond the textbook search, three strengthenings keep the explored tree
//! small (they are what lets the portfolio in [`crate::portfolio`] prove
//! optimality on benchmark kernels within a deterministic budget):
//!
//! * **Dominated-node pruning** — inside one e-class, a node whose operator
//!   cost and *set* of child classes are both no better than another node's
//!   can never appear in an optimal DAG selection (DAG cost counts each
//!   class once, so child multiplicity is irrelevant); such nodes are
//!   dropped from the candidate lists before the search starts.
//! * **Memoized per-class lower bounds** — for every class the *forced
//!   children* (classes that are a child under every surviving candidate)
//!   are precomputed once; whenever a class becomes required, the closure
//!   of its forced children is charged into the admissible bound
//!   immediately instead of one branching level at a time.
//! * **Best-first class ordering** — the next class to branch on is chosen
//!   by a deterministic heuristic ([`ClassOrder`]) rather than stack order;
//!   most-constrained-first collapses large parts of the search into
//!   forced moves.
//!
//! The greedy extraction provides the initial incumbent, so even an
//! immediate stop returns a sound selection — mirroring the paper's 30 s
//! extraction time limit. The search budget is primarily a *node count*
//! ([`SearchOptions::node_budget`]), which makes results reproducible
//! run-to-run; the wall-clock deadline is a safety valve on top.

use crate::cost::CostModel;
use crate::greedy::{class_costs, extract_greedy};
use crate::selection::Selection;
use accsat_egraph::{EGraph, FxHashMap, FxHashSet, Id, Node};
use std::time::{Duration, Instant};

/// Strategy for picking the next undecided e-class to branch on. All
/// orders are deterministic: ties fall back to op cost and then to the
/// class id, never to hash or timing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassOrder {
    /// Most-constrained first: fewest surviving candidate nodes, breaking
    /// ties toward the larger minimum op cost, then the smaller id.
    BestFirst,
    /// Largest minimum op cost first (decide expensive classes early so
    /// the bound tightens fast), ties toward fewer candidates, smaller id.
    HeaviestFirst,
    /// Plain stack order — the classic DFS; kept as a portfolio member
    /// and as the behavior of earlier revisions.
    Lifo,
}

/// Tunables of one branch-and-bound search. The extraction portfolio
/// diversifies over these; [`SearchOptions::default`] is the configuration
/// used by the plain [`extract_exact`] entry point.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// How to pick the next class to branch on.
    pub order: ClassOrder,
    /// Candidate-node ordering inside a class: `false` tries cheapest tree
    /// cost first (good incumbents early), `true` tries nodes with the
    /// fewest distinct children first (maximizes sharing).
    pub prefer_shared: bool,
    /// Maximum number of search-tree nodes to explore. This is the
    /// *deterministic* budget: two runs with the same budget explore the
    /// same tree and return byte-identical selections.
    pub node_budget: u64,
    /// Wall-clock safety valve on top of `node_budget`. Generous by
    /// default so that, at benchmark sizes, only the node budget binds.
    pub deadline: Duration,
}

impl Default for SearchOptions {
    fn default() -> SearchOptions {
        SearchOptions {
            order: ClassOrder::BestFirst,
            prefer_shared: false,
            node_budget: 2_000_000,
            deadline: Duration::from_secs(30),
        }
    }
}

/// Result of exact extraction.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// The best selection found (the greedy incumbent when the budget
    /// expired before any improvement).
    pub selection: Selection,
    /// Total DAG cost of the returned selection.
    pub cost: u64,
    /// `true` when the search completed (the result is provably optimal);
    /// `false` when a budget expired and the incumbent is returned.
    pub proven_optimal: bool,
    /// Number of branch-and-bound nodes explored.
    pub explored: u64,
}

/// Exact DAG-cost extraction under a time budget, with the default search
/// options (best-first ordering, cheapest-tree-first candidates).
pub fn extract_exact(eg: &EGraph, roots: &[Id], cm: &CostModel, budget: Duration) -> ExactResult {
    let opts = SearchOptions { deadline: budget, ..SearchOptions::default() };
    extract_exact_with(eg, roots, cm, &opts)
}

/// Exact DAG-cost extraction with explicit [`SearchOptions`].
pub fn extract_exact_with(
    eg: &EGraph,
    roots: &[Id],
    cm: &CostModel,
    opts: &SearchOptions,
) -> ExactResult {
    let incumbent = extract_greedy(eg, roots, cm);
    let incumbent_cost = incumbent.dag_cost(eg, cm, roots);
    let cx = SearchContext::build(eg, cm);
    extract_exact_in(&cx, roots, &incumbent, incumbent_cost, opts)
}

/// Exact DAG-cost extraction over a prebuilt [`SearchContext`] and greedy
/// incumbent — the portfolio's entry point: the context and incumbent are
/// computed once and shared by every racing worker.
pub fn extract_exact_in(
    cx: &SearchContext<'_>,
    roots: &[Id],
    incumbent: &Selection,
    incumbent_cost: u64,
    opts: &SearchOptions,
) -> ExactResult {
    let eg = cx.eg;
    // one deterministic candidate order per class, computed once per
    // search instead of once per explored node (the keys read only the
    // immutable context)
    let orders: Vec<Vec<u32>> = cx
        .cands
        .iter()
        .map(|cands| {
            let mut order: Vec<u32> = (0..cands.len() as u32).collect();
            if opts.prefer_shared {
                order.sort_by_key(|&i| {
                    let c = &cands[i as usize];
                    (c.child_set.len(), c.tree_cost, i)
                });
            } else {
                order.sort_by_key(|&i| (cands[i as usize].tree_cost, i));
            }
            order
        })
        .collect();

    let mut search = Search {
        cx,
        orders,
        opts: *opts,
        best: incumbent.clone(),
        best_cost: incumbent_cost,
        deadline: Instant::now() + opts.deadline,
        explored: 0,
        stopped: false,
        counted: FxHashSet::default(),
        queued: FxHashSet::default(),
    };

    // seed the required set with the roots and their forced closures
    let mut pending: Vec<Id> = Vec::new();
    let mut bound = 0u64;
    for &r in roots {
        let r = eg.find(r);
        if search.queued.insert(r) {
            pending.push(r);
        }
        bound += search.charge_required(r, &mut Vec::new());
    }
    let mut chosen: FxHashMap<Id, Node> = FxHashMap::default();
    search.dfs(&mut pending, &mut chosen, 0, bound);

    let proven = !search.stopped;
    let best_cost = search.best_cost;
    let explored = search.explored;
    // complete the minimal search selection to a total cover: classes
    // outside the roots' closure keep the greedy choice (cost-neutral for
    // the roots, and consumers materialize such classes too)
    let mut selection = search.best;
    selection.fill_from(incumbent);
    ExactResult { selection, cost: best_cost, proven_optimal: proven, explored }
}

/// Immutable per-extraction tables shared by every search of a portfolio:
/// pruned candidate lists, per-class minimum op costs, and the forced
/// children used by the memoized lower bound. Public so tests and tools
/// can inspect what the pruning and bounding phases computed.
pub struct SearchContext<'a> {
    eg: &'a EGraph,
    /// Cheapest op cost over the *surviving* candidates of each class
    /// (indexed by canonical class index).
    min_op: Vec<u64>,
    /// Candidate nodes per class after the finite-cost filter and
    /// dominated-node pruning, in a deterministic order.
    cands: Vec<Vec<Cand>>,
    /// Classes that are a child of *every* surviving candidate of a class:
    /// required whenever the class is required (the memoized bound).
    forced: Vec<Vec<Id>>,
}

/// One surviving candidate: the node plus its precomputed op cost, tree
/// cost and deduplicated canonical child set.
#[derive(Debug, Clone)]
struct Cand {
    node: Node,
    op_cost: u64,
    tree_cost: u64,
    /// Canonical child classes, sorted and deduplicated.
    child_set: Vec<Id>,
}

impl<'a> SearchContext<'a> {
    /// Precompute the candidate lists (finite-cost filter + dominated-node
    /// pruning), per-class minimum op costs and forced children for `eg`.
    pub fn build(eg: &'a EGraph, cm: &'a CostModel) -> SearchContext<'a> {
        let tree_costs = class_costs(eg, cm);
        let n = tree_costs.len();
        let mut min_op = vec![0u64; n];
        let mut cands: Vec<Vec<Cand>> = vec![Vec::new(); n];
        let mut forced: Vec<Vec<Id>> = vec![Vec::new(); n];

        for (id, class) in eg.classes() {
            // finite-cost filter: a node whose child has no finite tree
            // cost can never appear in a well-founded selection
            let mut list: Vec<Cand> = class
                .nodes
                .iter()
                .filter_map(|node| {
                    let mut tree = cm.op_cost(&node.op);
                    for &c in &node.children {
                        tree = tree.saturating_add(tree_costs[eg.find(c).index()]?);
                    }
                    let mut child_set: Vec<Id> =
                        node.children.iter().map(|&c| eg.find(c)).collect();
                    child_set.sort_unstable();
                    child_set.dedup();
                    Some(Cand {
                        node: node.clone(),
                        op_cost: cm.op_cost(&node.op),
                        tree_cost: tree,
                        child_set,
                    })
                })
                .collect();
            // deterministic base order: cheap ops first, few children, Node
            list.sort_by(|a, b| {
                (a.op_cost, a.child_set.len(), &a.node).cmp(&(
                    b.op_cost,
                    b.child_set.len(),
                    &b.node,
                ))
            });
            // dominated-node pruning: drop a candidate if an earlier
            // survivor has op cost ≤ and a child set that is a subset of
            // its own — the survivor can replace it in any selection
            // without raising the DAG cost or losing feasibility.
            let mut survivors: Vec<Cand> = Vec::with_capacity(list.len());
            'cand: for c in list {
                for s in &survivors {
                    if s.op_cost <= c.op_cost && subset(&s.child_set, &c.child_set) {
                        continue 'cand;
                    }
                }
                survivors.push(c);
            }
            min_op[id.index()] = survivors.iter().map(|c| c.op_cost).min().unwrap_or(0);
            // forced children: in the intersection of every candidate's
            // child set, hence selected under any choice for this class
            if let Some((first, rest)) = survivors.split_first() {
                let mut inter = first.child_set.clone();
                for c in rest {
                    inter.retain(|id| c.child_set.binary_search(id).is_ok());
                }
                forced[id.index()] = inter;
            }
            cands[id.index()] = survivors;
        }

        SearchContext { eg, min_op, cands, forced }
    }

    /// The surviving candidates of a class, in the deterministic base
    /// order (test hook for the pruning logic).
    pub fn candidates(&self, id: Id) -> Vec<Node> {
        self.cands[self.eg.find(id).index()].iter().map(|c| c.node.clone()).collect()
    }

    /// Admissible lower bound on the cost of any selection covering
    /// `roots`: the sum of minimum op costs over the forced closure (test
    /// hook for admissibility checks).
    pub fn root_lower_bound(&self, roots: &[Id]) -> u64 {
        let mut seen = FxHashSet::default();
        let mut bound = 0u64;
        let mut stack: Vec<Id> = roots.iter().map(|&r| self.eg.find(r)).collect();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            bound += self.min_op[id.index()];
            stack.extend(self.forced[id.index()].iter().copied());
        }
        bound
    }
}

/// Is sorted `a` a subset of sorted `b`?
fn subset(a: &[Id], b: &[Id]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

struct Search<'a, 'b> {
    cx: &'b SearchContext<'a>,
    /// Candidate visit order per class, precomputed once per search from
    /// the immutable context (`SearchOptions::prefer_shared` decides the
    /// key).
    orders: Vec<Vec<u32>>,
    opts: SearchOptions,
    best: Selection,
    best_cost: u64,
    deadline: Instant,
    explored: u64,
    stopped: bool,
    /// Classes whose minimum op cost is already charged into the bound
    /// (required-closure membership).
    counted: FxHashSet<Id>,
    /// Classes that have ever been put on `pending` on the current branch
    /// (decided classes stay in this set while their subtree is explored).
    queued: FxHashSet<Id>,
}

impl<'a, 'b> Search<'a, 'b> {
    /// Charge `id` and its forced closure into the bound; newly counted
    /// classes are recorded in `trail` for backtracking. Returns the bound
    /// increase.
    fn charge_required(&mut self, id: Id, trail: &mut Vec<Id>) -> u64 {
        let mut added = 0u64;
        let mut stack = vec![id];
        while let Some(d) = stack.pop() {
            if !self.counted.insert(d) {
                continue;
            }
            trail.push(d);
            added += self.cx.min_op[d.index()];
            stack.extend(self.cx.forced[d.index()].iter().copied());
        }
        added
    }

    /// Pick the index in `pending` of the next class to branch on.
    fn pick(&self, pending: &[Id]) -> usize {
        match self.opts.order {
            ClassOrder::Lifo => pending.len() - 1,
            ClassOrder::BestFirst => {
                let key = |id: Id| {
                    (self.cx.cands[id.index()].len(), u64::MAX - self.cx.min_op[id.index()], id)
                };
                (0..pending.len()).min_by_key(|&i| key(pending[i])).expect("pending non-empty")
            }
            ClassOrder::HeaviestFirst => {
                let key = |id: Id| {
                    (u64::MAX - self.cx.min_op[id.index()], self.cx.cands[id.index()].len(), id)
                };
                (0..pending.len()).min_by_key(|&i| key(pending[i])).expect("pending non-empty")
            }
        }
    }

    /// `pending`: required-but-undecided classes. `cost`: op costs of
    /// decided classes. `bound_extra`: Σ min_op over counted-but-undecided
    /// classes (pending plus their forced closures).
    fn dfs(
        &mut self,
        pending: &mut Vec<Id>,
        chosen: &mut FxHashMap<Id, Node>,
        cost: u64,
        bound_extra: u64,
    ) {
        self.explored += 1;
        if self.explored >= self.opts.node_budget
            || (self.explored.is_multiple_of(256) && Instant::now() >= self.deadline)
        {
            self.stopped = true;
        }
        if self.stopped || cost + bound_extra >= self.best_cost {
            return;
        }
        if pending.is_empty() {
            // complete selection: record as new incumbent
            if cost < self.best_cost {
                self.best_cost = cost;
                let mut sel = Selection::new();
                for (id, n) in chosen.iter() {
                    sel.choose(self.cx.eg, *id, n.clone());
                }
                self.best = sel;
            }
            return;
        }
        let ix = self.pick(pending);
        let id = pending.swap_remove(ix);
        let bound_extra = bound_extra - self.cx.min_op[id.index()];

        // candidate order: precomputed per class (cheapest tree first by
        // default, or fewest distinct children first to maximize sharing)
        for k in 0..self.orders[id.index()].len() {
            let ci = self.orders[id.index()][k] as usize;
            let (node, node_cost, child_set) = {
                let cand = &self.cx.cands[id.index()][ci];
                (cand.node.clone(), cand.op_cost, cand.child_set.clone())
            };
            // acyclicity: a selected DAG must be well-founded
            if would_cycle(self.cx.eg, chosen, id, &node) {
                continue;
            }
            // queue children that are not yet decided or pending, and
            // charge newly required classes (with their forced closures)
            // into the bound
            let mut queued_trail: Vec<Id> = Vec::new();
            let mut counted_trail: Vec<Id> = Vec::new();
            let mut extra = bound_extra;
            for &c in &child_set {
                if self.queued.insert(c) {
                    queued_trail.push(c);
                }
                extra += self.charge_required(c, &mut counted_trail);
            }
            chosen.insert(id, node);
            pending.extend(queued_trail.iter().copied());
            self.dfs(pending, chosen, cost + node_cost, extra);
            // a recursive call preserves pending as a *set* but may permute
            // it (classes are picked by swap_remove and re-pushed at frame
            // end), so the children must be removed by value — truncating
            // to the old length would drop arbitrary survivors instead
            for q in queued_trail {
                let pos =
                    pending.iter().rposition(|&x| x == q).expect("queued child still pending");
                pending.swap_remove(pos);
                self.queued.remove(&q);
            }
            chosen.remove(&id);
            for c in counted_trail {
                self.counted.remove(&c);
            }
            if self.stopped {
                break;
            }
        }
        pending.push(id);
    }
}

/// Cycle check over a partial choice map (cheaper than building a
/// [`Selection`]).
fn would_cycle(eg: &EGraph, chosen: &FxHashMap<Id, Node>, id: Id, node: &Node) -> bool {
    let target = eg.find(id);
    let mut stack: Vec<Id> = node.children.iter().map(|&c| eg.find(c)).collect();
    let mut seen = FxHashSet::default();
    while let Some(c) = stack.pop() {
        if c == target {
            return true;
        }
        if !seen.insert(c) {
            continue;
        }
        if let Some(n) = chosen.get(&c) {
            stack.extend(n.children.iter().map(|&k| eg.find(k)));
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_egraph::{all_rules, Node, Op, Runner};

    #[test]
    fn exact_finds_sharing_optimum() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let h = eg.add(Node::new(Op::Div, vec![a, b]));
        let r1 = eg.add(Node::new(Op::Add, vec![h, a]));
        let r2 = eg.add(Node::new(Op::Mul, vec![h, b]));
        let cm = CostModel::paper();
        let res = extract_exact(&eg, &[r1, r2], &cm, Duration::from_secs(1));
        assert!(res.proven_optimal);
        // classes: a 1, b 1, h 100, r1 10, r2 10 = 122
        assert_eq!(res.cost, 122);
    }

    #[test]
    fn exact_prefers_shared_expensive_over_distinct_cheap() {
        // class R = { add(h, h), add(m1, m2) } where h = a/b shared,
        // m1 = a*b, m2 = b*a distinct muls. With operation=200, heavy=10
        // the shared-div route wins as a DAG though it loses as a tree.
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let h = eg.add(Node::new(Op::Div, vec![a, b])); // heavy op
        let hh = eg.add(Node::new(Op::Add, vec![h, h]));
        let m1 = eg.add(Node::new(Op::Mul, vec![a, b]));
        let m2 = eg.add(Node::new(Op::Mul, vec![b, a]));
        let mm = eg.add(Node::new(Op::Add, vec![m1, m2]));
        eg.union(hh, mm);
        eg.rebuild();
        let cm = CostModel { constant: 0, variable: 1, operation: 200, heavy: 10 };
        let res = extract_exact(&eg, &[hh], &cm, Duration::from_secs(1));
        assert!(res.proven_optimal);
        // shared div route: add 200 + div 10 + a 1 + b 1 = 212
        // two-muls route:   add 200 + 2×mul 400 + 2 = 602
        assert_eq!(res.cost, 212);
        assert!(res.selection.node(&eg, hh).children.len() == 2);
    }

    #[test]
    fn exact_matches_greedy_on_trees() {
        // with no sharing opportunities, exact == greedy
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let bc = eg.add(Node::new(Op::Mul, vec![b, c]));
        let sum = eg.add(Node::new(Op::Add, vec![a, bc]));
        Runner::new(all_rules()).run(&mut eg);
        let cm = CostModel::paper();
        let g = extract_greedy(&eg, &[sum], &cm);
        let e = extract_exact(&eg, &[sum], &cm, Duration::from_secs(1));
        assert_eq!(e.cost, g.dag_cost(&eg, &cm, &[sum]));
        assert!(e.proven_optimal);
    }

    #[test]
    fn budget_exhaustion_returns_incumbent() {
        // a one-node budget stops before any complete selection: the
        // greedy incumbent must come back, unproven
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let s = eg.add(Node::new(Op::Add, vec![a, b]));
        Runner::new(all_rules()).run(&mut eg);
        let cm = CostModel::paper();
        let opts = SearchOptions { node_budget: 1, ..SearchOptions::default() };
        let res = extract_exact_with(&eg, &[s], &cm, &opts);
        assert!(!res.proven_optimal);
        assert!(res.selection.get(&eg, s).is_some());
        let g = extract_greedy(&eg, &[s], &cm);
        assert_eq!(res.cost, g.dag_cost(&eg, &cm, &[s]));
    }

    #[test]
    fn saturated_matmul_statement_extracts_fast() {
        // alpha * tmp + beta * c  — the Listing 1 statement after saturation
        let mut eg = EGraph::new();
        let alpha = eg.add(Node::sym("alpha"));
        let tmp = eg.add(Node::sym("tmp"));
        let beta = eg.add(Node::sym("beta"));
        let cc = eg.add(Node::sym("c"));
        let at = eg.add(Node::new(Op::Mul, vec![alpha, tmp]));
        let bc = eg.add(Node::new(Op::Mul, vec![beta, cc]));
        let sum = eg.add(Node::new(Op::Add, vec![at, bc]));
        Runner::new(all_rules()).run(&mut eg);
        let cm = CostModel::paper();
        let res = extract_exact(&eg, &[sum], &cm, Duration::from_secs(2));
        // fma(a*t, beta, c) = fma 10 + mul 10 + 4 syms = 24 beats
        // add+2mul = 30+4 = 34
        assert!(res.cost <= 24, "expected an FMA extraction, got {}", res.cost);
        assert!(res.proven_optimal);
    }

    #[test]
    fn all_orders_agree_on_optimum() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let h = eg.add(Node::new(Op::Div, vec![a, b]));
        let r1 = eg.add(Node::new(Op::Add, vec![h, a]));
        let r2 = eg.add(Node::new(Op::Mul, vec![h, b]));
        Runner::new(all_rules()).run(&mut eg);
        let cm = CostModel::paper();
        let mut costs = Vec::new();
        for order in [ClassOrder::BestFirst, ClassOrder::HeaviestFirst, ClassOrder::Lifo] {
            for prefer_shared in [false, true] {
                let opts = SearchOptions { order, prefer_shared, ..SearchOptions::default() };
                let res = extract_exact_with(&eg, &[r1, r2], &cm, &opts);
                assert!(res.proven_optimal, "{order:?}/{prefer_shared} must finish");
                costs.push(res.cost);
            }
        }
        assert!(costs.windows(2).all(|w| w[0] == w[1]), "orders disagree: {costs:?}");
    }

    #[test]
    fn dominated_nodes_are_pruned() {
        // class { add(x, x), mul(x, y) }: add's child set {x} is a subset
        // of mul's {x, y} at equal op cost — mul must be pruned.
        let mut eg = EGraph::new();
        let x = eg.add(Node::sym("x"));
        let y = eg.add(Node::sym("y"));
        let ax = eg.add(Node::new(Op::Add, vec![x, x]));
        let mxy = eg.add(Node::new(Op::Mul, vec![x, y]));
        eg.union(ax, mxy);
        eg.rebuild();
        let cm = CostModel::paper();
        let cx = SearchContext::build(&eg, &cm);
        let cands = cx.candidates(ax);
        assert_eq!(cands.len(), 1, "dominated mul must be pruned: {cands:?}");
        assert_eq!(cands[0].op, Op::Add);
    }

    #[test]
    fn domination_respects_cost_and_subset_direction() {
        // div(x) vs neg(x): same child set {x} but div is heavier — only
        // the cheap node survives. neg(x) vs sub(x, y): neg's set is the
        // subset at equal-or-lower cost, sub is pruned; the reverse
        // (superset at lower cost) must NOT prune.
        let mut eg = EGraph::new();
        let x = eg.add(Node::sym("x"));
        let y = eg.add(Node::sym("y"));
        let n = eg.add(Node::new(Op::Neg, vec![x]));
        let s = eg.add(Node::new(Op::Sub, vec![x, y]));
        eg.union(n, s);
        eg.rebuild();
        let cm = CostModel::paper();
        let cx = SearchContext::build(&eg, &cm);
        assert_eq!(cx.candidates(n).len(), 1);
        assert_eq!(cx.candidates(n)[0].op, Op::Neg);

        // heavy single-child node vs cheap two-child node: no domination
        // either way (cost and subset point in opposite directions)
        let mut eg2 = EGraph::new();
        let x2 = eg2.add(Node::sym("x"));
        let y2 = eg2.add(Node::sym("y"));
        let d = eg2.add(Node::new(Op::Div, vec![x2, x2]));
        let m = eg2.add(Node::new(Op::Mul, vec![x2, y2]));
        eg2.union(d, m);
        eg2.rebuild();
        let cx2 = SearchContext::build(&eg2, &cm);
        assert_eq!(cx2.candidates(d).len(), 2, "neither node dominates the other");
    }

    #[test]
    fn root_lower_bound_is_admissible_and_reaches_tree_bound() {
        // on a pure tree the forced closure covers the whole term, so the
        // memoized bound equals the exact cost
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let r = eg.add(Node::new(Op::Mul, vec![ab, a]));
        let cm = CostModel::paper();
        let cx = SearchContext::build(&eg, &cm);
        let res = extract_exact(&eg, &[r], &cm, Duration::from_secs(1));
        assert_eq!(cx.root_lower_bound(&[r]), res.cost, "tree bound is tight");
    }
}
