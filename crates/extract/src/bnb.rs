//! Exact DAG-cost extraction via branch-and-bound — the from-scratch
//! replacement for the paper's CBC linear-programming extraction.
//!
//! Objective (paper §IV-B): select one node per required e-class such that
//! the sum of op costs over *distinct* selected classes is minimal. The
//! search branches on the node choice of one undecided class at a time;
//! the admissible lower bound adds, for every class that is already known
//! to be required but undecided, the cheapest op cost any of its nodes
//! could contribute. The greedy extraction provides the initial incumbent,
//! so even an immediate timeout returns a sound selection — mirroring the
//! paper's 30 s extraction time limit.

use crate::cost::CostModel;
use crate::greedy::{class_costs, extract_greedy};
use crate::selection::Selection;
use accsat_egraph::{EGraph, Id, Node};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Result of exact extraction.
#[derive(Debug, Clone)]
pub struct ExactResult {
    pub selection: Selection,
    /// Total DAG cost of the returned selection.
    pub cost: u64,
    /// `true` when the search completed (the result is provably optimal);
    /// `false` when the time budget expired and the incumbent is returned.
    pub proven_optimal: bool,
    /// Number of branch-and-bound nodes explored.
    pub explored: u64,
}

/// Exact DAG-cost extraction under a time budget.
pub fn extract_exact(eg: &EGraph, roots: &[Id], cm: &CostModel, budget: Duration) -> ExactResult {
    let incumbent = extract_greedy(eg, roots, cm);
    let incumbent_cost = incumbent.dag_cost(eg, cm, roots);
    let tree_costs = class_costs(eg, cm);

    // cheapest op cost any node of a class could contribute (admissible)
    let mut min_op: HashMap<Id, u64> = HashMap::new();
    for (id, class) in eg.classes() {
        let m = class.nodes.iter().map(|n| cm.op_cost(&n.op)).min().unwrap_or(0);
        min_op.insert(id, m);
    }

    let mut search = Search {
        eg,
        cm,
        tree_costs: &tree_costs,
        min_op: &min_op,
        best: incumbent.clone(),
        best_cost: incumbent_cost,
        deadline: Instant::now() + budget,
        explored: 0,
        timed_out: false,
    };

    let mut pending: Vec<Id> = roots.iter().map(|&r| eg.find(r)).collect();
    pending.sort();
    pending.dedup();
    let bound: u64 = pending.iter().map(|id| min_op[id]).sum();
    let mut chosen: HashMap<Id, Node> = HashMap::new();
    search.dfs(&mut pending, &mut chosen, 0, bound);

    let proven = !search.timed_out;
    let best_cost = search.best_cost;
    let explored = search.explored;
    ExactResult { selection: search.best, cost: best_cost, proven_optimal: proven, explored }
}

struct Search<'a> {
    eg: &'a EGraph,
    cm: &'a CostModel,
    tree_costs: &'a [Option<u64>],
    min_op: &'a HashMap<Id, u64>,
    best: Selection,
    best_cost: u64,
    deadline: Instant,
    explored: u64,
    timed_out: bool,
}

impl<'a> Search<'a> {
    /// `pending`: required-but-undecided classes. `cost`: op costs of
    /// decided classes. `bound_extra`: Σ min_op over pending.
    fn dfs(
        &mut self,
        pending: &mut Vec<Id>,
        chosen: &mut HashMap<Id, Node>,
        cost: u64,
        bound_extra: u64,
    ) {
        self.explored += 1;
        if self.explored.is_multiple_of(256) && Instant::now() >= self.deadline {
            self.timed_out = true;
        }
        if self.timed_out || cost + bound_extra >= self.best_cost {
            return;
        }
        // find the next undecided class
        let id = loop {
            match pending.pop() {
                None => {
                    // complete selection: record as new incumbent
                    if cost < self.best_cost {
                        self.best_cost = cost;
                        let mut sel = Selection::new();
                        for (id, n) in chosen.iter() {
                            sel.choose(self.eg, *id, n.clone());
                        }
                        self.best = sel;
                    }
                    return;
                }
                Some(id) => {
                    if !chosen.contains_key(&id) {
                        break id;
                    }
                    // already decided: drop it (its min_op was removed when
                    // it was decided, not when queued again)
                }
            }
        };
        let bound_extra = bound_extra - self.min_op[&id];

        // candidate nodes, cheapest tree cost first for good incumbents
        let class = self.eg.class(id);
        let mut cands: Vec<&Node> = class
            .nodes
            .iter()
            .filter(|n| {
                n.children.iter().all(|&c| self.tree_costs[self.eg.find(c).index()].is_some())
            })
            .collect();
        cands.sort_by_key(|n| {
            let kids: u64 = n
                .children
                .iter()
                .map(|&c| self.tree_costs[self.eg.find(c).index()].unwrap_or(u64::MAX / 4))
                .sum();
            self.cm.op_cost(&n.op).saturating_add(kids)
        });

        for node in cands {
            // acyclicity: a selected DAG must be well-founded
            let partial = PartialSel { chosen };
            if partial.would_cycle(self.eg, id, node) {
                continue;
            }
            let node_cost = self.cm.op_cost(&node.op);
            // queue children that are not yet decided or pending
            let mut added: Vec<Id> = Vec::new();
            let mut extra = bound_extra;
            for &c in &node.children {
                let c = self.eg.find(c);
                if !chosen.contains_key(&c) && !pending.contains(&c) && !added.contains(&c) {
                    added.push(c);
                    extra += self.min_op[&c];
                }
            }
            chosen.insert(id, node.clone());
            let before_len = pending.len();
            pending.extend(added.iter().copied());
            self.dfs(pending, chosen, cost + node_cost, extra);
            pending.truncate(before_len);
            chosen.remove(&id);
            if self.timed_out {
                break;
            }
        }
        pending.push(id);
    }
}

/// Cycle check over a partial choice map (cheaper than building a Selection).
struct PartialSel<'a> {
    chosen: &'a HashMap<Id, Node>,
}

impl<'a> PartialSel<'a> {
    fn would_cycle(&self, eg: &EGraph, id: Id, node: &Node) -> bool {
        let target = eg.find(id);
        let mut stack: Vec<Id> = node.children.iter().map(|&c| eg.find(c)).collect();
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = stack.pop() {
            if c == target {
                return true;
            }
            if !seen.insert(c) {
                continue;
            }
            if let Some(n) = self.chosen.get(&c) {
                stack.extend(n.children.iter().map(|&k| eg.find(k)));
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_egraph::{all_rules, Node, Op, Runner};

    #[test]
    fn exact_finds_sharing_optimum() {
        // r's class has two nodes:
        //   (a)  mul(h, h)      where h = a / b   (heavy 100)
        //   (b)  add(p, q)      where p = a*b, q = b*a  — two muls
        // Tree costs: (a) = 10 + 2*102 = 214 → greedy may pick (b) = 10+2*12=34?
        // DAG costs:  (a) = 10 + 102 = 112 (h shared) vs (b) = 10+12+12=34.
        // Make sharing matter the other way: roots r1 = h + x, r2 = h * y …
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let h = eg.add(Node::new(Op::Div, vec![a, b]));
        let r1 = eg.add(Node::new(Op::Add, vec![h, a]));
        let r2 = eg.add(Node::new(Op::Mul, vec![h, b]));
        let cm = CostModel::paper();
        let res = extract_exact(&eg, &[r1, r2], &cm, Duration::from_secs(1));
        assert!(res.proven_optimal);
        // classes: a 1, b 1, h 100, r1 10, r2 10 = 122
        assert_eq!(res.cost, 122);
    }

    #[test]
    fn exact_prefers_shared_expensive_over_distinct_cheap() {
        // class R = { add(h, h), add(m1, m2) } where h = a/b (100) shared,
        // m1 = a*b, m2 = b*a distinct muls (10 each).
        // Tree: add(h,h) = 10+204 = 214 vs add(m1,m2) = 10+24 = 34 → greedy picks muls.
        // DAG: add(h,h) = 10+102 = 112 vs 34 → still muls. Flip heaviness:
        // use a cost model where operation=200, heavy=10:
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let h = eg.add(Node::new(Op::Div, vec![a, b])); // heavy op
        let hh = eg.add(Node::new(Op::Add, vec![h, h]));
        let m1 = eg.add(Node::new(Op::Mul, vec![a, b]));
        let m2 = eg.add(Node::new(Op::Mul, vec![b, a]));
        let mm = eg.add(Node::new(Op::Add, vec![m1, m2]));
        eg.union(hh, mm);
        eg.rebuild();
        let cm = CostModel { constant: 0, variable: 1, operation: 200, heavy: 10 };
        let res = extract_exact(&eg, &[hh], &cm, Duration::from_secs(1));
        assert!(res.proven_optimal);
        // shared div route: add 200 + div 10 + a 1 + b 1 = 212
        // two-muls route:   add 200 + 2×mul 400 + 2 = 602
        assert_eq!(res.cost, 212);
        assert!(res.selection.node(&eg, hh).children.len() == 2);
    }

    #[test]
    fn exact_matches_greedy_on_trees() {
        // with no sharing opportunities, exact == greedy
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let bc = eg.add(Node::new(Op::Mul, vec![b, c]));
        let sum = eg.add(Node::new(Op::Add, vec![a, bc]));
        Runner::new(all_rules()).run(&mut eg);
        let cm = CostModel::paper();
        let g = extract_greedy(&eg, &[sum], &cm);
        let e = extract_exact(&eg, &[sum], &cm, Duration::from_secs(1));
        assert_eq!(e.cost, g.dag_cost(&eg, &cm, &[sum]));
        assert!(e.proven_optimal);
    }

    #[test]
    fn timeout_returns_incumbent() {
        // zero budget: must return the greedy incumbent, unproven
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let s = eg.add(Node::new(Op::Add, vec![a, b]));
        Runner::new(all_rules()).run(&mut eg);
        let cm = CostModel::paper();
        let res = extract_exact(&eg, &[s], &cm, Duration::from_millis(0));
        // tiny graph may still finish before the first clock check; accept
        // either, but the selection must be valid
        assert!(res.selection.get(&eg, s).is_some());
        let _ = res.selection.dag_cost(&eg, &cm, &[s]);
    }

    #[test]
    fn saturated_matmul_statement_extracts_fast() {
        // alpha * tmp + beta * c  — the Listing 1 statement after saturation
        let mut eg = EGraph::new();
        let alpha = eg.add(Node::sym("alpha"));
        let tmp = eg.add(Node::sym("tmp"));
        let beta = eg.add(Node::sym("beta"));
        let cc = eg.add(Node::sym("c"));
        let at = eg.add(Node::new(Op::Mul, vec![alpha, tmp]));
        let bc = eg.add(Node::new(Op::Mul, vec![beta, cc]));
        let sum = eg.add(Node::new(Op::Add, vec![at, bc]));
        Runner::new(all_rules()).run(&mut eg);
        let cm = CostModel::paper();
        let res = extract_exact(&eg, &[sum], &cm, Duration::from_secs(2));
        // fma(a*t, beta, c) = fma 10 + mul 10 + 4 syms = 24 beats
        // add+2mul = 30+4 = 34
        assert!(res.cost <= 24, "expected an FMA extraction, got {}", res.cost);
        assert!(res.proven_optimal);
    }
}
