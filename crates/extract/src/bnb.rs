//! Exact DAG-cost extraction via branch-and-bound — the from-scratch
//! replacement for the paper's CBC linear-programming extraction.
//!
//! Objective (paper §IV-B): select one node per required e-class such that
//! the sum of op costs over *distinct* selected classes is minimal. The
//! search branches on the node choice of one undecided class at a time.
//!
//! Beyond the textbook search, six strengthenings keep the explored tree
//! small (they are what lets the portfolio in [`crate::portfolio`] prove
//! optimality on benchmark kernels within a deterministic budget):
//!
//! * **Symmetry breaking** ([`ContextOptions::orbit`]) — commuted
//!   candidates (same operator, same canonical child multiset, e.g.
//!   `add(a, b)` and `add(b, a)` after the commutativity rule fired) form
//!   an orbit with identical DAG cost under every completion; only the
//!   canonically least representative survives, so the search explores one
//!   member per orbit.
//! * **Dominated-node pruning** ([`ContextOptions::dominance`]) — inside
//!   one e-class, a node whose operator cost and *set* of child classes
//!   are both no better than another node's can never appear in an optimal
//!   DAG selection (DAG cost counts each class once, so child multiplicity
//!   is irrelevant); such nodes are dropped before the search starts.
//! * **Closure-subset dominance** ([`ContextOptions::closure_dominance`])
//!   — the deep generalization of the child-set rule: a candidate dies
//!   when an equal-or-cheaper classmate's *LP required-set closure* is
//!   contained in its own (plus the class's forced set), because
//!   everything the classmate forces is already paid wherever the victim
//!   was chosen. Iterated with the LP fixpoint until stable; gated on the
//!   candidate graph being acyclic, where the switch cannot close a
//!   cycle.
//! * **Fractional lower bounds** ([`SearchOptions::lp_bound`]) — the
//!   in-crate LP-relaxation stand-in of [`crate::lp`]: per-class required
//!   *sets* computed as a least fixpoint with shared-subterm credit,
//!   charged incrementally against the branch's bitset of already-counted
//!   classes. Strictly subsumes the forced-children closure bound, which
//!   is kept as the `lp_bound: false` fallback and for ablation.
//! * **φ-chain forced closures** ([`SearchOptions::chain_closure`]) — a
//!   required class with a single surviving candidate (after pruning) has
//!   no decision to make: it is chosen immediately and its children are
//!   required transitively, so whole φ/select/load chains with one live
//!   choice are charged as a forced closure instead of being re-branched
//!   one class per search level. Forced chains consume no explored-node
//!   budget.
//! * **Best-first class ordering** — the next class to branch on is chosen
//!   by a deterministic heuristic ([`ClassOrder`]) rather than stack
//!   order; most-constrained-first collapses large parts of the search
//!   into forced moves.
//!
//! The greedy extraction provides the initial incumbent, so even an
//! immediate stop returns a sound selection — mirroring the paper's 30 s
//! extraction time limit. The search budget is primarily a *node count*
//! ([`SearchOptions::node_budget`]), which makes results reproducible
//! run-to-run; the wall-clock deadline is a safety valve on top.

use crate::cost::CostModel;
use crate::greedy::{class_costs, extract_greedy};
use crate::lp::LpBound;
use crate::selection::Selection;
use accsat_egraph::{EGraph, FxHashMap, FxHashSet, Id, Node};
use std::time::{Duration, Instant};

/// Strategy for picking the next undecided e-class to branch on. All
/// orders are deterministic: ties fall back to op cost and then to the
/// class id, never to hash or timing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassOrder {
    /// Most-constrained first: fewest surviving candidate nodes, breaking
    /// ties toward the larger minimum op cost, then the smaller id.
    BestFirst,
    /// Largest minimum op cost first (decide expensive classes early so
    /// the bound tightens fast), ties toward fewer candidates, smaller id.
    HeaviestFirst,
    /// Plain stack order — the classic DFS; kept as a portfolio member
    /// and as the behavior of earlier revisions.
    Lifo,
}

/// Tunables of one branch-and-bound search. The extraction portfolio
/// diversifies over these; [`SearchOptions::default`] is the configuration
/// used by the plain [`extract_exact`] entry point.
#[derive(Debug, Clone, Copy)]
pub struct SearchOptions {
    /// How to pick the next class to branch on.
    pub order: ClassOrder,
    /// Candidate-node ordering inside a class: `false` tries cheapest tree
    /// cost first (good incumbents early), `true` tries nodes with the
    /// fewest distinct children first (maximizes sharing).
    pub prefer_shared: bool,
    /// Maximum number of search-tree nodes to explore. This is the
    /// *deterministic* budget: two runs with the same budget explore the
    /// same tree and return byte-identical selections.
    pub node_budget: u64,
    /// Wall-clock safety valve on top of `node_budget`. Generous by
    /// default so that, at benchmark sizes, only the node budget binds.
    pub deadline: Duration,
    /// Bound every branch with the LP-relaxation required-set bound
    /// ([`crate::lp::LpBound`]) instead of the weaker forced-children
    /// closure. On by default; `false` is the ablation/differential
    /// configuration.
    pub lp_bound: bool,
    /// Decide single-candidate classes immediately (φ-chain forced
    /// closures) instead of branching on them. On by default; forced
    /// chains then consume no explored-node budget.
    pub chain_closure: bool,
}

impl Default for SearchOptions {
    fn default() -> SearchOptions {
        SearchOptions {
            order: ClassOrder::BestFirst,
            prefer_shared: false,
            node_budget: 2_000_000,
            deadline: Duration::from_secs(30),
            lp_bound: true,
            chain_closure: true,
        }
    }
}

/// Which candidate-pruning passes [`SearchContext::build_with`] runs.
/// Production uses [`ContextOptions::default`] (everything on); the
/// all-off configuration is the *unpruned* reference the differential
/// property tests compare against.
#[derive(Debug, Clone, Copy)]
pub struct ContextOptions {
    /// Collapse commuted-candidate orbits (same op, same canonical child
    /// multiset) to their canonically least representative.
    pub orbit: bool,
    /// Drop candidates dominated at ≤ op cost by a ⊆ child set.
    pub dominance: bool,
    /// On acyclic candidate graphs, additionally drop candidates whose
    /// *LP required-set closure* is a superset of an equal-or-cheaper
    /// survivor's (closure-subset dominance) — iterated with the LP
    /// fixpoint until stable. Automatically inert on cyclic graphs, where
    /// the replacement argument does not hold.
    pub closure_dominance: bool,
}

impl Default for ContextOptions {
    fn default() -> ContextOptions {
        ContextOptions { orbit: true, dominance: true, closure_dominance: true }
    }
}

/// Result of exact extraction.
#[derive(Debug, Clone)]
pub struct ExactResult {
    /// The best selection found (the greedy incumbent when the budget
    /// expired before any improvement).
    pub selection: Selection,
    /// Total DAG cost of the returned selection.
    pub cost: u64,
    /// `true` when the search completed (the result is provably optimal);
    /// `false` when a budget expired and the incumbent is returned.
    pub proven_optimal: bool,
    /// Number of branch-and-bound nodes explored. Forced-chain decisions
    /// are free: only real branch points count against the budget.
    pub explored: u64,
    /// The strongest certified lower bound on the optimal DAG cost: the
    /// cost itself when `proven_optimal`, otherwise the static
    /// LP-relaxation root bound ([`SearchContext::root_lower_bound`]).
    /// `cost - lower_bound` is the *bound gap* reported per kernel.
    pub lower_bound: u64,
}

/// Exact DAG-cost extraction under a time budget, with the default search
/// options (best-first ordering, cheapest-tree-first candidates).
pub fn extract_exact(eg: &EGraph, roots: &[Id], cm: &CostModel, budget: Duration) -> ExactResult {
    let opts = SearchOptions { deadline: budget, ..SearchOptions::default() };
    extract_exact_with(eg, roots, cm, &opts)
}

/// Exact DAG-cost extraction with explicit [`SearchOptions`].
pub fn extract_exact_with(
    eg: &EGraph,
    roots: &[Id],
    cm: &CostModel,
    opts: &SearchOptions,
) -> ExactResult {
    let incumbent = extract_greedy(eg, roots, cm);
    let incumbent_cost = incumbent.dag_cost(eg, cm, roots);
    let cx = SearchContext::build(eg, cm);
    extract_exact_in(&cx, roots, &incumbent, incumbent_cost, opts)
}

/// The *unpruned* exact search: no symmetry breaking, no dominance
/// pruning, no LP bound, no chain closures — only the finite-cost filter
/// (required for soundness) and the plain forced-children bound. This is
/// the reference oracle the differential property tests compare the
/// strengthened search against; it explores far more nodes, so give it a
/// generous `node_budget` and only call it on small e-graphs.
pub fn extract_unpruned(
    eg: &EGraph,
    roots: &[Id],
    cm: &CostModel,
    node_budget: u64,
) -> ExactResult {
    let incumbent = extract_greedy(eg, roots, cm);
    let incumbent_cost = incumbent.dag_cost(eg, cm, roots);
    let cx = SearchContext::build_with(
        eg,
        cm,
        &ContextOptions { orbit: false, dominance: false, closure_dominance: false },
    );
    let opts = SearchOptions {
        node_budget,
        lp_bound: false,
        chain_closure: false,
        ..SearchOptions::default()
    };
    extract_exact_in(&cx, roots, &incumbent, incumbent_cost, &opts)
}

/// Exact DAG-cost extraction over a prebuilt [`SearchContext`] and greedy
/// incumbent — the portfolio's entry point: the context and incumbent are
/// computed once and shared by every racing worker.
pub fn extract_exact_in(
    cx: &SearchContext<'_>,
    roots: &[Id],
    incumbent: &Selection,
    incumbent_cost: u64,
    opts: &SearchOptions,
) -> ExactResult {
    let eg = cx.eg;
    // one deterministic candidate order per class, computed once per
    // search instead of once per explored node (the keys read only the
    // immutable context)
    let orders: Vec<Vec<u32>> = cx
        .cands
        .iter()
        .map(|cands| {
            let mut order: Vec<u32> = (0..cands.len() as u32).collect();
            if opts.prefer_shared {
                order.sort_by_key(|&i| {
                    let c = &cands[i as usize];
                    (c.child_set.len(), c.tree_cost, i)
                });
            } else {
                order.sort_by_key(|&i| (cands[i as usize].tree_cost, i));
            }
            order
        })
        .collect();

    let n = cx.cands.len();
    let mut search = Search {
        cx,
        orders,
        opts: *opts,
        best: incumbent.clone(),
        best_cost: incumbent_cost,
        deadline: Instant::now() + opts.deadline,
        explored: 0,
        stopped: false,
        charged: vec![0u64; n.div_ceil(64)],
        queued: vec![false; n],
    };

    // seed the required set with the roots: charge their closures and
    // auto-decide forced chains before the first branch
    let mut pending: Vec<Id> = Vec::new();
    let mut chosen: FxHashMap<Id, Node> = FxHashMap::default();
    let mut cost = 0u64;
    let mut extra = 0u64;
    let (mut qt, mut dt, mut ct) = (Vec::new(), Vec::new(), Vec::new());
    let mut feasible = true;
    for &r in roots {
        let r = eg.find(r);
        if !search.require(
            r,
            &mut pending,
            &mut chosen,
            &mut qt,
            &mut dt,
            &mut ct,
            &mut cost,
            &mut extra,
        ) {
            // a root's forced closure is cyclic: no selection can cover
            // the roots at all — fall back to the incumbent, unproven
            feasible = false;
            break;
        }
    }
    if feasible {
        search.dfs(&mut pending, &mut chosen, cost, extra);
    } else {
        search.stopped = true;
    }

    let proven = !search.stopped;
    let best_cost = search.best_cost;
    let explored = search.explored;
    let lower_bound = if proven { best_cost } else { cx.root_lower_bound(roots) };
    // complete the minimal search selection to a total cover: classes
    // outside the roots' closure keep the greedy choice (cost-neutral for
    // the roots, and consumers materialize such classes too)
    let mut selection = search.best;
    selection.fill_from(incumbent);
    ExactResult { selection, cost: best_cost, proven_optimal: proven, explored, lower_bound }
}

/// Immutable per-extraction tables shared by every search of a portfolio:
/// pruned candidate lists, per-class minimum op costs, the forced children
/// of the legacy memo bound, and the LP-relaxation required sets. Public
/// so tests and tools can inspect what the pruning and bounding phases
/// computed.
pub struct SearchContext<'a> {
    eg: &'a EGraph,
    /// Cheapest op cost over the *surviving* candidates of each class
    /// (indexed by canonical class index).
    min_op: Vec<u64>,
    /// Candidate nodes per class after the finite-cost filter, orbit
    /// collapse and dominated-node pruning, in a deterministic order.
    cands: Vec<Vec<Cand>>,
    /// Classes that are a child of *every* surviving candidate of a class:
    /// required whenever the class is required (the legacy memo bound,
    /// kept as the `lp_bound: false` fallback and for ablation).
    forced: Vec<Vec<Id>>,
    /// LP-relaxation required sets and per-class fractional bounds.
    lp: LpBound,
    /// Is the surviving-candidate graph acyclic? (True for the benchmark
    /// kernels; enables closure dominance and skips cycle checks.)
    acyclic: bool,
    /// Commuted candidates removed by symmetry breaking.
    orbit_pruned: usize,
    /// Candidates removed by dominated-node pruning.
    dominance_pruned: usize,
    /// Candidates removed by closure-subset dominance.
    closure_pruned: usize,
}

/// One surviving candidate: the node plus its precomputed op cost, tree
/// cost and deduplicated canonical child set.
#[derive(Debug, Clone)]
pub(crate) struct Cand {
    pub(crate) node: Node,
    pub(crate) op_cost: u64,
    pub(crate) tree_cost: u64,
    /// Canonical child classes, sorted and deduplicated.
    pub(crate) child_set: Vec<Id>,
}

impl<'a> SearchContext<'a> {
    /// Precompute the candidate lists and bounds for `eg` with the default
    /// pruning passes (orbit collapse + dominance) enabled.
    pub fn build(eg: &'a EGraph, cm: &'a CostModel) -> SearchContext<'a> {
        SearchContext::build_with(eg, cm, &ContextOptions::default())
    }

    /// Precompute the candidate lists (finite-cost filter + the pruning
    /// passes selected by `opts`), per-class minimum op costs, forced
    /// children and LP required sets for `eg`.
    pub fn build_with(
        eg: &'a EGraph,
        cm: &'a CostModel,
        opts: &ContextOptions,
    ) -> SearchContext<'a> {
        let tree_costs = class_costs(eg, cm);
        let n = tree_costs.len();
        let mut min_op = vec![0u64; n];
        let mut cands: Vec<Vec<Cand>> = vec![Vec::new(); n];
        let mut forced: Vec<Vec<Id>> = vec![Vec::new(); n];
        let mut orbit_pruned = 0usize;
        let mut dominance_pruned = 0usize;

        for (id, class) in eg.classes() {
            // finite-cost filter: a node whose child has no finite tree
            // cost can never appear in a well-founded selection
            let list: Vec<Cand> = class
                .nodes
                .iter()
                .filter_map(|node| {
                    let mut tree = cm.op_cost(&node.op);
                    for &c in &node.children {
                        tree = tree.saturating_add(tree_costs[eg.find(c).index()]?);
                    }
                    let mut child_set: Vec<Id> =
                        node.children.iter().map(|&c| eg.find(c)).collect();
                    child_set.sort_unstable();
                    child_set.dedup();
                    Some(Cand {
                        node: node.clone(),
                        op_cost: cm.op_cost(&node.op),
                        tree_cost: tree,
                        child_set,
                    })
                })
                .collect();
            // deterministic base order: cheap ops first, few children, Node
            let mut list = list;
            list.sort_by(|a, b| {
                (a.op_cost, a.child_set.len(), &a.node).cmp(&(
                    b.op_cost,
                    b.child_set.len(),
                    &b.node,
                ))
            });
            // symmetry breaking: commuted candidates — same operator, same
            // canonical child *multiset* — have identical DAG cost under
            // every completion of the selection, so the search only needs
            // the canonically least member of each orbit. (A special case
            // of dominance, split out so the orbit count is observable and
            // the quadratic dominance scan sees fewer candidates.)
            if opts.orbit {
                let mut kept: Vec<Cand> = Vec::with_capacity(list.len());
                let mut orbits: Vec<Vec<Id>> = Vec::new();
                for c in list {
                    let mut multiset: Vec<Id> =
                        c.node.children.iter().map(|&k| eg.find(k)).collect();
                    multiset.sort_unstable();
                    let is_dup = kept
                        .iter()
                        .zip(&orbits)
                        .any(|(k, ms)| k.node.op == c.node.op && *ms == multiset);
                    if is_dup {
                        orbit_pruned += 1;
                        continue;
                    }
                    kept.push(c);
                    orbits.push(multiset);
                }
                cands[id.index()] = kept;
            } else {
                cands[id.index()] = list;
            }
            // dominated-node pruning: drop a candidate if an earlier
            // survivor has op cost ≤ and a child set that is a subset of
            // its own — the survivor can replace it in any selection
            // without raising the DAG cost or losing feasibility.
            if opts.dominance {
                let list = std::mem::take(&mut cands[id.index()]);
                let mut survivors: Vec<Cand> = Vec::with_capacity(list.len());
                'cand: for c in list {
                    for s in &survivors {
                        if s.op_cost <= c.op_cost && subset(&s.child_set, &c.child_set) {
                            dominance_pruned += 1;
                            continue 'cand;
                        }
                    }
                    survivors.push(c);
                }
                cands[id.index()] = survivors;
            }
            min_op[id.index()] = cands[id.index()].iter().map(|c| c.op_cost).min().unwrap_or(0);
        }

        // is the surviving-candidate graph acyclic? (The benchmark kernel
        // e-graphs are; random saturated graphs need not be.) Closure
        // dominance is gated on this: its replacement argument grafts a
        // survivor's forced closure onto an arbitrary selection, which on
        // a cyclic graph could close a cycle.
        let acyclic = candidate_graph_is_acyclic(eg, &cands, n);

        // closure-subset dominance, iterated with the LP fixpoint: a
        // candidate `n` dies when an equal-or-cheaper survivor `m` forces
        // no more than `n` does — closure(m) ⊆ closure(n) ∪ S(class),
        // where closure(x) = ⋃ S(child) over x's children. Every class
        // `m`'s choice forces is then already paid in any selection that
        // chose `n`, so switching to `m` never costs more (and cannot
        // close a cycle on an acyclic graph). Each pruned candidate can
        // only grow the forced intersections, so the LP sets are rebuilt
        // and the pass repeats until stable.
        let mut closure_pruned = 0usize;
        let mut lp = LpBound::build(&cands, &min_op);
        if opts.closure_dominance && acyclic {
            loop {
                let words = lp.row_words();
                let mut changed = false;
                let mut m_row = vec![0u64; words];
                let mut n_row = vec![0u64; words];
                for (c, slot) in cands.iter_mut().enumerate() {
                    if slot.len() < 2 {
                        continue;
                    }
                    let self_row = lp.row(c).to_vec();
                    let closure = |cand: &Cand, out: &mut [u64]| {
                        out.fill(0);
                        for ch in &cand.child_set {
                            for (o, &w) in out.iter_mut().zip(lp.row(ch.index())) {
                                *o |= w;
                            }
                        }
                    };
                    // `dominates(m, n)`: switching a selection from n to m
                    // is free — m is no costlier and forces nothing that
                    // choosing n (with the class's own closure) does not
                    // already pay for
                    let mut kept: Vec<Cand> = Vec::with_capacity(slot.len());
                    'cand: for cand in std::mem::take(slot) {
                        closure(&cand, &mut n_row);
                        for m in &kept {
                            if m.op_cost > cand.op_cost {
                                continue;
                            }
                            closure(m, &mut m_row);
                            let contained = m_row
                                .iter()
                                .zip(n_row.iter().zip(&self_row))
                                .all(|(&mw, (&nw, &sw))| mw & !(nw | sw) == 0);
                            if contained {
                                closure_pruned += 1;
                                changed = true;
                                continue 'cand;
                            }
                        }
                        // the new candidate may dominate earlier survivors
                        // (closure size does not follow the sort order:
                        // an fma with three children can force less than
                        // an add whose form needs an extra intermediate)
                        kept.retain(|k| {
                            if cand.op_cost > k.op_cost {
                                return true;
                            }
                            closure(k, &mut m_row);
                            let contained = n_row
                                .iter()
                                .zip(m_row.iter().zip(&self_row))
                                .all(|(&nw, (&kw, &sw))| nw & !(kw | sw) == 0);
                            if contained {
                                closure_pruned += 1;
                                changed = true;
                                false
                            } else {
                                true
                            }
                        });
                        kept.push(cand);
                    }
                    *slot = kept;
                }
                if !changed {
                    break;
                }
                lp = LpBound::build(&cands, &min_op);
            }
        }

        // forced children: in the intersection of every candidate's child
        // set, hence selected under any choice for this class (computed
        // after all pruning — fewer candidates force more)
        for (c, survivors) in cands.iter().enumerate() {
            if let Some((first, rest)) = survivors.split_first() {
                let mut inter = first.child_set.clone();
                for cand in rest {
                    inter.retain(|id| cand.child_set.binary_search(id).is_ok());
                }
                forced[c] = inter;
            }
        }

        SearchContext {
            eg,
            min_op,
            cands,
            forced,
            lp,
            acyclic,
            orbit_pruned,
            dominance_pruned,
            closure_pruned,
        }
    }

    /// The surviving candidates of a class, in the deterministic base
    /// order (test hook for the pruning logic).
    pub fn candidates(&self, id: Id) -> Vec<Node> {
        self.cands[self.eg.find(id).index()].iter().map(|c| c.node.clone()).collect()
    }

    /// How many commuted candidates symmetry breaking removed.
    pub fn orbit_pruned(&self) -> usize {
        self.orbit_pruned
    }

    /// How many candidates dominated-node pruning removed.
    pub fn dominance_pruned(&self) -> usize {
        self.dominance_pruned
    }

    /// How many candidates closure-subset dominance removed (0 on cyclic
    /// graphs, where the pass is inert).
    pub fn closure_pruned(&self) -> usize {
        self.closure_pruned
    }

    /// Is the surviving-candidate graph acyclic?
    pub fn is_acyclic(&self) -> bool {
        self.acyclic
    }

    /// The LP-relaxation tables (test/diagnostic hook).
    pub fn lp(&self) -> &LpBound {
        &self.lp
    }

    /// The fractional (LP-relaxation) lower bound of one class: admissible
    /// for the DAG cost of any selection covering it.
    pub fn fractional_bound(&self, id: Id) -> u64 {
        self.lp.class_bound(self.eg.find(id).index())
    }

    /// Admissible lower bound on the cost of any selection covering
    /// `roots`: the min-op mass of the union of the roots' LP required
    /// sets (shared classes counted once, like the LP objective).
    pub fn root_lower_bound(&self, roots: &[Id]) -> u64 {
        let words = self.lp.row_words();
        let mut acc = vec![0u64; words];
        for &r in roots {
            let row = self.lp.row(self.eg.find(r).index());
            for (a, &w) in acc.iter_mut().zip(row) {
                *a |= w;
            }
        }
        let mut bound = 0u64;
        for (wi, &w) in acc.iter().enumerate() {
            let mut m = w;
            while m != 0 {
                let b = m.trailing_zeros() as usize;
                bound += self.min_op[wi * 64 + b];
                m &= m - 1;
            }
        }
        bound
    }

    /// The legacy forced-children closure bound over `roots` — the bottom
    /// of the bound lattice (see DESIGN.md), kept for ablation and for the
    /// lattice-ordering property tests.
    pub fn forced_lower_bound(&self, roots: &[Id]) -> u64 {
        let mut seen = FxHashSet::default();
        let mut bound = 0u64;
        let mut stack: Vec<Id> = roots.iter().map(|&r| self.eg.find(r)).collect();
        while let Some(id) = stack.pop() {
            if !seen.insert(id) {
                continue;
            }
            bound += self.min_op[id.index()];
            stack.extend(self.forced[id.index()].iter().copied());
        }
        bound
    }
}

/// Iterative three-color DFS over the class graph induced by the
/// surviving candidates: an edge per (class → candidate child class).
fn candidate_graph_is_acyclic(eg: &EGraph, cands: &[Vec<Cand>], n: usize) -> bool {
    let kids = |c: usize| -> Vec<usize> {
        let mut v: Vec<usize> = cands[c]
            .iter()
            .flat_map(|cand| cand.child_set.iter().map(|&ch| eg.find(ch).index()))
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    let mut color = vec![0u8; n]; // 0 = white, 1 = on stack, 2 = done
    for s in 0..n {
        if color[s] != 0 {
            continue;
        }
        color[s] = 1;
        let mut stack: Vec<(usize, Vec<usize>, usize)> = vec![(s, kids(s), 0)];
        while let Some((c, ch, i)) = stack.last_mut() {
            if *i >= ch.len() {
                color[*c] = 2;
                stack.pop();
                continue;
            }
            let next = ch[*i];
            *i += 1;
            match color[next] {
                0 => {
                    color[next] = 1;
                    let k = kids(next);
                    stack.push((next, k, 0));
                }
                1 => return false,
                _ => {}
            }
        }
    }
    true
}

/// Is sorted `a` a subset of sorted `b`?
fn subset(a: &[Id], b: &[Id]) -> bool {
    if a.len() > b.len() {
        return false;
    }
    let mut it = b.iter();
    'outer: for x in a {
        for y in it.by_ref() {
            match y.cmp(x) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

struct Search<'a, 'b> {
    cx: &'b SearchContext<'a>,
    /// Candidate visit order per class, precomputed once per search from
    /// the immutable context (`SearchOptions::prefer_shared` decides the
    /// key).
    orders: Vec<Vec<u32>>,
    opts: SearchOptions,
    best: Selection,
    best_cost: u64,
    deadline: Instant,
    explored: u64,
    stopped: bool,
    /// Bitset of classes whose minimum op cost is already in the bound
    /// (required-closure membership), by canonical class index.
    charged: Vec<u64>,
    /// Classes on `pending` or auto-decided on the current branch
    /// (branched classes stay marked while their subtree is explored).
    queued: Vec<bool>,
}

impl<'a, 'b> Search<'a, 'b> {
    /// Charge `id`'s closure into the bound: the LP required set when
    /// `lp_bound` is on, else the forced-children closure. Newly charged
    /// classes are recorded in `trail` (as canonical indices) for
    /// backtracking. Returns the bound increase. Idempotent per class.
    fn charge(&mut self, id: Id, trail: &mut Vec<u32>) -> u64 {
        let mut added = 0u64;
        if self.opts.lp_bound {
            let row = self.cx.lp.row(id.index());
            for (wi, &bits) in row.iter().enumerate() {
                let new = bits & !self.charged[wi];
                if new == 0 {
                    continue;
                }
                self.charged[wi] |= new;
                let mut m = new;
                while m != 0 {
                    let b = m.trailing_zeros() as usize;
                    let idx = wi * 64 + b;
                    added += self.cx.min_op[idx];
                    trail.push(idx as u32);
                    m &= m - 1;
                }
            }
        } else {
            let mut stack = vec![id];
            while let Some(d) = stack.pop() {
                let di = d.index();
                let (wi, bit) = (di / 64, 1u64 << (di % 64));
                if self.charged[wi] & bit != 0 {
                    continue;
                }
                self.charged[wi] |= bit;
                trail.push(di as u32);
                added += self.cx.min_op[di];
                stack.extend(self.cx.forced[di].iter().copied());
            }
        }
        added
    }

    /// Make `c` required: charge its closure and either queue it for
    /// branching or — when it has a single surviving candidate and
    /// `chain_closure` is on — decide it immediately and require its
    /// children transitively (the φ-chain forced closure). Returns `false`
    /// when a forced decision closes a cycle through `chosen`, which makes
    /// the whole current branch infeasible (the forced class has no
    /// alternative candidate).
    #[allow(clippy::too_many_arguments)] // the branch's full trail state
    fn require(
        &mut self,
        c: Id,
        pending: &mut Vec<Id>,
        chosen: &mut FxHashMap<Id, Node>,
        q_trail: &mut Vec<Id>,
        d_trail: &mut Vec<Id>,
        c_trail: &mut Vec<u32>,
        cost: &mut u64,
        extra: &mut u64,
    ) -> bool {
        let cx = self.cx;
        let mut stack = vec![c];
        while let Some(c) = stack.pop() {
            *extra += self.charge(c, c_trail);
            if self.queued[c.index()] {
                continue;
            }
            let cands = &cx.cands[c.index()];
            if self.opts.chain_closure && cands.len() == 1 {
                let cand = &cands[0];
                if !cx.acyclic && would_cycle(cx.eg, chosen, c, &cand.node) {
                    return false;
                }
                self.queued[c.index()] = true;
                d_trail.push(c);
                chosen.insert(c, cand.node.clone());
                *cost += cand.op_cost;
                *extra -= cx.min_op[c.index()];
                stack.extend(cand.child_set.iter().copied());
            } else {
                self.queued[c.index()] = true;
                q_trail.push(c);
                pending.push(c);
            }
        }
        true
    }

    /// Pick the index in `pending` of the next class to branch on.
    fn pick(&self, pending: &[Id]) -> usize {
        match self.opts.order {
            ClassOrder::Lifo => pending.len() - 1,
            ClassOrder::BestFirst => {
                let key = |id: Id| {
                    (self.cx.cands[id.index()].len(), u64::MAX - self.cx.min_op[id.index()], id)
                };
                (0..pending.len()).min_by_key(|&i| key(pending[i])).expect("pending non-empty")
            }
            ClassOrder::HeaviestFirst => {
                let key = |id: Id| {
                    (u64::MAX - self.cx.min_op[id.index()], self.cx.cands[id.index()].len(), id)
                };
                (0..pending.len()).min_by_key(|&i| key(pending[i])).expect("pending non-empty")
            }
        }
    }

    /// `pending`: required-but-undecided classes. `cost`: op costs of
    /// decided classes (branched and chain-closed). `bound_extra`:
    /// Σ min_op over charged-but-undecided classes.
    fn dfs(
        &mut self,
        pending: &mut Vec<Id>,
        chosen: &mut FxHashMap<Id, Node>,
        cost: u64,
        bound_extra: u64,
    ) {
        self.explored += 1;
        if self.explored >= self.opts.node_budget
            || (self.explored.is_multiple_of(256) && Instant::now() >= self.deadline)
        {
            self.stopped = true;
        }
        if self.stopped || cost + bound_extra >= self.best_cost {
            return;
        }
        if pending.is_empty() {
            // complete selection: record as new incumbent
            if cost < self.best_cost {
                self.best_cost = cost;
                let mut sel = Selection::new();
                for (id, n) in chosen.iter() {
                    sel.choose(self.cx.eg, *id, n.clone());
                }
                self.best = sel;
            }
            return;
        }
        let ix = self.pick(pending);
        let id = pending.swap_remove(ix);
        let bound_extra = bound_extra - self.cx.min_op[id.index()];

        // candidate order: precomputed per class (cheapest tree first by
        // default, or fewest distinct children first to maximize sharing)
        for k in 0..self.orders[id.index()].len() {
            let ci = self.orders[id.index()][k] as usize;
            let cx = self.cx;
            let cand = &cx.cands[id.index()][ci];
            // acyclicity: a selected DAG must be well-founded (free when
            // the whole candidate graph is acyclic)
            if !cx.acyclic && would_cycle(cx.eg, chosen, id, &cand.node) {
                continue;
            }
            // require the children (queueing or chain-closing them) and
            // charge newly required closures into the bound
            let mut q_trail: Vec<Id> = Vec::new();
            let mut d_trail: Vec<Id> = Vec::new();
            let mut c_trail: Vec<u32> = Vec::new();
            let mut branch_cost = cost + cand.op_cost;
            let mut extra = bound_extra;
            chosen.insert(id, cand.node.clone());
            let mut feasible = true;
            for ki in 0..cand.child_set.len() {
                let child = cand.child_set[ki];
                if !self.require(
                    child,
                    pending,
                    chosen,
                    &mut q_trail,
                    &mut d_trail,
                    &mut c_trail,
                    &mut branch_cost,
                    &mut extra,
                ) {
                    feasible = false;
                    break;
                }
            }
            if feasible {
                self.dfs(pending, chosen, branch_cost, extra);
            }
            // a recursive call preserves pending as a *set* but may permute
            // it (classes are picked by swap_remove and re-pushed at frame
            // end), so the children must be removed by value — truncating
            // to the old length would drop arbitrary survivors instead
            for q in q_trail {
                let pos =
                    pending.iter().rposition(|&x| x == q).expect("queued child still pending");
                pending.swap_remove(pos);
                self.queued[q.index()] = false;
            }
            for d in d_trail {
                chosen.remove(&d);
                self.queued[d.index()] = false;
            }
            for b in c_trail {
                self.charged[b as usize / 64] &= !(1u64 << (b as usize % 64));
            }
            chosen.remove(&id);
            if self.stopped {
                break;
            }
        }
        pending.push(id);
    }
}

/// Cycle check over a partial choice map (cheaper than building a
/// [`Selection`]).
fn would_cycle(eg: &EGraph, chosen: &FxHashMap<Id, Node>, id: Id, node: &Node) -> bool {
    let target = eg.find(id);
    // fast path: a cycle must route through an already-chosen child or hit
    // the target directly — fresh children are walk frontiers
    if node.children.iter().all(|&c| {
        let c = eg.find(c);
        c != target && !chosen.contains_key(&c)
    }) {
        return false;
    }
    let mut stack: Vec<Id> = node.children.iter().map(|&c| eg.find(c)).collect();
    let mut seen = FxHashSet::default();
    while let Some(c) = stack.pop() {
        if c == target {
            return true;
        }
        if !seen.insert(c) {
            continue;
        }
        if let Some(n) = chosen.get(&c) {
            stack.extend(n.children.iter().map(|&k| eg.find(k)));
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_egraph::{all_rules, Node, Op, Runner};

    #[test]
    fn exact_finds_sharing_optimum() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let h = eg.add(Node::new(Op::Div, vec![a, b]));
        let r1 = eg.add(Node::new(Op::Add, vec![h, a]));
        let r2 = eg.add(Node::new(Op::Mul, vec![h, b]));
        let cm = CostModel::paper();
        let res = extract_exact(&eg, &[r1, r2], &cm, Duration::from_secs(1));
        assert!(res.proven_optimal);
        // classes: a 1, b 1, h 100, r1 10, r2 10 = 122
        assert_eq!(res.cost, 122);
        assert_eq!(res.lower_bound, res.cost, "proven results certify their own cost");
    }

    #[test]
    fn exact_prefers_shared_expensive_over_distinct_cheap() {
        // class R = { add(h, h), add(m1, m2) } where h = a/b shared,
        // m1 = a*b, m2 = b*a distinct muls. With operation=200, heavy=10
        // the shared-div route wins as a DAG though it loses as a tree.
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let h = eg.add(Node::new(Op::Div, vec![a, b])); // heavy op
        let hh = eg.add(Node::new(Op::Add, vec![h, h]));
        let m1 = eg.add(Node::new(Op::Mul, vec![a, b]));
        let m2 = eg.add(Node::new(Op::Mul, vec![b, a]));
        let mm = eg.add(Node::new(Op::Add, vec![m1, m2]));
        eg.union(hh, mm);
        eg.rebuild();
        let cm = CostModel { constant: 0, variable: 1, operation: 200, heavy: 10 };
        let res = extract_exact(&eg, &[hh], &cm, Duration::from_secs(1));
        assert!(res.proven_optimal);
        // shared div route: add 200 + div 10 + a 1 + b 1 = 212
        // two-muls route:   add 200 + 2×mul 400 + 2 = 602
        assert_eq!(res.cost, 212);
        assert!(res.selection.node(&eg, hh).children.len() == 2);
    }

    #[test]
    fn exact_matches_greedy_on_trees() {
        // with no sharing opportunities, exact == greedy
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let bc = eg.add(Node::new(Op::Mul, vec![b, c]));
        let sum = eg.add(Node::new(Op::Add, vec![a, bc]));
        Runner::new(all_rules()).run(&mut eg);
        let cm = CostModel::paper();
        let g = extract_greedy(&eg, &[sum], &cm);
        let e = extract_exact(&eg, &[sum], &cm, Duration::from_secs(1));
        assert_eq!(e.cost, g.dag_cost(&eg, &cm, &[sum]));
        assert!(e.proven_optimal);
    }

    #[test]
    fn budget_exhaustion_returns_incumbent() {
        // a zero-node budget stops before any complete selection: the
        // greedy incumbent must come back, unproven, with the static root
        // bound as the certified lower bound
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let s = eg.add(Node::new(Op::Add, vec![a, b]));
        Runner::new(all_rules()).run(&mut eg);
        let cm = CostModel::paper();
        let opts = SearchOptions { node_budget: 1, ..SearchOptions::default() };
        let res = extract_exact_with(&eg, &[s], &cm, &opts);
        assert!(!res.proven_optimal);
        assert!(res.selection.get(&eg, s).is_some());
        let g = extract_greedy(&eg, &[s], &cm);
        assert_eq!(res.cost, g.dag_cost(&eg, &cm, &[s]));
        assert!(res.lower_bound <= res.cost, "static bound stays admissible");
    }

    #[test]
    fn saturated_matmul_statement_extracts_fast() {
        // alpha * tmp + beta * c  — the Listing 1 statement after saturation
        let mut eg = EGraph::new();
        let alpha = eg.add(Node::sym("alpha"));
        let tmp = eg.add(Node::sym("tmp"));
        let beta = eg.add(Node::sym("beta"));
        let cc = eg.add(Node::sym("c"));
        let at = eg.add(Node::new(Op::Mul, vec![alpha, tmp]));
        let bc = eg.add(Node::new(Op::Mul, vec![beta, cc]));
        let sum = eg.add(Node::new(Op::Add, vec![at, bc]));
        Runner::new(all_rules()).run(&mut eg);
        let cm = CostModel::paper();
        let res = extract_exact(&eg, &[sum], &cm, Duration::from_secs(2));
        // fma(a*t, beta, c) = fma 10 + mul 10 + 4 syms = 24 beats
        // add+2mul = 30+4 = 34
        assert!(res.cost <= 24, "expected an FMA extraction, got {}", res.cost);
        assert!(res.proven_optimal);
    }

    #[test]
    fn all_orders_agree_on_optimum() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let h = eg.add(Node::new(Op::Div, vec![a, b]));
        let r1 = eg.add(Node::new(Op::Add, vec![h, a]));
        let r2 = eg.add(Node::new(Op::Mul, vec![h, b]));
        Runner::new(all_rules()).run(&mut eg);
        let cm = CostModel::paper();
        let mut costs = Vec::new();
        for order in [ClassOrder::BestFirst, ClassOrder::HeaviestFirst, ClassOrder::Lifo] {
            for prefer_shared in [false, true] {
                let opts = SearchOptions { order, prefer_shared, ..SearchOptions::default() };
                let res = extract_exact_with(&eg, &[r1, r2], &cm, &opts);
                assert!(res.proven_optimal, "{order:?}/{prefer_shared} must finish");
                costs.push(res.cost);
            }
        }
        assert!(costs.windows(2).all(|w| w[0] == w[1]), "orders disagree: {costs:?}");
    }

    #[test]
    fn dominated_nodes_are_pruned() {
        // class { add(x, x), mul(x, y) }: add's child set {x} is a subset
        // of mul's {x, y} at equal op cost — mul must be pruned.
        let mut eg = EGraph::new();
        let x = eg.add(Node::sym("x"));
        let y = eg.add(Node::sym("y"));
        let ax = eg.add(Node::new(Op::Add, vec![x, x]));
        let mxy = eg.add(Node::new(Op::Mul, vec![x, y]));
        eg.union(ax, mxy);
        eg.rebuild();
        let cm = CostModel::paper();
        let cx = SearchContext::build(&eg, &cm);
        let cands = cx.candidates(ax);
        assert_eq!(cands.len(), 1, "dominated mul must be pruned: {cands:?}");
        assert_eq!(cands[0].op, Op::Add);
        assert!(cx.dominance_pruned() >= 1);
    }

    #[test]
    fn domination_respects_cost_and_subset_direction() {
        // div(x) vs neg(x): same child set {x} but div is heavier — only
        // the cheap node survives. neg(x) vs sub(x, y): neg's set is the
        // subset at equal-or-lower cost, sub is pruned; the reverse
        // (superset at lower cost) must NOT prune.
        let mut eg = EGraph::new();
        let x = eg.add(Node::sym("x"));
        let y = eg.add(Node::sym("y"));
        let n = eg.add(Node::new(Op::Neg, vec![x]));
        let s = eg.add(Node::new(Op::Sub, vec![x, y]));
        eg.union(n, s);
        eg.rebuild();
        let cm = CostModel::paper();
        let cx = SearchContext::build(&eg, &cm);
        assert_eq!(cx.candidates(n).len(), 1);
        assert_eq!(cx.candidates(n)[0].op, Op::Neg);

        // heavy single-child node vs cheap two-child node: no domination
        // either way (cost and subset point in opposite directions)
        let mut eg2 = EGraph::new();
        let x2 = eg2.add(Node::sym("x"));
        let y2 = eg2.add(Node::sym("y"));
        let d = eg2.add(Node::new(Op::Div, vec![x2, x2]));
        let m = eg2.add(Node::new(Op::Mul, vec![x2, y2]));
        eg2.union(d, m);
        eg2.rebuild();
        let cx2 = SearchContext::build(&eg2, &cm);
        assert_eq!(cx2.candidates(d).len(), 2, "neither node dominates the other");
    }

    #[test]
    fn root_lower_bound_is_admissible_and_reaches_tree_bound() {
        // on a pure tree the forced closure covers the whole term, so
        // both the legacy and the LP bound equal the exact cost
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let r = eg.add(Node::new(Op::Mul, vec![ab, a]));
        let cm = CostModel::paper();
        let cx = SearchContext::build(&eg, &cm);
        let res = extract_exact(&eg, &[r], &cm, Duration::from_secs(1));
        assert_eq!(cx.root_lower_bound(&[r]), res.cost, "LP bound is tight on trees");
        assert_eq!(cx.forced_lower_bound(&[r]), res.cost, "forced bound is tight on trees");
    }

    #[test]
    fn orbit_collapse_prunes_commuted_candidates_without_dominance() {
        // add(a, b) and add(b, a): same op, same child multiset — one
        // orbit. With dominance disabled, only symmetry breaking can
        // collapse it.
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let ba = eg.add(Node::new(Op::Add, vec![b, a]));
        eg.union(ab, ba);
        eg.rebuild();
        let cm = CostModel::paper();
        let cx = SearchContext::build_with(
            &eg,
            &cm,
            &ContextOptions { orbit: true, dominance: false, closure_dominance: false },
        );
        assert_eq!(cx.candidates(ab).len(), 1, "one representative per orbit");
        assert_eq!(cx.orbit_pruned(), 1);
        // the unpruned context keeps both commuted nodes
        let raw = SearchContext::build_with(
            &eg,
            &cm,
            &ContextOptions { orbit: false, dominance: false, closure_dominance: false },
        );
        assert_eq!(raw.candidates(ab).len(), 2);
        assert_eq!(raw.orbit_pruned(), 0);
    }

    #[test]
    fn orbit_keeps_distinct_child_multisets() {
        // add(a, a) and add(a, b) share the op but not the multiset:
        // different orbits, both survive symmetry breaking.
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let aa = eg.add(Node::new(Op::Add, vec![a, a]));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        eg.union(aa, ab);
        eg.rebuild();
        let cm = CostModel::paper();
        let cx = SearchContext::build_with(
            &eg,
            &cm,
            &ContextOptions { orbit: true, dominance: false, closure_dominance: false },
        );
        assert_eq!(cx.candidates(aa).len(), 2, "distinct multisets are not an orbit");
    }

    #[test]
    fn chain_closure_decides_singleton_chains_for_free() {
        // a pure chain of single-candidate classes is fully decided at
        // seed time: the search explores exactly one node
        let mut eg = EGraph::new();
        let mut cur = eg.add(Node::sym("x"));
        for _ in 0..40 {
            cur = eg.add(Node::new(Op::Neg, vec![cur]));
        }
        let cm = CostModel::paper();
        let with = extract_exact_with(&eg, &[cur], &cm, &SearchOptions::default());
        assert!(with.proven_optimal);
        assert_eq!(with.explored, 1, "forced chains must consume no branch budget");

        // now hang the chain off a sharing trade-off where the greedy
        // incumbent is suboptimal: the improving path must decide every
        // chain class, so the unclosed search pays per link while the
        // chain closure keeps the tree collapsed
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let u = eg.add(Node::new(Op::Div, vec![a, b]));
        let uu = eg.add(Node::new(Op::Add, vec![u, u]));
        let v1 = eg.add(Node::new(Op::Mul, vec![a, b]));
        let v2 = eg.add(Node::new(Op::Mul, vec![b, c]));
        let vv = eg.add(Node::new(Op::Add, vec![v1, v2]));
        eg.union(uu, vv);
        eg.rebuild();
        let mut chain = u;
        for _ in 0..40 {
            chain = eg.add(Node::new(Op::Neg, vec![chain]));
        }
        let roots = [eg.find(uu), eg.find(chain)];
        let with = extract_exact_with(&eg, &roots, &cm, &SearchOptions::default());
        let without = extract_exact_with(
            &eg,
            &roots,
            &cm,
            &SearchOptions { chain_closure: false, ..SearchOptions::default() },
        );
        assert!(with.proven_optimal && without.proven_optimal);
        assert_eq!(with.cost, without.cost);
        assert!(with.cost < extract_greedy(&eg, &roots, &cm).dag_cost(&eg, &cm, &roots));
        assert!(without.explored > 40, "the unclosed search pays per chain link");
        assert!(with.explored < 10, "chain closure collapses the chain: {}", with.explored);
    }

    #[test]
    fn lp_bound_dominates_forced_bound_on_converging_candidates() {
        // root class R = { neg(p), neg(q) } where p = a/b + a and
        // q = a/b * b both require the heavy division: the forced bound
        // sees no common *direct* child and stops at min-op(R), while the
        // LP required-set fixpoint charges the division both candidates
        // converge on.
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let h = eg.add(Node::new(Op::Div, vec![a, b]));
        let p = eg.add(Node::new(Op::Add, vec![h, a]));
        let q = eg.add(Node::new(Op::Mul, vec![h, b]));
        let np = eg.add(Node::new(Op::Neg, vec![p]));
        let nq = eg.add(Node::new(Op::Neg, vec![q]));
        eg.union(np, nq);
        eg.rebuild();
        let cm = CostModel::paper();
        let cx = SearchContext::build(&eg, &cm);
        let root = eg.find(np);
        let forced = cx.forced_lower_bound(&[root]);
        let lp = cx.root_lower_bound(&[root]);
        assert!(lp > forced, "LP ({lp}) must beat forced ({forced}) here");
        // the forced bound sees no shared direct child: just neg 10
        assert_eq!(forced, 10);
        // the LP bound charges the deep convergence — the division and
        // its operands — but not p/q themselves (they are alternatives):
        // neg 10 + div 100 + a 1 + b 1 = 112
        assert_eq!(lp, 112);
        let res = extract_exact(&eg, &[root], &cm, Duration::from_secs(1));
        assert!(res.proven_optimal);
        assert!(lp <= res.cost, "bound stays admissible");
    }

    #[test]
    fn unpruned_search_agrees_with_strengthened_search() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let h = eg.add(Node::new(Op::Div, vec![a, b]));
        let r1 = eg.add(Node::new(Op::Add, vec![h, a]));
        let r2 = eg.add(Node::new(Op::Mul, vec![h, b]));
        Runner::new(all_rules()).run(&mut eg);
        let roots = [eg.find(r1), eg.find(r2)];
        let cm = CostModel::paper();
        let fast = extract_exact(&eg, &roots, &cm, Duration::from_secs(2));
        let slow = extract_unpruned(&eg, &roots, &cm, 50_000_000);
        assert!(fast.proven_optimal && slow.proven_optimal);
        assert_eq!(fast.cost, slow.cost, "pruning must not change the optimum");
        assert!(fast.explored <= slow.explored, "pruning must not grow the tree");
    }
}
