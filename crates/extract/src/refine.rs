//! DAG-aware incumbent refinement: deterministic primal heuristics that
//! improve a selection's *DAG* cost before branch-and-bound ever runs.
//!
//! The greedy extraction ([`crate::greedy`]) is tree-optimal per class and
//! therefore blind to sharing: it duplicates work whenever duplication is
//! cheaper *per use*. The exact search fixes that in principle, but on the
//! hardest suite kernels the optimal alignment of choices hides hundreds
//! of millions of branch nodes deep. These two heuristics find much of
//! that alignment in milliseconds:
//!
//! * [`climb`] — best-improvement hill climbing over single-class
//!   candidate switches, scored by true DAG cost over the roots, repeated
//!   to a fixpoint. Finds improvements where one class's choice should
//!   redirect onto subterms the rest of the selection already pays for
//!   (LU `jacld`: 790 → 720, beating a 100 M-node search's best of 770).
//! * [`marginal_greedy`] — a second greedy that commits classes one at a
//!   time (deterministic smallest-id order from the roots) and scores
//!   every candidate with *already-committed classes free*, recomputing
//!   the marginal-cost fixpoint after each commit. Where the plain greedy
//!   asks "what is cheapest in isolation", this asks "what is cheapest
//!   given what the selection already contains" (olbm `lbm_stream`:
//!   1983 → 1973).
//!
//! Neither heuristic can certify anything — the portfolio re-checks the
//! refined incumbent against the LP root bound and otherwise hands it to
//! the branch-and-bound race, which can only benefit from the tighter
//! upper bound. Both are fully deterministic: fixed iteration orders,
//! cost-then-candidate-order tie-breaking, no clocks.

use crate::bnb::SearchContext;
use crate::cost::CostModel;
use crate::selection::Selection;
use accsat_egraph::{EGraph, Id, Node};
use std::collections::BTreeSet;

/// Best-improvement hill climbing over single-class candidate switches.
///
/// `sel` must be a *total* cover (every finite-cost class chosen — what
/// [`crate::extract_greedy`] returns and what `fill_from` restores); the
/// result is again a total cover. Each pass visits the root-reachable
/// classes in ascending id order and applies the cheapest strictly
/// improving switch per class (ties keep the current node, then the
/// earlier candidate); passes repeat until a fixpoint. Terminates because
/// every accepted switch strictly lowers the DAG cost.
pub fn climb(
    eg: &EGraph,
    cx: &SearchContext<'_>,
    cm: &CostModel,
    roots: &[Id],
    mut sel: Selection,
) -> Selection {
    let mut cur_cost = sel.dag_cost(eg, cm, roots);
    loop {
        let mut improved = false;
        let mut classes = sel.reachable(eg, roots);
        classes.sort_unstable();
        for id in classes {
            let cur_node = sel.node(eg, id).clone();
            let mut best: (u64, Option<Node>) = (cur_cost, None);
            for cand in cx.candidates(id) {
                if cand == cur_node || sel.would_cycle(eg, id, &cand) {
                    continue;
                }
                let mut trial = sel.clone();
                trial.choose(eg, id, cand.clone());
                let c = trial.dag_cost(eg, cm, roots);
                if c < best.0 {
                    best = (c, Some(cand));
                }
            }
            if let (c, Some(node)) = best {
                sel.choose(eg, id, node);
                cur_cost = c;
                improved = true;
            }
        }
        if !improved {
            return sel;
        }
    }
}

/// Fixpoint marginal tree costs with the `included` classes free.
fn marginal_costs(
    eg: &EGraph,
    cx: &SearchContext<'_>,
    cm: &CostModel,
    included: &[bool],
) -> Vec<Option<u64>> {
    let n = included.len();
    let mut costs: Vec<Option<u64>> = vec![None; n];
    for (c, &inc) in included.iter().enumerate() {
        if inc {
            costs[c] = Some(0);
        }
    }
    let mut changed = true;
    while changed {
        changed = false;
        for c in 0..n {
            if included[c] {
                continue;
            }
            let mut best = costs[c];
            for cand in cx.candidates(Id::from(c)) {
                let mut total = Some(cm.op_cost(&cand.op));
                for &ch in &cand.children {
                    total = match (total, costs[eg.find(ch).index()]) {
                        (Some(a), Some(b)) => Some(a.saturating_add(b)),
                        _ => None,
                    };
                }
                if let Some(t) = total {
                    if best.is_none_or(|b| t < b) {
                        best = Some(t);
                    }
                }
            }
            if best != costs[c] {
                costs[c] = best;
                changed = true;
            }
        }
    }
    costs
}

/// Sequential marginal greedy: commit one class at a time (smallest
/// pending id first, starting from the roots), scoring each candidate by
/// op cost plus the marginal tree cost of its children with everything
/// already committed counted as free. The returned selection covers the
/// committed closure only — complete it with [`Selection::fill_from`]
/// before cost comparisons or codegen.
///
/// The marginal scorer counts an included class as free regardless of
/// well-foundedness, so on cyclic e-graphs a top-scoring candidate can
/// close a cycle through earlier commits; such candidates are skipped,
/// and if a class retains no acyclic candidate at all the heuristic gives
/// up and returns `None` (the caller keeps its previous incumbent).
pub fn marginal_greedy(
    eg: &EGraph,
    cx: &SearchContext<'_>,
    cm: &CostModel,
    roots: &[Id],
) -> Option<Selection> {
    let n = eg.classes().map(|(id, _)| id.index() + 1).max().unwrap_or(0);
    let mut included = vec![false; n];
    let mut sel = Selection::new();
    let mut queue: BTreeSet<usize> = roots.iter().map(|&r| eg.find(r).index()).collect();
    while let Some(&c) = queue.iter().next() {
        queue.remove(&c);
        if included[c] {
            continue;
        }
        included[c] = true;
        let costs = marginal_costs(eg, cx, cm, &included);
        let mut best: Option<(u64, Node)> = None;
        for cand in cx.candidates(Id::from(c)) {
            if sel.would_cycle(eg, Id::from(c), &cand) {
                continue;
            }
            let mut total = Some(cm.op_cost(&cand.op));
            for &ch in &cand.children {
                total = match (total, costs[eg.find(ch).index()]) {
                    (Some(a), Some(b)) => Some(a.saturating_add(b)),
                    _ => None,
                };
            }
            if let Some(t) = total {
                if best.as_ref().is_none_or(|(b, _)| t < *b) {
                    best = Some((t, cand));
                }
            }
        }
        let (_, node) = best?;
        for &ch in &node.children {
            let chi = eg.find(ch).index();
            if !included[chi] {
                queue.insert(chi);
            }
        }
        sel.choose(eg, Id::from(c), node);
    }
    Some(sel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::extract_greedy;
    use accsat_egraph::Op;

    /// The sharing trade-off where greedy is DAG-suboptimal: root 1's
    /// class holds `add(u, u)` (heavy shared u) and `add(v1, v2)` (two
    /// cheap muls); root 2 forces u anyway.
    fn tradeoff() -> (EGraph, Vec<Id>) {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let u = eg.add(Node::new(Op::Div, vec![a, b]));
        let uu = eg.add(Node::new(Op::Add, vec![u, u]));
        let v1 = eg.add(Node::new(Op::Mul, vec![a, b]));
        let v2 = eg.add(Node::new(Op::Mul, vec![b, c]));
        let vv = eg.add(Node::new(Op::Add, vec![v1, v2]));
        eg.union(uu, vv);
        eg.rebuild();
        let r2 = eg.add(Node::new(Op::Neg, vec![u]));
        let roots = vec![eg.find(uu), eg.find(r2)];
        (eg, roots)
    }

    #[test]
    fn climb_finds_the_sharing_switch() {
        let (eg, roots) = tradeoff();
        let cm = CostModel::paper();
        let cx = SearchContext::build(&eg, &cm);
        let greedy = extract_greedy(&eg, &roots, &cm);
        let g = greedy.dag_cost(&eg, &cm, &roots);
        let refined = climb(&eg, &cx, &cm, &roots, greedy);
        let r = refined.dag_cost(&eg, &cm, &roots);
        assert!(r < g, "climb must find the shared-u switch: {r} !< {g}");
        assert_eq!(r, 122); // add 10 + div 100 + a 1 + b 1 + neg 10
    }

    #[test]
    fn climb_is_deterministic_and_never_worse() {
        let (eg, roots) = tradeoff();
        let cm = CostModel::paper();
        let cx = SearchContext::build(&eg, &cm);
        let greedy = extract_greedy(&eg, &roots, &cm);
        let a = climb(&eg, &cx, &cm, &roots, greedy.clone());
        let b = climb(&eg, &cx, &cm, &roots, greedy.clone());
        for &r in &roots {
            assert_eq!(a.term_string(&eg, r), b.term_string(&eg, r));
        }
        assert!(a.dag_cost(&eg, &cm, &roots) <= greedy.dag_cost(&eg, &cm, &roots));
    }

    #[test]
    fn marginal_greedy_covers_roots_and_is_costable() {
        let (eg, roots) = tradeoff();
        let cm = CostModel::paper();
        let cx = SearchContext::build(&eg, &cm);
        let mut sel = marginal_greedy(&eg, &cx, &cm, &roots).expect("acyclic graph");
        sel.fill_from(&extract_greedy(&eg, &roots, &cm));
        let c = sel.dag_cost(&eg, &cm, &roots);
        // the marginal scorer sees u as free once root 2 commits it
        assert!(c <= 143, "marginal greedy must not be worse than plain greedy: {c}");
    }
}
