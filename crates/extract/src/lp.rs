//! LP-relaxation-style fractional lower bounds for DAG-cost extraction.
//!
//! The paper hands its §IV-B objective to the CBC LP solver; the classic
//! way to make branch-and-bound prove optimality fast is to bound every
//! subproblem with the *relaxation* of that integer program. This module
//! is the in-crate, dependency-free stand-in for that relaxation: an
//! iterative min-cost propagation over e-classes that credits shared
//! subterms, computed once per e-graph and queried in O(words) during the
//! search.
//!
//! # The relaxation
//!
//! The exact objective selects one node per required class and pays each
//! selected class's op cost once. Its hard part is *consistency*: sibling
//! subterms must agree on the choices of the classes they share. The
//! relaxation drops every constraint except requiredness itself and asks:
//! which classes does covering class `c` force, no matter which candidate
//! each class picks? That is the least fixpoint of
//!
//! ```text
//! S(c) = {c} ∪ ⋂ over candidates n of c ( ⋃ over children c' of n S(c') )
//! ```
//!
//! and the bound charges every forced class its cheapest surviving op:
//!
//! ```text
//! fractional_bound(c) = Σ over d ∈ S(c) of min_op(d)
//! ```
//!
//! The union inside gives *shared-subterm credit* — a class forced along
//! two sibling paths is counted once, exactly like the LP objective — and
//! the intersection keeps the bound admissible: a class is charged only
//! when **every** candidate forces it. Taking the least fixpoint (start
//! from `S(c) = {c}`, grow monotonically) under-approximates the true
//! forced set on cyclic e-graphs, which again errs on the admissible side.
//!
//! This strictly subsumes the forced-children closure of earlier
//! revisions: a direct forced child (in every candidate's child set) is in
//! every candidate's `⋃ S(child)` term, and the closure walk is the
//! transitive part of the fixpoint. What the fixpoint adds is
//! *convergence*: candidates with disjoint immediate children often agree
//! deeper down (every way to compute a stencil value loads the same
//! arrays), and those deep agreements are exactly what the big benchmark
//! kernels need charged to close their bound gaps.
//!
//! # Determinism and cost
//!
//! Required sets are bitsets (one row of `⌈n/64⌉` words per class) and the
//! fixpoint is a worklist iteration whose *result* is the unique least
//! fixpoint — processing order affects only the wall clock. Memory is
//! `n²/8` bytes (≈ 0.8 MB for the largest in-repo kernel); build time is
//! a few passes of word-parallel set algebra.

use crate::bnb::Cand;

/// Precomputed fractional lower bounds: per-class required sets and their
/// min-op mass. Built once per [`crate::bnb::SearchContext`]; the search
/// charges rows incrementally against its own `charged` bitset.
#[derive(Debug, Clone)]
pub struct LpBound {
    /// Number of class slots (canonical class indices are `< n`).
    n: usize,
    /// Words per bitset row: `⌈n/64⌉`.
    words: usize,
    /// Row-major required-set bitsets, `n × words`.
    sets: Vec<u64>,
    /// Per-class bound: Σ `min_op` over the class's required set.
    bounds: Vec<u64>,
}

impl LpBound {
    /// Compute the least-fixpoint required sets and their bounds from the
    /// surviving candidate lists and per-class minimum op costs.
    pub(crate) fn build(cands: &[Vec<Cand>], min_op: &[u64]) -> LpBound {
        let n = cands.len();
        let words = n.div_ceil(64);
        let mut sets = vec![0u64; n * words];
        for (c, row) in sets.chunks_mut(words.max(1)).enumerate() {
            if words > 0 {
                row[c / 64] |= 1u64 << (c % 64);
            }
        }

        // reverse edges: which classes re-evaluate when `child` grows
        let mut parents: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (c, list) in cands.iter().enumerate() {
            for cand in list {
                for child in &cand.child_set {
                    let ch = child.index();
                    if !parents[ch].contains(&(c as u32)) {
                        parents[ch].push(c as u32);
                    }
                }
            }
        }

        // chaotic worklist iteration to the least fixpoint; rows only grow
        let mut queue: std::collections::VecDeque<u32> = (0..n as u32).collect();
        let mut in_queue = vec![true; n];
        let mut union_row = vec![0u64; words];
        let mut inter_row = vec![0u64; words];
        while let Some(c) = queue.pop_front() {
            let c = c as usize;
            in_queue[c] = false;
            let list = &cands[c];
            if list.is_empty() || words == 0 {
                continue;
            }
            inter_row.fill(!0u64);
            for cand in list {
                union_row.fill(0);
                for child in &cand.child_set {
                    let row = &sets[child.index() * words..(child.index() + 1) * words];
                    for (u, &w) in union_row.iter_mut().zip(row) {
                        *u |= w;
                    }
                }
                for (i, &u) in inter_row.iter_mut().zip(union_row.iter()) {
                    *i &= u;
                }
            }
            inter_row[c / 64] |= 1u64 << (c % 64);
            let row = &mut sets[c * words..(c + 1) * words];
            let mut grew = false;
            for (w, &add) in row.iter_mut().zip(inter_row.iter()) {
                let new = *w | add;
                if new != *w {
                    *w = new;
                    grew = true;
                }
            }
            if grew {
                for &p in &parents[c] {
                    if !in_queue[p as usize] {
                        in_queue[p as usize] = true;
                        queue.push_back(p);
                    }
                }
            }
        }

        let bounds = (0..n)
            .map(|c| {
                let row = &sets[c * words..(c + 1) * words];
                let mut total = 0u64;
                for (wi, &w) in row.iter().enumerate() {
                    let mut m = w;
                    while m != 0 {
                        let b = m.trailing_zeros() as usize;
                        total += min_op[wi * 64 + b];
                        m &= m - 1;
                    }
                }
                total
            })
            .collect();

        LpBound { n, words, sets, bounds }
    }

    /// Number of class slots the bound was built over.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Is the bound empty (zero classes)?
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Words per bitset row (`⌈len/64⌉`).
    pub(crate) fn row_words(&self) -> usize {
        self.words
    }

    /// The required-set bitset row of one class (by canonical index).
    pub(crate) fn row(&self, idx: usize) -> &[u64] {
        &self.sets[idx * self.words..(idx + 1) * self.words]
    }

    /// The fractional lower bound of one class (by canonical index): the
    /// min-op mass of its required set. Admissible for the DAG cost of any
    /// selection covering the class.
    pub fn class_bound(&self, idx: usize) -> u64 {
        self.bounds[idx]
    }

    /// Does class `a`'s required set contain class `b` (canonical
    /// indices)? Test/diagnostic hook.
    pub fn requires(&self, a: usize, b: usize) -> bool {
        self.row(a)[b / 64] & (1u64 << (b % 64)) != 0
    }
}
