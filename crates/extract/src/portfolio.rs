//! Deadline-aware extraction portfolio: diversified branch-and-bound
//! searches racing on worker threads.
//!
//! The paper gives extraction a 30-second budget and falls back to the
//! incumbent when the LP solver runs out of time (§VII). This module
//! spends such a budget better than one search can: several
//! branch-and-bound configurations — different class orderings and
//! candidate orderings ([`SearchOptions`]) — explore *different* search
//! trees over the same e-graph, each seeded with the greedy incumbent,
//! and the best result wins.
//!
//! # Determinism
//!
//! Batch runs must be reproducible, so the portfolio is engineered to
//! return byte-identical selections for a fixed [`PortfolioConfig`]:
//!
//! * every worker's budget is a deterministic *explored-node count*, not a
//!   wall-clock slice (the wall-clock deadline exists as a safety valve
//!   and is generous enough that the node budget binds first);
//! * workers never exchange incumbents mid-search (sharing would make
//!   pruning timing-dependent), and no worker cancels another;
//! * the winner is chosen after **all** workers finish, by lowest cost
//!   with ties broken by the fixed strategy order — never by completion
//!   order.
//!
//! Consequently the result depends only on the e-graph, the cost model
//! and the config — not on thread scheduling — and a portfolio of width
//! `n` returns the same selection whether its workers run concurrently or
//! one after another.

use crate::bnb::{extract_exact_in, ClassOrder, SearchContext, SearchOptions};
use crate::cost::CostModel;
use crate::greedy::extract_greedy;
use crate::selection::Selection;
use accsat_egraph::{EGraph, Id};
use std::time::Duration;

/// The fixed strategy table the portfolio draws from, in priority order.
/// A portfolio of width `n` runs the first `n` entries.
const STRATEGIES: &[(&str, ClassOrder, bool)] = &[
    ("bnb-bestfirst", ClassOrder::BestFirst, false),
    ("bnb-heaviest", ClassOrder::HeaviestFirst, false),
    ("bnb-bestfirst-shared", ClassOrder::BestFirst, true),
    ("bnb-lifo", ClassOrder::Lifo, false),
];

/// Size of the fixed strategy table: the maximum useful portfolio width.
/// The autotuner harvests at this width so every strategy's selection
/// becomes a candidate.
pub const STRATEGY_COUNT: usize = STRATEGIES.len();

/// Portfolio configuration.
#[derive(Debug, Clone, Copy)]
pub struct PortfolioConfig {
    /// Number of racing branch-and-bound workers (clamped to the strategy
    /// table size). `1` runs the default strategy on the calling thread.
    pub threads: usize,
    /// Deterministic per-worker exploration budget (search-tree nodes).
    pub node_budget: u64,
    /// Wall-clock safety valve per worker, on top of the node budget.
    pub deadline: Duration,
}

impl Default for PortfolioConfig {
    fn default() -> PortfolioConfig {
        PortfolioConfig {
            threads: 2,
            node_budget: SearchOptions::default().node_budget,
            deadline: SearchOptions::default().deadline,
        }
    }
}

/// What one portfolio member reported.
#[derive(Debug, Clone)]
pub struct WorkerOutcome {
    /// Strategy name (from the fixed portfolio table, or `"greedy"` for
    /// the shared incumbent when the bound check short-circuits).
    pub strategy: &'static str,
    /// DAG cost of the worker's best selection.
    pub cost: u64,
    /// Did the worker prove its selection optimal?
    pub proven_optimal: bool,
    /// Search-tree nodes the worker explored.
    pub explored: u64,
}

/// Result of a portfolio extraction.
#[derive(Debug, Clone)]
pub struct PortfolioResult {
    /// The winning selection.
    pub selection: Selection,
    /// DAG cost of the winning selection.
    pub cost: u64,
    /// `true` when some member proved optimality (the winner then has the
    /// optimal cost).
    pub proven_optimal: bool,
    /// Strategy name of the winning member.
    pub winner: &'static str,
    /// Per-member outcomes, in strategy order.
    pub workers: Vec<WorkerOutcome>,
}

/// One member of a [`PortfolioHarvest`]: a complete selection with its
/// provenance, kept for downstream consumers (the autotuner) instead of
/// being discarded when it loses the static-cost race.
#[derive(Debug, Clone)]
pub struct HarvestedSelection {
    /// Strategy that produced this selection (`"greedy"` for the
    /// incumbent, otherwise a branch-and-bound strategy name).
    pub strategy: &'static str,
    /// The selection itself.
    pub selection: Selection,
    /// DAG cost under the cost model the portfolio ran with.
    pub cost: u64,
    /// Did this member prove its selection optimal?
    pub proven_optimal: bool,
    /// Search-tree nodes explored (0 for the greedy incumbent).
    pub explored: u64,
}

/// Everything the portfolio found, not just the winner — the keep-K API.
///
/// `members[0]` is always the greedy incumbent; the remaining members are
/// the racing branch-and-bound strategies in fixed strategy order. The
/// list is deterministic for a fixed e-graph, cost model and config.
#[derive(Debug, Clone)]
pub struct PortfolioHarvest {
    /// All member selections, greedy first then strategy order.
    pub members: Vec<HarvestedSelection>,
    /// Index of the winning member: lowest cost, ties broken toward the
    /// branch-and-bound members in strategy order (matching
    /// [`extract_portfolio`]), then the greedy incumbent.
    pub winner: usize,
}

/// Shared portfolio core: greedy incumbent plus (unless the incumbent is
/// proven optimal outright) the racing branch-and-bound strategies.
fn run_portfolio(
    eg: &EGraph,
    roots: &[Id],
    cm: &CostModel,
    config: &PortfolioConfig,
) -> (Selection, u64, bool, Vec<(&'static str, crate::bnb::ExactResult)>) {
    let greedy = extract_greedy(eg, roots, cm);
    let greedy_cost = greedy.dag_cost(eg, cm, roots);
    // built once, shared by every worker (the context is immutable and
    // Sync; each search only derives its own candidate orders from it)
    let cx = SearchContext::build(eg, cm);
    if greedy_cost <= cx.root_lower_bound(roots) {
        // the incumbent meets the admissible bound: provably optimal
        // without any branching
        return (greedy, greedy_cost, true, Vec::new());
    }

    let width = config.threads.clamp(1, STRATEGIES.len());
    let opts: Vec<(&'static str, SearchOptions)> = STRATEGIES[..width]
        .iter()
        .map(|&(name, order, prefer_shared)| {
            (
                name,
                SearchOptions {
                    order,
                    prefer_shared,
                    node_budget: config.node_budget,
                    deadline: config.deadline,
                },
            )
        })
        .collect();

    let results: Vec<(&'static str, crate::bnb::ExactResult)> = if width == 1 {
        vec![(opts[0].0, extract_exact_in(&cx, roots, &greedy, greedy_cost, &opts[0].1))]
    } else {
        std::thread::scope(|scope| {
            let cx = &cx;
            let greedy = &greedy;
            let handles: Vec<_> = opts
                .iter()
                .map(|(name, o)| {
                    let name = *name;
                    let o = *o;
                    scope
                        .spawn(move || (name, extract_exact_in(cx, roots, greedy, greedy_cost, &o)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("portfolio worker panicked")).collect()
        })
    };
    (greedy, greedy_cost, false, results)
}

/// Run the extraction portfolio over `roots`.
///
/// The greedy incumbent is computed first; if its cost already meets the
/// admissible root lower bound it is returned immediately as provably
/// optimal (no search threads are spawned). Otherwise `config.threads`
/// branch-and-bound workers race and the best deterministic result wins.
pub fn extract_portfolio(
    eg: &EGraph,
    roots: &[Id],
    cm: &CostModel,
    config: &PortfolioConfig,
) -> PortfolioResult {
    let (greedy, greedy_cost, short_circuit, results) = run_portfolio(eg, roots, cm, config);
    if short_circuit {
        return PortfolioResult {
            selection: greedy,
            cost: greedy_cost,
            proven_optimal: true,
            winner: "greedy",
            workers: vec![WorkerOutcome {
                strategy: "greedy",
                cost: greedy_cost,
                proven_optimal: true,
                explored: 0,
            }],
        };
    }

    let workers: Vec<WorkerOutcome> = results
        .iter()
        .map(|(name, r)| WorkerOutcome {
            strategy: name,
            cost: r.cost,
            proven_optimal: r.proven_optimal,
            explored: r.explored,
        })
        .collect();
    // winner: lowest cost, ties broken by strategy order — completion
    // order never matters
    let win = (0..results.len())
        .min_by_key(|&i| (results[i].1.cost, i))
        .expect("portfolio has at least one member");
    let proven = results.iter().any(|(_, r)| r.proven_optimal);
    let (winner, best) = &results[win];
    PortfolioResult {
        selection: best.selection.clone(),
        cost: best.cost,
        proven_optimal: proven,
        winner,
        workers,
    }
}

/// Keep-K extraction: run the portfolio and return **every** member's
/// selection instead of only the winner's.
///
/// This is the candidate harvest of the autotuning loop: the greedy
/// incumbent and each branch-and-bound strategy's best selection are all
/// structurally interesting points of the selection space (tree-optimal
/// duplication vs. DAG-optimal sharing vs. alternate shapes found by
/// different search orders), and a simulator — not the static cost model —
/// gets the final say between them.
///
/// When the greedy incumbent is proven optimal outright the harvest
/// contains just that one member, exactly as [`extract_portfolio`]
/// short-circuits. Members are *not* deduplicated here; callers that care
/// (the autotuner) dedup by [`Selection::content_hash`].
pub fn extract_portfolio_k(
    eg: &EGraph,
    roots: &[Id],
    cm: &CostModel,
    config: &PortfolioConfig,
) -> PortfolioHarvest {
    let (greedy, greedy_cost, short_circuit, results) = run_portfolio(eg, roots, cm, config);
    let mut members = vec![HarvestedSelection {
        strategy: "greedy",
        selection: greedy,
        cost: greedy_cost,
        proven_optimal: short_circuit,
        explored: 0,
    }];
    if short_circuit {
        return PortfolioHarvest { members, winner: 0 };
    }
    for (name, r) in results {
        members.push(HarvestedSelection {
            strategy: name,
            selection: r.selection,
            cost: r.cost,
            proven_optimal: r.proven_optimal,
            explored: r.explored,
        });
    }
    // same winner the plain portfolio reports: best strategy by
    // (cost, strategy order); the seeded incumbent can never beat its own
    // workers, so greedy only wins via the short-circuit above
    let winner = (1..members.len())
        .min_by_key(|&i| (members[i].cost, i))
        .expect("non-short-circuit portfolio has at least one strategy member");
    PortfolioHarvest { members, winner }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_egraph::{all_rules, Node, Op, Runner};

    fn sharing_graph() -> (EGraph, Vec<Id>) {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let h = eg.add(Node::new(Op::Div, vec![a, b]));
        let r1 = eg.add(Node::new(Op::Add, vec![h, a]));
        let r2 = eg.add(Node::new(Op::Mul, vec![h, b]));
        Runner::new(all_rules()).run(&mut eg);
        let roots = vec![eg.find(r1), eg.find(r2)];
        (eg, roots)
    }

    #[test]
    fn portfolio_matches_exact() {
        let (eg, roots) = sharing_graph();
        let cm = CostModel::paper();
        let exact = crate::bnb::extract_exact(&eg, &roots, &cm, std::time::Duration::from_secs(2));
        for threads in [1, 2, 4] {
            let cfg = PortfolioConfig { threads, ..PortfolioConfig::default() };
            let res = extract_portfolio(&eg, &roots, &cm, &cfg);
            assert_eq!(res.cost, exact.cost, "threads={threads}");
            assert!(res.proven_optimal, "threads={threads}");
        }
    }

    #[test]
    fn portfolio_is_deterministic_across_runs() {
        let (eg, roots) = sharing_graph();
        let cm = CostModel::paper();
        let cfg = PortfolioConfig { threads: 4, ..PortfolioConfig::default() };
        let first = extract_portfolio(&eg, &roots, &cm, &cfg);
        for _ in 0..3 {
            let again = extract_portfolio(&eg, &roots, &cm, &cfg);
            assert_eq!(again.cost, first.cost);
            assert_eq!(again.winner, first.winner);
            for r in &roots {
                assert_eq!(
                    again.selection.term_string(&eg, *r),
                    first.selection.term_string(&eg, *r),
                    "selections must be byte-identical run to run"
                );
            }
        }
    }

    #[test]
    fn greedy_short_circuit_on_trees() {
        // a pure tree: the greedy incumbent meets the root lower bound and
        // wins without spawning any search
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let r = eg.add(Node::new(Op::Mul, vec![ab, a]));
        let cm = CostModel::paper();
        let res = extract_portfolio(&eg, &[r], &cm, &PortfolioConfig::default());
        assert_eq!(res.winner, "greedy");
        assert!(res.proven_optimal);
        assert_eq!(res.workers.len(), 1);
        assert_eq!(res.workers[0].explored, 0);
    }

    #[test]
    fn zero_budget_returns_greedy_incumbent() {
        // root 1's class holds add(u, u) (heavy u, shared) and add(v1, v2)
        // (two cheap muls); root 2 forces u to be selected anyway. Greedy
        // is tree-optimal and picks the muls (DAG 143); reusing u is the
        // DAG optimum (122). The admissible bound (120) stays below it, so
        // the short-circuit cannot fire and the one-node budget must stop
        // every worker before any improvement.
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let u = eg.add(Node::new(Op::Div, vec![a, b]));
        let uu = eg.add(Node::new(Op::Add, vec![u, u]));
        let v1 = eg.add(Node::new(Op::Mul, vec![a, b]));
        let v2 = eg.add(Node::new(Op::Mul, vec![b, c]));
        let vv = eg.add(Node::new(Op::Add, vec![v1, v2]));
        eg.union(uu, vv);
        eg.rebuild();
        let r2 = eg.add(Node::new(Op::Neg, vec![u]));
        let roots = vec![eg.find(uu), eg.find(r2)];
        let cm = CostModel::paper();
        let cfg = PortfolioConfig { threads: 2, node_budget: 1, ..PortfolioConfig::default() };
        let res = extract_portfolio(&eg, &roots, &cm, &cfg);
        assert!(!res.proven_optimal);
        let g = extract_greedy(&eg, &roots, &cm);
        assert_eq!(res.cost, g.dag_cost(&eg, &cm, &roots));
        // with a real budget the portfolio then beats the incumbent
        let res2 = extract_portfolio(&eg, &roots, &cm, &PortfolioConfig::default());
        assert!(res2.proven_optimal);
        assert!(res2.cost < res.cost);
    }

    #[test]
    fn harvest_keeps_greedy_and_all_strategies() {
        let (eg, roots) = sharing_graph();
        let cm = CostModel::paper();
        let cfg = PortfolioConfig { threads: 3, ..PortfolioConfig::default() };
        let harvest = extract_portfolio_k(&eg, &roots, &cm, &cfg);
        let plain = extract_portfolio(&eg, &roots, &cm, &cfg);
        assert_eq!(harvest.members[0].strategy, "greedy");
        if harvest.members.len() > 1 {
            // keep-K must agree with the plain portfolio on the winner
            assert_eq!(harvest.members.len(), 4, "greedy + 3 strategies");
            let w = &harvest.members[harvest.winner];
            assert_eq!(w.cost, plain.cost);
            assert_eq!(w.strategy, plain.winner);
            for r in &roots {
                assert_eq!(w.selection.term_string(&eg, *r), plain.selection.term_string(&eg, *r));
            }
        }
        // every member is a complete, costable selection
        for m in &harvest.members {
            assert_eq!(m.selection.dag_cost(&eg, &cm, &roots), m.cost);
        }
    }

    #[test]
    fn harvest_short_circuit_is_single_member() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let r = eg.add(Node::new(Op::Mul, vec![ab, a]));
        let cm = CostModel::paper();
        let harvest = extract_portfolio_k(&eg, &[r], &cm, &PortfolioConfig::default());
        assert_eq!(harvest.members.len(), 1);
        assert_eq!(harvest.winner, 0);
        assert!(harvest.members[0].proven_optimal);
    }

    #[test]
    fn harvest_members_hash_dedup() {
        // on the zero-budget graph every strategy returns the greedy
        // incumbent, so all member hashes collapse to one
        let (eg, roots) = sharing_graph();
        let cm = CostModel::paper();
        let cfg = PortfolioConfig { threads: 4, node_budget: 1, ..PortfolioConfig::default() };
        let harvest = extract_portfolio_k(&eg, &roots, &cm, &cfg);
        let h0 = harvest.members[0].selection.content_hash(&eg, &roots);
        for m in &harvest.members {
            if m.cost == harvest.members[0].cost {
                assert_eq!(m.selection.content_hash(&eg, &roots), h0);
            }
        }
    }
}
