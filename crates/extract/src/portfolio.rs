//! Deadline-aware extraction portfolio: diversified branch-and-bound
//! searches racing on worker threads.
//!
//! The paper gives extraction a 30-second budget and falls back to the
//! incumbent when the LP solver runs out of time (§VII). This module
//! spends such a budget better than one search can: several
//! branch-and-bound configurations — different class orderings and
//! candidate orderings ([`SearchOptions`]) — explore *different* search
//! trees over the same e-graph, each seeded with the greedy incumbent,
//! and the best result wins.
//!
//! # Determinism
//!
//! Batch runs must be reproducible, so the portfolio is engineered to
//! return byte-identical selections for a fixed [`PortfolioConfig`]:
//!
//! * every worker's budget is a deterministic *explored-node count*, not a
//!   wall-clock slice (the wall-clock deadline exists as a safety valve
//!   and is generous enough that the node budget binds first);
//! * workers never exchange incumbents mid-search (sharing would make
//!   pruning timing-dependent), and no worker cancels another;
//! * the winner is chosen after **all** workers finish, by lowest cost
//!   with ties broken by the fixed strategy order — never by completion
//!   order.
//!
//! Consequently the result depends only on the e-graph, the cost model
//! and the config — not on thread scheduling — and a portfolio of width
//! `n` returns the same selection whether its workers run concurrently or
//! one after another.

use crate::bnb::{extract_exact_in, ClassOrder, SearchContext, SearchOptions};
use crate::cost::CostModel;
use crate::greedy::extract_greedy;
use crate::selection::Selection;
use accsat_egraph::{EGraph, Id, ThreadBudget};
use accsat_obs::trace;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// The fixed strategy table the portfolio draws from, in priority order.
/// A portfolio of width `n` runs the first `n` entries.
const STRATEGIES: &[(&str, ClassOrder, bool)] = &[
    ("bnb-bestfirst", ClassOrder::BestFirst, false),
    ("bnb-heaviest", ClassOrder::HeaviestFirst, false),
    ("bnb-bestfirst-shared", ClassOrder::BestFirst, true),
    ("bnb-lifo", ClassOrder::Lifo, false),
];

/// Size of the fixed strategy table: the maximum useful portfolio width.
/// The autotuner harvests at this width so every strategy's selection
/// becomes a candidate.
pub const STRATEGY_COUNT: usize = STRATEGIES.len();

/// Map a strategy name (e.g. read back from a serialized cache entry) to
/// the interned `&'static str` the portfolio reports. `None` for unknown
/// names — the cache layer treats that as a corrupt entry and re-extracts.
pub fn intern_strategy(name: &str) -> Option<&'static str> {
    ["greedy", "refine"]
        .into_iter()
        .chain(STRATEGIES.iter().map(|&(n, _, _)| n))
        .find(|&n| n == name)
}

/// Portfolio configuration.
#[derive(Debug, Clone, Copy)]
pub struct PortfolioConfig {
    /// Number of racing branch-and-bound workers (clamped to the strategy
    /// table size). `1` runs the default strategy on the calling thread.
    pub threads: usize,
    /// Deterministic per-worker exploration budget (search-tree nodes).
    pub node_budget: u64,
    /// Wall-clock safety valve per worker, on top of the node budget.
    pub deadline: Duration,
}

impl Default for PortfolioConfig {
    fn default() -> PortfolioConfig {
        PortfolioConfig {
            threads: 2,
            node_budget: SearchOptions::default().node_budget,
            deadline: SearchOptions::default().deadline,
        }
    }
}

/// What one portfolio member reported.
#[derive(Debug, Clone)]
pub struct WorkerOutcome {
    /// Strategy name: from the fixed portfolio table, or `"greedy"` /
    /// `"refine"` for the shared incumbent member (always listed first;
    /// also the sole member when the bound check short-circuits).
    pub strategy: &'static str,
    /// DAG cost of the worker's best selection.
    pub cost: u64,
    /// Did the worker prove its selection optimal?
    pub proven_optimal: bool,
    /// Search-tree nodes the worker explored.
    pub explored: u64,
}

/// Result of a portfolio extraction.
#[derive(Debug, Clone)]
pub struct PortfolioResult {
    /// The winning selection.
    pub selection: Selection,
    /// DAG cost of the winning selection.
    pub cost: u64,
    /// `true` when some member proved optimality (the winner then has the
    /// optimal cost).
    pub proven_optimal: bool,
    /// Strategy name of the winning member.
    pub winner: &'static str,
    /// Per-member outcomes, in strategy order.
    pub workers: Vec<WorkerOutcome>,
    /// The strongest certified lower bound on the optimal DAG cost: the
    /// winning cost when `proven_optimal`, otherwise the static
    /// LP-relaxation root bound shared by every member.
    /// `cost - lower_bound` is the kernel's reported *bound gap*.
    pub lower_bound: u64,
    /// Candidates removed per pruning layer while building the shared
    /// [`SearchContext`] (deterministic — a function of the e-graph and
    /// cost model only). In layer order: orbit, dominance, closure.
    pub pruned: [usize; 3],
}

/// One member of a [`PortfolioHarvest`]: a complete selection with its
/// provenance, kept for downstream consumers (the autotuner) instead of
/// being discarded when it loses the static-cost race.
#[derive(Debug, Clone)]
pub struct HarvestedSelection {
    /// Strategy that produced this selection: `"greedy"` for the
    /// incumbent, `"refine"` for the DAG-aware refinement stage, or a
    /// branch-and-bound strategy name.
    pub strategy: &'static str,
    /// The selection itself.
    pub selection: Selection,
    /// DAG cost under the cost model the portfolio ran with.
    pub cost: u64,
    /// Did this member prove its selection optimal?
    pub proven_optimal: bool,
    /// Search-tree nodes explored (0 for the greedy incumbent).
    pub explored: u64,
}

/// Everything the portfolio found, not just the winner — the keep-K API.
///
/// `members[0]` is always the greedy incumbent; a `"refine"` member
/// follows whenever the refinement stage strictly improved on greedy;
/// the racing branch-and-bound strategies come after, in fixed strategy
/// order. Look members up by `strategy` name, not by position. The list
/// is deterministic for a fixed e-graph, cost model and config.
#[derive(Debug, Clone)]
pub struct PortfolioHarvest {
    /// All member selections: greedy, then the refined incumbent when it
    /// improves, then strategy order.
    pub members: Vec<HarvestedSelection>,
    /// Index of the winning member: lowest cost, ties broken toward the
    /// earlier member (matching [`extract_portfolio`] — a search only
    /// beats the incumbent it was seeded with by strictly improving).
    pub winner: usize,
    /// The strongest certified lower bound on the optimal DAG cost under
    /// the portfolio's cost model (see [`PortfolioResult::lower_bound`]).
    pub lower_bound: u64,
}

/// What the shared portfolio core produced.
struct PortfolioCore {
    /// The greedy incumbent (always computed, always a total cover).
    greedy: Selection,
    /// DAG cost of the greedy incumbent.
    greedy_cost: u64,
    /// The refined incumbent the searches were seeded with ("greedy" when
    /// refinement found nothing strictly better).
    incumbent: Selection,
    /// DAG cost of the refined incumbent.
    incumbent_cost: u64,
    /// Name of the incumbent member: `"greedy"` or `"refine"`.
    incumbent_name: &'static str,
    /// The incumbent met the LP root bound: provably optimal, no search.
    short_circuit: bool,
    /// The LP-relaxation root lower bound.
    root_bound: u64,
    /// Candidates removed by the orbit / dominance / closure pruning
    /// layers of the shared search context.
    pruned: [usize; 3],
    /// Per-strategy search results (empty on short circuit).
    results: Vec<(&'static str, crate::bnb::ExactResult)>,
}

/// Shared portfolio core: greedy incumbent, DAG-aware refinement
/// ([`crate::refine`]), then — unless some incumbent already meets the LP
/// root bound — the racing branch-and-bound strategies, every one seeded
/// with the best refined incumbent.
fn run_portfolio(
    eg: &EGraph,
    roots: &[Id],
    cm: &CostModel,
    config: &PortfolioConfig,
    budget: Option<&ThreadBudget>,
) -> PortfolioCore {
    let greedy = {
        let _span = trace::span("extract", "greedy");
        extract_greedy(eg, roots, cm)
    };
    let greedy_cost = greedy.dag_cost(eg, cm, roots);
    // built once, shared by every worker (the context is immutable and
    // Sync; each search only derives its own candidate orders from it)
    let cx = {
        let _span = trace::span("extract", "context.build");
        SearchContext::build(eg, cm)
    };
    let pruned = [cx.orbit_pruned(), cx.dominance_pruned(), cx.closure_pruned()];
    let root_bound = cx.root_lower_bound(roots);
    if greedy_cost <= root_bound {
        // the incumbent meets the admissible bound: provably optimal
        // without any branching (and with no refinement wall cost)
        return PortfolioCore {
            incumbent: greedy.clone(),
            incumbent_cost: greedy_cost,
            incumbent_name: "greedy",
            greedy,
            greedy_cost,
            short_circuit: true,
            root_bound,
            pruned,
            results: Vec::new(),
        };
    }

    let refine_span = trace::span("extract", "refine");
    // DAG-aware refinement: hill-climb the greedy incumbent, and run the
    // sequential marginal greedy (completed from the greedy cover) with a
    // climb on top; the cheapest deterministic result seeds every search.
    // Ties prefer the plain greedy so unimprovable kernels keep their
    // previous selections byte-for-byte.
    let climbed = crate::refine::climb(eg, &cx, cm, roots, greedy.clone());
    let climbed_cost = climbed.dag_cost(eg, cm, roots);
    let marginal = crate::refine::marginal_greedy(eg, &cx, cm, roots).map(|mut m| {
        m.fill_from(&greedy);
        let m = crate::refine::climb(eg, &cx, cm, roots, m);
        let c = m.dag_cost(eg, cm, roots);
        (m, c)
    });
    let marginal_cost = marginal.as_ref().map_or(u64::MAX, |&(_, c)| c);
    let (incumbent, incumbent_cost, incumbent_name) =
        if climbed_cost < greedy_cost && climbed_cost <= marginal_cost {
            (climbed, climbed_cost, "refine")
        } else if marginal_cost < greedy_cost {
            let (m, c) = marginal.expect("cost came from Some");
            (m, c, "refine")
        } else {
            (greedy.clone(), greedy_cost, "greedy")
        };
    drop(refine_span);
    if incumbent_cost <= root_bound {
        // the refined incumbent meets the bound: proven without search
        return PortfolioCore {
            greedy,
            greedy_cost,
            incumbent,
            incumbent_cost,
            incumbent_name,
            short_circuit: true,
            root_bound,
            pruned,
            results: Vec::new(),
        };
    }

    // `config.threads` fixes WHICH strategies run (the first `want` table
    // entries) and therefore the result set; how many OS threads actually
    // drain them is a separate, output-invisible question answered by the
    // shared budget when one is installed (two-level pool) or by `want`
    // itself when running standalone.
    let want = config.threads.clamp(1, STRATEGIES.len());
    let opts: Vec<(&'static str, SearchOptions)> = STRATEGIES[..want]
        .iter()
        .map(|&(name, order, prefer_shared)| {
            (
                name,
                SearchOptions {
                    order,
                    prefer_shared,
                    node_budget: config.node_budget,
                    deadline: config.deadline,
                    ..SearchOptions::default()
                },
            )
        })
        .collect();

    let (width, _lease) = accsat_egraph::pool::fanout_width(budget, want, opts.len());
    let results: Vec<(&'static str, crate::bnb::ExactResult)> = if width <= 1 {
        opts.iter()
            .map(|(name, o)| {
                let _span = trace::span_named("extract.bnb", || name.to_string());
                (*name, extract_exact_in(&cx, roots, &incumbent, incumbent_cost, o))
            })
            .collect()
    } else {
        // atomic-cursor drain into per-strategy slots: workers pick the
        // next undone strategy, results land indexed by strategy — never
        // by completion order — so the join below is deterministic.
        let slots: Vec<Mutex<Option<crate::bnb::ExactResult>>> =
            opts.iter().map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        {
            let (cx, incumbent, opts, slots, next) = (&cx, &incumbent, &opts, &slots, &next);
            let drain = move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((name, o)) = opts.get(i) else { break };
                let _span = trace::span_named("extract.bnb", || name.to_string());
                let r = extract_exact_in(cx, roots, incumbent, incumbent_cost, o);
                *slots[i].lock().expect("portfolio slot") = Some(r);
            };
            std::thread::scope(|scope| {
                for _ in 1..width {
                    scope.spawn(drain);
                }
                drain();
            });
        }
        opts.iter()
            .zip(slots)
            .map(|((name, _), slot)| {
                (*name, slot.into_inner().expect("portfolio slot").expect("strategy drained"))
            })
            .collect()
    };
    PortfolioCore {
        greedy,
        greedy_cost,
        incumbent,
        incumbent_cost,
        incumbent_name,
        short_circuit: false,
        root_bound,
        pruned,
        results,
    }
}

/// Run the extraction portfolio over `roots`.
///
/// The greedy incumbent is computed first; if its cost already meets the
/// admissible LP root bound it is returned immediately as provably
/// optimal. Otherwise the DAG-aware refinement heuristics
/// ([`crate::refine`]) improve the incumbent (re-checking the bound),
/// then `config.threads` branch-and-bound workers race from the refined
/// incumbent and the best deterministic result wins.
pub fn extract_portfolio(
    eg: &EGraph,
    roots: &[Id],
    cm: &CostModel,
    config: &PortfolioConfig,
) -> PortfolioResult {
    extract_portfolio_budgeted(eg, roots, cm, config, None)
}

/// [`extract_portfolio`] wired into a shared [`ThreadBudget`]: the racing
/// strategies (still the first `config.threads` table entries, so the
/// result is identical) are drained by the calling thread plus however
/// many spare permits the budget grants for the duration of the race.
/// `None` behaves exactly like the plain entry point.
pub fn extract_portfolio_budgeted(
    eg: &EGraph,
    roots: &[Id],
    cm: &CostModel,
    config: &PortfolioConfig,
    budget: Option<&ThreadBudget>,
) -> PortfolioResult {
    let core = run_portfolio(eg, roots, cm, config, budget);
    if core.short_circuit {
        return PortfolioResult {
            selection: core.incumbent,
            cost: core.incumbent_cost,
            proven_optimal: true,
            winner: core.incumbent_name,
            workers: vec![WorkerOutcome {
                strategy: core.incumbent_name,
                cost: core.incumbent_cost,
                proven_optimal: true,
                explored: 0,
            }],
            lower_bound: core.incumbent_cost,
            pruned: core.pruned,
        };
    }

    let mut workers: Vec<WorkerOutcome> = vec![WorkerOutcome {
        strategy: core.incumbent_name,
        cost: core.incumbent_cost,
        proven_optimal: false,
        explored: 0,
    }];
    workers.extend(core.results.iter().map(|(name, r)| WorkerOutcome {
        strategy: name,
        cost: r.cost,
        proven_optimal: r.proven_optimal,
        explored: r.explored,
    }));
    // winner: lowest cost, ties broken by member order (the refined
    // incumbent first, then strategies) — completion order never matters.
    // Searches are seeded with the incumbent, so a strategy only wins by
    // strictly improving on it.
    let proven = core.results.iter().any(|(_, r)| r.proven_optimal);
    let win = (0..core.results.len())
        .min_by_key(|&i| (core.results[i].1.cost, i))
        .expect("portfolio has at least one member");
    let (winner, best) = &core.results[win];
    let (selection, cost, winner) = if best.cost < core.incumbent_cost {
        (best.selection.clone(), best.cost, *winner)
    } else {
        (core.incumbent, core.incumbent_cost, core.incumbent_name)
    };
    PortfolioResult {
        selection,
        cost,
        proven_optimal: proven,
        winner,
        workers,
        lower_bound: if proven { cost } else { core.root_bound },
        pruned: core.pruned,
    }
}

/// Keep-K extraction: run the portfolio and return **every** member's
/// selection instead of only the winner's.
///
/// This is the candidate harvest of the autotuning loop: the greedy
/// incumbent and each branch-and-bound strategy's best selection are all
/// structurally interesting points of the selection space (tree-optimal
/// duplication vs. DAG-optimal sharing vs. alternate shapes found by
/// different search orders), and a simulator — not the static cost model —
/// gets the final say between them.
///
/// When the greedy incumbent is proven optimal outright the harvest
/// contains just that one member, exactly as [`extract_portfolio`]
/// short-circuits. Members are *not* deduplicated here; callers that care
/// (the autotuner) dedup by [`Selection::content_hash`].
pub fn extract_portfolio_k(
    eg: &EGraph,
    roots: &[Id],
    cm: &CostModel,
    config: &PortfolioConfig,
) -> PortfolioHarvest {
    extract_portfolio_k_budgeted(eg, roots, cm, config, None)
}

/// [`extract_portfolio_k`] on a shared [`ThreadBudget`] (see
/// [`extract_portfolio_budgeted`]); the harvest is identical for any
/// budget state, including `None`.
pub fn extract_portfolio_k_budgeted(
    eg: &EGraph,
    roots: &[Id],
    cm: &CostModel,
    config: &PortfolioConfig,
    budget: Option<&ThreadBudget>,
) -> PortfolioHarvest {
    let core = run_portfolio(eg, roots, cm, config, budget);
    let mut members = vec![HarvestedSelection {
        strategy: "greedy",
        selection: core.greedy,
        cost: core.greedy_cost,
        proven_optimal: core.short_circuit && core.incumbent_name == "greedy",
        explored: 0,
    }];
    if core.incumbent_name != "greedy" {
        members.push(HarvestedSelection {
            strategy: core.incumbent_name,
            selection: core.incumbent,
            cost: core.incumbent_cost,
            proven_optimal: core.short_circuit,
            explored: 0,
        });
    }
    if core.short_circuit {
        // the proven member is the last pushed (greedy or refine)
        let winner = members.len() - 1;
        return PortfolioHarvest { members, winner, lower_bound: core.incumbent_cost };
    }
    for (name, r) in core.results {
        members.push(HarvestedSelection {
            strategy: name,
            selection: r.selection,
            cost: r.cost,
            proven_optimal: r.proven_optimal,
            explored: r.explored,
        });
    }
    // same winner the plain portfolio reports: lowest cost with ties
    // toward the earlier member (refined incumbent before the strategies,
    // which only beat their own seed by strictly improving on it; the
    // plain greedy at index 0 only wins when nothing improved on it)
    let winner = (0..members.len())
        .min_by_key(|&i| (members[i].cost, i))
        .expect("harvest always contains the greedy incumbent");
    let proven = members.iter().any(|m| m.proven_optimal);
    let lower_bound = if proven { members[winner].cost } else { core.root_bound };
    PortfolioHarvest { members, winner, lower_bound }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_egraph::{all_rules, Node, Op, Runner};

    fn sharing_graph() -> (EGraph, Vec<Id>) {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let h = eg.add(Node::new(Op::Div, vec![a, b]));
        let r1 = eg.add(Node::new(Op::Add, vec![h, a]));
        let r2 = eg.add(Node::new(Op::Mul, vec![h, b]));
        Runner::new(all_rules()).run(&mut eg);
        let roots = vec![eg.find(r1), eg.find(r2)];
        (eg, roots)
    }

    #[test]
    fn portfolio_matches_exact() {
        let (eg, roots) = sharing_graph();
        let cm = CostModel::paper();
        let exact = crate::bnb::extract_exact(&eg, &roots, &cm, std::time::Duration::from_secs(2));
        for threads in [1, 2, 4] {
            let cfg = PortfolioConfig { threads, ..PortfolioConfig::default() };
            let res = extract_portfolio(&eg, &roots, &cm, &cfg);
            assert_eq!(res.cost, exact.cost, "threads={threads}");
            assert!(res.proven_optimal, "threads={threads}");
        }
    }

    #[test]
    fn portfolio_is_deterministic_across_runs() {
        let (eg, roots) = sharing_graph();
        let cm = CostModel::paper();
        let cfg = PortfolioConfig { threads: 4, ..PortfolioConfig::default() };
        let first = extract_portfolio(&eg, &roots, &cm, &cfg);
        for _ in 0..3 {
            let again = extract_portfolio(&eg, &roots, &cm, &cfg);
            assert_eq!(again.cost, first.cost);
            assert_eq!(again.winner, first.winner);
            for r in &roots {
                assert_eq!(
                    again.selection.term_string(&eg, *r),
                    first.selection.term_string(&eg, *r),
                    "selections must be byte-identical run to run"
                );
            }
        }
    }

    #[test]
    fn budgeted_portfolio_is_identical_to_plain() {
        // an empty budget (race runs on the calling thread alone) and a
        // flush one (full fan-out) both reproduce the plain portfolio
        let (eg, roots) = sharing_graph();
        let cm = CostModel::paper();
        let cfg = PortfolioConfig { threads: 4, ..PortfolioConfig::default() };
        let plain = extract_portfolio(&eg, &roots, &cm, &cfg);
        for spare in [0, 8] {
            let budget = ThreadBudget::new(spare);
            let res = extract_portfolio_budgeted(&eg, &roots, &cm, &cfg, Some(&budget));
            assert_eq!(res.cost, plain.cost, "spare={spare}");
            assert_eq!(res.winner, plain.winner, "spare={spare}");
            for &r in &roots {
                assert_eq!(res.selection.term_string(&eg, r), plain.selection.term_string(&eg, r));
            }
            assert_eq!(budget.spare(), spare, "race must return every leased permit");
        }
    }

    #[test]
    fn greedy_short_circuit_on_trees() {
        // a pure tree: the greedy incumbent meets the root lower bound and
        // wins without spawning any search
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let r = eg.add(Node::new(Op::Mul, vec![ab, a]));
        let cm = CostModel::paper();
        let res = extract_portfolio(&eg, &[r], &cm, &PortfolioConfig::default());
        assert_eq!(res.winner, "greedy");
        assert!(res.proven_optimal);
        assert_eq!(res.workers.len(), 1);
        assert_eq!(res.workers[0].explored, 0);
    }

    #[test]
    fn refined_incumbent_meets_bound_and_short_circuits() {
        // root 1's class holds add(u, u) (heavy u, shared) and add(v1, v2)
        // (two cheap muls); root 2 forces u to be selected anyway. Greedy
        // is tree-optimal and picks the muls (DAG 143); reusing u is the
        // DAG optimum (122). The refinement stage finds the switch, the
        // LP root bound certifies it, and the portfolio proves optimality
        // without spawning a single search — even at a one-node budget.
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let u = eg.add(Node::new(Op::Div, vec![a, b]));
        let uu = eg.add(Node::new(Op::Add, vec![u, u]));
        let v1 = eg.add(Node::new(Op::Mul, vec![a, b]));
        let v2 = eg.add(Node::new(Op::Mul, vec![b, c]));
        let vv = eg.add(Node::new(Op::Add, vec![v1, v2]));
        eg.union(uu, vv);
        eg.rebuild();
        let r2 = eg.add(Node::new(Op::Neg, vec![u]));
        let roots = vec![eg.find(uu), eg.find(r2)];
        let cm = CostModel::paper();
        let g = extract_greedy(&eg, &roots, &cm).dag_cost(&eg, &cm, &roots);
        let cfg = PortfolioConfig { threads: 2, node_budget: 1, ..PortfolioConfig::default() };
        let res = extract_portfolio(&eg, &roots, &cm, &cfg);
        assert!(res.proven_optimal, "refine + LP bound must certify without search");
        assert_eq!(res.winner, "refine");
        assert!(res.cost < g, "refined {} must beat greedy {}", res.cost, g);
        assert_eq!(res.cost, 122);
        assert_eq!(res.lower_bound, 122);
        assert_eq!(res.workers.len(), 1);
        assert_eq!(res.workers[0].explored, 0);
        // a full-budget run agrees byte-for-byte
        let res2 = extract_portfolio(&eg, &roots, &cm, &PortfolioConfig::default());
        assert_eq!(res2.cost, res.cost);
        assert!(res2.proven_optimal);
        for &r in &roots {
            assert_eq!(res2.selection.term_string(&eg, r), res.selection.term_string(&eg, r));
        }
    }

    #[test]
    fn harvest_keeps_greedy_and_all_strategies() {
        let (eg, roots) = sharing_graph();
        let cm = CostModel::paper();
        let cfg = PortfolioConfig { threads: 3, ..PortfolioConfig::default() };
        let harvest = extract_portfolio_k(&eg, &roots, &cm, &cfg);
        let plain = extract_portfolio(&eg, &roots, &cm, &cfg);
        assert_eq!(harvest.members[0].strategy, "greedy");
        if harvest.members.len() > 1 {
            // keep-K must agree with the plain portfolio on the winner
            assert_eq!(harvest.members.len(), 4, "greedy + 3 strategies");
            let w = &harvest.members[harvest.winner];
            assert_eq!(w.cost, plain.cost);
            assert_eq!(w.strategy, plain.winner);
            for r in &roots {
                assert_eq!(w.selection.term_string(&eg, *r), plain.selection.term_string(&eg, *r));
            }
        }
        // every member is a complete, costable selection
        for m in &harvest.members {
            assert_eq!(m.selection.dag_cost(&eg, &cm, &roots), m.cost);
        }
    }

    #[test]
    fn harvest_includes_refined_member_when_it_improves() {
        // the uu/vv trade-off: refinement strictly beats greedy, so the
        // harvest carries both — greedy first, refine second — and the
        // winner agrees with the plain portfolio
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let u = eg.add(Node::new(Op::Div, vec![a, b]));
        let uu = eg.add(Node::new(Op::Add, vec![u, u]));
        let v1 = eg.add(Node::new(Op::Mul, vec![a, b]));
        let v2 = eg.add(Node::new(Op::Mul, vec![b, c]));
        let vv = eg.add(Node::new(Op::Add, vec![v1, v2]));
        eg.union(uu, vv);
        eg.rebuild();
        let r2 = eg.add(Node::new(Op::Neg, vec![u]));
        let roots = vec![eg.find(uu), eg.find(r2)];
        let cm = CostModel::paper();
        let cfg = PortfolioConfig::default();
        let harvest = extract_portfolio_k(&eg, &roots, &cm, &cfg);
        let plain = extract_portfolio(&eg, &roots, &cm, &cfg);
        assert_eq!(harvest.members[0].strategy, "greedy");
        assert_eq!(harvest.members[1].strategy, "refine");
        assert!(harvest.members[1].cost < harvest.members[0].cost);
        let w = &harvest.members[harvest.winner];
        assert_eq!(w.strategy, plain.winner);
        assert_eq!(w.cost, plain.cost);
        assert_eq!(harvest.lower_bound, plain.lower_bound);
        // every member is a complete, costable selection
        for m in &harvest.members {
            assert_eq!(m.selection.dag_cost(&eg, &cm, &roots), m.cost);
        }
    }

    #[test]
    fn harvest_short_circuit_is_single_member() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let r = eg.add(Node::new(Op::Mul, vec![ab, a]));
        let cm = CostModel::paper();
        let harvest = extract_portfolio_k(&eg, &[r], &cm, &PortfolioConfig::default());
        assert_eq!(harvest.members.len(), 1);
        assert_eq!(harvest.winner, 0);
        assert!(harvest.members[0].proven_optimal);
    }

    #[test]
    fn harvest_members_hash_dedup() {
        // on the zero-budget graph every strategy returns the greedy
        // incumbent, so all member hashes collapse to one
        let (eg, roots) = sharing_graph();
        let cm = CostModel::paper();
        let cfg = PortfolioConfig { threads: 4, node_budget: 1, ..PortfolioConfig::default() };
        let harvest = extract_portfolio_k(&eg, &roots, &cm, &cfg);
        let h0 = harvest.members[0].selection.content_hash(&eg, &roots);
        for m in &harvest.members {
            if m.cost == harvest.members[0].cost {
                assert_eq!(m.selection.content_hash(&eg, &roots), h0);
            }
        }
    }
}
