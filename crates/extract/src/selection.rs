//! A selection: one chosen e-node per (reachable) e-class.

use crate::cost::CostModel;
use accsat_egraph::{op_token, parse_op_token, EGraph, Id, Node};
use std::collections::HashMap;

/// Why a selection could not be walked from its roots.
///
/// Extractor-produced selections are acyclic and total over the roots'
/// closure by construction; the fuzz harness re-checks that contract with
/// [`Selection::try_reachable`] instead of trusting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionError {
    /// The chosen nodes form a cycle through this class.
    Cyclic(Id),
    /// A reachable class has no selected node.
    Missing(Id),
}

impl std::fmt::Display for SelectionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SelectionError::Cyclic(id) => write!(f, "cyclic selection at {id}"),
            SelectionError::Missing(id) => write!(f, "class {id} has no selected node"),
        }
    }
}

impl std::error::Error for SelectionError {}

/// One chosen representative node per canonical e-class.
#[derive(Debug, Clone, Default)]
pub struct Selection {
    choice: HashMap<Id, Node>,
}

impl Selection {
    /// Empty selection.
    pub fn new() -> Selection {
        Selection::default()
    }

    /// Record the chosen node for a class (id may be non-canonical).
    pub fn choose(&mut self, eg: &EGraph, id: Id, node: Node) {
        self.choice.insert(eg.find(id), node);
    }

    /// Chosen node for a class. Panics if the class was not selected —
    /// selections returned by the extractors always cover all reachable
    /// classes.
    pub fn node(&self, eg: &EGraph, id: Id) -> &Node {
        self.choice.get(&eg.find(id)).unwrap_or_else(|| panic!("class {id} has no selected node"))
    }

    /// Chosen node, if any.
    pub fn get(&self, eg: &EGraph, id: Id) -> Option<&Node> {
        self.choice.get(&eg.find(id))
    }

    /// Number of selected classes.
    pub fn len(&self) -> usize {
        self.choice.len()
    }

    /// Is the selection empty?
    pub fn is_empty(&self) -> bool {
        self.choice.is_empty()
    }

    /// Adopt `other`'s choice for every class this selection does not
    /// cover. Used to complete a minimal branch-and-bound selection (roots
    /// closure only) to the total cover the code generator expects —
    /// consumers also materialize classes that are not extraction roots,
    /// such as loop and branch conditions. Filling cannot create a cycle:
    /// the minimal selection is closed under children, so no path through
    /// it can return to a filled class.
    pub fn fill_from(&mut self, other: &Selection) {
        for (id, node) in &other.choice {
            self.choice.entry(*id).or_insert_with(|| node.clone());
        }
    }

    /// All classes reachable from `roots` through the selection, in
    /// children-before-parents (topological) order. Panics on a cyclic or
    /// incomplete selection — see [`Selection::try_reachable`] for the
    /// non-panicking variant.
    pub fn reachable(&self, eg: &EGraph, roots: &[Id]) -> Vec<Id> {
        match self.try_reachable(eg, roots) {
            Ok(order) => order,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Selection::reachable`] that reports a cyclic or incomplete
    /// selection as an error instead of panicking, so the fuzz harness can
    /// record the violated invariant and keep the campaign running.
    pub fn try_reachable(&self, eg: &EGraph, roots: &[Id]) -> Result<Vec<Id>, SelectionError> {
        let mut order = Vec::new();
        let mut state: HashMap<Id, u8> = HashMap::new(); // 1=visiting, 2=done
        fn go(
            sel: &Selection,
            eg: &EGraph,
            id: Id,
            state: &mut HashMap<Id, u8>,
            order: &mut Vec<Id>,
        ) -> Result<(), SelectionError> {
            let id = eg.find(id);
            match state.get(&id) {
                Some(2) => return Ok(()),
                Some(1) => return Err(SelectionError::Cyclic(id)),
                _ => {}
            }
            state.insert(id, 1);
            let node = sel.get(eg, id).ok_or(SelectionError::Missing(id))?.clone();
            for &c in &node.children {
                go(sel, eg, c, state, order)?;
            }
            state.insert(id, 2);
            order.push(id);
            Ok(())
        }
        for &r in roots {
            go(self, eg, r, &mut state, &mut order)?;
        }
        Ok(order)
    }

    /// True DAG cost: each reachable class's chosen op counted exactly once
    /// (the paper's LP objective).
    pub fn dag_cost(&self, eg: &EGraph, cm: &CostModel, roots: &[Id]) -> u64 {
        self.reachable(eg, roots).iter().map(|&id| cm.op_cost(&self.node(eg, id).op)).sum()
    }

    /// Tree cost of one class (children re-counted per use; egg's default
    /// objective, used for comparison in ablations).
    pub fn tree_cost(&self, eg: &EGraph, cm: &CostModel, id: Id) -> u64 {
        let node = self.node(eg, id);
        let kids: u64 = node.children.iter().map(|&c| self.tree_cost(eg, cm, c)).sum();
        cm.op_cost(&node.op).saturating_add(kids)
    }

    /// Would selecting `node` for class `id` close a cycle through the
    /// currently selected choices?
    pub fn would_cycle(&self, eg: &EGraph, id: Id, node: &Node) -> bool {
        let target = eg.find(id);
        let mut stack: Vec<Id> = node.children.iter().map(|&c| eg.find(c)).collect();
        let mut seen = std::collections::HashSet::new();
        while let Some(c) = stack.pop() {
            if c == target {
                return true;
            }
            if !seen.insert(c) {
                continue;
            }
            if let Some(n) = self.choice.get(&c) {
                stack.extend(n.children.iter().map(|&k| eg.find(k)));
            }
        }
        false
    }

    /// Content hash of the selection as seen from `roots`: a stable 64-bit
    /// FNV-1a digest over the chosen node of every reachable class, in
    /// deterministic children-before-parents order. Two selections hash
    /// equal exactly when they choose the same node for every class
    /// reachable from `roots` — the autotuner uses this to drop
    /// structurally identical candidates before spending simulation budget
    /// on them.
    ///
    /// **Invariant — root-reachable choices only.** Classes outside the
    /// roots' reachable closure never influence the generated kernel's
    /// computation, so they are excluded *on purpose*: a minimal
    /// branch-and-bound selection completed with [`Selection::fill_from`]
    /// hashes identically to the same selection completed from a
    /// different donor (or not completed at all), and the autotuner's
    /// dedup therefore collapses candidates that differ only in the
    /// cost-irrelevant filler. Hash the printed kernel instead if filler
    /// classes ever become observable.
    pub fn content_hash(&self, eg: &EGraph, roots: &[Id]) -> u64 {
        const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = FNV_OFFSET;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        for id in self.reachable(eg, roots) {
            let node = self.node(eg, id);
            mix(&(id.index() as u64).to_le_bytes());
            mix(node.op.name().as_bytes());
            mix(&(node.children.len() as u64).to_le_bytes());
            for &c in &node.children {
                mix(&(eg.find(c).index() as u64).to_le_bytes());
            }
        }
        h
    }

    /// Serialize the selection to the versioned line format used by the
    /// stage cache (`accsat-selection v1`). Entries are written sorted by
    /// class id, so equal selections serialize to equal bytes. Ids are the
    /// canonical ids of the e-graph the selection was extracted from — a
    /// cached selection is only meaningful against the *same* serialized
    /// e-graph snapshot, which is why the cache keys the selection level
    /// on a superset of the saturation key.
    pub fn serialize(&self) -> String {
        use std::fmt::Write as _;
        let mut entries: Vec<(&Id, &Node)> = self.choice.iter().collect();
        entries.sort_unstable();
        let mut out = String::new();
        let _ = writeln!(out, "accsat-selection v1 {}", entries.len());
        for (id, node) in entries {
            let _ = write!(out, "{} {} {}", id.index(), op_token(&node.op), node.children.len());
            for c in &node.children {
                let _ = write!(out, " {}", c.index());
            }
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Restore a selection from [`Selection::serialize`] output. Errors on
    /// version mismatch or corruption (the cache maps errors to misses).
    pub fn deserialize(text: &str) -> Result<Selection, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty selection input")?;
        let mut h = header.split_whitespace();
        if (h.next(), h.next()) != (Some("accsat-selection"), Some("v1")) {
            return Err(format!("unsupported selection format {header:?}"));
        }
        let count: usize = h
            .next()
            .ok_or("missing selection count")?
            .parse()
            .map_err(|e| format!("bad selection count: {e}"))?;
        let mut choice = HashMap::with_capacity(count);
        for _ in 0..count {
            let line = lines.next().ok_or("truncated selection input")?;
            let mut toks = line.split_whitespace();
            let mut next = || toks.next().ok_or_else(|| format!("truncated line {line:?}"));
            let id: usize = next()?.parse().map_err(|e| format!("bad id in {line:?}: {e}"))?;
            let op = parse_op_token(next()?)?;
            let k: usize = next()?.parse().map_err(|e| format!("bad arity in {line:?}: {e}"))?;
            let mut children = Vec::with_capacity(k);
            for _ in 0..k {
                let c: usize = next()?.parse().map_err(|e| format!("bad child: {e}"))?;
                children.push(Id::from(c));
            }
            if choice.insert(Id::from(id), Node { op, children }).is_some() {
                return Err(format!("duplicate selection entry for class {id}"));
            }
        }
        if lines.next() != Some("end") {
            return Err("missing selection end marker".into());
        }
        Ok(Selection { choice })
    }

    /// Render the selected term for a root as an s-expression (debugging).
    pub fn term_string(&self, eg: &EGraph, id: Id) -> String {
        let node = self.node(eg, id);
        if node.children.is_empty() {
            node.op.name()
        } else {
            let kids: Vec<String> =
                node.children.iter().map(|&c| self.term_string(eg, c)).collect();
            format!("({} {})", node.op.name(), kids.join(" "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_egraph::{Node, Op};

    #[test]
    fn serialize_round_trips_and_is_sorted_stable() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let m = eg.add(Node::new(Op::Mul, vec![a, b]));
        let mut sel = Selection::new();
        sel.choose(&eg, m, Node::new(Op::Mul, vec![a, b]));
        sel.choose(&eg, a, Node::sym("a"));
        sel.choose(&eg, b, Node::sym("b"));
        let text = sel.serialize();
        let back = Selection::deserialize(&text).expect("round trip");
        assert_eq!(back.serialize(), text, "re-serialization must be byte-identical");
        assert_eq!(back.len(), sel.len());
        assert_eq!(back.node(&eg, m), sel.node(&eg, m));
        assert_eq!(back.dag_cost(&eg, &CostModel::paper(), &[m]), {
            sel.dag_cost(&eg, &CostModel::paper(), &[m])
        });
        // corruption and version mismatches are errors, not panics
        assert!(Selection::deserialize("accsat-selection v999 0\nend\n").is_err());
        assert!(Selection::deserialize(&text[..text.len() / 2]).is_err());
    }

    #[test]
    fn reachable_is_topo_ordered() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let r = eg.add(Node::new(Op::Mul, vec![ab, a]));
        let mut sel = Selection::new();
        for &(id, ref n) in &[
            (a, Node::sym("a")),
            (b, Node::sym("b")),
            (ab, Node::new(Op::Add, vec![a, b])),
            (r, Node::new(Op::Mul, vec![ab, a])),
        ] {
            sel.choose(&eg, id, n.clone());
        }
        let order = sel.reachable(&eg, &[r]);
        let pos = |x: Id| order.iter().position(|&y| y == eg.find(x)).unwrap();
        assert!(pos(a) < pos(ab));
        assert!(pos(b) < pos(ab));
        assert!(pos(ab) < pos(r));
        assert_eq!(order.len(), 4);
    }

    #[test]
    fn dag_vs_tree_cost() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let ab = eg.add(Node::new(Op::Add, vec![a, a]));
        let r = eg.add(Node::new(Op::Mul, vec![ab, ab]));
        let mut sel = Selection::new();
        sel.choose(&eg, a, Node::sym("a"));
        sel.choose(&eg, ab, Node::new(Op::Add, vec![a, a]));
        sel.choose(&eg, r, Node::new(Op::Mul, vec![ab, ab]));
        let cm = CostModel::paper();
        // DAG: a(1) + add(10) + mul(10) = 21
        assert_eq!(sel.dag_cost(&eg, &cm, &[r]), 21);
        // Tree: mul(10) + 2 * (add(10) + 2 * a(1)) = 34
        assert_eq!(sel.tree_cost(&eg, &cm, r), 34);
    }

    #[test]
    fn content_hash_distinguishes_choices() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let div = eg.add(Node::new(Op::Div, vec![a, b]));
        let mul = eg.add(Node::new(Op::Mul, vec![a, b]));
        eg.union(div, mul);
        eg.rebuild();
        let mut s1 = Selection::new();
        s1.choose(&eg, a, Node::sym("a"));
        s1.choose(&eg, b, Node::sym("b"));
        s1.choose(&eg, div, Node::new(Op::Div, vec![a, b]));
        let mut s2 = s1.clone();
        s2.choose(&eg, div, Node::new(Op::Mul, vec![a, b]));
        let roots = [div];
        // same selection hashes equal, different node choice hashes apart
        assert_eq!(s1.content_hash(&eg, &roots), s1.clone().content_hash(&eg, &roots));
        assert_ne!(s1.content_hash(&eg, &roots), s2.content_hash(&eg, &roots));
        // classes outside the reachable closure do not affect the hash
        let mut s3 = s2.clone();
        let c = eg.add(Node::sym("c"));
        s3.choose(&eg, c, Node::sym("c"));
        assert_eq!(s2.content_hash(&eg, &roots), s3.content_hash(&eg, &roots));
    }

    #[test]
    fn content_hash_ignores_fill_from_filler() {
        // a minimal selection covering only the root's closure, completed
        // by fill_from with two different donors: the donors differ in a
        // non-root class, so both completions (and the minimal selection
        // itself) must dedup to one content hash
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let root = eg.add(Node::new(Op::Add, vec![a, a]));
        let side = eg.add(Node::new(Op::Div, vec![a, b]));
        let side_alt = eg.add(Node::new(Op::Mul, vec![a, b]));
        eg.union(side, side_alt);
        eg.rebuild();
        let roots = [eg.find(root)];

        let mut minimal = Selection::new();
        minimal.choose(&eg, a, Node::sym("a"));
        minimal.choose(&eg, root, Node::new(Op::Add, vec![a, a]));
        let h_min = minimal.content_hash(&eg, &roots);

        let mut donor_div = minimal.clone();
        donor_div.choose(&eg, b, Node::sym("b"));
        donor_div.choose(&eg, side, Node::new(Op::Div, vec![a, b]));
        let mut donor_mul = minimal.clone();
        donor_mul.choose(&eg, b, Node::sym("b"));
        donor_mul.choose(&eg, side, Node::new(Op::Mul, vec![a, b]));

        let mut filled_div = minimal.clone();
        filled_div.fill_from(&donor_div);
        let mut filled_mul = minimal.clone();
        filled_mul.fill_from(&donor_mul);
        assert_ne!(
            filled_div.node(&eg, side),
            filled_mul.node(&eg, side),
            "the fillers really differ outside the root closure"
        );
        assert_eq!(filled_div.content_hash(&eg, &roots), h_min);
        assert_eq!(filled_mul.content_hash(&eg, &roots), h_min);
        // …and a genuinely different root-reachable choice still changes it
        let mut other = filled_div.clone();
        other.choose(&eg, a, Node::sym("b"));
        assert_ne!(other.content_hash(&eg, &roots), h_min);
    }

    #[test]
    fn cycle_detection() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let na = eg.add(Node::new(Op::Neg, vec![a]));
        let mut sel = Selection::new();
        // if `a`'s class chose a node pointing at `na`, na→a→na would cycle
        sel.choose(&eg, a, Node::new(Op::Neg, vec![na]));
        assert!(sel.would_cycle(&eg, na, &Node::new(Op::Neg, vec![a])));
        let b = eg.add(Node::sym("b"));
        assert!(!sel.would_cycle(&eg, na, &Node::new(Op::Neg, vec![b])));
    }
}
