//! `accsat-compilers` — models of the NVHPC, GCC, and Clang directive
//! compilers.
//!
//! The paper's baselines differ because each compiler maps directives to
//! hardware differently (§II-B, §VIII). This crate encodes those published
//! behaviours so the simulated baselines reproduce the paper's relative
//! standings:
//!
//! * **NVHPC** generates "embarrassingly parallel" code, honours
//!   gang/worker/vector clauses, defaults to `vector_length(128)`, performs
//!   strong redundant-load elimination, and allocates registers well. The
//!   headroom ACC Saturator finds on NVHPC is therefore mostly *reordering*
//!   (bulk load) and FMA discovery — matching Fig. 2 where CSE ≈ 1.0×.
//! * **GCC** uses a principal-agent model. Its OpenACC `kernels` support is
//!   immature (paper §VIII: "inadequate parallelism, likely due to the
//!   immature support of OpenACC's kernels directive"): vector clauses are
//!   ignored and blocks run 32 threads, leaving kernels latency-bound —
//!   which is why bulk load yields its largest wins there (2.2×, 5.08×).
//!   Its redundant-load elimination window is narrow, so source-level CSE
//!   helps (olbm 1.32×). OpenMP codegen has high register pressure.
//! * **Clang** (OpenMP only) sits between the two.

pub mod model;
pub mod nest;
pub mod vn;

pub use model::{compile_kernel, CompiledKernel, Compiler, CompilerModel};
pub use nest::{analyze_nest, LoopNest};
pub use vn::eliminate_redundant_loads;

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_gpusim::{run_kernel, Device};
    use accsat_ir::parse_program;
    use std::collections::HashMap;

    const BT_LIKE: &str = r#"
void z_solve(double lhsZ[5][5][3][64][8][8], double fjacZ[5][5][64][8][8],
             double njacZ[5][5][64][8][8], double dt, double tz1, double tz2,
             double dz1, int ksize, int gp02, int gp12) {
  #pragma acc parallel loop gang num_gangs(63) num_workers(4) vector_length(32)
  for (int k = 1; k <= 63; k++) {
    #pragma acc loop worker
    for (int i = 1; i <= gp02; i++) {
      #pragma acc loop vector
      for (int j = 1; j <= gp12; j++) {
        double temp1 = dt * tz1;
        double temp2 = dt * tz2;
        lhsZ[0][0][0][k][i][j] = -temp2 * fjacZ[0][0][k - 1][i][j]
          - temp1 * njacZ[0][0][k - 1][i][j] - temp1 * dz1;
        lhsZ[0][1][0][k][i][j] = -temp2 * fjacZ[0][1][k - 1][i][j]
          - temp1 * njacZ[0][1][k - 1][i][j];
      }
    }
  }
}
"#;

    fn bindings() -> HashMap<String, i64> {
        [("ksize", 64), ("gp02", 6), ("gp12", 6)]
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect()
    }

    #[test]
    fn nvhpc_honours_clauses() {
        let prog = parse_program(BT_LIKE).unwrap();
        let cm = CompilerModel::new(Compiler::Nvhpc, accsat_ir::Model::OpenAcc);
        let k = compile_kernel(&prog.functions[0], &cm, &bindings()).unwrap();
        assert_eq!(k.launch.grid_blocks, 63);
        // 4 workers × 32 vector = 128 threads = 4 warps
        assert_eq!(k.launch.warps_per_block, 4);
        assert_eq!(k.vector_var, "j");
    }

    #[test]
    fn gcc_kernels_directive_degrades_parallelism() {
        let src = BT_LIKE.replace("acc parallel loop", "acc kernels loop");
        let prog = parse_program(&src).unwrap();
        let cm = CompilerModel::new(Compiler::Gcc, accsat_ir::Model::OpenAcc);
        let k = compile_kernel(&prog.functions[0], &cm, &bindings()).unwrap();
        // GCC's immature kernels support: 32-thread blocks, workers ignored
        assert_eq!(k.launch.warps_per_block, 1);
    }

    #[test]
    fn nvhpc_dedupes_redundant_loads_gcc_does_not() {
        // same load twice, far apart in the statement list
        let src = r#"
void k(double a[64][64], double out[64][64], int n) {
  #pragma acc parallel loop gang vector_length(64)
  for (int i = 0; i < 64; i++) {
    #pragma acc loop vector
    for (int j = 0; j < 64; j++) {
      out[i][j] = a[i][j] * 2.0;
      out[j][i] = a[i][j] * 3.0;
    }
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let b = HashMap::new();
        let nv = compile_kernel(
            &prog.functions[0],
            &CompilerModel::new(Compiler::Nvhpc, accsat_ir::Model::OpenAcc),
            &b,
        )
        .unwrap();
        let gcc = compile_kernel(
            &prog.functions[0],
            &CompilerModel::new(Compiler::Gcc, accsat_ir::Model::OpenAcc),
            &b,
        )
        .unwrap();
        let (_, _, _, nv_loads, _) = nv.trace.op_counts();
        let (_, _, _, gcc_loads, _) = gcc.trace.op_counts();
        assert_eq!(nv_loads, 1, "NVHPC folds the duplicate load");
        assert_eq!(gcc_loads, 2, "GCC's narrow VN window keeps both");
    }

    #[test]
    fn gcc_omp_register_pressure_exceeds_nvhpc() {
        let src = r#"
void k(double a[64][64], double out[64][64]) {
  #pragma omp target teams distribute
  for (int i = 1; i < 63; i++) {
    #pragma omp parallel for simd
    for (int j = 1; j < 63; j++) {
      out[i][j] = a[i - 1][j] + a[i + 1][j] + a[i][j - 1] + a[i][j + 1]
        + a[i][j] * 4.0;
    }
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let b = HashMap::new();
        let nv = compile_kernel(
            &prog.functions[0],
            &CompilerModel::new(Compiler::Nvhpc, accsat_ir::Model::OpenMp),
            &b,
        )
        .unwrap();
        let gcc = compile_kernel(
            &prog.functions[0],
            &CompilerModel::new(Compiler::Gcc, accsat_ir::Model::OpenMp),
            &b,
        )
        .unwrap();
        assert!(
            gcc.launch.regs_per_thread > nv.launch.regs_per_thread,
            "GCC OMP {} regs vs NVHPC {} regs",
            gcc.launch.regs_per_thread,
            nv.launch.regs_per_thread
        );
    }

    #[test]
    fn end_to_end_simulation_produces_time() {
        let prog = parse_program(BT_LIKE).unwrap();
        let cm = CompilerModel::new(Compiler::Nvhpc, accsat_ir::Model::OpenAcc);
        let k = compile_kernel(&prog.functions[0], &cm, &bindings()).unwrap();
        let dev = Device::a100_pcie_40gb();
        let m = run_kernel(&k.trace, &k.launch, &dev);
        assert!(m.time_ms > 0.0);
        assert!(m.instructions > 0.0);
        assert!(m.occupancy > 0.0 && m.occupancy <= 1.0);
    }

    #[test]
    fn gcc_baseline_is_slower_than_nvhpc_on_acc() {
        // the paper's Table II: GCC original times exceed NVHPC's
        let prog = parse_program(BT_LIKE).unwrap();
        let dev = Device::a100_pcie_40gb();
        let b = bindings();
        let nv = compile_kernel(
            &prog.functions[0],
            &CompilerModel::new(Compiler::Nvhpc, accsat_ir::Model::OpenAcc),
            &b,
        )
        .unwrap();
        let src_kernels = BT_LIKE.replace("acc parallel loop", "acc kernels loop");
        let prog_k = parse_program(&src_kernels).unwrap();
        let gcc = compile_kernel(
            &prog_k.functions[0],
            &CompilerModel::new(Compiler::Gcc, accsat_ir::Model::OpenAcc),
            &b,
        )
        .unwrap();
        let t_nv = run_kernel(&nv.trace, &nv.launch, &dev).time_ms;
        let t_gcc = run_kernel(&gcc.trace, &gcc.launch, &dev).time_ms;
        assert!(t_gcc > t_nv, "GCC {t_gcc} ms vs NVHPC {t_nv} ms");
    }
}
