//! The compiler models: directive interpretation, launch configuration,
//! back-end load elimination, and register allocation.

use crate::nest::analyze_nest;
use crate::vn::eliminate_redundant_loads;
use accsat_gpusim::{
    lower_body,
    trace::{fuse_fma, schedule_loads},
    LaunchConfig, LowerCtx, Trace,
};
use accsat_ir::{DirectiveKind, Function, Model};
use std::collections::HashMap;

/// The three compilers of the paper's evaluation (§VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Compiler {
    /// NVHPC 22.9, `-O3 -gpu=fastmath -Msafeptr`.
    Nvhpc,
    /// GCC 12.2.0, `-O3 -ffast-math`.
    Gcc,
    /// Clang 15.0.3, `-O3 -ffast-math -fopenmp` (OpenMP only).
    Clang,
}

impl Compiler {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Compiler::Nvhpc => "NVHPC",
            Compiler::Gcc => "GCC",
            Compiler::Clang => "Clang",
        }
    }
}

/// A (compiler, programming model) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CompilerModel {
    pub compiler: Compiler,
    pub model: Model,
}

impl CompilerModel {
    /// Construct; panics on the unsupported Clang+OpenACC combination.
    pub fn new(compiler: Compiler, model: Model) -> CompilerModel {
        assert!(
            !(compiler == Compiler::Clang && model == Model::OpenAcc),
            "Clang has no OpenACC support (paper §VII)"
        );
        CompilerModel { compiler, model }
    }

    /// Default vector length when no clause specifies one.
    fn default_vector(&self) -> u32 {
        match (self.compiler, self.model) {
            (Compiler::Nvhpc, _) => 128,
            (Compiler::Gcc, Model::OpenAcc) => 32,
            (Compiler::Gcc, Model::OpenMp) => 64,
            (Compiler::Clang, _) => 128,
        }
    }

    /// Value-numbering window (instructions) of the back end.
    fn vn_window(&self) -> usize {
        match self.compiler {
            Compiler::Nvhpc => usize::MAX,
            Compiler::Gcc => 2,
            Compiler::Clang => 24,
        }
    }

    /// Basic-block load-scheduling window (slots a load may be hoisted).
    fn sched_window(&self) -> usize {
        match self.compiler {
            Compiler::Nvhpc => 10,
            Compiler::Gcc => 2,
            Compiler::Clang => 6,
        }
    }

    /// Register-allocation model: `regs = base + factor × peak_live`.
    fn reg_model(&self) -> (u32, f64) {
        match (self.compiler, self.model) {
            (Compiler::Nvhpc, _) => (16, 1.0),
            // GCC OpenACC allocates few registers (paper Table IV: 130 vs
            // NVHPC's 152) but leaves parallelism on the table instead
            (Compiler::Gcc, Model::OpenAcc) => (10, 0.85),
            // GCC OpenMP: "high register pressure" (§VIII)
            (Compiler::Gcc, Model::OpenMp) => (24, 1.4),
            (Compiler::Clang, _) => (16, 1.1),
        }
    }
}

/// A compiled kernel: the per-thread trace and the launch configuration.
#[derive(Debug, Clone)]
pub struct CompiledKernel {
    pub trace: Trace,
    pub launch: LaunchConfig,
    pub vector_var: String,
}

/// Compile the first kernel region of `f` under the model, with problem-size
/// `bindings` for trip counts.
pub fn compile_kernel(
    f: &Function,
    cm: &CompilerModel,
    bindings: &HashMap<String, i64>,
) -> Result<CompiledKernel, String> {
    let nest = analyze_nest(f, bindings)
        .ok_or_else(|| format!("function `{}` has no directive loop", f.name))?;

    let head_kind = nest.levels.first().and_then(|l| l.kind);
    let gcc_kernels =
        cm.compiler == Compiler::Gcc && head_kind == Some(DirectiveKind::AccKernelsLoop);

    // --- launch geometry ------------------------------------------------
    let (vector_len, workers) = if gcc_kernels {
        // immature kernels support: 32-thread blocks, worker clauses ignored
        (32u32, 1u32)
    } else {
        let v = nest.vector_length().unwrap_or_else(|| cm.default_vector());
        let w = nest.num_workers().unwrap_or(1);
        (v.max(32), w.max(1))
    };

    let gang_trip = nest.gang_trip() as u64;
    let grid_blocks = match nest.num_gangs() {
        Some(g) if !gcc_kernels => g as u64,
        _ => gang_trip.max(1),
    };
    // iterations each thread performs beyond one trace execution
    let gang_reps = (gang_trip as f64 / grid_blocks as f64).max(1.0);
    let worker_trip = nest.worker_trip() as f64;
    let worker_reps = (worker_trip / workers as f64).max(1.0);
    let vector_trip = nest.vector_trip() as f64;
    let vector_reps = (vector_trip / vector_len as f64).max(1.0);
    let reps = gang_reps * worker_reps * vector_reps * nest.seq_mult;

    // --- trace ----------------------------------------------------------
    let ctx = LowerCtx {
        vector_var: nest.vector_var.clone(),
        bindings: bindings.clone(),
        max_unroll: 64,
    };
    let raw = lower_body(&nest.body, &ctx);
    // the back ends' pass order: CSE, FMA selection, block scheduling
    let trace = schedule_loads(
        &fuse_fma(&eliminate_redundant_loads(&raw, cm.vn_window())),
        cm.sched_window(),
    );

    // --- registers ------------------------------------------------------
    let (base, factor) = cm.reg_model();
    let peak = trace.peak_live_regs() as f64;
    let regs = (base as f64 + factor * peak).round() as u32;
    let regs = regs.clamp(16, 255);

    let warps_per_block = ((workers * vector_len) / 32).max(1);
    Ok(CompiledKernel {
        trace,
        launch: LaunchConfig {
            grid_blocks,
            warps_per_block,
            regs_per_thread: regs,
            reps_per_thread: reps,
        },
        vector_var: nest.vector_var,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_ir::parse_program;

    #[test]
    #[should_panic(expected = "Clang has no OpenACC")]
    fn clang_acc_panics() {
        let _ = CompilerModel::new(Compiler::Clang, Model::OpenAcc);
    }

    #[test]
    fn default_vector_lengths() {
        assert_eq!(CompilerModel::new(Compiler::Nvhpc, Model::OpenAcc).default_vector(), 128);
        assert_eq!(CompilerModel::new(Compiler::Gcc, Model::OpenAcc).default_vector(), 32);
    }

    #[test]
    fn single_gang_vector_loop_blocks() {
        let src = r#"
void k(double a[4096]) {
  #pragma acc parallel loop gang vector_length(128)
  for (int i = 0; i < 4096; i++) {
    a[i] = 1.0;
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let cm = CompilerModel::new(Compiler::Nvhpc, Model::OpenAcc);
        let k = compile_kernel(&prog.functions[0], &cm, &HashMap::new()).unwrap();
        assert_eq!(k.launch.grid_blocks, 4096, "one gang per iteration");
        assert_eq!(k.launch.warps_per_block, 4);
    }

    #[test]
    fn missing_directive_is_error() {
        let prog = parse_program("void f() { }").unwrap();
        let cm = CompilerModel::new(Compiler::Nvhpc, Model::OpenAcc);
        assert!(compile_kernel(&prog.functions[0], &cm, &HashMap::new()).is_err());
    }

    #[test]
    fn registers_clamped() {
        let src = r#"
void k(double a[64]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 64; i++) {
    a[i] = 1.0;
  }
}
"#;
        let prog = parse_program(src).unwrap();
        for c in [Compiler::Nvhpc, Compiler::Gcc] {
            let cm = CompilerModel::new(c, Model::OpenAcc);
            let k = compile_kernel(&prog.functions[0], &cm, &HashMap::new()).unwrap();
            assert!(k.launch.regs_per_thread >= 16);
            assert!(k.launch.regs_per_thread <= 255);
        }
    }
}
