//! Loop-nest analysis: find the gang/worker/vector loops of a kernel region
//! and their trip counts.

use accsat_ir::{ast::ForLoop, BinOp, Block, Expr, Function, Stmt, UnOp};
use std::collections::HashMap;

/// One level of the parallel loop nest.
#[derive(Debug, Clone)]
pub struct NestLevel {
    pub var: String,
    pub trip: i64,
    pub has_gang: bool,
    pub has_worker: bool,
    pub has_vector: bool,
    pub num_gangs: Option<u32>,
    pub num_workers: Option<u32>,
    pub vector_length: Option<u32>,
    /// The directive kind at this level, if any.
    pub kind: Option<accsat_ir::DirectiveKind>,
}

/// The analyzed parallel nest of one kernel region.
#[derive(Debug, Clone)]
pub struct LoopNest {
    pub levels: Vec<NestLevel>,
    /// Body of the innermost parallel loop.
    pub body: Block,
    /// Induction variable of the innermost parallel loop (vector axis).
    pub vector_var: String,
    /// Iteration multiplier from sequential loops *between* parallel levels
    /// (e.g. the worker loop of an OpenACC kernel that OpenMP runs
    /// sequentially per team, §II-B).
    pub seq_mult: f64,
}

impl LoopNest {
    /// Requested gang count across levels (`num_gangs`/`gang(n)`/`num_teams`).
    pub fn num_gangs(&self) -> Option<u32> {
        self.levels.iter().find_map(|l| l.num_gangs)
    }

    /// Requested worker count.
    pub fn num_workers(&self) -> Option<u32> {
        self.levels.iter().find_map(|l| l.num_workers)
    }

    /// Requested vector length.
    pub fn vector_length(&self) -> Option<u32> {
        self.levels.iter().find_map(|l| l.vector_length)
    }

    /// Trip count of the levels with gang parallelism (product).
    pub fn gang_trip(&self) -> i64 {
        let t: i64 = self
            .levels
            .iter()
            .filter(|l| l.has_gang || (!l.has_worker && !l.has_vector))
            .map(|l| l.trip.max(1))
            .product();
        t.max(1)
    }

    /// Trip count of worker levels.
    pub fn worker_trip(&self) -> i64 {
        self.levels
            .iter()
            .filter(|l| l.has_worker && !l.has_gang)
            .map(|l| l.trip.max(1))
            .product::<i64>()
            .max(1)
    }

    /// Trip count of the vector level.
    pub fn vector_trip(&self) -> i64 {
        self.levels.last().map(|l| l.trip.max(1)).unwrap_or(1)
    }
}

/// Evaluate an integer expression from bindings.
pub fn const_eval(e: &Expr, bindings: &HashMap<String, i64>) -> Option<i64> {
    match e {
        Expr::Int(v) => Some(*v),
        Expr::Float(v) if v.fract() == 0.0 => Some(*v as i64),
        Expr::Var(n) => bindings.get(n).copied(),
        Expr::Unary { op: UnOp::Neg, operand } => Some(-const_eval(operand, bindings)?),
        Expr::Binary { op, lhs, rhs } => {
            let (a, b) = (const_eval(lhs, bindings)?, const_eval(rhs, bindings)?);
            Some(match op {
                BinOp::Add => a + b,
                BinOp::Sub => a - b,
                BinOp::Mul => a * b,
                BinOp::Div => a.checked_div(b)?,
                BinOp::Mod => a.checked_rem(b)?,
                _ => return None,
            })
        }
        Expr::Cast { expr, .. } => const_eval(expr, bindings),
        _ => None,
    }
}

/// Trip count of a canonical loop.
pub fn trip_count(l: &ForLoop, bindings: &HashMap<String, i64>) -> Option<i64> {
    let init = const_eval(&l.init, bindings)?;
    let step = const_eval(&l.step, bindings)?;
    if step == 0 {
        return None;
    }
    if let Expr::Binary { op, lhs, rhs } = &l.cond {
        let bound = match (lhs.as_ref(), rhs.as_ref()) {
            (Expr::Var(v), b) if *v == l.var => const_eval(b, bindings)?,
            (b, Expr::Var(v)) if *v == l.var => const_eval(b, bindings)?,
            _ => return None,
        };
        let n = match op {
            BinOp::Lt => (bound - init + step - 1).div_euclid(step),
            BinOp::Le => (bound - init + step).div_euclid(step),
            BinOp::Gt => (init - bound - step - 1).div_euclid(-step),
            BinOp::Ge => (init - bound - step).div_euclid(-step),
            _ => return None,
        };
        Some(n.max(0))
    } else {
        None
    }
}

/// Analyze the first kernel region of a function: the chain of
/// directive-annotated loops from the region head down to the innermost
/// parallel loop.
pub fn analyze_nest(f: &Function, bindings: &HashMap<String, i64>) -> Option<LoopNest> {
    let head = find_head(&f.body)?;
    let mut levels = Vec::new();
    let mut seq_mult = 1.0f64;
    let mut cur = head;
    loop {
        let d = cur.directive.as_ref();
        levels.push(NestLevel {
            var: cur.var.clone(),
            trip: trip_count(cur, bindings).unwrap_or(64),
            has_gang: d.is_some_and(|d| d.has_gang()),
            has_worker: d.is_some_and(|d| d.has_worker()),
            has_vector: d.is_some_and(|d| d.has_vector()),
            num_gangs: d.and_then(|d| d.num_gangs()),
            num_workers: d.and_then(|d| d.num_workers()),
            vector_length: d.and_then(|d| d.vector_length()),
            kind: d.map(|d| d.kind),
        });
        match next_level(&cur.body, bindings) {
            Some((mult, next)) => {
                seq_mult *= mult;
                cur = next;
            }
            None => break,
        }
    }
    Some(LoopNest { body: cur.body.clone(), vector_var: cur.var.clone(), levels, seq_mult })
}

/// Find the next directive loop below `b`, multiplying the trip counts of
/// intervening sequential loops.
fn next_level<'a>(b: &'a Block, bindings: &HashMap<String, i64>) -> Option<(f64, &'a ForLoop)> {
    for s in &b.stmts {
        match s {
            Stmt::For(l) if l.directive.is_some() => return Some((1.0, l)),
            Stmt::For(l) => {
                if let Some((m, x)) = next_level(&l.body, bindings) {
                    let trip = trip_count(l, bindings).unwrap_or(8).max(1) as f64;
                    return Some((m * trip, x));
                }
            }
            _ => {}
        }
    }
    None
}

fn find_head(b: &Block) -> Option<&ForLoop> {
    for s in &b.stmts {
        match s {
            Stmt::For(l) => {
                if l.directive.is_some() {
                    return Some(l);
                }
                if let Some(h) = find_head(&l.body) {
                    return Some(h);
                }
            }
            Stmt::If { then, els, .. } => {
                if let Some(h) = find_head(then) {
                    return Some(h);
                }
                if let Some(e) = els {
                    if let Some(h) = find_head(e) {
                        return Some(h);
                    }
                }
            }
            Stmt::Block(b) => {
                if let Some(h) = find_head(b) {
                    return Some(h);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_ir::parse_program;

    #[test]
    fn three_level_nest() {
        let src = r#"
void k(double a[64][8][8], int gp) {
  #pragma acc parallel loop gang num_gangs(63) num_workers(4) vector_length(32)
  for (int k = 1; k <= 63; k++) {
    #pragma acc loop worker
    for (int i = 1; i <= gp; i++) {
      #pragma acc loop vector
      for (int j = 1; j <= gp; j++) {
        a[k][i][j] = 0.0;
      }
    }
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let b: HashMap<String, i64> = [("gp".to_string(), 6)].into();
        let nest = analyze_nest(&prog.functions[0], &b).unwrap();
        assert_eq!(nest.levels.len(), 3);
        assert_eq!(nest.vector_var, "j");
        assert_eq!(nest.levels[0].trip, 63);
        assert_eq!(nest.levels[1].trip, 6);
        assert_eq!(nest.num_gangs(), Some(63));
        assert_eq!(nest.num_workers(), Some(4));
        assert_eq!(nest.vector_length(), Some(32));
    }

    #[test]
    fn single_loop_nest() {
        let src = r#"
void k(double a[1000]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 1000; i++) {
    a[i] = 1.0;
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let nest = analyze_nest(&prog.functions[0], &HashMap::new()).unwrap();
        assert_eq!(nest.levels.len(), 1);
        assert_eq!(nest.vector_trip(), 1000);
    }

    #[test]
    fn trip_counts() {
        let b: HashMap<String, i64> = [("n".to_string(), 10)].into();
        let prog = parse_program(
            "void f() { for (int i = 0; i < n; i += 2) { } for (int j = n; j > 0; j--) { } }",
        )
        .unwrap();
        let loops: Vec<&ForLoop> = prog.functions[0]
            .body
            .stmts
            .iter()
            .filter_map(|s| match s {
                Stmt::For(l) => Some(l),
                _ => None,
            })
            .collect();
        assert_eq!(trip_count(loops[0], &b), Some(5));
        assert_eq!(trip_count(loops[1], &b), Some(10));
    }

    #[test]
    fn no_directive_returns_none() {
        let prog =
            parse_program("void f(double a[4]) { for (int i = 0; i < 4; i++) { a[i] = 0.0; } }")
                .unwrap();
        assert!(analyze_nest(&prog.functions[0], &HashMap::new()).is_none());
    }
}
