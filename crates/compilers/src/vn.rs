//! Trace-level redundant-load elimination (the compiler back ends' value
//! numbering), with a configurable window that models each compiler's
//! strength.

use accsat_gpusim::{SimInst, SimOp, Trace};
use std::collections::HashMap;

/// Remove loads whose address key was loaded within the last `window`
/// instructions with no intervening store to the same base array.
/// `window = usize::MAX` models NVHPC's global value numbering; small
/// windows model GCC/Clang. Register uses of removed loads are rewritten to
/// the surviving destination.
pub fn eliminate_redundant_loads(trace: &Trace, window: usize) -> Trace {
    // remembered loads: address key → (pos, reg, base)
    let mut seen: HashMap<u64, (usize, u32, u64)> = HashMap::new();
    // arithmetic value numbering: (flop kind, operand regs) → (pos, reg)
    let mut flops: HashMap<(u8, Vec<u32>), (usize, u32)> = HashMap::new();
    let mut rename: HashMap<u32, u32> = HashMap::new();
    let mut out: Vec<SimInst> = Vec::new();

    for inst in &trace.insts {
        let mut inst = inst.clone();
        for s in &mut inst.srcs {
            if let Some(&r) = rename.get(s) {
                *s = r;
            }
        }
        match &inst.op {
            SimOp::Flop { kind } => {
                let vkey = (*kind, inst.srcs.clone());
                if let Some(&(pos, reg)) = flops.get(&vkey) {
                    if out.len() - pos <= window {
                        if let Some(d) = inst.dst {
                            rename.insert(d, reg);
                        }
                        continue; // drop the duplicate computation
                    }
                }
                if let Some(d) = inst.dst {
                    flops.insert(vkey, (out.len(), d));
                }
                out.push(inst);
            }
            SimOp::Load { key, base, .. } => {
                if let Some(&(pos, reg, _)) = seen.get(key) {
                    if out.len() - pos <= window {
                        if let Some(d) = inst.dst {
                            rename.insert(d, reg);
                        }
                        continue; // drop the duplicate load
                    }
                }
                if let Some(d) = inst.dst {
                    seen.insert(*key, (out.len(), d, *base));
                }
                out.push(inst);
            }
            SimOp::Store { key, base, .. } => {
                // a store may alias any remembered address of the same array;
                // address keys don't expose index relationships, so clobber
                // every remembered load of this base. The address just
                // written is known exactly, so forward the stored register
                // to later loads of it.
                let (k, b) = (*key, *base);
                seen.retain(|_, &mut (_, _, entry_base)| entry_base != b);
                if let Some(&v) = inst.srcs.first() {
                    seen.insert(k, (out.len(), v, b));
                }
                out.push(inst);
            }
            _ => out.push(inst),
        }
    }

    Trace { insts: out, num_regs: trace.num_regs, work_scale: trace.work_scale }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_gpusim::trace::Coalescing;

    fn load(key: u64, base: u64, dst: u32) -> SimInst {
        SimInst {
            op: SimOp::Load { coalescing: Coalescing::Full, key, base },
            srcs: vec![],
            dst: Some(dst),
        }
    }

    fn store(key: u64, base: u64, src: u32) -> SimInst {
        SimInst {
            op: SimOp::Store { coalescing: Coalescing::Full, key, base },
            srcs: vec![src],
            dst: None,
        }
    }

    fn flop(srcs: Vec<u32>, dst: u32) -> SimInst {
        // distinct kind per dst so these fillers never value-number together
        SimInst { op: SimOp::Flop { kind: (dst % 7) as u8 }, srcs, dst: Some(dst) }
    }

    fn t(insts: Vec<SimInst>, regs: u32) -> Trace {
        Trace { insts, num_regs: regs, work_scale: 1.0 }
    }

    #[test]
    fn duplicate_load_removed_and_renamed() {
        let trace = t(vec![load(7, 1, 0), flop(vec![0], 1), load(7, 1, 2), flop(vec![2], 3)], 4);
        let opt = eliminate_redundant_loads(&trace, usize::MAX);
        let (_, _, _, loads, _) = opt.op_counts();
        assert_eq!(loads, 1);
        // the second flop must now read reg 0
        assert_eq!(opt.insts[2].srcs, vec![0]);
    }

    #[test]
    fn duplicate_flop_value_numbered() {
        // two adds of the same operands collapse; a different kind survives
        let a = SimInst { op: SimOp::Flop { kind: 0 }, srcs: vec![0, 1], dst: Some(2) };
        let b = SimInst { op: SimOp::Flop { kind: 0 }, srcs: vec![0, 1], dst: Some(3) };
        let c = SimInst { op: SimOp::Flop { kind: 2 }, srcs: vec![0, 1], dst: Some(4) };
        let trace = t(vec![a, b, c], 5);
        let opt = eliminate_redundant_loads(&trace, usize::MAX);
        let (flops, _, _, _, _) = opt.op_counts();
        assert_eq!(flops, 2, "add deduped, mul kept");
    }

    #[test]
    fn window_limits_reuse() {
        let mut insts = vec![load(7, 1, 0)];
        for i in 1..20 {
            insts.push(flop(vec![0], i));
        }
        insts.push(load(7, 1, 20));
        let trace = t(insts, 21);
        let narrow = eliminate_redundant_loads(&trace, 4);
        let wide = eliminate_redundant_loads(&trace, usize::MAX);
        let (_, _, _, narrow_loads, _) = narrow.op_counts();
        let (_, _, _, wide_loads, _) = wide.op_counts();
        assert_eq!(narrow_loads, 2);
        assert_eq!(wide_loads, 1);
    }

    #[test]
    fn store_clobbers_remembered_loads() {
        // load a[0] (key 7), store a[1] (key 8), load a[0] again:
        // the store must invalidate the remembered load (conservative)
        let trace = t(vec![load(7, 1, 0), store(8, 1, 0), load(7, 1, 2)], 3);
        let opt = eliminate_redundant_loads(&trace, usize::MAX);
        let (_, _, _, loads, _) = opt.op_counts();
        assert_eq!(loads, 2, "store must clobber the remembered load");
    }

    #[test]
    fn store_to_load_forwarding() {
        // store a[0] = r0, then load a[0]: the load can be forwarded
        let trace = t(vec![flop(vec![], 0), store(7, 1, 0), load(7, 1, 2), flop(vec![2], 3)], 4);
        let opt = eliminate_redundant_loads(&trace, usize::MAX);
        let (_, _, _, loads, _) = opt.op_counts();
        assert_eq!(loads, 0, "load after store of same address forwards");
        assert_eq!(opt.insts[2].srcs, vec![0]);
    }
}
