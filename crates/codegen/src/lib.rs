//! `accsat-codegen` — regenerating kernel code from extracted e-graph
//! solutions (paper §VI).
//!
//! Two mechanisms, exactly as the paper describes:
//!
//! * **Temporary-variable insertion** (§VI-A): every selected e-node that is
//!   referenced more than once — plus every load and call — receives a
//!   `_vN` temporary, declared in the innermost scope common to all its
//!   uses and assigned immediately before its first use. Single-use
//!   arithmetic stays inline. Assignments then reference temporaries, which
//!   removes duplicate computation while preserving ILP.
//!
//! * **Bulk load** (§VI-B): every memory load is relocated to the first
//!   point in its declaration scope where its dependencies are resolved —
//!   the array state it reads is current and its index operands are
//!   computable. Loads that become ready together are sorted by array name
//!   and static index expression, exactly the "sorted loads first" shape of
//!   Listing 3. Because array states are SSA values, a load can never be
//!   hoisted across a conflicting store.
//!
//! The original control structure and all directives are preserved: codegen
//! re-walks the [`accsat_ssa::SsaNode`] tree and re-emits `if`/`for`
//! headers verbatim,
//! substituting only the computation.

pub mod emit;
pub mod types;

pub use emit::{generate, CodegenOptions};
pub use types::TypeMap;

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_egraph::{all_rules, Runner};
    use accsat_extract::{extract, CostModel};
    use accsat_interp::{compare_arrays, run_function, ArrayData, Env};
    use accsat_ir::{parse_program, print_program, Function, Program, Stmt};
    use std::time::Duration;

    /// Full mini-pipeline for tests: parse → SSA → (saturate) → extract →
    /// codegen → swap body back into the function.
    fn optimize(src: &str, saturate: bool, bulk: bool) -> (Program, Program) {
        let prog = parse_program(src).unwrap();
        let f = prog.functions[0].clone();
        let mut kernel_loops = accsat_ir::innermost_parallel_loops(&f);
        assert!(!kernel_loops.is_empty());
        let body = kernel_loops.remove(0).body.clone();
        let mut kernel = accsat_ssa::build_kernel(&body);
        if saturate {
            Runner::new(all_rules()).run(&mut kernel.egraph);
        } else {
            kernel.egraph.rebuild();
        }
        let cm = CostModel::paper();
        let roots = kernel.extraction_roots();
        let sel = extract(&kernel.egraph, &roots, &cm, Duration::from_millis(300));
        let tm = TypeMap::from_function(&f);
        let new_body = generate(&kernel, &sel, &tm, &CodegenOptions { bulk_load: bulk });
        let mut new_f = f.clone();
        replace_innermost_body(&mut new_f, new_body);
        (prog, Program { functions: vec![new_f] })
    }

    fn replace_innermost_body(f: &mut Function, new_body: accsat_ir::Block) {
        fn go(b: &mut accsat_ir::Block, new_body: &mut Option<accsat_ir::Block>) {
            for s in &mut b.stmts {
                if let Stmt::For(l) = s {
                    if l.directive.is_some() && !accsat_ir::has_directive_loop(&l.body) {
                        if let Some(nb) = new_body.take() {
                            l.body = nb;
                        }
                        return;
                    }
                    go(&mut l.body, new_body);
                }
            }
        }
        go(&mut f.body, &mut Some(new_body));
    }

    fn check_equivalent(src: &str, setup: impl Fn(&mut Env) + Copy) {
        for (saturate, bulk) in [(false, false), (false, true), (true, false), (true, true)] {
            let (orig, opt) = optimize(src, saturate, bulk);
            let mut env1 = Env::new();
            setup(&mut env1);
            let mut env2 = env1.clone();
            run_function(&orig.functions[0], &mut env1).expect("original runs");
            run_function(&opt.functions[0], &mut env2).unwrap_or_else(|e| {
                panic!(
                    "optimized (sat={saturate}, bulk={bulk}) failed: {e}\n{}",
                    print_program(&opt)
                )
            });
            if let Some((arr, i, a, b)) = compare_arrays(&env1, &env2, 1e-9) {
                panic!(
                    "mismatch (sat={saturate}, bulk={bulk}) in {arr}[{i}]: {a} vs {b}\n{}",
                    print_program(&opt)
                );
            }
        }
    }

    #[test]
    fn matmul_preserved() {
        let src = r#"
void mm(double a[8][8], double b[8][8], double c[8][8], double r[8][8],
        double alpha, double beta) {
  #pragma acc kernels loop independent
  for (int i = 0; i < 8; i++) {
    #pragma acc loop independent gang(4) vector(8)
    for (int j = 0; j < 8; j++) {
      double tmp = 0.0;
      for (int l = 0; l < 8; l++) {
        tmp += a[i][l] * b[l][j];
      }
      r[i][j] = alpha * tmp + beta * c[i][j];
    }
  }
}
"#;
        check_equivalent(src, |env| {
            env.set_f64("alpha", 1.5);
            env.set_f64("beta", -0.5);
            for name in ["a", "b", "c"] {
                let data: Vec<f64> = (0..64).map(|i| ((i * 37 + 11) % 17) as f64 * 0.25).collect();
                env.set_array(name, ArrayData::from_f64(&[8, 8], data));
            }
            env.set_array("r", ArrayData::zeros_f64(&[8, 8]));
        });
    }

    #[test]
    fn cse_across_statements_preserved() {
        let src = r#"
void k(double a[16], double out[16], double dt, double tz1, double tz2) {
  #pragma acc parallel loop gang vector
  for (int i = 1; i < 15; i++) {
    double temp1 = dt * tz1;
    double temp2 = dt * tz2;
    out[i] = temp1 * a[i - 1] + temp2 * a[i + 1] + dt * tz1 * a[i];
  }
}
"#;
        check_equivalent(src, |env| {
            env.set_f64("dt", 0.01);
            env.set_f64("tz1", 3.0);
            env.set_f64("tz2", 4.0);
            env.set_array("a", ArrayData::from_f64(&[16], (0..16).map(|i| i as f64).collect()));
            env.set_array("out", ArrayData::zeros_f64(&[16]));
        });
    }

    #[test]
    fn store_then_load_preserved() {
        let src = r#"
void k(double a[16], double out[16]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 16; i++) {
    a[i] = a[i] * 2.0;
    out[i] = a[i] + 1.0;
  }
}
"#;
        check_equivalent(src, |env| {
            env.set_array("a", ArrayData::from_f64(&[16], (0..16).map(|i| i as f64).collect()));
            env.set_array("out", ArrayData::zeros_f64(&[16]));
        });
    }

    #[test]
    fn branches_preserved() {
        let src = r#"
void k(double x[16], double out[16]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 16; i++) {
    double v = x[i];
    if (v < 0.0) {
      v = -v;
    } else {
      v = v * 2.0;
    }
    out[i] = v + x[i];
  }
}
"#;
        check_equivalent(src, |env| {
            env.set_array(
                "x",
                ArrayData::from_f64(&[16], (0..16).map(|i| i as f64 - 8.0).collect()),
            );
            env.set_array("out", ArrayData::zeros_f64(&[16]));
        });
    }

    #[test]
    fn sequential_loop_with_accumulator_preserved() {
        let src = r#"
void k(double a[8][8], double out[8]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 8; i++) {
    double s = 0.0;
    for (int j = 0; j < 8; j++) {
      s = s + a[i][j] * a[i][j];
    }
    out[i] = sqrt(s);
  }
}
"#;
        check_equivalent(src, |env| {
            env.set_array(
                "a",
                ArrayData::from_f64(&[8, 8], (0..64).map(|i| (i % 9) as f64 * 0.5).collect()),
            );
            env.set_array("out", ArrayData::zeros_f64(&[8]));
        });
    }

    #[test]
    fn scalar_reuse_after_overwrite_preserved() {
        // t is read by a later statement *after* being overwritten — the
        // capture mechanism must save the old value in a temp
        let src = r#"
void k(double out[8], double x) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 8; i++) {
    double t = x * 2.0;
    out[0] = t;
    t = x * 3.0;
    out[1] = t;
    out[2] = x * 2.0;
  }
}
"#;
        check_equivalent(src, |env| {
            env.set_f64("x", 7.0);
            env.set_array("out", ArrayData::zeros_f64(&[8]));
        });
    }

    #[test]
    fn integer_index_arithmetic_preserved() {
        let src = r#"
void k(double a[32], double out[32], int n) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 8; i++) {
    int base = i * 4;
    out[base] = a[base + 1] * 2.0;
    out[base + 1] = a[base + 1] * 3.0;
    out[base + 2] = a[base / 2] + 1.0;
  }
}
"#;
        check_equivalent(src, |env| {
            env.set_i64("n", 8);
            env.set_array("a", ArrayData::from_f64(&[32], (0..32).map(|i| i as f64).collect()));
            env.set_array("out", ArrayData::zeros_f64(&[32]));
        });
    }

    #[test]
    fn bulk_load_hoists_loads_before_first_store() {
        let src = r#"
void k(double a[16], double b[16], double out[16]) {
  #pragma acc parallel loop gang vector
  for (int i = 1; i < 15; i++) {
    out[i] = a[i - 1] + b[i];
    out[i] = out[i] + a[i + 1] * b[i - 1];
  }
}
"#;
        let (_, opt) = optimize(src, true, true);
        let text = print_program(&opt);
        // all loads of a and b must appear before the first store to out
        let first_store = text.find("out[i] =").expect("store present");
        for pat in ["a[", "b["] {
            let last_load = text.rfind(pat).unwrap_or(0);
            // find the last temp-assignment load of this array
            let _ = last_load;
            let mut last = 0;
            let mut idx = 0;
            while let Some(p) = text[idx..].find(&format!("= {pat}")) {
                last = idx + p;
                idx += p + 1;
            }
            assert!(
                last < first_store,
                "bulk load must hoist `{pat}` loads before the first store:\n{text}"
            );
        }
    }

    #[test]
    fn generated_code_reparses() {
        let src = r#"
void k(double a[16], double out[16], double c) {
  #pragma acc parallel loop gang vector
  for (int i = 1; i < 15; i++) {
    out[i] = c * a[i] + c * a[i - 1] + c * a[i + 1];
  }
}
"#;
        let (_, opt) = optimize(src, true, true);
        let text = print_program(&opt);
        let re = parse_program(&text).unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        assert_eq!(re.functions.len(), 1);
    }
}
