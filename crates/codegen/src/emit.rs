//! The code emitter: walks the SSA structure tree, materializing extracted
//! e-graph solutions into C statements with `_vN` temporaries and optional
//! bulk-load scheduling.

use crate::types::{promote, TypeMap};
use accsat_egraph::{EGraph, Id, Node, Op};
use accsat_extract::Selection;
use accsat_ir::{AssignOp, BinOp, Block, Expr, LValue, Stmt, Type, UnOp};
use accsat_ssa::{SsaKernel, SsaNode, Target};
use std::collections::{HashMap, HashSet};

/// Code generation options.
#[derive(Debug, Clone, Copy, Default)]
pub struct CodegenOptions {
    /// Enable bulk load (§VI-B): hoist each load to the earliest point in
    /// its declaration scope where its dependencies are resolved, sorting
    /// simultaneous loads by array and static index.
    pub bulk_load: bool,
}

/// Generate a new kernel body from the SSA tree and the extracted selection.
pub fn generate(kernel: &SsaKernel, sel: &Selection, tm: &TypeMap, opts: &CodegenOptions) -> Block {
    let analysis = Analysis::run(kernel, sel);
    let mut em = Emitter {
        eg: &kernel.egraph,
        sel,
        tm: tm.clone(),
        opts: *opts,
        use_remaining: analysis.use_count.clone(),
        temp_lca: analysis.temp_lca,
        named_phis: analysis.named_phis,
        avail: HashMap::new(),
        volatile_var: HashMap::new(),
        var_binding: HashMap::new(),
        current_state: HashMap::new(),
        state_names: HashMap::new(),
        temp_counter: 0,
        type_memo: HashMap::new(),
    };
    // initial availability: parameters/outer values by name; arrays by state
    for (name, class) in &kernel.initial_values {
        let class = em.eg.find(*class);
        if kernel.array_names.iter().any(|a| a == name) {
            em.current_state.insert(name.clone(), class);
            em.state_names.insert(class, name.clone());
        } else {
            em.avail.insert(class, Expr::Var(name.clone()));
            em.volatile_var.insert(class, name.clone());
            em.var_binding.insert(name.clone(), class);
        }
    }
    let stmts = em.emit_block(&kernel.nodes, &BlockPath::root());
    Block::new(stmts)
}

// ---------------------------------------------------------------- analysis

/// Block identity: path of (item index, branch discriminator) pairs from
/// the kernel root.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct BlockPath(Vec<(usize, usize)>);

impl BlockPath {
    fn root() -> BlockPath {
        BlockPath(Vec::new())
    }

    fn child(&self, item: usize, branch: usize) -> BlockPath {
        let mut v = self.0.clone();
        v.push((item, branch));
        BlockPath(v)
    }

    /// Longest common prefix of two block paths.
    fn lca(&self, other: &BlockPath) -> BlockPath {
        let mut v = Vec::new();
        for (a, b) in self.0.iter().zip(other.0.iter()) {
            if a == b {
                v.push(*a);
            } else {
                break;
            }
        }
        BlockPath(v)
    }

    /// Item index within `ancestor` that leads toward `self` (or `item` if
    /// `self == ancestor`, where `item` is the use site's own index).
    fn item_within(&self, ancestor: &BlockPath, own_item: usize) -> usize {
        if self.0.len() == ancestor.0.len() {
            own_item
        } else {
            self.0[ancestor.0.len()].0
        }
    }
}

struct Analysis {
    /// Reference-edge counts per canonical class.
    use_count: HashMap<Id, usize>,
    /// For classes that receive temporaries: (declaration block, first item
    /// index in that block before which the temp must exist).
    temp_lca: HashMap<Id, (BlockPath, usize)>,
    /// Classes that are φ values (materialized through variable names).
    named_phis: HashSet<Id>,
}

impl Analysis {
    fn run(kernel: &SsaKernel, sel: &Selection) -> Analysis {
        let eg = &kernel.egraph;
        let mut a = AnalysisBuilder {
            eg,
            sel,
            use_count: HashMap::new(),
            use_sites: HashMap::new(),
            named_phis: HashSet::new(),
        };
        collect_phis(eg, &kernel.nodes, &mut a.named_phis);
        a.walk(&kernel.nodes, &BlockPath::root());

        // temp-worthy classes: multi-use, loads, or calls
        let mut temp_lca = HashMap::new();
        for (&class, sites) in &a.use_sites {
            let node = match sel.get(eg, class) {
                Some(n) => n,
                None => continue,
            };
            if a.named_phis.contains(&class) {
                continue;
            }
            let multi = a.use_count.get(&class).copied().unwrap_or(0) > 1;
            let is_heavy = matches!(node.op, Op::Load | Op::Call(_));
            if !(multi || is_heavy) {
                continue;
            }
            if matches!(node.op, Op::Sym(_) | Op::Int(_) | Op::Float(_) | Op::LoopCond(_)) {
                continue; // leaves are never temped
            }
            // LCA of all use sites
            let (mut lca, mut item) = sites[0].clone();
            for (p, i) in &sites[1..] {
                let new_lca = lca.lca(p);
                let it_a = lca.item_within(&new_lca, item);
                let it_b = p.item_within(&new_lca, *i);
                item = it_a.min(it_b);
                lca = new_lca;
            }
            temp_lca.insert(class, (lca, item));
        }
        Analysis { use_count: a.use_count, temp_lca, named_phis: a.named_phis }
    }
}

fn collect_phis(eg: &EGraph, nodes: &[SsaNode], out: &mut HashSet<Id>) {
    for n in nodes {
        match n {
            SsaNode::If { then, els, phis, .. } => {
                for (_, c) in phis {
                    out.insert(eg.find(*c));
                }
                collect_phis(eg, then, out);
                collect_phis(eg, els, out);
            }
            SsaNode::Loop { body, phis, .. } => {
                for (_, entry, phi, _) in phis {
                    out.insert(eg.find(*entry));
                    out.insert(eg.find(*phi));
                }
                collect_phis(eg, body, out);
            }
            _ => {}
        }
    }
}

struct AnalysisBuilder<'a> {
    eg: &'a EGraph,
    sel: &'a Selection,
    use_count: HashMap<Id, usize>,
    use_sites: HashMap<Id, Vec<(BlockPath, usize)>>,
    named_phis: HashSet<Id>,
}

impl<'a> AnalysisBuilder<'a> {
    fn walk(&mut self, nodes: &[SsaNode], path: &BlockPath) {
        for (i, n) in nodes.iter().enumerate() {
            match n {
                SsaNode::Assign { class, .. } => {
                    let mut visited = HashSet::new();
                    self.reference(*class, path, i, &mut visited);
                }
                SsaNode::If { then, els, .. } => {
                    self.walk(then, &path.child(i, 0));
                    self.walk(els, &path.child(i, 1));
                }
                SsaNode::Loop { body, .. } => {
                    self.walk(body, &path.child(i, 0));
                }
                _ => {}
            }
        }
    }

    /// Record a reference edge to `class` from a use at (path, item).
    fn reference(&mut self, class: Id, path: &BlockPath, item: usize, visited: &mut HashSet<Id>) {
        let class = self.eg.find(class);
        *self.use_count.entry(class).or_insert(0) += 1;
        self.use_sites.entry(class).or_default().push((path.clone(), item));
        if !visited.insert(class) {
            return; // children already traversed for this statement
        }
        if self.named_phis.contains(&class) {
            return; // φs materialize through their variable, not children
        }
        let node = match self.sel.get(self.eg, class) {
            Some(n) => n.clone(),
            None => return,
        };
        match node.op {
            Op::Load => {
                // children[0] is the array state — never materialized
                for &c in &node.children[1..] {
                    self.reference(c, path, item, visited);
                }
            }
            Op::Store | Op::PhiLoop => {} // states/φ: no expression children
            _ => {
                for &c in &node.children {
                    self.reference(c, path, item, visited);
                }
            }
        }
    }
}

// ---------------------------------------------------------------- emission

struct Emitter<'a> {
    eg: &'a EGraph,
    sel: &'a Selection,
    tm: TypeMap,
    opts: CodegenOptions,
    use_remaining: HashMap<Id, usize>,
    temp_lca: HashMap<Id, (BlockPath, usize)>,
    named_phis: HashSet<Id>,
    /// Class → expression currently yielding its value (temps are stable;
    /// plain variable references are invalidated on reassignment).
    avail: HashMap<Id, Expr>,
    /// Classes whose availability is a plain variable reference.
    volatile_var: HashMap<Id, String>,
    /// Variable → class it currently holds.
    var_binding: HashMap<String, Id>,
    /// Array → current SSA state class.
    current_state: HashMap<String, Id>,
    /// State class → owning array name.
    state_names: HashMap<Id, String>,
    temp_counter: usize,
    type_memo: HashMap<Id, Type>,
}

impl<'a> Emitter<'a> {
    fn fresh_temp(&mut self) -> String {
        let n = self.temp_counter;
        self.temp_counter += 1;
        format!("_v{n}")
    }

    fn remaining(&self, class: Id) -> usize {
        self.use_remaining.get(&self.eg.find(class)).copied().unwrap_or(0)
    }

    /// Register a reference: decrement the remaining-use counter and
    /// materialize.
    fn reference(&mut self, class: Id, out: &mut Vec<Stmt>) -> Expr {
        let class = self.eg.find(class);
        if let Some(c) = self.use_remaining.get_mut(&class) {
            *c = c.saturating_sub(1);
        }
        self.materialize(class, out)
    }

    /// Produce an expression for `class`, emitting temp declarations into
    /// `out` as needed.
    fn materialize(&mut self, class: Id, out: &mut Vec<Stmt>) -> Expr {
        let class = self.eg.find(class);
        if let Some(e) = self.avail.get(&class) {
            return e.clone();
        }
        let node = self.sel.node(self.eg, class).clone();
        let expr = self.node_expr(&node, out);
        // scheduled temps and loads/calls always land in temporaries
        let force_temp =
            self.temp_lca.contains_key(&class) || matches!(node.op, Op::Load | Op::Call(_));
        if force_temp {
            let name = self.fresh_temp();
            let ty = self.class_type(class);
            out.push(Stmt::Decl { ty, name: name.clone(), init: Some(expr) });
            self.avail.insert(class, Expr::Var(name));
            self.avail[&class].clone()
        } else {
            expr
        }
    }

    fn node_expr(&mut self, node: &Node, out: &mut Vec<Stmt>) -> Expr {
        match &node.op {
            Op::Int(v) => Expr::Int(*v),
            Op::Float(bits) => Expr::Float(f64::from_bits(*bits)),
            Op::Sym(name) => {
                // entry symbols `x@L0` refer to variable x inside the loop
                let base = name.split('@').next().unwrap_or(name).to_string();
                Expr::Var(base)
            }
            Op::LoopCond(l) => {
                panic!("loop condition {l} must never be materialized")
            }
            Op::PhiLoop => {
                panic!("loop φ must be available as a variable; it cannot be recomputed")
            }
            Op::Load => {
                let state = self.eg.find(node.children[0]);
                let array = self
                    .state_names
                    .get(&state)
                    .unwrap_or_else(|| panic!("load of a non-current array state {state}"))
                    .clone();
                debug_assert_eq!(
                    self.current_state.get(&array).copied(),
                    Some(state),
                    "load must read the current state of `{array}`"
                );
                let indices: Vec<Expr> =
                    node.children[1..].iter().map(|&c| self.reference(c, out)).collect();
                Expr::Index { base: array, indices }
            }
            Op::Store => panic!("array states are never materialized as expressions"),
            Op::Select => {
                let c = self.reference(node.children[0], out);
                let t = self.reference(node.children[1], out);
                let e = self.reference(node.children[2], out);
                Expr::Ternary { cond: Box::new(c), then: Box::new(t), els: Box::new(e) }
            }
            Op::Call(name) => {
                let args: Vec<Expr> =
                    node.children.iter().map(|&c| self.reference(c, out)).collect();
                Expr::Call { name: name.clone(), args }
            }
            Op::Neg => {
                let e = self.reference(node.children[0], out);
                Expr::neg(e)
            }
            Op::Not => {
                let e = self.reference(node.children[0], out);
                Expr::Unary { op: UnOp::Not, operand: Box::new(e) }
            }
            Op::Fma => {
                // fma(a, b, c) = a + b * c — emitted as the open form; the
                // compilers (and our compiler models) fuse it back, exactly
                // as NVHPC/GCC do under fastmath (paper Listing 3).
                let a = self.reference(node.children[0], out);
                let b = self.reference(node.children[1], out);
                let c = self.reference(node.children[2], out);
                Expr::bin(BinOp::Add, a, Expr::bin(BinOp::Mul, b, c))
            }
            Op::CastInt => {
                let e = self.reference(node.children[0], out);
                Expr::Cast { ty: Type::Int, expr: Box::new(e) }
            }
            Op::CastFloat => {
                let e = self.reference(node.children[0], out);
                Expr::Cast { ty: Type::Double, expr: Box::new(e) }
            }
            op => {
                let l = self.reference(node.children[0], out);
                let r = self.reference(node.children[1], out);
                Expr::bin(op_to_binop(op), l, r)
            }
        }
    }

    /// Inferred C type of a class (via its selected node).
    fn class_type(&mut self, class: Id) -> Type {
        let class = self.eg.find(class);
        if let Some(t) = self.type_memo.get(&class) {
            return t.clone();
        }
        // insert a provisional value to cut (impossible) cycles
        self.type_memo.insert(class, Type::Double);
        let node = self.sel.node(self.eg, class).clone();
        let ty = match &node.op {
            Op::Int(_) => Type::Int,
            Op::Float(_) => Type::Double,
            Op::Sym(name) | Op::LoopCond(name) => self.tm.type_of(name),
            Op::Load => {
                let state = self.eg.find(node.children[0]);
                match self.state_names.get(&state) {
                    Some(a) => self.tm.type_of(a),
                    None => Type::Double,
                }
            }
            Op::Store => Type::Void,
            Op::Call(_) => Type::Double,
            Op::CastInt => Type::Int,
            Op::CastFloat => Type::Double,
            Op::Lt | Op::Le | Op::Gt | Op::Ge | Op::Eq | Op::Ne | Op::And | Op::Or | Op::Not => {
                Type::Int
            }
            Op::Neg => self.class_type(node.children[0]),
            Op::Select | Op::PhiLoop => {
                let a = self.class_type(node.children[1]);
                let b = self.class_type(node.children[2]);
                promote(&a, &b)
            }
            Op::Fma => Type::Double,
            _ => {
                let a = self.class_type(node.children[0]);
                let b = self.class_type(node.children[1]);
                promote(&a, &b)
            }
        };
        self.type_memo.insert(class, ty.clone());
        ty
    }

    // ------------------------------------------------------------ blocks

    fn emit_block(&mut self, nodes: &[SsaNode], path: &BlockPath) -> Vec<Stmt> {
        let mut out = Vec::new();
        // temps whose declaration scope is this block, grouped by first item
        let mut scheduled: Vec<(Id, usize)> = self
            .temp_lca
            .iter()
            .filter(|(_, (p, _))| p == path)
            .map(|(&c, &(_, item))| (c, item))
            .collect();
        // tie-break equal items by class id: the map iterates in a
        // randomly seeded order, and two temps due at the same item must
        // still be emitted deterministically (batch runs are compared
        // byte-for-byte across thread counts)
        scheduled.sort_by_key(|&(c, item)| (item, c));

        for (i, node) in nodes.iter().enumerate() {
            self.flush_scheduled(&mut scheduled, i, &mut out);
            self.emit_item(node, path, i, &mut out);
        }
        self.flush_scheduled(&mut scheduled, usize::MAX, &mut out);
        out
    }

    /// Emit scheduled temps due before item `next_item`. In bulk mode, also
    /// emit any load temp whose dependencies are already resolved, sorted by
    /// (array, static index) — the bulk-load transformation.
    fn flush_scheduled(
        &mut self,
        scheduled: &mut Vec<(Id, usize)>,
        next_item: usize,
        out: &mut Vec<Stmt>,
    ) {
        // 1. everything that is due now
        let mut due: Vec<Id> = Vec::new();
        scheduled.retain(|&(c, item)| {
            if item <= next_item && !self.avail.contains_key(&c) {
                due.push(c);
                false
            } else {
                item > next_item // drop already-materialized entries
            }
        });
        // 2. bulk: eagerly take ready loads scheduled for later
        if self.opts.bulk_load {
            let mut ready: Vec<Id> = Vec::new();
            scheduled.retain(|&(c, _)| {
                if self.avail.contains_key(&c) {
                    return false;
                }
                let node = self.sel.node(self.eg, c);
                if node.op == Op::Load && self.deps_ready(c, &mut HashSet::new()) {
                    ready.push(c);
                    false
                } else {
                    true
                }
            });
            // sort bulk loads by (array, static index text), class id as
            // the deterministic tie-break
            ready.sort_by_key(|&c| (self.load_sort_key(c), c));
            due.extend(ready);
            // also sort the due loads themselves so the bulk region is tidy
            let (mut loads, others): (Vec<Id>, Vec<Id>) =
                due.into_iter().partition(|&c| self.sel.node(self.eg, c).op == Op::Load);
            loads.sort_by_key(|&c| (self.load_sort_key(c), c));
            due = others.into_iter().chain(loads).collect();
        }
        for c in due {
            if self.avail.contains_key(&self.eg.find(c)) {
                continue;
            }
            self.materialize(c, out);
        }
    }

    fn load_sort_key(&self, class: Id) -> (String, Vec<String>) {
        let node = self.sel.node(self.eg, class);
        let state = self.eg.find(node.children[0]);
        let array = self.state_names.get(&state).cloned().unwrap_or_default();
        let idx: Vec<String> =
            node.children[1..].iter().map(|&c| self.sel.term_string(self.eg, c)).collect();
        (array, idx)
    }

    /// Can `class` be computed right now (states current, φs available)?
    fn deps_ready(&self, class: Id, seen: &mut HashSet<Id>) -> bool {
        let class = self.eg.find(class);
        if self.avail.contains_key(&class) {
            return true;
        }
        if !seen.insert(class) {
            return true;
        }
        if self.named_phis.contains(&class) {
            return false; // wait until the φ variable exists
        }
        let node = match self.sel.get(self.eg, class) {
            Some(n) => n,
            None => return false,
        };
        match &node.op {
            Op::PhiLoop | Op::LoopCond(_) | Op::Store => false,
            Op::Sym(name) => !name.contains('@'), // entry syms need avail
            Op::Load => {
                let state = self.eg.find(node.children[0]);
                match self.state_names.get(&state) {
                    Some(a) => {
                        self.current_state.get(a).copied() == Some(state)
                            && node.children[1..].iter().all(|&c| self.deps_ready(c, seen))
                    }
                    None => false,
                }
            }
            _ => node.children.iter().all(|&c| self.deps_ready(c, seen)),
        }
    }

    // ------------------------------------------------------------ items

    fn emit_item(&mut self, node: &SsaNode, path: &BlockPath, item: usize, out: &mut Vec<Stmt>) {
        match node {
            SsaNode::Decl { name, ty } => {
                self.tm.insert(name, ty.clone());
                out.push(Stmt::Decl { ty: ty.clone(), name: name.clone(), init: None });
            }
            SsaNode::Assign { target, class, state_class } => {
                self.emit_assign(target, *class, *state_class, out);
            }
            SsaNode::If { cond, then, els, has_else, phis, .. } => {
                // capture values endangered by branch assignments
                let assigned: Vec<String> = phis.iter().map(|(n, _)| n.clone()).collect();
                self.capture_endangered(&assigned, out);

                let snapshot = self.snapshot();
                let then_stmts = self.emit_block(then, &path.child(item, 0));
                self.restore(snapshot.clone());
                let els_stmts = if *has_else || !els.is_empty() {
                    let s = self.emit_block(els, &path.child(item, 1));
                    self.restore(snapshot);
                    Some(s)
                } else {
                    self.restore(snapshot);
                    None
                };
                out.push(Stmt::If {
                    cond: cond.clone(),
                    then: Block::new(then_stmts),
                    els: els_stmts.map(Block::new),
                });
                // φ values are now available through their variables
                for (name, phi) in phis {
                    self.bind_phi(name, *phi);
                }
            }
            SsaNode::Loop { header, body, phis } => {
                let assigned: Vec<String> = phis.iter().map(|(n, _, _, _)| n.clone()).collect();
                self.capture_endangered(&assigned, out);

                let snapshot = self.snapshot();
                // inside the body, each φ'd name holds its entry value
                for (name, entry, _, _) in phis {
                    self.bind_entry(name, *entry);
                }
                let body_stmts = self.emit_block(body, &path.child(item, 0));
                self.restore(snapshot);
                let mut l = header.clone();
                l.body = Block::new(body_stmts);
                out.push(Stmt::For(l));
                for (name, _, phi, _) in phis {
                    if name == &header.var && header.declares_var {
                        continue; // scoped induction variable dies here
                    }
                    self.bind_phi(name, *phi);
                }
            }
            SsaNode::Opaque { stmt, havocs } => {
                // the statement may overwrite these names out of the
                // e-graph's sight: capture any live value still flowing
                // through them, emit verbatim, then rebind each name to
                // its havoc class — loads of the old array states are no
                // longer current, so nothing is reused or hoisted across
                let assigned: Vec<String> = havocs.iter().map(|(n, _)| n.clone()).collect();
                self.capture_endangered(&assigned, out);
                out.push(stmt.clone());
                for (name, havoc) in havocs {
                    self.bind_phi(name, *havoc);
                }
            }
        }
    }

    fn emit_assign(
        &mut self,
        target: &Target,
        class: Id,
        state_class: Option<Id>,
        out: &mut Vec<Stmt>,
    ) {
        let class = self.eg.find(class);
        match target {
            Target::Scalar { name, decl_ty } => {
                self.capture_endangered(std::slice::from_ref(name), out);
                let rhs = self.reference(class, out);
                match decl_ty {
                    Some(ty) => {
                        self.tm.insert(name, ty.clone());
                        out.push(Stmt::Decl {
                            ty: ty.clone(),
                            name: name.clone(),
                            init: Some(rhs),
                        });
                    }
                    None => out.push(Stmt::Assign {
                        lhs: LValue::Var(name.clone()),
                        op: AssignOp::Assign,
                        rhs,
                    }),
                }
                self.var_binding.insert(name.clone(), class);
                if let std::collections::hash_map::Entry::Vacant(e) = self.avail.entry(class) {
                    e.insert(Expr::Var(name.clone()));
                    self.volatile_var.insert(class, name.clone());
                }
            }
            Target::Store { base, index_exprs, .. } => {
                let rhs = self.reference(class, out);
                out.push(Stmt::Assign {
                    lhs: LValue::Index { base: base.clone(), indices: index_exprs.clone() },
                    op: AssignOp::Assign,
                    rhs,
                });
                let state = self.eg.find(state_class.expect("store has a state class"));
                self.current_state.insert(base.clone(), state);
                self.state_names.insert(state, base.clone());
            }
        }
    }

    /// Before names in `assigned` are overwritten: any class whose current
    /// availability is a plain reference to one of those variables, and
    /// which is still needed later, gets captured into a temp.
    fn capture_endangered(&mut self, assigned: &[String], out: &mut Vec<Stmt>) {
        let mut endangered: Vec<(Id, String)> = self
            .volatile_var
            .iter()
            .filter(|(c, v)| assigned.contains(v) && self.remaining(**c) > 0)
            .map(|(&c, v)| (c, v.clone()))
            .collect();
        // the map iterates in a randomly seeded order; capture temps must
        // be emitted deterministically (batch output is compared
        // byte-for-byte), so order by variable name then class
        endangered.sort_by(|a, b| (&a.1, a.0).cmp(&(&b.1, b.0)));
        for (class, var) in endangered {
            // skip capture when the variable still holds this exact class and
            // the assignment would write the same class back (no-op)
            let name = self.fresh_temp();
            let ty = self.class_type(class);
            out.push(Stmt::Decl { ty, name: name.clone(), init: Some(Expr::Var(var)) });
            self.avail.insert(class, Expr::Var(name));
            self.volatile_var.remove(&class);
        }
    }

    fn bind_phi(&mut self, name: &str, phi: Id) {
        let phi = self.eg.find(phi);
        if self.current_state.contains_key(name) || self.state_names.contains_key(&phi) {
            // array φ: the array's current state after the merge
            self.current_state.insert(name.to_string(), phi);
            self.state_names.insert(phi, name.to_string());
            return;
        }
        // scalar φ — but names can also be arrays seen for the first time
        if self.tm.type_of(name) != Type::Void {
            self.var_binding.insert(name.to_string(), phi);
            if let std::collections::hash_map::Entry::Vacant(e) = self.avail.entry(phi) {
                e.insert(Expr::Var(name.to_string()));
                self.volatile_var.insert(phi, name.to_string());
            }
        }
    }

    fn bind_entry(&mut self, name: &str, entry: Id) {
        let entry = self.eg.find(entry);
        if self.current_state.contains_key(name) {
            self.current_state.insert(name.to_string(), entry);
            self.state_names.insert(entry, name.to_string());
            return;
        }
        self.var_binding.insert(name.to_string(), entry);
        if let std::collections::hash_map::Entry::Vacant(e) = self.avail.entry(entry) {
            e.insert(Expr::Var(name.to_string()));
            self.volatile_var.insert(entry, name.to_string());
        }
    }

    // ------------------------------------------------------------ scoping

    fn snapshot(&self) -> EmitterSnapshot {
        EmitterSnapshot {
            avail: self.avail.clone(),
            volatile_var: self.volatile_var.clone(),
            var_binding: self.var_binding.clone(),
            current_state: self.current_state.clone(),
            state_names: self.state_names.clone(),
        }
    }

    fn restore(&mut self, s: EmitterSnapshot) {
        self.avail = s.avail;
        self.volatile_var = s.volatile_var;
        self.var_binding = s.var_binding;
        self.current_state = s.current_state;
        self.state_names = s.state_names;
    }
}

#[derive(Clone)]
struct EmitterSnapshot {
    avail: HashMap<Id, Expr>,
    volatile_var: HashMap<Id, String>,
    var_binding: HashMap<String, Id>,
    current_state: HashMap<String, Id>,
    state_names: HashMap<Id, String>,
}

fn op_to_binop(op: &Op) -> BinOp {
    match op {
        Op::Add => BinOp::Add,
        Op::Sub => BinOp::Sub,
        Op::Mul => BinOp::Mul,
        Op::Div => BinOp::Div,
        Op::Mod => BinOp::Mod,
        Op::Lt => BinOp::Lt,
        Op::Le => BinOp::Le,
        Op::Gt => BinOp::Gt,
        Op::Ge => BinOp::Ge,
        Op::Eq => BinOp::Eq,
        Op::Ne => BinOp::Ne,
        Op::And => BinOp::And,
        Op::Or => BinOp::Or,
        other => panic!("`{}` is not a binary operator", other.name()),
    }
}
