//! Type inference for temporaries.
//!
//! Generated `_vN` temporaries need C types. Scalar/array types come from
//! the function signature and local declarations; class types are derived
//! from the selected nodes (integer arithmetic stays `int` so that index
//! expressions keep C integer-division semantics).

use accsat_ir::{Block, Function, Stmt, Type};
use std::collections::HashMap;

/// Name → type map. For arrays the type is the *element* type.
#[derive(Debug, Clone, Default)]
pub struct TypeMap {
    map: HashMap<String, Type>,
}

impl TypeMap {
    /// Empty map (every unknown name defaults to `double`).
    pub fn new() -> TypeMap {
        TypeMap::default()
    }

    /// Collect types from a function: parameters and local declarations.
    /// Loop induction variables are `int`.
    pub fn from_function(f: &Function) -> TypeMap {
        let mut tm = TypeMap::new();
        for p in &f.params {
            tm.map.insert(p.name.clone(), p.ty.clone());
        }
        tm.collect_block(&f.body);
        tm
    }

    fn collect_block(&mut self, b: &Block) {
        for s in &b.stmts {
            match s {
                Stmt::Decl { ty, name, .. } => {
                    self.map.insert(name.clone(), ty.clone());
                }
                Stmt::If { then, els, .. } => {
                    self.collect_block(then);
                    if let Some(e) = els {
                        self.collect_block(e);
                    }
                }
                Stmt::For(l) => {
                    self.map.insert(l.var.clone(), Type::Int);
                    self.collect_block(&l.body);
                }
                Stmt::While { body, .. } => self.collect_block(body),
                Stmt::Block(b) => self.collect_block(b),
                _ => {}
            }
        }
    }

    /// Insert a binding.
    pub fn insert(&mut self, name: &str, ty: Type) {
        self.map.insert(name.to_string(), ty);
    }

    /// Type of a name. Entry symbols (`x@L0`) resolve to the type of `x`.
    /// Unknown names default to `double`, the dominant kernel type.
    pub fn type_of(&self, name: &str) -> Type {
        let base = name.split('@').next().unwrap_or(name);
        self.map.get(base).cloned().unwrap_or(Type::Double)
    }
}

/// Promote two operand types (C usual arithmetic conversions, restricted to
/// the subset).
pub fn promote(a: &Type, b: &Type) -> Type {
    match (a, b) {
        (Type::Double, _) | (_, Type::Double) => Type::Double,
        (Type::Float, _) | (_, Type::Float) => Type::Float,
        _ => Type::Int,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_ir::parse_program;

    #[test]
    fn collects_params_decls_and_loop_vars() {
        let src = r#"
void f(double a[8], int n, float s) {
  double t = 0.0;
  for (int i = 0; i < n; i++) {
    int k = i * 2;
    t = t + a[k];
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let tm = TypeMap::from_function(&prog.functions[0]);
        assert_eq!(tm.type_of("a"), Type::Double);
        assert_eq!(tm.type_of("n"), Type::Int);
        assert_eq!(tm.type_of("s"), Type::Float);
        assert_eq!(tm.type_of("t"), Type::Double);
        assert_eq!(tm.type_of("i"), Type::Int);
        assert_eq!(tm.type_of("k"), Type::Int);
    }

    #[test]
    fn entry_symbols_resolve_to_base() {
        let mut tm = TypeMap::new();
        tm.insert("acc", Type::Float);
        assert_eq!(tm.type_of("acc@L0"), Type::Float);
    }

    #[test]
    fn unknown_defaults_to_double() {
        let tm = TypeMap::new();
        assert_eq!(tm.type_of("mystery"), Type::Double);
    }

    #[test]
    fn promotion_rules() {
        assert_eq!(promote(&Type::Int, &Type::Int), Type::Int);
        assert_eq!(promote(&Type::Int, &Type::Double), Type::Double);
        assert_eq!(promote(&Type::Float, &Type::Int), Type::Float);
        assert_eq!(promote(&Type::Float, &Type::Double), Type::Double);
    }
}
