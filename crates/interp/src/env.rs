//! Runtime values and the execution environment.

use std::collections::HashMap;

/// A runtime scalar value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    Int(i64),
    Float(f64),
}

impl Value {
    /// Coerce to `f64` (C's usual arithmetic conversions).
    pub fn as_f64(self) -> f64 {
        match self {
            Value::Int(v) => v as f64,
            Value::Float(v) => v,
        }
    }

    /// Coerce to `i64` (C truncation for floats).
    pub fn as_i64(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Float(v) => v as i64,
        }
    }

    /// C truthiness.
    pub fn truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Float(v) => v != 0.0,
        }
    }
}

/// Array storage: element type follows the declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrayData {
    F64 { dims: Vec<usize>, data: Vec<f64> },
    I64 { dims: Vec<usize>, data: Vec<i64> },
}

impl ArrayData {
    /// Zero-filled double array.
    pub fn zeros_f64(dims: &[usize]) -> ArrayData {
        ArrayData::F64 { dims: dims.to_vec(), data: vec![0.0; dims.iter().product()] }
    }

    /// Zero-filled integer array.
    pub fn zeros_i64(dims: &[usize]) -> ArrayData {
        ArrayData::I64 { dims: dims.to_vec(), data: vec![0; dims.iter().product()] }
    }

    /// Double array from data (dims must multiply to `data.len()`).
    pub fn from_f64(dims: &[usize], data: Vec<f64>) -> ArrayData {
        assert_eq!(dims.iter().product::<usize>(), data.len());
        ArrayData::F64 { dims: dims.to_vec(), data }
    }

    /// Integer array from data.
    pub fn from_i64(dims: &[usize], data: Vec<i64>) -> ArrayData {
        assert_eq!(dims.iter().product::<usize>(), data.len());
        ArrayData::I64 { dims: dims.to_vec(), data }
    }

    /// Declared dimensions.
    pub fn dims(&self) -> &[usize] {
        match self {
            ArrayData::F64 { dims, .. } | ArrayData::I64 { dims, .. } => dims,
        }
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        match self {
            ArrayData::F64 { data, .. } => data.len(),
            ArrayData::I64 { data, .. } => data.len(),
        }
    }

    /// Is the array empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flatten a multi-dimensional index (row-major). Returns `None` if any
    /// index is out of bounds.
    pub fn flatten(&self, indices: &[i64]) -> Option<usize> {
        let dims = self.dims();
        if indices.len() != dims.len() {
            // C allows treating T[N][M] as T[N*M] via a single index (the
            // benchmarks use both styles); accept a single flat index.
            if indices.len() == 1 {
                let i = indices[0];
                if i >= 0 && (i as usize) < self.len() {
                    return Some(i as usize);
                }
            }
            return None;
        }
        let mut flat = 0usize;
        for (&i, &d) in indices.iter().zip(dims.iter()) {
            if i < 0 || i as usize >= d {
                return None;
            }
            flat = flat * d + i as usize;
        }
        Some(flat)
    }

    /// Read an element.
    pub fn get(&self, flat: usize) -> Value {
        match self {
            ArrayData::F64 { data, .. } => Value::Float(data[flat]),
            ArrayData::I64 { data, .. } => Value::Int(data[flat]),
        }
    }

    /// Write an element, coercing to the element type.
    pub fn set(&mut self, flat: usize, v: Value) {
        match self {
            ArrayData::F64 { data, .. } => data[flat] = v.as_f64(),
            ArrayData::I64 { data, .. } => data[flat] = v.as_i64(),
        }
    }

    /// Read an element, returning `None` instead of panicking when `flat`
    /// is past the end (defense-in-depth for adversarial fuzz inputs).
    pub fn try_get(&self, flat: usize) -> Option<Value> {
        match self {
            ArrayData::F64 { data, .. } => data.get(flat).map(|&v| Value::Float(v)),
            ArrayData::I64 { data, .. } => data.get(flat).map(|&v| Value::Int(v)),
        }
    }

    /// Write an element if `flat` is in bounds; reports success.
    pub fn try_set(&mut self, flat: usize, v: Value) -> bool {
        match self {
            ArrayData::F64 { data, .. } => match data.get_mut(flat) {
                Some(slot) => {
                    *slot = v.as_f64();
                    true
                }
                None => false,
            },
            ArrayData::I64 { data, .. } => match data.get_mut(flat) {
                Some(slot) => {
                    *slot = v.as_i64();
                    true
                }
                None => false,
            },
        }
    }

    /// Copy out as `f64` for tolerant comparison.
    pub fn as_f64_vec(&self) -> Vec<f64> {
        match self {
            ArrayData::F64 { data, .. } => data.clone(),
            ArrayData::I64 { data, .. } => data.iter().map(|&v| v as f64).collect(),
        }
    }
}

/// The execution environment: scalar bindings and array storage.
#[derive(Debug, Clone, Default)]
pub struct Env {
    scalars: HashMap<String, Value>,
    arrays: HashMap<String, ArrayData>,
}

impl Env {
    /// Empty environment.
    pub fn new() -> Env {
        Env::default()
    }

    /// Bind a scalar.
    pub fn set_scalar(&mut self, name: &str, v: Value) {
        self.scalars.insert(name.to_string(), v);
    }

    /// Convenience: bind an `f64` scalar.
    pub fn set_f64(&mut self, name: &str, v: f64) {
        self.set_scalar(name, Value::Float(v));
    }

    /// Convenience: bind an `i64` scalar.
    pub fn set_i64(&mut self, name: &str, v: i64) {
        self.set_scalar(name, Value::Int(v));
    }

    /// Read a scalar.
    pub fn scalar(&self, name: &str) -> Option<Value> {
        self.scalars.get(name).copied()
    }

    /// Insert an array.
    pub fn set_array(&mut self, name: &str, a: ArrayData) {
        self.arrays.insert(name.to_string(), a);
    }

    /// Borrow an array.
    pub fn array(&self, name: &str) -> Option<&ArrayData> {
        self.arrays.get(name)
    }

    /// Mutably borrow an array.
    pub fn array_mut(&mut self, name: &str) -> Option<&mut ArrayData> {
        self.arrays.get_mut(name)
    }

    /// Iterate over all arrays.
    pub fn arrays(&self) -> impl Iterator<Item = (&str, &ArrayData)> {
        self.arrays.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Remove a scalar (scoping helper for the evaluator).
    pub fn remove_scalar(&mut self, name: &str) -> Option<Value> {
        self.scalars.remove(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flatten_row_major() {
        let a = ArrayData::zeros_f64(&[3, 4]);
        assert_eq!(a.flatten(&[0, 0]), Some(0));
        assert_eq!(a.flatten(&[1, 0]), Some(4));
        assert_eq!(a.flatten(&[2, 3]), Some(11));
        assert_eq!(a.flatten(&[3, 0]), None);
        assert_eq!(a.flatten(&[0, 4]), None);
        assert_eq!(a.flatten(&[-1, 0]), None);
    }

    #[test]
    fn flat_indexing_of_multidim() {
        let a = ArrayData::zeros_f64(&[3, 4]);
        assert_eq!(a.flatten(&[11]), Some(11));
        assert_eq!(a.flatten(&[12]), None);
    }

    #[test]
    fn value_coercions() {
        assert_eq!(Value::Int(3).as_f64(), 3.0);
        assert_eq!(Value::Float(2.7).as_i64(), 2);
        assert!(Value::Int(1).truthy());
        assert!(!Value::Float(0.0).truthy());
    }

    #[test]
    fn int_array_set_coerces() {
        let mut a = ArrayData::zeros_i64(&[2]);
        a.set(0, Value::Float(3.9));
        assert_eq!(a.get(0), Value::Int(3));
    }

    #[test]
    fn env_scalars_and_arrays() {
        let mut env = Env::new();
        env.set_f64("x", 1.5);
        env.set_array("a", ArrayData::zeros_f64(&[4]));
        assert_eq!(env.scalar("x"), Some(Value::Float(1.5)));
        env.array_mut("a").unwrap().set(2, Value::Float(9.0));
        assert_eq!(env.array("a").unwrap().get(2), Value::Float(9.0));
    }
}
