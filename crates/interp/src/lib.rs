//! `accsat-interp` — a sequential interpreter for the `accsat-ir` C subset.
//!
//! ACC Saturator must preserve program semantics (paper §IV). The paper's
//! authors validate against benchmark-provided verification; this crate is
//! our equivalent substrate: it executes original and optimized kernels on
//! concrete inputs so tests can assert output equality. Floating-point
//! comparisons use a relative tolerance because both the paper's compilers
//! (`-ffast-math`, `-gpu=fastmath`) and our reassociation rules permit
//! rounding differences.
//!
//! Directives are ignored: a parallel loop with `independent` iterations
//! produces the same result executed sequentially, which is exactly the
//! property the directive asserts.

pub mod env;
pub mod eval;

pub use env::{ArrayData, Env, Value};
pub use eval::{run_function, try_run_function, EvalError, EvalErrorKind, Interpreter};

/// Compare two floats with relative tolerance `rel` (and absolute floor
/// `abs` for values near zero).
pub fn approx_eq(a: f64, b: f64, rel: f64, abs: f64) -> bool {
    if a == b {
        return true;
    }
    if a.is_nan() && b.is_nan() {
        return true;
    }
    let diff = (a - b).abs();
    if diff <= abs {
        return true;
    }
    diff <= rel * a.abs().max(b.abs())
}

/// Compare two environments' arrays with tolerance; returns the first
/// mismatch as `(array, flat index, lhs, rhs)`.
pub fn compare_arrays(a: &Env, b: &Env, rel: f64) -> Option<(String, usize, f64, f64)> {
    compare_arrays_with(a, b, rel, 1e-12)
}

/// [`compare_arrays`] with an explicit absolute floor. The fuzzer raises
/// `abs` above the default 1e-12 because reassociation under fast-math
/// semantics can cancel catastrophically near zero without being a
/// miscompile; real miscompiles produce O(1) errors.
pub fn compare_arrays_with(
    a: &Env,
    b: &Env,
    rel: f64,
    abs: f64,
) -> Option<(String, usize, f64, f64)> {
    for (name, arr_a) in a.arrays() {
        let arr_b = match b.array(name) {
            Some(x) => x,
            None => continue,
        };
        let (fa, fb) = (arr_a.as_f64_vec(), arr_b.as_f64_vec());
        for (i, (&x, &y)) in fa.iter().zip(fb.iter()).enumerate() {
            if !approx_eq(x, y, rel, abs) {
                return Some((name.to_string(), i, x, y));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basics() {
        assert!(approx_eq(1.0, 1.0, 0.0, 0.0));
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(!approx_eq(1.0, 1.1, 1e-9, 0.0));
        assert!(approx_eq(0.0, 1e-13, 1e-9, 1e-12));
        assert!(approx_eq(f64::NAN, f64::NAN, 0.0, 0.0));
    }
}
