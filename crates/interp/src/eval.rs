//! The evaluator: executes functions/statements over an [`Env`].

use crate::env::{Env, Value};
use accsat_ir::{BinOp, Block, Expr, Function, LValue, Stmt, Type, UnOp};

/// What went wrong, machine-readably. The differential fuzzer relies on
/// this taxonomy to distinguish a real miscompile (an optimized kernel
/// trapping where the original ran clean) from an interpreter limitation
/// ([`EvalErrorKind::Unsupported`], [`EvalErrorKind::FuelExhausted`])
/// without string-matching messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EvalErrorKind {
    /// A scalar was read (or required as a parameter) without a binding.
    UnboundVariable,
    /// An array was accessed (or required as a parameter) without a binding.
    UnboundArray,
    /// An index list whose arity matches neither the array's declared
    /// dimensions nor the flat single-index view.
    ShapeMismatch,
    /// A well-shaped index outside the declared extents.
    OutOfBounds,
    /// Integer `/` or `%` by zero.
    DivisionByZero,
    /// The loop-iteration fuel budget ran out (runaway loop).
    FuelExhausted,
    /// A call to a function the interpreter does not model, or with the
    /// wrong arity.
    BadCall,
    /// A construct outside the modeled C subset (e.g. float `%`).
    Unsupported,
}

impl EvalErrorKind {
    /// Short stable label (used in fuzz reports).
    pub fn label(&self) -> &'static str {
        match self {
            EvalErrorKind::UnboundVariable => "unbound-variable",
            EvalErrorKind::UnboundArray => "unbound-array",
            EvalErrorKind::ShapeMismatch => "shape-mismatch",
            EvalErrorKind::OutOfBounds => "out-of-bounds",
            EvalErrorKind::DivisionByZero => "division-by-zero",
            EvalErrorKind::FuelExhausted => "fuel-exhausted",
            EvalErrorKind::BadCall => "bad-call",
            EvalErrorKind::Unsupported => "unsupported",
        }
    }
}

/// Evaluation errors (unbound names, out-of-bounds accesses, runaway
/// loops), carrying a typed [`EvalErrorKind`] plus a human-readable
/// message.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalError {
    /// Machine-readable classification.
    pub kind: EvalErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

fn err<T>(kind: EvalErrorKind, msg: impl Into<String>) -> Result<T, EvalError> {
    Err(EvalError { kind, message: msg.into() })
}

type EResult<T> = Result<T, EvalError>;

/// The interpreter. Holds a loop-iteration fuel budget to guarantee
/// termination on adversarial inputs (property tests generate arbitrary
/// loop bounds).
pub struct Interpreter {
    /// Remaining loop iterations before aborting.
    pub fuel: u64,
}

impl Default for Interpreter {
    fn default() -> Self {
        Interpreter { fuel: 100_000_000 }
    }
}

/// Run `f` with parameters already bound in `env` (scalars by name; arrays
/// by name in `env.arrays`). Returns the function's return value, if any.
///
/// Thin wrapper over [`try_run_function`] with the default fuel budget —
/// kept with this exact signature for every existing caller.
pub fn run_function(f: &Function, env: &mut Env) -> EResult<Option<Value>> {
    try_run_function(f, env, Interpreter::default().fuel)
}

/// Run `f` under an explicit loop-iteration `fuel` budget.
///
/// Identical to [`run_function`] otherwise: parameters must already be
/// bound in `env`, and every failure mode comes back as a typed
/// [`EvalError`] instead of a panic — unbound names, shape mismatches,
/// out-of-bounds indices, division by zero, exhausted fuel.
pub fn try_run_function(f: &Function, env: &mut Env, fuel: u64) -> EResult<Option<Value>> {
    let mut interp = Interpreter { fuel };
    // check all params are bound
    for p in &f.params {
        if p.is_array() {
            if env.array(&p.name).is_none() {
                return err(
                    EvalErrorKind::UnboundArray,
                    format!("array parameter `{}` not bound", p.name),
                );
            }
        } else if env.scalar(&p.name).is_none() {
            return err(
                EvalErrorKind::UnboundVariable,
                format!("scalar parameter `{}` not bound", p.name),
            );
        }
    }
    interp.block(&f.body, env)
}

/// Classify a failed index: wrong arity is a shape mismatch, right arity
/// out of range is out-of-bounds.
fn index_error(base: &str, idx: &[i64], dims: &[usize]) -> EvalError {
    let kind = if idx.len() != dims.len() && idx.len() != 1 {
        EvalErrorKind::ShapeMismatch
    } else {
        EvalErrorKind::OutOfBounds
    };
    EvalError { kind, message: format!("index {idx:?} out of bounds for `{base}` {dims:?}") }
}

impl Interpreter {
    /// Execute a block; `Some(v)` means a `return` was executed.
    pub fn block(&mut self, b: &Block, env: &mut Env) -> EResult<Option<Value>> {
        for s in &b.stmts {
            if let Some(ret) = self.stmt(s, env)? {
                return Ok(Some(ret));
            }
        }
        Ok(None)
    }

    fn burn(&mut self) -> EResult<()> {
        if self.fuel == 0 {
            return err(
                EvalErrorKind::FuelExhausted,
                "loop fuel exhausted (non-terminating kernel?)",
            );
        }
        self.fuel -= 1;
        Ok(())
    }

    /// Execute one statement.
    pub fn stmt(&mut self, s: &Stmt, env: &mut Env) -> EResult<Option<Value>> {
        match s {
            Stmt::Decl { ty, name, init } => {
                let v = match init {
                    Some(e) => coerce(self.expr(e, env)?, ty),
                    None => match ty {
                        Type::Int => Value::Int(0),
                        _ => Value::Float(0.0),
                    },
                };
                env.set_scalar(name, v);
                Ok(None)
            }
            Stmt::Assign { lhs, op, rhs } => {
                let rhs_v = self.expr(rhs, env)?;
                let new_v = match op.binop() {
                    None => rhs_v,
                    Some(bop) => {
                        let old = self.lvalue_read(lhs, env)?;
                        apply_bin(bop, old, rhs_v)?
                    }
                };
                self.lvalue_write(lhs, new_v, env)
            }
            Stmt::If { cond, then, els } => {
                if self.expr(cond, env)?.truthy() {
                    self.block(then, env)
                } else if let Some(e) = els {
                    self.block(e, env)
                } else {
                    Ok(None)
                }
            }
            Stmt::For(l) => {
                let init_v = self.expr(&l.init, env)?;
                // the induction variable shadows any outer binding if declared
                let saved = if l.declares_var { env.remove_scalar(&l.var) } else { None };
                env.set_scalar(&l.var, Value::Int(init_v.as_i64()));
                loop {
                    self.burn()?;
                    if !self.expr(&l.cond, env)?.truthy() {
                        break;
                    }
                    if let Some(ret) = self.block(&l.body, env)? {
                        return Ok(Some(ret));
                    }
                    let step = self.expr(&l.step, env)?;
                    let cur = env.scalar(&l.var).ok_or_else(|| EvalError {
                        kind: EvalErrorKind::UnboundVariable,
                        message: format!("induction variable `{}` vanished", l.var),
                    })?;
                    env.set_scalar(&l.var, Value::Int(cur.as_i64() + step.as_i64()));
                }
                if l.declares_var {
                    env.remove_scalar(&l.var);
                    if let Some(v) = saved {
                        env.set_scalar(&l.var, v);
                    }
                }
                Ok(None)
            }
            Stmt::While { cond, body } => {
                loop {
                    self.burn()?;
                    if !self.expr(cond, env)?.truthy() {
                        break;
                    }
                    if let Some(ret) = self.block(body, env)? {
                        return Ok(Some(ret));
                    }
                }
                Ok(None)
            }
            Stmt::Block(b) => self.block(b, env),
            Stmt::Expr(e) => {
                self.expr(e, env)?;
                Ok(None)
            }
            Stmt::Return(e) => match e {
                Some(e) => Ok(Some(self.expr(e, env)?)),
                None => Ok(Some(Value::Int(0))),
            },
        }
    }

    fn lvalue_read(&mut self, lv: &LValue, env: &mut Env) -> EResult<Value> {
        match lv {
            LValue::Var(n) => env.scalar(n).ok_or_else(|| EvalError {
                kind: EvalErrorKind::UnboundVariable,
                message: format!("unbound variable `{n}`"),
            }),
            LValue::Index { base, indices } => {
                let idx = self.indices(indices, env)?;
                let arr = env.array(base).ok_or_else(|| EvalError {
                    kind: EvalErrorKind::UnboundArray,
                    message: format!("unbound array `{base}`"),
                })?;
                let flat = arr.flatten(&idx).ok_or_else(|| index_error(base, &idx, arr.dims()))?;
                arr.try_get(flat).ok_or_else(|| index_error(base, &idx, arr.dims()))
            }
        }
    }

    fn lvalue_write(&mut self, lv: &LValue, v: Value, env: &mut Env) -> EResult<Option<Value>> {
        match lv {
            LValue::Var(n) => {
                // preserve declared int-ness of existing bindings
                let v = match env.scalar(n) {
                    Some(Value::Int(_)) => Value::Int(v.as_i64()),
                    _ => v,
                };
                env.set_scalar(n, v);
                Ok(None)
            }
            LValue::Index { base, indices } => {
                let idx = self.indices(indices, env)?;
                let arr = env.array_mut(base).ok_or_else(|| EvalError {
                    kind: EvalErrorKind::UnboundArray,
                    message: format!("unbound array `{base}`"),
                })?;
                let flat = arr.flatten(&idx).ok_or_else(|| index_error(base, &idx, arr.dims()))?;
                if !arr.try_set(flat, v) {
                    let dims = arr.dims().to_vec();
                    return Err(index_error(base, &idx, &dims));
                }
                Ok(None)
            }
        }
    }

    fn indices(&mut self, indices: &[Expr], env: &mut Env) -> EResult<Vec<i64>> {
        indices.iter().map(|e| Ok(self.expr(e, env)?.as_i64())).collect()
    }

    /// Evaluate an expression.
    pub fn expr(&mut self, e: &Expr, env: &mut Env) -> EResult<Value> {
        match e {
            Expr::Int(v) => Ok(Value::Int(*v)),
            Expr::Float(v) => Ok(Value::Float(*v)),
            Expr::Var(n) => env.scalar(n).ok_or_else(|| EvalError {
                kind: EvalErrorKind::UnboundVariable,
                message: format!("unbound variable `{n}`"),
            }),
            Expr::Index { base, indices } => {
                let idx = self.indices(indices, env)?;
                let arr = env.array(base).ok_or_else(|| EvalError {
                    kind: EvalErrorKind::UnboundArray,
                    message: format!("unbound array `{base}`"),
                })?;
                let flat = arr.flatten(&idx).ok_or_else(|| index_error(base, &idx, arr.dims()))?;
                arr.try_get(flat).ok_or_else(|| index_error(base, &idx, arr.dims()))
            }
            Expr::Unary { op, operand } => {
                let v = self.expr(operand, env)?;
                Ok(match op {
                    UnOp::Neg => match v {
                        Value::Int(i) => Value::Int(i.wrapping_neg()),
                        Value::Float(f) => Value::Float(-f),
                    },
                    UnOp::Not => Value::Int(!v.truthy() as i64),
                })
            }
            Expr::Binary { op, lhs, rhs } => {
                // short-circuit for && and ||
                match op {
                    BinOp::And => {
                        let l = self.expr(lhs, env)?;
                        if !l.truthy() {
                            return Ok(Value::Int(0));
                        }
                        return Ok(Value::Int(self.expr(rhs, env)?.truthy() as i64));
                    }
                    BinOp::Or => {
                        let l = self.expr(lhs, env)?;
                        if l.truthy() {
                            return Ok(Value::Int(1));
                        }
                        return Ok(Value::Int(self.expr(rhs, env)?.truthy() as i64));
                    }
                    _ => {}
                }
                let l = self.expr(lhs, env)?;
                let r = self.expr(rhs, env)?;
                apply_bin(*op, l, r)
            }
            Expr::Call { name, args } => {
                let vals: EResult<Vec<Value>> = args.iter().map(|a| self.expr(a, env)).collect();
                builtin_call(name, &vals?)
            }
            Expr::Ternary { cond, then, els } => {
                if self.expr(cond, env)?.truthy() {
                    self.expr(then, env)
                } else {
                    self.expr(els, env)
                }
            }
            Expr::Cast { ty, expr } => Ok(coerce(self.expr(expr, env)?, ty)),
        }
    }
}

fn coerce(v: Value, ty: &Type) -> Value {
    match ty {
        Type::Int => Value::Int(v.as_i64()),
        Type::Float | Type::Double => Value::Float(v.as_f64()),
        Type::Void => v,
    }
}

fn apply_bin(op: BinOp, l: Value, r: Value) -> EResult<Value> {
    use BinOp::*;
    // integer op only when both sides are ints (C promotion)
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        let v = match op {
            Add => a.wrapping_add(b),
            Sub => a.wrapping_sub(b),
            Mul => a.wrapping_mul(b),
            Div => {
                if b == 0 {
                    return err(EvalErrorKind::DivisionByZero, "integer division by zero");
                }
                a.wrapping_div(b)
            }
            Mod => {
                if b == 0 {
                    return err(EvalErrorKind::DivisionByZero, "integer modulo by zero");
                }
                a.wrapping_rem(b)
            }
            Lt => (a < b) as i64,
            Le => (a <= b) as i64,
            Gt => (a > b) as i64,
            Ge => (a >= b) as i64,
            Eq => (a == b) as i64,
            Ne => (a != b) as i64,
            And => ((a != 0) && (b != 0)) as i64,
            Or => ((a != 0) || (b != 0)) as i64,
        };
        return Ok(Value::Int(v));
    }
    let (a, b) = (l.as_f64(), r.as_f64());
    Ok(match op {
        Add => Value::Float(a + b),
        Sub => Value::Float(a - b),
        Mul => Value::Float(a * b),
        Div => Value::Float(a / b),
        Mod => return err(EvalErrorKind::Unsupported, "floating modulo is not in the C subset"),
        Lt => Value::Int((a < b) as i64),
        Le => Value::Int((a <= b) as i64),
        Gt => Value::Int((a > b) as i64),
        Ge => Value::Int((a >= b) as i64),
        Eq => Value::Int((a == b) as i64),
        Ne => Value::Int((a != b) as i64),
        And => Value::Int((a != 0.0 && b != 0.0) as i64),
        Or => Value::Int((a != 0.0 || b != 0.0) as i64),
    })
}

/// The math builtins the benchmark kernels use.
fn builtin_call(name: &str, args: &[Value]) -> EResult<Value> {
    let f1 = |f: fn(f64) -> f64| -> EResult<Value> {
        if args.len() != 1 {
            return err(EvalErrorKind::BadCall, format!("{name} expects 1 argument"));
        }
        Ok(Value::Float(f(args[0].as_f64())))
    };
    let f2 = |f: fn(f64, f64) -> f64| -> EResult<Value> {
        if args.len() != 2 {
            return err(EvalErrorKind::BadCall, format!("{name} expects 2 arguments"));
        }
        Ok(Value::Float(f(args[0].as_f64(), args[1].as_f64())))
    };
    match name {
        "sqrt" | "sqrtf" => f1(f64::sqrt),
        "fabs" | "fabsf" | "abs" => f1(f64::abs),
        "exp" | "expf" => f1(f64::exp),
        "log" | "logf" => f1(f64::ln),
        "sin" | "sinf" => f1(f64::sin),
        "cos" | "cosf" => f1(f64::cos),
        "tan" => f1(f64::tan),
        "floor" => f1(f64::floor),
        "ceil" => f1(f64::ceil),
        "pow" | "powf" => f2(f64::powf),
        "fmax" | "max" => f2(f64::max),
        "fmin" | "min" => f2(f64::min),
        "atan2" => f2(f64::atan2),
        "fma" => {
            if args.len() != 3 {
                return err(EvalErrorKind::BadCall, "fma expects 3 arguments");
            }
            // the paper's FMA semantics: fma(a, b, c) = a + b * c
            Ok(Value::Float(args[0].as_f64() + args[1].as_f64() * args[2].as_f64()))
        }
        _ => err(EvalErrorKind::BadCall, format!("unknown function `{name}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::ArrayData;
    use accsat_ir::parse_program;

    fn run(src: &str, setup: impl FnOnce(&mut Env)) -> Env {
        let prog = parse_program(src).unwrap();
        let mut env = Env::new();
        setup(&mut env);
        run_function(&prog.functions[0], &mut env).unwrap();
        env
    }

    #[test]
    fn axpy_runs() {
        let env = run(
            r#"
void axpy(double x[8], double y[8], double a) {
  for (int i = 0; i < 8; i++) {
    y[i] = a * x[i] + y[i];
  }
}
"#,
            |env| {
                env.set_f64("a", 2.0);
                env.set_array("x", ArrayData::from_f64(&[8], (0..8).map(|i| i as f64).collect()));
                env.set_array("y", ArrayData::from_f64(&[8], vec![1.0; 8]));
            },
        );
        let y = env.array("y").unwrap().as_f64_vec();
        assert_eq!(y, vec![1.0, 3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0]);
    }

    #[test]
    fn matmul_matches_reference() {
        let n = 4usize;
        let a: Vec<f64> = (0..n * n).map(|i| (i % 7) as f64 * 0.5).collect();
        let b: Vec<f64> = (0..n * n).map(|i| (i % 5) as f64 - 2.0).collect();
        let env = run(
            r#"
void mm(double a[4][4], double b[4][4], double r[4][4]) {
  for (int i = 0; i < 4; i++) {
    for (int j = 0; j < 4; j++) {
      double tmp = 0.0;
      for (int l = 0; l < 4; l++) {
        tmp += a[i][l] * b[l][j];
      }
      r[i][j] = tmp;
    }
  }
}
"#,
            |env| {
                env.set_array("a", ArrayData::from_f64(&[n, n], a.clone()));
                env.set_array("b", ArrayData::from_f64(&[n, n], b.clone()));
                env.set_array("r", ArrayData::zeros_f64(&[n, n]));
            },
        );
        let r = env.array("r").unwrap().as_f64_vec();
        for i in 0..n {
            for j in 0..n {
                let want: f64 = (0..n).map(|l| a[i * n + l] * b[l * n + j]).sum();
                assert!((r[i * n + j] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn if_else_and_ternary() {
        let env = run(
            r#"
void f(double out[2], double x) {
  if (x > 0.0) {
    out[0] = x;
  } else {
    out[0] = -x;
  }
  out[1] = x > 1.0 ? 1.0 : 0.0;
}
"#,
            |env| {
                env.set_f64("x", -3.0);
                env.set_array("out", ArrayData::zeros_f64(&[2]));
            },
        );
        let out = env.array("out").unwrap().as_f64_vec();
        assert_eq!(out, vec![3.0, 0.0]);
    }

    #[test]
    fn while_and_return() {
        let src = r#"
int f(int n) {
  int s = 0;
  int i = 0;
  while (i < n) {
    s = s + i;
    i = i + 1;
  }
  return s;
}
"#;
        let prog = parse_program(src).unwrap();
        let mut env = Env::new();
        env.set_i64("n", 5);
        let ret = run_function(&prog.functions[0], &mut env).unwrap();
        assert_eq!(ret, Some(Value::Int(10)));
    }

    #[test]
    fn builtins_work() {
        let env = run(
            r#"
void f(double out[4], double x) {
  out[0] = sqrt(x);
  out[1] = fabs(-x);
  out[2] = pow(x, 2.0);
  out[3] = fmax(x, 10.0);
}
"#,
            |env| {
                env.set_f64("x", 4.0);
                env.set_array("out", ArrayData::zeros_f64(&[4]));
            },
        );
        let out = env.array("out").unwrap().as_f64_vec();
        assert_eq!(out, vec![2.0, 4.0, 16.0, 10.0]);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let prog = parse_program("void f(double a[2]) { a[5] = 1.0; }").unwrap();
        let mut env = Env::new();
        env.set_array("a", ArrayData::zeros_f64(&[2]));
        assert!(run_function(&prog.functions[0], &mut env).is_err());
    }

    #[test]
    fn unbound_variable_is_an_error() {
        let prog = parse_program("void f() { double x = y + 1.0; }").unwrap();
        let mut env = Env::new();
        assert!(run_function(&prog.functions[0], &mut env).is_err());
    }

    #[test]
    fn integer_semantics() {
        let src = r#"
void f(int out[3], int a, int b) {
  out[0] = a / b;
  out[1] = a % b;
  out[2] = a / b * b + a % b;
}
"#;
        let env = {
            let prog = parse_program(src).unwrap();
            let mut env = Env::new();
            env.set_i64("a", 17);
            env.set_i64("b", 5);
            env.set_array("out", ArrayData::zeros_i64(&[3]));
            run_function(&prog.functions[0], &mut env).unwrap();
            env
        };
        let out = env.array("out").unwrap().as_f64_vec();
        assert_eq!(out, vec![3.0, 2.0, 17.0]);
    }

    #[test]
    fn short_circuit_avoids_division_by_zero() {
        let env = run(
            r#"
void f(double out[1], int d) {
  if (d != 0 && 10 / d > 1) {
    out[0] = 1.0;
  } else {
    out[0] = 2.0;
  }
}
"#,
            |env| {
                env.set_i64("d", 0);
                env.set_array("out", ArrayData::zeros_f64(&[1]));
            },
        );
        assert_eq!(env.array("out").unwrap().as_f64_vec(), vec![2.0]);
    }

    #[test]
    fn fuel_terminates_infinite_loop() {
        let prog = parse_program("void f() { while (1) { } }").unwrap();
        let mut env = Env::new();
        let mut interp = Interpreter { fuel: 1000 };
        let r = interp.block(&prog.functions[0].body, &mut env);
        assert!(r.is_err());
    }

    #[test]
    fn loop_var_scoping_restores_outer() {
        let src = r#"
void f(double out[1]) {
  int i = 99;
  for (int i = 0; i < 3; i++) { }
  out[0] = (double)i;
}
"#;
        let env = run(src, |env| {
            env.set_array("out", ArrayData::zeros_f64(&[1]));
        });
        assert_eq!(env.array("out").unwrap().as_f64_vec(), vec![99.0]);
    }
}
