//! Figure 4: SPEC ACCEL speedups on the A100-PCIE-40GB — OpenACC under
//! NVHPC/GCC and OpenMP ("p"-prefixed) under NVHPC/GCC/Clang.

use accsat_bench::print_speedup_figure;
use accsat_gpusim::Device;
use accsat_ir::Model;

fn main() {
    let dev = Device::a100_pcie_40gb();
    let benches = accsat_benchmarks::spec_benchmarks();
    print_speedup_figure("Figure 4: SPEC ACCEL (OpenACC)", &benches, Model::OpenAcc, &dev, "");
    print_speedup_figure("Figure 4: SPEC ACCEL (OpenMP)", &benches, Model::OpenMp, &dev, "p");
}
