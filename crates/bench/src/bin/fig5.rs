//! Figure 5: NPB speedups on the A100-SXM4-80GB (1.31x memory bandwidth).

use accsat_bench::print_speedup_figure;
use accsat_gpusim::Device;
use accsat_ir::Model;

fn main() {
    let dev = Device::a100_sxm4_80gb();
    let benches = accsat_benchmarks::npb_benchmarks();
    print_speedup_figure("Figure 5: NPB speedups (SXM4)", &benches, Model::OpenAcc, &dev, "");
}
