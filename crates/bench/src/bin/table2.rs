//! Table II: NPB inventory and original (un-optimized) kernel times under
//! NVHPC and GCC.

use accsat::{evaluate_benchmark, Variant};
use accsat_compilers::{Compiler, CompilerModel};
use accsat_gpusim::Device;
use accsat_ir::Model;

fn main() {
    let dev = Device::a100_pcie_40gb();
    let nv = CompilerModel::new(Compiler::Nvhpc, Model::OpenAcc);
    let gcc = CompilerModel::new(Compiler::Gcc, Model::OpenAcc);
    let mut rows = Vec::new();
    for b in accsat_benchmarks::npb_benchmarks() {
        let t_nv = evaluate_benchmark(&b, Variant::Original, &nv, &dev)
            .map(|r| format!("{:.2}s", r.total_time_s))
            .unwrap_or_else(|e| e);
        let t_gcc = evaluate_benchmark(&b, Variant::Original, &gcc, &dev)
            .map(|r| format!("{:.2}s", r.total_time_s))
            .unwrap_or_else(|e| e);
        rows.push(vec![
            b.name.to_string(),
            b.compute.to_string(),
            b.access.to_string(),
            b.paper_num_kernels.to_string(),
            t_nv,
            t_gcc,
        ]);
    }
    println!("Table II: NAS Parallel Benchmarks (simulated original times)");
    println!(
        "{}",
        accsat::render_table(&["Name", "Compute", "Access", "Num. Kernels", "NVHPC", "GCC"], &rows)
    );
}
