//! Table IV: per-kernel breakdown of NPB-BT — time per launch, executed
//! instructions, memory utilization, registers per thread, SM occupancy,
//! for the original and each generated-code variant.

use accsat::{evaluate_benchmark, Variant};
use accsat_compilers::{Compiler, CompilerModel};
use accsat_gpusim::Device;
use accsat_ir::Model;

fn main() {
    let dev = Device::a100_pcie_40gb();
    let bt = accsat_benchmarks::npb_benchmarks().remove(0);
    for compiler in [Compiler::Nvhpc, Compiler::Gcc] {
        let cm = CompilerModel::new(compiler, Model::OpenAcc);
        println!("Table IV: NPB-BT kernel breakdown — {}", compiler.name());
        let mut variants = vec![(Variant::Original, None)];
        variants.extend(Variant::all().into_iter().map(|v| (v, None::<()>)));
        let mut rows = Vec::new();
        let mut totals = Vec::new();
        let mut header = vec!["Kernel".to_string()];
        for (v, _) in &variants {
            header.push(format!("{} t/launch", v.label()));
            header.push(format!("{} Minstr", v.label()));
            header.push(format!("{} mem%", v.label()));
            header.push(format!("{} regs", v.label()));
            header.push(format!("{} occ%", v.label()));
        }
        let mut kernel_rows: Vec<Vec<String>> = Vec::new();
        for (v, _) in &variants {
            let r = evaluate_benchmark(&bt, *v, &cm, &dev).expect("evaluate");
            totals.push((v.label(), r.total_time_s));
            for (i, k) in r.kernels.iter().enumerate() {
                if kernel_rows.len() <= i {
                    kernel_rows.push(vec![k.function.clone()]);
                }
                kernel_rows[i].push(format!("{:.4}ms", k.metrics.time_ms));
                kernel_rows[i].push(format!("{:.2}", k.metrics.instructions / 1e6));
                kernel_rows[i].push(format!("{:.1}%", k.metrics.mem_util * 100.0));
                kernel_rows[i].push(format!("{}", k.metrics.regs_per_thread));
                kernel_rows[i].push(format!("{:.0}%", k.metrics.occupancy * 100.0));
            }
        }
        rows.append(&mut kernel_rows);
        let head: Vec<&str> = header.iter().map(String::as_str).collect();
        println!("{}", accsat::render_table(&head, &rows));
        let t: Vec<String> = totals.iter().map(|(l, s)| format!("{l}={s:.2}s")).collect();
        println!("totals: {}\n", t.join("  "));
    }
}
