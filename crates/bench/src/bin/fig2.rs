//! Figure 2: NPB speedups on the A100-PCIE-40GB for CSE, CSE+SAT, CSE+BULK
//! and ACCSAT, under NVHPC and GCC.

use accsat_bench::print_speedup_figure;
use accsat_gpusim::Device;
use accsat_ir::Model;

fn main() {
    let dev = Device::a100_pcie_40gb();
    let benches = accsat_benchmarks::npb_benchmarks();
    print_speedup_figure("Figure 2: NPB speedups", &benches, Model::OpenAcc, &dev, "");
}
