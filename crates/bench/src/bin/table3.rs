//! Table III: SPEC ACCEL inventory and original kernel times for both the
//! OpenACC (NVHPC, GCC) and OpenMP (NVHPC, GCC, Clang) versions.

use accsat::{evaluate_benchmark, Variant};
use accsat_compilers::{Compiler, CompilerModel};
use accsat_gpusim::Device;
use accsat_ir::Model;

fn main() {
    let dev = Device::a100_pcie_40gb();
    let models = [
        CompilerModel::new(Compiler::Nvhpc, Model::OpenAcc),
        CompilerModel::new(Compiler::Gcc, Model::OpenAcc),
        CompilerModel::new(Compiler::Nvhpc, Model::OpenMp),
        CompilerModel::new(Compiler::Gcc, Model::OpenMp),
        CompilerModel::new(Compiler::Clang, Model::OpenMp),
    ];
    let mut rows = Vec::new();
    for b in accsat_benchmarks::spec_benchmarks() {
        let mut row = vec![
            b.name.to_string(),
            b.compute.to_string(),
            b.access.to_string(),
            b.paper_num_kernels.to_string(),
        ];
        for cm in &models {
            let t = evaluate_benchmark(&b, Variant::Original, cm, &dev)
                .map(|r| format!("{:.2}s", r.total_time_s))
                .unwrap_or_else(|e| e);
            row.push(t);
        }
        rows.push(row);
    }
    println!("Table III: SPEC ACCEL (simulated original times)");
    println!(
        "{}",
        accsat::render_table(
            &[
                "Name",
                "Compute",
                "Access",
                "Kernels",
                "ACC NVHPC",
                "ACC GCC",
                "OMP NVHPC",
                "OMP GCC",
                "OMP Clang"
            ],
            &rows
        )
    );
}
