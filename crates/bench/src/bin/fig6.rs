//! Figure 6: SPEC ACCEL speedups on the A100-SXM4-80GB.

use accsat_bench::print_speedup_figure;
use accsat_gpusim::Device;
use accsat_ir::Model;

fn main() {
    let dev = Device::a100_sxm4_80gb();
    let benches = accsat_benchmarks::spec_benchmarks();
    print_speedup_figure(
        "Figure 6: SPEC ACCEL (OpenACC, SXM4)",
        &benches,
        Model::OpenAcc,
        &dev,
        "",
    );
    print_speedup_figure("Figure 6: SPEC ACCEL (OpenMP, SXM4)", &benches, Model::OpenMp, &dev, "p");
}
