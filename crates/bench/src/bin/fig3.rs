//! Figure 3: per-kernel speedup distribution of NPB-BT for each variant
//! (the background of Fig. 3 is the cumulative execution-time ratio; here
//! we print each kernel's speedup and its share of total time).

use accsat::{evaluate_benchmark, Variant};
use accsat_compilers::{Compiler, CompilerModel};
use accsat_gpusim::Device;
use accsat_ir::Model;

fn main() {
    let dev = Device::a100_pcie_40gb();
    let bt = accsat_benchmarks::npb_benchmarks().remove(0);
    for compiler in [Compiler::Nvhpc, Compiler::Gcc] {
        let cm = CompilerModel::new(compiler, Model::OpenAcc);
        println!("== Figure 3: NPB-BT per-kernel speedups — {} ==", compiler.name());
        let orig = evaluate_benchmark(&bt, Variant::Original, &cm, &dev).unwrap();
        let total: f64 = orig.kernels.iter().map(|k| k.metrics.time_ms).sum();
        for v in Variant::all() {
            let r = evaluate_benchmark(&bt, v, &cm, &dev).unwrap();
            print!("{:>9}: ", v.label());
            for (ko, kv) in orig.kernels.iter().zip(&r.kernels) {
                let s = ko.metrics.time_ms / kv.metrics.time_ms.max(1e-12);
                let share = ko.metrics.time_ms / total * 100.0;
                print!("{}={:.2}x ({:.0}% of time)  ", ko.function, s, share);
            }
            println!();
        }
    }
}
