//! §VII statistics: SSA+codegen time per kernel, saturation time, e-graph
//! sizes and extraction costs across every benchmark kernel, plus the
//! per-rule match/apply/ban totals reported by the saturation runner.

use accsat::{optimize_program, Variant};
use accsat_ir::parse_program;
use std::collections::BTreeMap;

fn main() {
    let mut ssa_ms = Vec::new();
    let mut sat_s = Vec::new();
    let mut nodes = Vec::new();
    // rule name → (matches, applied, times_banned) across all kernels
    let mut rules: BTreeMap<String, (usize, usize, usize)> = BTreeMap::new();
    println!(
        "{:<12} {:>22} {:>12} {:>12} {:>10} {:>8}",
        "benchmark", "kernel", "ssa+cg(ms)", "sat(ms)", "e-nodes", "iters"
    );
    for b in accsat_benchmarks::all_benchmarks() {
        let prog = parse_program(&b.acc_source).unwrap();
        let (_, stats) = optimize_program(&prog, Variant::AccSat).unwrap();
        for s in &stats {
            let ssa = s.ssa_codegen.as_secs_f64() * 1e3;
            let sat = s.saturation.as_secs_f64() * 1e3;
            println!(
                "{:<12} {:>22} {:>12.2} {:>12.2} {:>10} {:>8}",
                b.name, s.function, ssa, sat, s.egraph_nodes, s.saturation_iters
            );
            ssa_ms.push(ssa);
            sat_s.push(sat / 1e3);
            nodes.push(s.egraph_nodes as f64);
            for r in &s.rule_stats {
                let e = rules.entry(r.name.clone()).or_default();
                e.0 += r.matches;
                e.1 += r.applied;
                e.2 += r.times_banned;
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "\nSSA+codegen per kernel: mean {:.1} ms (paper: 91.8 ms on full-size kernels)",
        mean(&ssa_ms)
    );
    println!("saturation per kernel:  mean {:.3} s (paper: 0.63 s)", mean(&sat_s));
    println!("e-graph size:           mean {:.0} nodes (limit 10000)", mean(&nodes));

    println!("\nper-rule totals (all kernels, compiled e-matching engine):");
    println!("{:<12} {:>10} {:>10} {:>8}", "rule", "matches", "applied", "banned");
    for (name, (matches, applied, banned)) in &rules {
        println!("{name:<12} {matches:>10} {applied:>10} {banned:>8}");
    }
}
