//! `accsat-bench` — shared experiment drivers for the table/figure
//! harnesses (`src/bin/`) and the criterion benches (`benches/`).
//!
//! Every binary regenerates one artifact of the paper's evaluation; see
//! DESIGN.md's experiment index. Absolute numbers come from the GPU
//! simulator, so they differ from the paper's A100 wall-clock — the *shape*
//! (which variant wins where, by roughly what factor) is the reproduction
//! target, recorded in EXPERIMENTS.md.

use accsat::{evaluate_benchmark, speedup, BenchmarkResult, Variant};
use accsat_benchmarks::Benchmark;
use accsat_compilers::{Compiler, CompilerModel};
use accsat_gpusim::Device;
use accsat_ir::Model;

/// One line of a speedup figure: benchmark × variant → speedup.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    pub benchmark: String,
    pub compiler: String,
    pub original_s: f64,
    /// (variant label, speedup over original).
    pub speedups: Vec<(&'static str, f64)>,
}

/// Evaluate all variants of one benchmark under one compiler model.
pub fn variant_speedups(
    bench: &Benchmark,
    cm: &CompilerModel,
    dev: &Device,
) -> Result<SpeedupRow, String> {
    let original = evaluate_benchmark(bench, Variant::Original, cm, dev)?;
    let mut speedups = Vec::new();
    for v in Variant::all() {
        let r = evaluate_benchmark(bench, v, cm, dev)?;
        speedups.push((v.label(), speedup(&original, &r)));
    }
    Ok(SpeedupRow {
        benchmark: bench.name.to_string(),
        compiler: cm.compiler.name().to_string(),
        original_s: original.total_time_s,
        speedups,
    })
}

/// The compiler models evaluated for a suite+model combination (§VII).
pub fn compilers_for(model: Model) -> Vec<CompilerModel> {
    match model {
        Model::OpenAcc => vec![
            CompilerModel::new(Compiler::Nvhpc, Model::OpenAcc),
            CompilerModel::new(Compiler::Gcc, Model::OpenAcc),
        ],
        Model::OpenMp => vec![
            CompilerModel::new(Compiler::Nvhpc, Model::OpenMp),
            CompilerModel::new(Compiler::Gcc, Model::OpenMp),
            CompilerModel::new(Compiler::Clang, Model::OpenMp),
        ],
    }
}

/// Print a figure: per-compiler speedup rows over a suite.
pub fn print_speedup_figure(
    title: &str,
    benches: &[Benchmark],
    model: Model,
    dev: &Device,
    prefix: &str,
) {
    println!("== {title} ==  (device: {})", dev.name);
    for cm in compilers_for(model) {
        println!("-- {} ({}) --", cm.compiler.name(), model);
        let mut per_variant: Vec<(String, Vec<f64>)> = Vec::new();
        for b in benches {
            match variant_speedups(b, &cm, dev) {
                Ok(row) => {
                    let name = format!("{prefix}{}", row.benchmark);
                    println!(
                        "{}",
                        accsat::format_speedup_row(
                            &name,
                            &row.speedups.iter().map(|(l, s)| (*l, *s)).collect::<Vec<_>>()
                        )
                    );
                    for (i, (label, s)) in row.speedups.iter().enumerate() {
                        if per_variant.len() <= i {
                            per_variant.push((label.to_string(), Vec::new()));
                        }
                        per_variant[i].1.push(*s);
                    }
                }
                Err(e) => println!("{:>10}: ERROR {e}", b.name),
            }
        }
        let avgs: Vec<String> = per_variant
            .iter()
            .map(|(l, v)| format!("{l}={:.2}x", accsat::report::mean(v)))
            .collect();
        println!("{:>10}:  {}", "average", avgs.join("  "));
    }
}

/// Per-kernel breakdown under every variant (Table IV / Fig. 3 shape).
pub fn kernel_breakdown(
    bench: &Benchmark,
    cm: &CompilerModel,
    dev: &Device,
) -> Result<Vec<(String, Vec<BenchmarkResult>)>, String> {
    let mut results = Vec::new();
    let original = evaluate_benchmark(bench, Variant::Original, cm, dev)?;
    let mut all = vec![original];
    for v in Variant::all() {
        all.push(evaluate_benchmark(bench, v, cm, dev)?);
    }
    // group by kernel function name
    for (i, k) in all[0].kernels.iter().enumerate() {
        let _ = (i, k);
    }
    results.push((bench.name.to_string(), all));
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_speedups_produce_four_entries() {
        let b = accsat_benchmarks::npb_benchmarks().remove(2); // EP
        let dev = Device::a100_pcie_40gb();
        let cm = CompilerModel::new(Compiler::Nvhpc, Model::OpenAcc);
        let row = variant_speedups(&b, &cm, &dev).unwrap();
        assert_eq!(row.speedups.len(), 4);
        assert!(row.original_s > 0.0);
    }

    #[test]
    fn compilers_for_models() {
        assert_eq!(compilers_for(Model::OpenAcc).len(), 2);
        assert_eq!(compilers_for(Model::OpenMp).len(), 3);
    }
}
