//! Benches of the GPU simulator substrate: warp scoreboard throughput and
//! full-benchmark evaluation (the inner loop of every figure harness).

use accsat::{evaluate_benchmark, Variant};
use accsat_compilers::{compile_kernel, Compiler, CompilerModel};
use accsat_gpusim::{simulate, Device};
use accsat_ir::{parse_program, Model};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_scoreboard(c: &mut Criterion) {
    let bt = accsat_benchmarks::npb_benchmarks().remove(0);
    let prog = parse_program(&bt.acc_source).unwrap();
    let cm = CompilerModel::new(Compiler::Nvhpc, Model::OpenAcc);
    let k = compile_kernel(&prog.functions[0], &cm, &bt.bindings_map()).unwrap();
    let dev = Device::a100_pcie_40gb();
    let mut group = c.benchmark_group("scoreboard");
    group.sample_size(20);
    for warps in [1u32, 4, 16] {
        group.bench_function(format!("bt_zsolve_{warps}w"), |b| {
            b.iter(|| simulate(&k.trace, warps, &dev))
        });
    }
    group.finish();
}

fn bench_evaluate(c: &mut Criterion) {
    let bt = accsat_benchmarks::npb_benchmarks().remove(0);
    let dev = Device::a100_pcie_40gb();
    let cm = CompilerModel::new(Compiler::Nvhpc, Model::OpenAcc);
    let mut group = c.benchmark_group("evaluate");
    group.sample_size(10);
    group.bench_function("npb_bt_accsat", |b| {
        b.iter(|| evaluate_benchmark(&bt, Variant::AccSat, &cm, &dev).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_scoreboard, bench_evaluate);
criterion_main!(benches);
