//! Ablation benches for the design choices DESIGN.md calls out:
//! extraction algorithm (greedy vs branch-and-bound), rule sets
//! (FMA-only vs COMM/ASSOC-only vs full Table I), cost-model
//! sensitivity (memory cost 10/100/1000), and the e-matching engine
//! (compiled VM with/without the backoff scheduler vs legacy tree-walk).

use accsat_egraph::{
    all_rules, assoc_rules, comm_rules, fma_rules, MatchEngine, Runner, RunnerLimits,
};
use accsat_extract::{extract_exact, extract_greedy, CostModel};
use accsat_ir::parse_program;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn saturated_bt() -> (accsat_egraph::EGraph, Vec<accsat_egraph::Id>) {
    let bt = accsat_benchmarks::npb_benchmarks().remove(0);
    let prog = parse_program(&bt.acc_source).unwrap();
    let f = &prog.functions[0];
    let body = accsat_ir::innermost_parallel_loops(f)[0].body.clone();
    let mut k = accsat_ssa::build_kernel(&body);
    Runner::new(all_rules()).run(&mut k.egraph);
    let roots = k.extraction_roots();
    (k.egraph, roots)
}

fn ablation_extract(c: &mut Criterion) {
    let (eg, roots) = saturated_bt();
    let cm = CostModel::paper();
    let mut group = c.benchmark_group("ablation_extract");
    group.sample_size(10);
    group.bench_function("greedy", |b| b.iter(|| extract_greedy(&eg, &roots, &cm)));
    group.bench_function("branch_and_bound_100ms", |b| {
        b.iter(|| extract_exact(&eg, &roots, &cm, Duration::from_millis(100)))
    });
    group.finish();

    // report the cost gap once (printed in bench output)
    let g = extract_greedy(&eg, &roots, &cm).dag_cost(&eg, &cm, &roots);
    let e = extract_exact(&eg, &roots, &cm, Duration::from_millis(100));
    println!("ablation_extract cost: greedy={g} bnb={} optimal={}", e.cost, e.proven_optimal);
}

fn ablation_rules(c: &mut Criterion) {
    let bt = accsat_benchmarks::npb_benchmarks().remove(0);
    let prog = parse_program(&bt.acc_source).unwrap();
    let f = &prog.functions[0];
    let body = accsat_ir::innermost_parallel_loops(f)[0].body.clone();
    let mut group = c.benchmark_group("ablation_rules");
    group.sample_size(10);
    for (name, rules) in [
        ("fma_only", fma_rules()),
        ("comm_assoc_only", {
            let mut r = comm_rules();
            r.extend(assoc_rules());
            r
        }),
        ("full_table1", all_rules()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &rules, |b, rules| {
            b.iter(|| {
                let mut k = accsat_ssa::build_kernel(&body);
                let limits = RunnerLimits { iter_limit: 6, ..Default::default() };
                Runner::new(rules.clone()).with_limits(limits).run(&mut k.egraph)
            })
        });
    }
    group.finish();
}

fn ablation_cost_model(c: &mut Criterion) {
    let (eg, roots) = saturated_bt();
    let mut group = c.benchmark_group("ablation_cost_model");
    group.sample_size(10);
    for heavy in [10u64, 100, 1000] {
        let cm = CostModel::with_heavy(heavy);
        group.bench_with_input(BenchmarkId::from_parameter(heavy), &cm, |b, cm| {
            b.iter(|| extract_greedy(&eg, &roots, cm))
        });
    }
    group.finish();
}

fn ablation_match_engine(c: &mut Criterion) {
    // engine × scheduler: the compiled VM with and without backoff, and the
    // legacy matcher, each saturating the NPB-BT z_solve kernel shape
    let bt = accsat_benchmarks::npb_benchmarks().remove(0);
    let prog = parse_program(&bt.acc_source).unwrap();
    let f = &prog.functions[0];
    let body = accsat_ir::innermost_parallel_loops(f)[0].body.clone();
    let limits = RunnerLimits { iter_limit: 4, ..Default::default() };
    let mut group = c.benchmark_group("ablation_match_engine");
    group.sample_size(10);
    let cases: [(&str, MatchEngine, bool); 3] = [
        ("compiled_backoff", MatchEngine::Compiled, true),
        ("compiled_no_backoff", MatchEngine::Compiled, false),
        ("legacy", MatchEngine::Legacy, true),
    ];
    for (name, engine, backoff) in cases {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut k = accsat_ssa::build_kernel(&body);
                let mut runner = Runner::new(all_rules()).with_limits(limits).with_engine(engine);
                if !backoff {
                    runner = runner.with_backoff(None);
                }
                runner.run(&mut k.egraph)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    ablation_extract,
    ablation_rules,
    ablation_cost_model,
    ablation_match_engine
);
criterion_main!(benches);
