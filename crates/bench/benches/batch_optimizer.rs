//! Benches of the parallel batch optimization driver: sequential vs
//! parallel wall time over a multi-kernel suite, the shared-rules driver
//! against a naive per-benchmark loop, and the extraction portfolio width.
//!
//! Numbers land in EXPERIMENTS.md ("Batch driver"). Note the scaling
//! group measures *whatever the host offers* — on a single-core container
//! thread counts are expected to tie; the determinism guarantee (same
//! results at any thread count) is what the batch tests pin down.

use accsat::batch::{optimize_suite, ParallelConfig};
use accsat::{optimize_program, SaturatorConfig, Variant};
use accsat_ir::parse_program;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Thread-count scaling over the NPB suite (full pipeline, AccSat).
fn bench_batch_threads(c: &mut Criterion) {
    let benches = accsat_benchmarks::npb_benchmarks();
    let config = SaturatorConfig::default();
    let mut group = c.benchmark_group("batch_suite");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::new("npb_accsat", format!("t{threads}")),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    optimize_suite(
                        &benches,
                        Variant::AccSat,
                        &config,
                        &ParallelConfig { threads, kernel_deadline: None, shard: None },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// The batch driver (rules compiled once, shared `Arc`) against the naive
/// driver the seed used: one `optimize_program` call per benchmark, each
/// recompiling the rule set and racing no extraction portfolio.
fn bench_batch_vs_naive(c: &mut Criterion) {
    let benches = accsat_benchmarks::npb_benchmarks();
    let programs: Vec<_> = benches.iter().map(|b| parse_program(&b.acc_source).unwrap()).collect();
    let config = SaturatorConfig::default();
    let mut group = c.benchmark_group("batch_driver");
    group.sample_size(10);
    group.bench_function("shared_rules_batch", |b| {
        b.iter(|| {
            optimize_suite(
                &benches,
                Variant::AccSat,
                &config,
                &ParallelConfig { threads: 1, kernel_deadline: None, shard: None },
            )
            .unwrap()
        })
    });
    group.bench_function("naive_per_benchmark", |b| {
        b.iter(|| {
            programs
                .iter()
                .map(|p| optimize_program(p, Variant::AccSat).unwrap())
                .collect::<Vec<_>>()
        })
    });
    group.finish();
}

/// Extraction portfolio width on the largest kernels (BT + LU): how much
/// wall time the racing strategies cost on this host.
fn bench_portfolio_width(c: &mut Criterion) {
    let benches: Vec<_> = accsat_benchmarks::npb_benchmarks()
        .into_iter()
        .filter(|b| b.name == "BT" || b.name == "LU")
        .collect();
    let mut group = c.benchmark_group("extraction_portfolio");
    group.sample_size(10);
    for width in [1usize, 2] {
        let config = SaturatorConfig { extraction_threads: width, ..Default::default() };
        group.bench_with_input(
            BenchmarkId::new("bt_lu", format!("w{width}")),
            &config,
            |b, config| {
                b.iter(|| {
                    optimize_suite(
                        &benches,
                        Variant::AccSat,
                        config,
                        &ParallelConfig { threads: 1, kernel_deadline: None, shard: None },
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

/// Deterministic node budget (the new default) against the PR2-style
/// wall-clock extraction budget: the wall-bound search burns its full
/// 500 ms on every kernel it cannot prove, the node-bound one stops at
/// 60 000 explored nodes — same selections, a fraction of the wall time.
fn bench_budget_mode(c: &mut Criterion) {
    let benches = accsat_benchmarks::npb_benchmarks();
    let wall_bound = SaturatorConfig {
        extraction_node_budget: u64::MAX,
        extraction_budget: std::time::Duration::from_millis(500),
        ..Default::default()
    };
    let node_bound = SaturatorConfig::default();
    let mut group = c.benchmark_group("extraction_budget");
    group.sample_size(10);
    for (name, config) in [("wallclock_500ms", &wall_bound), ("deterministic_60k", &node_bound)] {
        group.bench_with_input(BenchmarkId::new("npb", name), config, |b, config| {
            b.iter(|| {
                optimize_suite(
                    &benches,
                    Variant::AccSat,
                    config,
                    &ParallelConfig { threads: 1, kernel_deadline: None, shard: None },
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

/// Bound-ablation on the hardest kernel (BT z_solve): how much of the
/// search does each pruning layer remove? Every configuration runs the
/// same 60 k-node budget with the wall valve out of the way, so the
/// measured wall time tracks per-node cost × nodes actually explored
/// (layers that prove early stop early). Layers, cumulative:
///
/// * `forced-bound`   — PR 3 state: dominance pruning + forced-children
///   memo bound, every class branched.
/// * `+lp-bound`      — the LP-relaxation required-set bound.
/// * `+chain-closure` — φ-chain forced closures (singletons decided free).
/// * `+closure-dom`   — closure-subset dominance + orbit collapse + the
///   full default context (what the portfolio ships).
fn bench_bound_ablation(c: &mut Criterion) {
    use accsat_extract::{
        extract_exact_in, extract_greedy, ContextOptions, CostModel, SearchContext, SearchOptions,
    };

    // saturate BT z_solve once, outside the timed region
    let bench = accsat_benchmarks::npb_benchmarks()
        .into_iter()
        .find(|b| b.name == "BT")
        .expect("BT in the NPB suite");
    let prog = accsat_ir::parse_program(&bench.acc_source).unwrap();
    let f = prog.functions.iter().find(|f| f.name == "bt_zsolve").expect("bt_zsolve");
    let body = &accsat_ir::innermost_parallel_loops(f)[0].body;
    let mut kernel = accsat_ssa::build_kernel(body);
    accsat_egraph::Runner::new(accsat_egraph::all_rules()).run(&mut kernel.egraph);
    let eg = &kernel.egraph;
    let roots = kernel.extraction_roots();
    let cm = CostModel::paper();
    let greedy = extract_greedy(eg, &roots, &cm);
    let greedy_cost = greedy.dag_cost(eg, &cm, &roots);

    let base_opts = SearchOptions {
        node_budget: 60_000,
        deadline: std::time::Duration::from_secs(600),
        ..SearchOptions::default()
    };
    let legacy_cx = ContextOptions { orbit: false, dominance: true, closure_dominance: false };
    let full_cx = ContextOptions::default();
    let configs: [(&str, ContextOptions, SearchOptions); 4] = [
        (
            "forced-bound",
            legacy_cx,
            SearchOptions { lp_bound: false, chain_closure: false, ..base_opts },
        ),
        ("lp-bound", legacy_cx, SearchOptions { chain_closure: false, ..base_opts }),
        ("chain-closure", legacy_cx, base_opts),
        ("closure-dom", full_cx, base_opts),
    ];

    let mut group = c.benchmark_group("bound_ablation");
    group.sample_size(10);
    for (name, cx_opts, opts) in configs {
        let cx = SearchContext::build_with(eg, &cm, &cx_opts);
        group.bench_with_input(BenchmarkId::new("bt_zsolve", name), &opts, |b, opts| {
            b.iter(|| extract_exact_in(&cx, &roots, &greedy, greedy_cost, opts))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_batch_threads,
    bench_batch_vs_naive,
    bench_portfolio_width,
    bench_budget_mode,
    bench_bound_ablation
);
criterion_main!(benches);
