//! Criterion benches of the ACC Saturator pipeline itself — the §VII cost
//! numbers (SSA+codegen ms per kernel, saturation time) measured on every
//! benchmark kernel, one group per evaluation table.

use accsat::{optimize_program, Variant};
use accsat_ir::parse_program;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for bench in accsat_benchmarks::all_benchmarks() {
        let prog = parse_program(&bench.acc_source).unwrap();
        for variant in [Variant::Cse, Variant::AccSat] {
            group.bench_with_input(
                BenchmarkId::new(variant.label(), bench.name),
                &prog,
                |b, prog| b.iter(|| optimize_program(prog, variant).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_phases(c: &mut Criterion) {
    // phase-by-phase timing on the paper's Listing 2 shape (NPB-BT z_solve)
    let bt = accsat_benchmarks::npb_benchmarks().remove(0);
    let prog = parse_program(&bt.acc_source).unwrap();
    let f = &prog.functions[0];
    let body = accsat_ir::innermost_parallel_loops(f)[0].body.clone();

    let mut group = c.benchmark_group("phases_bt_zsolve");
    group.sample_size(10);
    group.bench_function("ssa_build", |b| {
        b.iter(|| accsat_ssa::build_kernel(&body))
    });
    group.bench_function("saturation", |b| {
        b.iter(|| {
            let mut k = accsat_ssa::build_kernel(&body);
            accsat_egraph::Runner::new(accsat_egraph::all_rules()).run(&mut k.egraph)
        })
    });
    group.bench_function("extraction", |b| {
        let mut k = accsat_ssa::build_kernel(&body);
        accsat_egraph::Runner::new(accsat_egraph::all_rules()).run(&mut k.egraph);
        let roots = k.extraction_roots();
        let cm = accsat_extract::CostModel::paper();
        b.iter(|| accsat_extract::extract(&k.egraph, &roots, &cm, std::time::Duration::from_millis(500)))
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_phases);
criterion_main!(benches);
