//! Criterion benches of the ACC Saturator pipeline itself — the §VII cost
//! numbers (SSA+codegen ms per kernel, saturation time) measured on every
//! benchmark kernel, one group per evaluation table — plus the saturation
//! throughput of the compiled e-matching engine against the legacy
//! tree-walk matcher on the NPB-BT z_solve shape.

use accsat::{optimize_program, Variant};
use accsat_egraph::{MatchEngine, RunnerLimits};
use accsat_ir::parse_program;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    for bench in accsat_benchmarks::all_benchmarks() {
        let prog = parse_program(&bench.acc_source).unwrap();
        for variant in [Variant::Cse, Variant::AccSat] {
            group.bench_with_input(
                BenchmarkId::new(variant.label(), bench.name),
                &prog,
                |b, prog| b.iter(|| optimize_program(prog, variant).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_phases(c: &mut Criterion) {
    // phase-by-phase timing on the paper's Listing 2 shape (NPB-BT z_solve)
    let bt = accsat_benchmarks::npb_benchmarks().remove(0);
    let prog = parse_program(&bt.acc_source).unwrap();
    let f = &prog.functions[0];
    let body = accsat_ir::innermost_parallel_loops(f)[0].body.clone();

    let mut group = c.benchmark_group("phases_bt_zsolve");
    group.sample_size(10);
    group.bench_function("ssa_build", |b| b.iter(|| accsat_ssa::build_kernel(&body)));
    group.bench_function("saturation", |b| {
        b.iter(|| {
            let mut k = accsat_ssa::build_kernel(&body);
            accsat_egraph::Runner::new(accsat_egraph::all_rules()).run(&mut k.egraph)
        })
    });
    group.bench_function("extraction", |b| {
        let mut k = accsat_ssa::build_kernel(&body);
        accsat_egraph::Runner::new(accsat_egraph::all_rules()).run(&mut k.egraph);
        let roots = k.extraction_roots();
        let cm = accsat_extract::CostModel::paper();
        b.iter(|| {
            accsat_extract::extract(&k.egraph, &roots, &cm, std::time::Duration::from_millis(500))
        })
    });
    group.finish();
}

fn bench_matcher_engines(c: &mut Criterion) {
    // saturation throughput: compiled pattern VM (+ op index, dirty-class
    // search, dedup) vs the seed's interpretive tree-walk, on the NPB-BT
    // z_solve shape. Both run the same fixed iteration budget; divide the
    // reported medians by the iteration count for the per-iteration cost
    // recorded in EXPERIMENTS.md (acceptance target: compiled ≥ 2× faster).
    let bt = accsat_benchmarks::npb_benchmarks().remove(0);
    let prog = parse_program(&bt.acc_source).unwrap();
    let f = &prog.functions[0];
    let body = accsat_ir::innermost_parallel_loops(f)[0].body.clone();
    let limits = RunnerLimits { iter_limit: 4, ..Default::default() };

    let kernel = accsat_ssa::build_kernel(&body);

    let mut group = c.benchmark_group("saturation_engine_bt_zsolve");
    group.sample_size(10);
    for (name, engine) in [("compiled", MatchEngine::Compiled), ("legacy", MatchEngine::Legacy)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                // clone the pre-built e-graph so only saturation is timed
                let mut eg = kernel.egraph.clone();
                let report = accsat_egraph::Runner::new(accsat_egraph::all_rules())
                    .with_limits(limits)
                    .with_engine(engine)
                    .run(&mut eg);
                assert!(!report.iterations.is_empty());
                report
            })
        });
    }
    group.finish();
}

fn bench_saturation_threads(c: &mut Criterion) {
    // scaling of the parallel rule search inside one saturation run, on
    // the NPB-BT z_solve shape. Output is byte-identical at every width
    // (asserted by tests/property_saturation.rs and
    // tests/sat_threads_identity.rs); this group measures the wall-clock
    // side of that contract. On a single-core container the widths tie —
    // record whatever the host shows honestly in EXPERIMENTS.md.
    let bt = accsat_benchmarks::npb_benchmarks().remove(0);
    let prog = parse_program(&bt.acc_source).unwrap();
    let f = &prog.functions[0];
    let body = accsat_ir::innermost_parallel_loops(f)[0].body.clone();
    let limits = RunnerLimits { iter_limit: 4, ..Default::default() };

    let kernel = accsat_ssa::build_kernel(&body);

    let mut group = c.benchmark_group("saturation_threads_bt_zsolve");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &threads| {
            b.iter(|| {
                let mut eg = kernel.egraph.clone();
                let report = accsat_egraph::Runner::new(accsat_egraph::all_rules())
                    .with_limits(limits)
                    .with_sat_threads(threads)
                    .run(&mut eg);
                assert!(!report.iterations.is_empty());
                report
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_phases,
    bench_matcher_engines,
    bench_saturation_threads
);
criterion_main!(benches);
