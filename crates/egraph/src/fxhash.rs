//! A fast, dependency-free hasher for the e-graph's hot maps (rustc's
//! `FxHasher` algorithm: rotate-xor-multiply per word).
//!
//! The default `SipHash` is DoS-resistant but costs real time on the small
//! keys the engine hashes millions of times per saturation run (e-nodes in
//! the memo, ids in the op index and dirty sets, substitutions in the
//! apply-phase dedup). Nothing here hashes attacker-controlled input, so
//! the non-cryptographic hasher is the right trade.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rustc's Fx hash: one rotate + xor + multiply per 8-byte word.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, w: u64) {
        self.hash = (self.hash.rotate_left(5) ^ w).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_spreads() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m[&421], 842);
        let mut h1 = FxHasher::default();
        let mut h2 = FxHasher::default();
        h1.write(b"hello world");
        h2.write(b"hello world");
        assert_eq!(h1.finish(), h2.finish());
        let mut h3 = FxHasher::default();
        h3.write(b"hello worle");
        assert_ne!(h1.finish(), h3.finish());
    }

    #[test]
    fn mixed_width_writes() {
        let mut h = FxHasher::default();
        h.write_u8(1);
        h.write_u32(2);
        h.write_usize(3);
        let a = h.finish();
        let mut h = FxHasher::default();
        h.write_u8(1);
        h.write_u32(2);
        h.write_usize(4);
        assert_ne!(a, h.finish());
    }
}
