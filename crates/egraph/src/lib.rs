//! `accsat-egraph` — a from-scratch e-graph and equality-saturation engine.
//!
//! This crate is the substrate the paper obtains from the `egg` library
//! (Willsey et al., POPL 2021): a congruence-closure data structure over a
//! term language, e-matching of rewrite patterns, and a saturation runner
//! with node/iteration/time limits. It is purpose-built for ACC Saturator's
//! SSA term language (arithmetic, FMA, loads/stores, φ nodes, calls) rather
//! than generic over a user language, which keeps the code direct while
//! exercising the same algorithms:
//!
//! * [`UnionFind`] — path-halving union-find over e-class ids.
//! * [`EGraph`] — hash-consed e-nodes grouped into e-classes, with deferred
//!   congruence restoration ([`EGraph::rebuild`], the egg "rebuilding"
//!   algorithm) and an attached constant-folding analysis.
//! * [`Pattern`] — s-expression rewrite patterns with `?x` variables and a
//!   backtracking e-matcher (kept as the differential-testing oracle).
//! * [`machine`] — the production matcher: patterns compiled once into
//!   linear [`Program`]s for a register-based pattern VM, with interned
//!   `u32` variables and small-vec substitutions ([`VarSubst`]), driven
//!   through an operator → e-class index.
//! * [`Rewrite`] / [`Runner`] — rule application until saturation or limits,
//!   mirroring the paper's bounds (10 000 e-nodes, 10 iterations, 10 s),
//!   with per-rule statistics and a backoff scheduler benching rules whose
//!   match counts explode.
//! * [`rules`] — Table I of the paper: FMA introduction, commutativity,
//!   associativity, plus constant folding.

#![warn(missing_docs)]

pub mod analysis;
pub mod egraph;
pub mod fxhash;
pub mod machine;
pub mod node;
pub mod pattern;
pub mod pool;
pub mod rewrite;
pub mod rules;
pub mod runner;
pub mod serialize;
pub mod unionfind;

pub use analysis::ConstValue;
pub use egraph::{EClass, EGraph};
pub use fxhash::{FxHashMap, FxHashSet};
pub use machine::{Inst, Program, RhsNode, VarSubst};
pub use node::{Id, Node, Op};
pub use pattern::{parse_pattern, Pattern, PatternNode, Subst};
pub use pool::{hardware_parallelism, Lease, ThreadBudget};
pub use rewrite::{Rewrite, RuleMatch};
pub use rules::{all_rules, assoc_rules, comm_rules, fma_rules, reorder_rules, rule_by_name};
pub use runner::{
    BackoffConfig, IterCounts, IterationStats, MatchEngine, RuleStats, Runner, RunnerLimits,
    RunnerReport, StopReason,
};
pub use serialize::{op_token, parse_op_token, EGRAPH_FORMAT_HEADER};
pub use unionfind::UnionFind;

// Compile-time guarantee that saturation state crosses threads: the batch
// driver moves e-graphs onto worker threads and shares one compiled rule
// set (`Arc<Vec<Rewrite>>`) between them. A field gaining interior
// mutability or a non-Send payload fails here, not at a distant spawn site.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EGraph>();
    assert_send_sync::<Rewrite>();
    assert_send_sync::<Runner>();
    assert_send_sync::<RunnerReport>();
    assert_send_sync::<ThreadBudget>();
};
