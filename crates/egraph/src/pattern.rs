//! Rewrite patterns and the e-matcher.
//!
//! Patterns are written as s-expressions with `?x` variables, e.g. the FMA1
//! rule of Table I is `(+ ?a (* ?b ?c)) → (fma ?a ?b ?c)`. Matching walks
//! the e-graph with backtracking, producing one substitution per way the
//! pattern embeds into an e-class.

use crate::egraph::EGraph;
use crate::node::{Id, Node, Op};
use std::collections::HashMap;

/// One node of a pattern tree.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternNode {
    /// `?x` — matches any e-class, bound in the substitution.
    Var(String),
    /// Concrete operator applied to sub-patterns.
    Apply {
        /// The operator that must head the matched e-node.
        op: Op,
        /// Sub-patterns matched against the e-node's children.
        children: Vec<PatternNode>,
    },
}

/// A rewrite pattern (tree of [`PatternNode`]).
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// Root node of the pattern tree.
    pub root: PatternNode,
}

/// A substitution from pattern variables to e-class ids.
pub type Subst = HashMap<String, Id>;

impl Pattern {
    /// Variables referenced by this pattern.
    pub fn vars(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn go(p: &PatternNode, out: &mut Vec<String>) {
            match p {
                PatternNode::Var(v) => {
                    if !out.contains(v) {
                        out.push(v.clone());
                    }
                }
                PatternNode::Apply { children, .. } => {
                    for c in children {
                        go(c, out);
                    }
                }
            }
        }
        go(&self.root, &mut out);
        out
    }

    /// Match this pattern against e-class `id`, appending substitutions.
    pub fn match_class(&self, eg: &EGraph, id: Id, out: &mut Vec<Subst>) {
        let mut subst = Subst::new();
        match_node(eg, &self.root, id, &mut subst, out);
    }

    /// Match this pattern against every e-class, returning `(class, subst)`
    /// pairs.
    pub fn search(&self, eg: &EGraph) -> Vec<(Id, Subst)> {
        let mut results = Vec::new();
        for (id, _) in eg.classes() {
            let mut substs = Vec::new();
            self.match_class(eg, id, &mut substs);
            results.extend(substs.into_iter().map(|s| (id, s)));
        }
        results
    }

    /// Instantiate the pattern under `subst`, adding nodes to the e-graph.
    /// Returns the root class of the instantiated term.
    pub fn instantiate(&self, eg: &mut EGraph, subst: &Subst) -> Id {
        fn go(eg: &mut EGraph, p: &PatternNode, subst: &Subst) -> Id {
            match p {
                PatternNode::Var(v) => {
                    *subst.get(v).unwrap_or_else(|| panic!("unbound pattern variable ?{v}"))
                }
                PatternNode::Apply { op, children } => {
                    let kids: Vec<Id> = children.iter().map(|c| go(eg, c, subst)).collect();
                    eg.add(Node::new(op.clone(), kids))
                }
            }
        }
        go(eg, &self.root, subst)
    }
}

fn match_node(eg: &EGraph, pattern: &PatternNode, id: Id, subst: &mut Subst, out: &mut Vec<Subst>) {
    match pattern {
        PatternNode::Var(v) => {
            let id = eg.find(id);
            match subst.get(v) {
                Some(&bound) if eg.find(bound) != id => {} // non-linear mismatch
                Some(_) => out.push(subst.clone()),
                None => {
                    subst.insert(v.clone(), id);
                    out.push(subst.clone());
                    subst.remove(v);
                }
            }
        }
        PatternNode::Apply { op, children } => {
            let class = eg.class(id);
            for node in &class.nodes {
                if &node.op != op || node.children.len() != children.len() {
                    continue;
                }
                // match children left-to-right with backtracking
                match_children(eg, children, &node.children, 0, subst, out);
            }
        }
    }
}

fn match_children(
    eg: &EGraph,
    patterns: &[PatternNode],
    ids: &[Id],
    i: usize,
    subst: &mut Subst,
    out: &mut Vec<Subst>,
) {
    if i == patterns.len() {
        out.push(subst.clone());
        return;
    }
    // collect partial matches of child i, then extend each to the rest
    let mut partials = Vec::new();
    match_node(eg, &patterns[i], ids[i], subst, &mut partials);
    for partial in partials {
        let mut s = partial;
        match_children(eg, patterns, ids, i + 1, &mut s, out);
    }
}

// --------------------------------------------------------------- parsing

/// Parse an s-expression pattern: `(+ ?a (* ?b ?c))`, `(fma ?a ?b ?c)`,
/// `(neg ?x)`, numbers, symbols. Unknown bare words become [`Op::Sym`]
/// leaves, so ground terms can be written directly.
pub fn parse_pattern(src: &str) -> Result<Pattern, String> {
    let tokens = sexp_tokens(src);
    let mut pos = 0usize;
    let root = parse_node(&tokens, &mut pos)?;
    if pos != tokens.len() {
        return Err(format!("trailing tokens in pattern: {:?}", &tokens[pos..]));
    }
    Ok(Pattern { root })
}

fn sexp_tokens(src: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in src.chars() {
        match c {
            '(' | ')' => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
                out.push(c.to_string());
            }
            c if c.is_whitespace() => {
                if !cur.is_empty() {
                    out.push(std::mem::take(&mut cur));
                }
            }
            c => cur.push(c),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

fn parse_node(tokens: &[String], pos: &mut usize) -> Result<PatternNode, String> {
    let tok = tokens.get(*pos).ok_or("unexpected end of pattern")?.clone();
    *pos += 1;
    if tok == "(" {
        let head = tokens.get(*pos).ok_or("missing operator after `(`")?.clone();
        *pos += 1;
        let op = Op::from_name(&head).ok_or(format!("unknown operator `{head}`"))?;
        let mut children = Vec::new();
        while tokens.get(*pos).map(String::as_str) != Some(")") {
            if *pos >= tokens.len() {
                return Err("unterminated pattern".into());
            }
            children.push(parse_node(tokens, pos)?);
        }
        *pos += 1; // eat `)`
        Ok(PatternNode::Apply { op, children })
    } else if tok == ")" {
        Err("unexpected `)`".into())
    } else if let Some(v) = tok.strip_prefix('?') {
        Ok(PatternNode::Var(v.to_string()))
    } else if let Some(op) = Op::from_name(&tok) {
        Ok(PatternNode::Apply { op, children: Vec::new() })
    } else {
        // bare word: a ground symbol leaf
        Ok(PatternNode::Apply { op: Op::Sym(tok), children: Vec::new() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_fma_pattern() {
        let p = parse_pattern("(+ ?a (* ?b ?c))").unwrap();
        assert_eq!(p.vars(), vec!["a", "b", "c"]);
        match &p.root {
            PatternNode::Apply { op: Op::Add, children } => {
                assert!(matches!(children[0], PatternNode::Var(ref v) if v == "a"));
                assert!(matches!(children[1], PatternNode::Apply { op: Op::Mul, .. }));
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn parse_literals_and_symbols() {
        let p = parse_pattern("(* 2 x)").unwrap();
        match &p.root {
            PatternNode::Apply { op: Op::Mul, children } => {
                assert!(matches!(children[0], PatternNode::Apply { op: Op::Int(2), .. }));
                assert!(
                    matches!(children[1], PatternNode::Apply { op: Op::Sym(ref s), .. } if s == "x")
                );
            }
            other => panic!("bad parse: {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_pattern("(+ ?a").is_err());
        assert!(parse_pattern(")").is_err());
        assert!(parse_pattern("(+ ?a ?b) extra").is_err());
    }

    #[test]
    fn simple_match() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let bc = eg.add(Node::new(Op::Mul, vec![b, c]));
        let root = eg.add(Node::new(Op::Add, vec![a, bc]));
        let p = parse_pattern("(+ ?x (* ?y ?z))").unwrap();
        let mut substs = Vec::new();
        p.match_class(&eg, root, &mut substs);
        assert_eq!(substs.len(), 1);
        assert_eq!(substs[0]["x"], eg.find(a));
        assert_eq!(substs[0]["y"], eg.find(b));
        assert_eq!(substs[0]["z"], eg.find(c));
    }

    #[test]
    fn nonlinear_pattern_requires_equality() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let aa = eg.add(Node::new(Op::Add, vec![a, a]));
        let p = parse_pattern("(+ ?x ?x)").unwrap();
        let mut substs = Vec::new();
        p.match_class(&eg, ab, &mut substs);
        assert!(substs.is_empty(), "a+b must not match (+ ?x ?x)");
        substs.clear();
        p.match_class(&eg, aa, &mut substs);
        assert_eq!(substs.len(), 1);
    }

    #[test]
    fn nonlinear_matches_after_union() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        eg.union(a, b);
        eg.rebuild();
        let p = parse_pattern("(+ ?x ?x)").unwrap();
        let mut substs = Vec::new();
        p.match_class(&eg, ab, &mut substs);
        assert_eq!(substs.len(), 1, "after union(a,b), a+b matches (+ ?x ?x)");
    }

    #[test]
    fn search_finds_all_classes() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let _s1 = eg.add(Node::new(Op::Mul, vec![a, b]));
        let _s2 = eg.add(Node::new(Op::Mul, vec![b, a]));
        let p = parse_pattern("(* ?x ?y)").unwrap();
        let found = p.search(&eg);
        assert_eq!(found.len(), 2);
    }

    #[test]
    fn instantiate_builds_term() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let p = parse_pattern("(fma ?a ?b ?c)").unwrap();
        let mut subst = Subst::new();
        subst.insert("a".into(), a);
        subst.insert("b".into(), b);
        subst.insert("c".into(), c);
        let id = p.instantiate(&mut eg, &subst);
        assert_eq!(eg.term_string(id), "(fma a b c)");
    }

    #[test]
    fn multiple_matches_in_one_class() {
        // class containing both (* a b) and (* b a): two matches of (* ?x ?y)
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let s1 = eg.add(Node::new(Op::Mul, vec![a, b]));
        let s2 = eg.add(Node::new(Op::Mul, vec![b, a]));
        eg.union(s1, s2);
        eg.rebuild();
        let p = parse_pattern("(* ?x ?y)").unwrap();
        let mut substs = Vec::new();
        p.match_class(&eg, s1, &mut substs);
        assert_eq!(substs.len(), 2);
    }
}
