//! Constant-folding e-class analysis (paper §V-A: "We also incorporate
//! constant folding of arithmetic operations with integer and floating-point
//! numbers").
//!
//! This mirrors egg's `Analysis` with `make`/`merge`/`modify`: every e-class
//! optionally carries a proven compile-time constant; adding a node computes
//! its value from child data; unions must agree (in debug builds) and keep
//! whichever side knows more; classes that gain a constant also gain the
//! corresponding literal leaf so extraction can select it at zero cost.

use crate::node::{Node, Op};

/// A compile-time constant value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConstValue {
    /// An integer constant.
    Int(i64),
    /// A floating-point constant.
    Float(f64),
}

impl ConstValue {
    /// Numeric value as `f64` (ints convert exactly up to 2^53).
    pub fn as_f64(self) -> f64 {
        match self {
            ConstValue::Int(v) => v as f64,
            ConstValue::Float(v) => v,
        }
    }

    /// Integer value if this is an integer constant.
    pub fn as_int(self) -> Option<i64> {
        match self {
            ConstValue::Int(v) => Some(v),
            ConstValue::Float(_) => None,
        }
    }

    /// Is this numerically zero?
    pub fn is_zero(self) -> bool {
        match self {
            ConstValue::Int(v) => v == 0,
            ConstValue::Float(v) => v == 0.0,
        }
    }
}

/// Fold two ints (checked; arithmetic overflow aborts folding rather than
/// miscompiling).
fn int2(op: &Op, a: i64, b: i64) -> Option<ConstValue> {
    let v = match op {
        Op::Add => a.checked_add(b)?,
        Op::Sub => a.checked_sub(b)?,
        Op::Mul => a.checked_mul(b)?,
        Op::Div => {
            if b == 0 {
                return None;
            }
            a.checked_div(b)?
        }
        Op::Mod => {
            if b == 0 {
                return None;
            }
            a.checked_rem(b)?
        }
        Op::Lt => (a < b) as i64,
        Op::Le => (a <= b) as i64,
        Op::Gt => (a > b) as i64,
        Op::Ge => (a >= b) as i64,
        Op::Eq => (a == b) as i64,
        Op::Ne => (a != b) as i64,
        Op::And => ((a != 0) && (b != 0)) as i64,
        Op::Or => ((a != 0) || (b != 0)) as i64,
        _ => return None,
    };
    Some(ConstValue::Int(v))
}

/// Fold two floats. Comparisons yield `Int` (C semantics). Division by zero
/// folds to ±inf as `-ffast-math` compilers do not trap.
fn float2(op: &Op, a: f64, b: f64) -> Option<ConstValue> {
    let v = match op {
        Op::Add => a + b,
        Op::Sub => a - b,
        Op::Mul => a * b,
        Op::Div => a / b,
        Op::Lt => return Some(ConstValue::Int((a < b) as i64)),
        Op::Le => return Some(ConstValue::Int((a <= b) as i64)),
        Op::Gt => return Some(ConstValue::Int((a > b) as i64)),
        Op::Ge => return Some(ConstValue::Int((a >= b) as i64)),
        Op::Eq => return Some(ConstValue::Int((a == b) as i64)),
        Op::Ne => return Some(ConstValue::Int((a != b) as i64)),
        _ => return None,
    };
    if v.is_nan() {
        None
    } else {
        Some(ConstValue::Float(v))
    }
}

/// Compute the constant value of `node` given a child-constant oracle.
/// Returns `None` when any child is unknown or the op is not foldable.
pub fn eval_node(
    node: &Node,
    child_const: impl Fn(crate::node::Id) -> Option<ConstValue>,
) -> Option<ConstValue> {
    match &node.op {
        Op::Int(v) => return Some(ConstValue::Int(*v)),
        Op::Float(bits) => return Some(ConstValue::Float(f64::from_bits(*bits))),
        Op::Sym(_) | Op::LoopCond(_) => return None,
        // memory, φ and calls are never folded — their value depends on state
        Op::Load | Op::Store | Op::PhiLoop | Op::Call(_) => return None,
        _ => {}
    }
    let kids: Option<Vec<ConstValue>> = node.children.iter().map(|&c| child_const(c)).collect();
    let kids = kids?;
    match (&node.op, kids.as_slice()) {
        (Op::Neg, [a]) => Some(match a {
            ConstValue::Int(v) => ConstValue::Int(v.checked_neg()?),
            ConstValue::Float(v) => ConstValue::Float(-v),
        }),
        (Op::Not, [a]) => Some(ConstValue::Int(a.is_zero() as i64)),
        (Op::CastInt, [a]) => Some(ConstValue::Int(match a {
            ConstValue::Int(v) => *v,
            ConstValue::Float(v) => *v as i64,
        })),
        (Op::CastFloat, [a]) => Some(ConstValue::Float(a.as_f64())),
        (Op::Fma, [a, b, c]) => {
            // fma(a, b, c) = a + b * c, folded in the wider domain
            match (a, b, c) {
                (ConstValue::Int(a), ConstValue::Int(b), ConstValue::Int(c)) => {
                    Some(ConstValue::Int(a.checked_add(b.checked_mul(*c)?)?))
                }
                _ => {
                    let v = a.as_f64() + b.as_f64() * c.as_f64();
                    if v.is_nan() {
                        None
                    } else {
                        Some(ConstValue::Float(v))
                    }
                }
            }
        }
        (Op::Select, [c, t, e]) => Some(if !c.is_zero() { *t } else { *e }),
        (op, [a, b]) => match (a, b) {
            (ConstValue::Int(x), ConstValue::Int(y)) => int2(op, *x, *y),
            _ => float2(op, a.as_f64(), b.as_f64()),
        },
        _ => None,
    }
}

/// Merge analysis data on union. Both sides proven ⇒ they must agree (checked
/// in debug builds; in release the left side wins, matching egg's behaviour
/// for a semilattice where both are already canonical).
pub fn merge_const(a: Option<ConstValue>, b: Option<ConstValue>) -> Option<ConstValue> {
    match (a, b) {
        (Some(x), Some(y)) => {
            debug_assert!(
                const_eq(x, y),
                "union of classes with contradictory constants: {x:?} vs {y:?}"
            );
            Some(x)
        }
        (Some(x), None) | (None, Some(x)) => Some(x),
        (None, None) => None,
    }
}

fn const_eq(a: ConstValue, b: ConstValue) -> bool {
    match (a, b) {
        (ConstValue::Int(x), ConstValue::Int(y)) => x == y,
        _ => a.as_f64() == b.as_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Id;

    fn no_children(_: Id) -> Option<ConstValue> {
        None
    }

    #[test]
    fn literals_fold_to_themselves() {
        assert_eq!(eval_node(&Node::int(7), no_children), Some(ConstValue::Int(7)));
        assert_eq!(eval_node(&Node::float(2.5), no_children), Some(ConstValue::Float(2.5)));
        assert_eq!(eval_node(&Node::sym("x"), no_children), None);
    }

    #[test]
    fn binary_int_folding() {
        let table = |op: Op, want: i64| {
            let n = Node::new(op, vec![Id::from(0), Id::from(1)]);
            let v = eval_node(&n, |id| Some(ConstValue::Int(if id.index() == 0 { 6 } else { 3 })));
            assert_eq!(v, Some(ConstValue::Int(want)));
        };
        table(Op::Add, 9);
        table(Op::Sub, 3);
        table(Op::Mul, 18);
        table(Op::Div, 2);
        table(Op::Mod, 0);
        table(Op::Lt, 0);
        table(Op::Ge, 1);
    }

    #[test]
    fn mixed_promotes_to_float() {
        let n = Node::new(Op::Add, vec![Id::from(0), Id::from(1)]);
        let v = eval_node(&n, |id| {
            Some(if id.index() == 0 { ConstValue::Int(1) } else { ConstValue::Float(0.5) })
        });
        assert_eq!(v, Some(ConstValue::Float(1.5)));
    }

    #[test]
    fn division_by_zero_int_does_not_fold() {
        let n = Node::new(Op::Div, vec![Id::from(0), Id::from(1)]);
        let v = eval_node(&n, |id| Some(ConstValue::Int(if id.index() == 0 { 1 } else { 0 })));
        assert_eq!(v, None);
    }

    #[test]
    fn overflow_does_not_fold() {
        let n = Node::new(Op::Mul, vec![Id::from(0), Id::from(1)]);
        let v = eval_node(&n, |_| Some(ConstValue::Int(i64::MAX)));
        assert_eq!(v, None);
    }

    #[test]
    fn fma_folds_like_a_plus_b_times_c() {
        let n = Node::new(Op::Fma, vec![Id::from(0), Id::from(1), Id::from(2)]);
        let v = eval_node(&n, |id| Some(ConstValue::Float((id.index() + 1) as f64)));
        // 1 + 2*3 = 7
        assert_eq!(v, Some(ConstValue::Float(7.0)));
    }

    #[test]
    fn select_folds_on_constant_condition() {
        let n = Node::new(Op::Select, vec![Id::from(0), Id::from(1), Id::from(2)]);
        let v = eval_node(&n, |id| {
            Some(ConstValue::Int(match id.index() {
                0 => 1,
                1 => 10,
                _ => 20,
            }))
        });
        assert_eq!(v, Some(ConstValue::Int(10)));
    }

    #[test]
    fn loads_never_fold() {
        let n = Node::new(Op::Load, vec![Id::from(0), Id::from(1)]);
        let v = eval_node(&n, |_| Some(ConstValue::Int(1)));
        assert_eq!(v, None);
    }

    #[test]
    fn merge_prefers_known() {
        assert_eq!(merge_const(None, Some(ConstValue::Int(4))), Some(ConstValue::Int(4)));
        assert_eq!(merge_const(Some(ConstValue::Int(4)), None), Some(ConstValue::Int(4)));
        assert_eq!(merge_const(None, None), None);
    }
}
