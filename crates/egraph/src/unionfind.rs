//! Union-find (disjoint set) over e-class ids, with path halving.

use crate::node::Id;

/// Disjoint-set forest keyed by [`Id`]. `find` uses path halving; `union` is
/// union-by-instruction-order (the caller decides the surviving root, which
/// the e-graph uses to keep the analysis data on the canonical class).
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    parents: Vec<Id>,
}

impl UnionFind {
    /// Create an empty forest.
    pub fn new() -> UnionFind {
        UnionFind { parents: Vec::new() }
    }

    /// Number of ids ever created (not the number of sets).
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if no ids were created.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Create a fresh singleton set and return its id.
    pub fn make_set(&mut self) -> Id {
        let id = Id::from(self.parents.len());
        self.parents.push(id);
        id
    }

    /// Find the canonical representative of `id` without mutation.
    pub fn find(&self, mut id: Id) -> Id {
        while self.parents[id.index()] != id {
            id = self.parents[id.index()];
        }
        id
    }

    /// Find with path halving (amortized near-constant).
    pub fn find_mut(&mut self, mut id: Id) -> Id {
        while self.parents[id.index()] != id {
            let grandparent = self.parents[self.parents[id.index()].index()];
            self.parents[id.index()] = grandparent;
            id = grandparent;
        }
        id
    }

    /// Merge the set containing `from` into the set containing `to`.
    /// Returns the canonical id (`to`'s root). `to` survives.
    pub fn union(&mut self, to: Id, from: Id) -> Id {
        let to = self.find_mut(to);
        let from = self.find_mut(from);
        self.parents[from.index()] = to;
        to
    }

    /// Are two ids in the same set?
    pub fn same(&self, a: Id, b: Id) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of distinct sets (linear scan; used in tests and stats).
    pub fn num_sets(&self) -> usize {
        (0..self.parents.len()).filter(|&i| self.parents[i] == Id::from(i)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_roots() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..8).map(|_| uf.make_set()).collect();
        for &id in &ids {
            assert_eq!(uf.find(id), id);
        }
        assert_eq!(uf.num_sets(), 8);
    }

    #[test]
    fn union_merges_and_to_survives() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        let c = uf.make_set();
        let root = uf.union(a, b);
        assert_eq!(root, a);
        assert!(uf.same(a, b));
        assert!(!uf.same(a, c));
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn transitive_union() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..10).map(|_| uf.make_set()).collect();
        // chain 0←1, 1←2, …
        for w in ids.windows(2) {
            uf.union(w[0], w[1]);
        }
        for &id in &ids {
            assert_eq!(uf.find_mut(id), ids[0]);
        }
        assert_eq!(uf.num_sets(), 1);
    }

    #[test]
    fn path_halving_preserves_roots() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..64).map(|_| uf.make_set()).collect();
        for &id in &ids[1..] {
            uf.union(ids[0], id);
        }
        // find_mut compresses but the root never changes
        for &id in &ids {
            assert_eq!(uf.find_mut(id), ids[0]);
            assert_eq!(uf.find(id), ids[0]);
        }
    }

    #[test]
    fn union_idempotent() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        uf.union(a, b);
        let r = uf.union(a, b);
        assert_eq!(r, a);
        assert_eq!(uf.num_sets(), 1);
    }
}
