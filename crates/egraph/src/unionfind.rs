//! Union-find (disjoint set) over e-class ids, with path halving.

use crate::node::Id;

/// Disjoint-set forest keyed by [`Id`]. `find` uses path halving; `union` is
/// union-by-instruction-order (the caller decides the surviving root, which
/// the e-graph uses to keep the analysis data on the canonical class).
#[derive(Debug, Clone, Default)]
pub struct UnionFind {
    pub(crate) parents: Vec<Id>,
}

impl UnionFind {
    /// Create an empty forest.
    pub fn new() -> UnionFind {
        UnionFind { parents: Vec::new() }
    }

    /// Number of ids ever created (not the number of sets).
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// True if no ids were created.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Create a fresh singleton set and return its id.
    pub fn make_set(&mut self) -> Id {
        let id = Id::from(self.parents.len());
        self.parents.push(id);
        id
    }

    /// Find the canonical representative of `id` without mutation.
    pub fn find(&self, mut id: Id) -> Id {
        while self.parents[id.index()] != id {
            id = self.parents[id.index()];
        }
        id
    }

    /// Find with path halving (amortized near-constant).
    pub fn find_mut(&mut self, mut id: Id) -> Id {
        while self.parents[id.index()] != id {
            let grandparent = self.parents[self.parents[id.index()].index()];
            self.parents[id.index()] = grandparent;
            id = grandparent;
        }
        id
    }

    /// Merge the set containing `from` into the set containing `to`.
    /// Returns the canonical id (`to`'s root). `to` survives.
    pub fn union(&mut self, to: Id, from: Id) -> Id {
        let to = self.find_mut(to);
        let from = self.find_mut(from);
        self.parents[from.index()] = to;
        to
    }

    /// Are two ids in the same set?
    pub fn same(&self, a: Id, b: Id) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of distinct sets (linear scan; used in tests and stats).
    pub fn num_sets(&self) -> usize {
        (0..self.parents.len()).filter(|&i| self.parents[i] == Id::from(i)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_are_their_own_roots() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..8).map(|_| uf.make_set()).collect();
        for &id in &ids {
            assert_eq!(uf.find(id), id);
        }
        assert_eq!(uf.num_sets(), 8);
    }

    #[test]
    fn union_merges_and_to_survives() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        let c = uf.make_set();
        let root = uf.union(a, b);
        assert_eq!(root, a);
        assert!(uf.same(a, b));
        assert!(!uf.same(a, c));
        assert_eq!(uf.num_sets(), 2);
    }

    #[test]
    fn transitive_union() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..10).map(|_| uf.make_set()).collect();
        // chain 0←1, 1←2, …
        for w in ids.windows(2) {
            uf.union(w[0], w[1]);
        }
        for &id in &ids {
            assert_eq!(uf.find_mut(id), ids[0]);
        }
        assert_eq!(uf.num_sets(), 1);
    }

    #[test]
    fn path_halving_preserves_roots() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..64).map(|_| uf.make_set()).collect();
        for &id in &ids[1..] {
            uf.union(ids[0], id);
        }
        // find_mut compresses but the root never changes
        for &id in &ids {
            assert_eq!(uf.find_mut(id), ids[0]);
            assert_eq!(uf.find(id), ids[0]);
        }
    }

    #[test]
    fn union_idempotent() {
        let mut uf = UnionFind::new();
        let a = uf.make_set();
        let b = uf.make_set();
        uf.union(a, b);
        let r = uf.union(a, b);
        assert_eq!(r, a);
        assert_eq!(uf.num_sets(), 1);
    }

    /// Naive reference partition: `labels[i]` is the set label of id `i`,
    /// merged by full relabel on every union.
    struct Reference {
        labels: Vec<usize>,
    }

    impl Reference {
        fn new(n: usize) -> Reference {
            Reference { labels: (0..n).collect() }
        }
        fn union(&mut self, to: usize, from: usize) {
            let (keep, gone) = (self.labels[to], self.labels[from]);
            for l in &mut self.labels {
                if *l == gone {
                    *l = keep;
                }
            }
        }
        fn same(&self, a: usize, b: usize) -> bool {
            self.labels[a] == self.labels[b]
        }
        fn num_sets(&self) -> usize {
            let mut ls: Vec<usize> = self.labels.clone();
            ls.sort_unstable();
            ls.dedup();
            ls.len()
        }
    }

    #[test]
    fn random_unions_match_reference_partition() {
        // Deterministic LCG so failures reproduce.
        let mut state = 0x2545f491_4f6cdd1du64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        const N: usize = 100;
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..N).map(|_| uf.make_set()).collect();
        let mut reference = Reference::new(N);

        for step in 0..400 {
            let (a, b) = (rng() % N, rng() % N);
            let root = uf.union(ids[a], ids[b]);
            reference.union(a, b);
            // the surviving root is `to`'s representative
            assert_eq!(root, uf.find(ids[a]), "step {step}: union did not keep `to`'s root");
            // the partitions agree on every pair sampled this round
            for _ in 0..16 {
                let (x, y) = (rng() % N, rng() % N);
                assert_eq!(
                    uf.same(ids[x], ids[y]),
                    reference.same(x, y),
                    "step {step}: partition disagrees on ({x}, {y})"
                );
            }
            assert_eq!(uf.num_sets(), reference.num_sets(), "step {step}: set count drifted");
        }
    }

    #[test]
    fn find_is_idempotent_and_consistent_with_find_mut() {
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..32).map(|_| uf.make_set()).collect();
        for i in (0..32).step_by(2) {
            uf.union(ids[i], ids[(i + 7) % 32]);
        }
        for &id in &ids {
            let r = uf.find(id);
            assert_eq!(uf.find(r), r, "find(find(x)) must equal find(x)");
            assert_eq!(uf.find_mut(id), r, "find_mut must agree with find");
            // and path halving must not have changed any representative
            assert_eq!(uf.find(id), r);
        }
    }

    #[test]
    fn congruence_closure_style_merges() {
        // The e-graph's congruence restoration unions classes whose nodes
        // become equal after canonicalization; the union-find must support
        // the resulting cascades: union chains built in both directions
        // still produce one set with a stable representative.
        let mut uf = UnionFind::new();
        let ids: Vec<Id> = (0..16).map(|_| uf.make_set()).collect();
        // f(a)=f(b) merges, pairwise from both ends
        for i in 0..8 {
            uf.union(ids[i], ids[15 - i]);
        }
        // then collapse the pairs left-to-right, as rebuild's worklist would
        for i in 0..7 {
            uf.union(ids[i], ids[i + 1]);
        }
        assert_eq!(uf.num_sets(), 1);
        let root = uf.find(ids[0]);
        assert_eq!(root, ids[0], "first `to` of the final cascade survives");
        for &id in &ids {
            assert_eq!(uf.find_mut(id), root);
        }
        assert_eq!(uf.len(), 16, "len counts ids ever created, not sets");
    }
}
