//! Hand-rolled, versioned text serialization of the full [`EGraph`] state.
//!
//! This is the persistence layer behind content-addressed stage caching
//! (`accsat serve`, `--cache-dir`): a saturated e-graph is dumped after
//! `rebuild`, stored under its kernel hash, and restored in a later process
//! so extraction (or even further saturation) can resume without redoing
//! the work. Two properties drive the design:
//!
//! * **Full fidelity.** Every field that can influence later behavior is
//!   serialized exactly: the union-find forest (raw parent vector, so
//!   path-halving history is preserved), class storage including dead
//!   slots, per-class node and parent lists *in stored order* (the match
//!   stream of a resumed saturation walks them in order), the hash-cons
//!   memo, the operator index (per-op id vectors in order), both dirty
//!   work lists, the monotone node counter and the folding flag. A
//!   restored graph is operationally indistinguishable from the original:
//!   re-running the saturation runner on it produces byte-identical
//!   reports (pinned by `tests/property_cache.rs`).
//! * **Deterministic bytes.** Hash-map content (memo, op index) is written
//!   sorted by key, so the same graph always serializes to the same bytes
//!   regardless of the maps' insertion histories — serialized snapshots
//!   can themselves be compared or hashed.
//!
//! The format is line-oriented text with a versioned header
//! (`accsat-egraph v1`), following the repo's no-crates.io rule: hand-roll
//! like the JSON reports, don't vendor a serde. Operators use a tagged
//! token codec ([`op_token`] / [`parse_op_token`]) because [`Op::name`] is
//! not injective (a symbol named `load` would collide) and float display
//! is lossy (tokens carry the exact bits).

use crate::analysis::ConstValue;
use crate::egraph::{EClass, EGraph};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::node::{Id, Node, Op};
use crate::unionfind::UnionFind;
use std::fmt::Write as _;

/// Magic + version line every serialized e-graph starts with. Bump the
/// version whenever the format (or anything that changes the meaning of
/// the bytes) changes; readers reject mismatches and the cache treats the
/// entry as a miss.
pub const EGRAPH_FORMAT_HEADER: &str = "accsat-egraph v1";

/// Encode an operator as a whitespace-free token.
///
/// Payload-carrying variants are tagged (`i:`, `f:`, `s:`, `lc:`,
/// `call:`); fixed operators use their [`Op::name`], which never contains
/// a colon — so decoding is unambiguous. Floats are written as exact bits
/// in hex. Panics if a symbol/call payload contains whitespace (no such
/// name can come out of the C parser or the SSA builder).
pub fn op_token(op: &Op) -> String {
    let tok = match op {
        Op::Int(v) => format!("i:{v}"),
        Op::Float(bits) => format!("f:{bits:x}"),
        Op::Sym(s) => format!("s:{s}"),
        Op::LoopCond(l) => format!("lc:{l}"),
        Op::Call(n) => format!("call:{n}"),
        other => other.name(),
    };
    debug_assert!(!tok.chars().any(|c| c.is_whitespace()), "op token must be atomic: {tok:?}");
    tok
}

/// Decode a token produced by [`op_token`].
pub fn parse_op_token(tok: &str) -> Result<Op, String> {
    if let Some(v) = tok.strip_prefix("i:") {
        return v.parse::<i64>().map(Op::Int).map_err(|e| format!("bad int op {tok:?}: {e}"));
    }
    if let Some(v) = tok.strip_prefix("f:") {
        return u64::from_str_radix(v, 16)
            .map(Op::Float)
            .map_err(|e| format!("bad float op {tok:?}: {e}"));
    }
    if let Some(v) = tok.strip_prefix("s:") {
        return Ok(Op::Sym(v.to_string()));
    }
    if let Some(v) = tok.strip_prefix("lc:") {
        return Ok(Op::LoopCond(v.to_string()));
    }
    if let Some(v) = tok.strip_prefix("call:") {
        return Ok(Op::Call(v.to_string()));
    }
    match Op::from_name(tok) {
        Some(op) if !matches!(op, Op::Int(_) | Op::Float(_) | Op::Sym(_) | Op::LoopCond(_)) => {
            Ok(op)
        }
        _ => Err(format!("unknown op token {tok:?}")),
    }
}

fn push_node(out: &mut String, node: &Node) {
    out.push_str(&op_token(&node.op));
    let _ = write!(out, " {}", node.children.len());
    for c in &node.children {
        let _ = write!(out, " {}", c.index());
    }
}

fn const_token(c: Option<ConstValue>) -> String {
    match c {
        None => "-".into(),
        Some(ConstValue::Int(v)) => format!("ci:{v}"),
        Some(ConstValue::Float(v)) => format!("cf:{:x}", v.to_bits()),
    }
}

fn parse_const_token(tok: &str) -> Result<Option<ConstValue>, String> {
    if tok == "-" {
        return Ok(None);
    }
    if let Some(v) = tok.strip_prefix("ci:") {
        return v
            .parse::<i64>()
            .map(|v| Some(ConstValue::Int(v)))
            .map_err(|e| format!("bad const {tok:?}: {e}"));
    }
    if let Some(v) = tok.strip_prefix("cf:") {
        return u64::from_str_radix(v, 16)
            .map(|b| Some(ConstValue::Float(f64::from_bits(b))))
            .map_err(|e| format!("bad const {tok:?}: {e}"));
    }
    Err(format!("unknown const token {tok:?}"))
}

/// A token cursor over one line of the serialized form.
struct Line<'a> {
    toks: std::str::SplitWhitespace<'a>,
    raw: &'a str,
}

impl<'a> Line<'a> {
    fn new(raw: &'a str) -> Line<'a> {
        Line { toks: raw.split_whitespace(), raw }
    }

    fn next(&mut self) -> Result<&'a str, String> {
        self.toks.next().ok_or_else(|| format!("truncated line {:?}", self.raw))
    }

    fn next_usize(&mut self) -> Result<usize, String> {
        let t = self.next()?;
        t.parse::<usize>().map_err(|e| format!("bad count {t:?} in {:?}: {e}", self.raw))
    }

    fn next_id(&mut self) -> Result<Id, String> {
        Ok(Id::from(self.next_usize()?))
    }

    fn next_node(&mut self) -> Result<Node, String> {
        let op = parse_op_token(self.next()?)?;
        let k = self.next_usize()?;
        let mut children = Vec::with_capacity(k);
        for _ in 0..k {
            children.push(self.next_id()?);
        }
        Ok(Node { op, children })
    }

    fn expect(&mut self, word: &str) -> Result<(), String> {
        let t = self.next()?;
        if t == word {
            Ok(())
        } else {
            Err(format!("expected {word:?}, got {t:?} in {:?}", self.raw))
        }
    }
}

impl EGraph {
    /// Serialize the complete e-graph state to the versioned text format.
    ///
    /// Output bytes are a pure function of the graph state (hash-map
    /// sections are emitted in sorted order), so equal graphs serialize
    /// equal. See the module docs for the fidelity contract.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        out.push_str(EGRAPH_FORMAT_HEADER);
        out.push('\n');
        let _ = writeln!(out, "fold {}", u8::from(self.fold_constants));
        let _ = writeln!(out, "nodes {}", self.num_nodes);

        let _ = write!(out, "uf {}", self.unionfind.parents.len());
        for p in &self.unionfind.parents {
            let _ = write!(out, " {}", p.index());
        }
        out.push('\n');

        let _ = writeln!(out, "classes {}", self.classes.len());
        for (i, slot) in self.classes.iter().enumerate() {
            match slot {
                None => {
                    let _ = writeln!(out, "c {i} dead");
                }
                Some(cls) => {
                    let _ = writeln!(
                        out,
                        "c {i} live {} {} {}",
                        const_token(cls.constant),
                        cls.nodes.len(),
                        cls.parents.len()
                    );
                    for n in &cls.nodes {
                        out.push_str("n ");
                        push_node(&mut out, n);
                        out.push('\n');
                    }
                    for (n, pid) in &cls.parents {
                        out.push_str("p ");
                        push_node(&mut out, n);
                        let _ = writeln!(out, " {}", pid.index());
                    }
                }
            }
        }

        let mut memo: Vec<(&Node, Id)> = self.memo.iter().map(|(n, &id)| (n, id)).collect();
        memo.sort_unstable();
        let _ = writeln!(out, "memo {}", memo.len());
        for (n, id) in memo {
            out.push_str("m ");
            push_node(&mut out, n);
            let _ = writeln!(out, " {}", id.index());
        }

        let mut ops: Vec<(String, &Vec<Id>)> =
            self.op_index.iter().map(|(op, ids)| (op_token(op), ids)).collect();
        ops.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let _ = writeln!(out, "ops {}", ops.len());
        for (tok, ids) in ops {
            let _ = write!(out, "o {tok} {}", ids.len());
            for id in ids {
                let _ = write!(out, " {}", id.index());
            }
            out.push('\n');
        }

        let _ = write!(out, "dirty {}", self.dirty.len());
        for id in &self.dirty {
            let _ = write!(out, " {}", id.index());
        }
        out.push('\n');
        let _ = write!(out, "sdirty {}", self.search_dirty.len());
        for id in &self.search_dirty {
            let _ = write!(out, " {}", id.index());
        }
        out.push('\n');
        out.push_str("end\n");
        out
    }

    /// Restore an e-graph from [`EGraph::serialize`] output. Rejects
    /// unknown format versions and structurally corrupt input with a
    /// descriptive error (the cache layer maps any error to a miss).
    pub fn deserialize(text: &str) -> Result<EGraph, String> {
        let mut lines = text.lines();
        let mut next_line =
            |what: &str| lines.next().ok_or_else(|| format!("truncated input: expected {what}"));

        let header = next_line("header")?;
        if header != EGRAPH_FORMAT_HEADER {
            return Err(format!(
                "unsupported e-graph format {header:?} (expected {EGRAPH_FORMAT_HEADER:?})"
            ));
        }

        let mut l = Line::new(next_line("fold")?);
        l.expect("fold")?;
        let fold_constants = match l.next()? {
            "0" => false,
            "1" => true,
            other => return Err(format!("bad fold flag {other:?}")),
        };

        let mut l = Line::new(next_line("nodes")?);
        l.expect("nodes")?;
        let num_nodes = l.next_usize()?;

        let mut l = Line::new(next_line("uf")?);
        l.expect("uf")?;
        let uf_len = l.next_usize()?;
        let mut parents = Vec::with_capacity(uf_len);
        for _ in 0..uf_len {
            parents.push(l.next_id()?);
        }
        for p in &parents {
            if p.index() >= uf_len {
                return Err(format!("union-find parent {p} out of range {uf_len}"));
            }
        }

        let mut l = Line::new(next_line("classes")?);
        l.expect("classes")?;
        let n_classes = l.next_usize()?;
        if n_classes != uf_len {
            return Err(format!("class count {n_classes} != union-find size {uf_len}"));
        }
        let mut classes: Vec<Option<EClass>> = Vec::with_capacity(n_classes);
        for i in 0..n_classes {
            let mut l = Line::new(next_line("class")?);
            l.expect("c")?;
            let idx = l.next_usize()?;
            if idx != i {
                return Err(format!("class {i} out of order (got {idx})"));
            }
            match l.next()? {
                "dead" => classes.push(None),
                "live" => {
                    let constant = parse_const_token(l.next()?)?;
                    let n_nodes = l.next_usize()?;
                    let n_parents = l.next_usize()?;
                    let mut nodes = Vec::with_capacity(n_nodes);
                    for _ in 0..n_nodes {
                        let mut l = Line::new(next_line("class node")?);
                        l.expect("n")?;
                        nodes.push(l.next_node()?);
                    }
                    let mut cls_parents = Vec::with_capacity(n_parents);
                    for _ in 0..n_parents {
                        let mut l = Line::new(next_line("class parent")?);
                        l.expect("p")?;
                        let node = l.next_node()?;
                        cls_parents.push((node, l.next_id()?));
                    }
                    classes.push(Some(EClass { nodes, parents: cls_parents, constant }));
                }
                other => return Err(format!("bad class tag {other:?}")),
            }
        }

        let mut l = Line::new(next_line("memo")?);
        l.expect("memo")?;
        let n_memo = l.next_usize()?;
        let mut memo = FxHashMap::default();
        memo.reserve(n_memo);
        for _ in 0..n_memo {
            let mut l = Line::new(next_line("memo entry")?);
            l.expect("m")?;
            let node = l.next_node()?;
            let id = l.next_id()?;
            if memo.insert(node, id).is_some() {
                return Err("duplicate memo entry".into());
            }
        }

        let mut l = Line::new(next_line("ops")?);
        l.expect("ops")?;
        let n_ops = l.next_usize()?;
        let mut op_index: FxHashMap<Op, Vec<Id>> = FxHashMap::default();
        op_index.reserve(n_ops);
        for _ in 0..n_ops {
            let mut l = Line::new(next_line("op index entry")?);
            l.expect("o")?;
            let op = parse_op_token(l.next()?)?;
            let count = l.next_usize()?;
            let mut ids = Vec::with_capacity(count);
            for _ in 0..count {
                ids.push(l.next_id()?);
            }
            if op_index.insert(op, ids).is_some() {
                return Err("duplicate op index entry".into());
            }
        }

        let mut l = Line::new(next_line("dirty")?);
        l.expect("dirty")?;
        let n_dirty = l.next_usize()?;
        let mut dirty = Vec::with_capacity(n_dirty);
        for _ in 0..n_dirty {
            dirty.push(l.next_id()?);
        }

        let mut l = Line::new(next_line("sdirty")?);
        l.expect("sdirty")?;
        let n_sdirty = l.next_usize()?;
        let mut search_dirty = Vec::with_capacity(n_sdirty);
        for _ in 0..n_sdirty {
            search_dirty.push(l.next_id()?);
        }

        if next_line("end")? != "end" {
            return Err("missing end marker".into());
        }

        let eg = EGraph {
            unionfind: UnionFind { parents },
            memo,
            classes,
            dirty,
            op_index,
            search_dirty,
            num_nodes,
            fold_constants,
        };
        eg.validate()?;
        Ok(eg)
    }

    /// Structural sanity checks on a deserialized graph: every id in any
    /// section must be in range, and every referenced canonical class must
    /// be live. Cheap (linear) — corruption becomes an error, not a panic
    /// deep inside saturation.
    fn validate(&self) -> Result<(), String> {
        let n = self.classes.len();
        let check = |id: Id, what: &str| -> Result<(), String> {
            if id.index() >= n {
                return Err(format!("{what}: id {id} out of range {n}"));
            }
            Ok(())
        };
        let live = |id: Id, what: &str| -> Result<(), String> {
            check(id, what)?;
            if self.classes[self.find(id).index()].is_none() {
                return Err(format!("{what}: id {id} resolves to a dead class"));
            }
            Ok(())
        };
        for (i, slot) in self.classes.iter().enumerate() {
            let Some(cls) = slot else { continue };
            for node in &cls.nodes {
                for &c in &node.children {
                    live(c, &format!("class {i} node child"))?;
                }
            }
            for (node, pid) in &cls.parents {
                live(*pid, &format!("class {i} parent id"))?;
                for &c in &node.children {
                    check(c, &format!("class {i} parent child"))?;
                }
            }
        }
        for (node, &id) in &self.memo {
            live(id, "memo value")?;
            for &c in &node.children {
                check(c, "memo key child")?;
            }
        }
        for ids in self.op_index.values() {
            for &id in ids {
                check(id, "op index")?;
            }
        }
        for &id in self.dirty.iter().chain(&self.search_dirty) {
            check(id, "dirty list")?;
        }
        Ok(())
    }

    /// Deep structural equality of the *serializable* state — equal exactly
    /// when `serialize()` outputs are equal bytes, but without building the
    /// strings. Test helper for round-trip properties.
    pub fn state_eq(&self, other: &EGraph) -> bool {
        if self.fold_constants != other.fold_constants
            || self.num_nodes != other.num_nodes
            || self.unionfind.parents != other.unionfind.parents
            || self.dirty != other.dirty
            || self.search_dirty != other.search_dirty
            || self.classes.len() != other.classes.len()
        {
            return false;
        }
        let class_eq = |a: &Option<EClass>, b: &Option<EClass>| match (a, b) {
            (None, None) => true,
            (Some(a), Some(b)) => {
                a.nodes == b.nodes && a.parents == b.parents && a.constant == b.constant
            }
            _ => false,
        };
        if !self.classes.iter().zip(&other.classes).all(|(a, b)| class_eq(a, b)) {
            return false;
        }
        self.memo == other.memo && self.op_index == other.op_index
    }
}

// Silence unused-import lint when debug assertions compile out.
#[allow(unused)]
fn _assert_types(_: &FxHashSet<Id>) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::all_rules;
    use crate::runner::Runner;

    fn sample_graph() -> EGraph {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let two = eg.add(Node::int(2));
        let half = eg.add(Node::float(0.5));
        let m = eg.add(Node::new(Op::Mul, vec![a, b]));
        let s = eg.add(Node::new(Op::Add, vec![m, two]));
        let d = eg.add(Node::new(Op::Div, vec![s, half]));
        let ld = eg.add(Node::new(Op::Load, vec![a, two]));
        let _c = eg.add(Node::new(Op::Call("fmin".into()), vec![d, ld]));
        let _lc = eg.add(Node::leaf(Op::LoopCond("L0".into())));
        eg.union(m, s);
        eg.rebuild();
        eg
    }

    #[test]
    fn round_trip_preserves_state_and_bytes() {
        let eg = sample_graph();
        let text = eg.serialize();
        let back = EGraph::deserialize(&text).expect("round trip");
        assert!(eg.state_eq(&back), "deserialized state must equal the original");
        assert_eq!(back.serialize(), text, "re-serialization must be byte-identical");
        back.check_invariants();
    }

    #[test]
    fn op_tokens_round_trip_payload_variants() {
        let ops = [
            Op::Int(-42),
            Op::float(0.1),
            Op::float(f64::NAN),
            Op::Sym("load".into()), // must NOT collide with the Load operator
            Op::Sym("x0".into()),
            Op::LoopCond("L3".into()),
            Op::Call("sqrt".into()),
            Op::Add,
            Op::Fma,
            Op::CastFloat,
            Op::PhiLoop,
        ];
        for op in ops {
            let tok = op_token(&op);
            let back = parse_op_token(&tok).unwrap_or_else(|e| panic!("{tok}: {e}"));
            assert_eq!(back, op, "token {tok} must round-trip");
        }
        assert_eq!(parse_op_token("s:load").unwrap(), Op::Sym("load".into()));
        assert_eq!(parse_op_token("load").unwrap(), Op::Load);
    }

    #[test]
    fn version_and_corruption_are_rejected() {
        let eg = sample_graph();
        let text = eg.serialize();
        let wrong = text.replacen("v1", "v999", 1);
        assert!(EGraph::deserialize(&wrong).is_err(), "version mismatch must be rejected");
        let truncated = &text[..text.len() / 2];
        assert!(EGraph::deserialize(truncated).is_err(), "truncation must be rejected");
        // out-of-range id in the union-find line
        let corrupt = text.replacen("uf ", "uf 999 ", 1);
        assert!(EGraph::deserialize(&corrupt).is_err());
    }

    #[test]
    fn saturation_resumes_identically_after_round_trip() {
        // The contract the stage cache stands on: running the saturation
        // runner on a restored graph must produce the same report and the
        // same final state as running it on the original.
        let build = || {
            let mut eg = EGraph::new();
            let a = eg.add(Node::sym("a"));
            let b = eg.add(Node::sym("b"));
            let c = eg.add(Node::sym("c"));
            let bc = eg.add(Node::new(Op::Mul, vec![b, c]));
            let sum = eg.add(Node::new(Op::Add, vec![bc, a]));
            let two = eg.add(Node::int(2));
            let _r = eg.add(Node::new(Op::Div, vec![sum, two]));
            eg.rebuild();
            eg
        };
        let mut original = build();
        let mut restored = EGraph::deserialize(&build().serialize()).expect("round trip");
        let runner = Runner::new(all_rules());
        let r1 = runner.run(&mut original);
        let r2 = runner.run(&mut restored);
        assert_eq!(r1.stop_reason, r2.stop_reason);
        assert_eq!(r1.iterations.len(), r2.iterations.len());
        for (a, b) in r1.iterations.iter().zip(&r2.iterations) {
            assert_eq!((a.matches, a.applied, a.total_nodes, a.num_classes), {
                (b.matches, b.applied, b.total_nodes, b.num_classes)
            });
        }
        assert!(original.state_eq(&restored), "post-saturation state must be identical");
        assert_eq!(original.serialize(), restored.serialize());
    }
}
