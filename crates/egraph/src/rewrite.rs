//! Rewrite rules: a named left-hand pattern, right-hand pattern, and an
//! optional side condition on the matched substitution.
//!
//! Rules are compiled once at construction: the left-hand side becomes a
//! [`Program`] for the pattern VM (see [`crate::machine`]), the right-hand
//! side an index-resolved [`RhsNode`] template, so the saturation hot loop
//! never touches pattern variable names. The interpretive tree-walk matcher
//! ([`Pattern::search`]) remains available as `search_legacy` — it is the
//! differential-testing oracle for the compiled engine.

use crate::egraph::EGraph;
use crate::fxhash::FxHashSet;
use crate::machine::{Program, RhsNode, VarSubst};
use crate::node::Id;
use crate::pattern::{parse_pattern, Pattern, Subst};

/// Side condition evaluated on every match before application. Receives the
/// substitution as a name → id map (the legacy form) — conditions are rare,
/// so the map is materialized only when one is attached.
pub type Condition = fn(&EGraph, &Subst) -> bool;

/// One match of a rule's left-hand side: the root e-class and the variable
/// bindings (indexed by the rule's var table).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RuleMatch {
    /// The e-class the pattern root matched.
    pub class: Id,
    /// Variable bindings, indexed by the rule's var table.
    pub subst: VarSubst,
}

/// A rewrite rule `lhs → rhs`, with both sides compiled.
#[derive(Clone)]
pub struct Rewrite {
    /// Rule name (Table I naming, e.g. `FMA1`, `COMM-ADD`).
    pub name: String,
    /// Left-hand side — the pattern searched for.
    pub lhs: Pattern,
    /// Right-hand side — the pattern instantiated on a match.
    pub rhs: Pattern,
    /// Optional side condition filtering matches before application.
    pub condition: Option<Condition>,
    /// Compiled left-hand side (pattern VM program + interned vars).
    program: Program,
    /// Compiled right-hand side (variables resolved to var-table indices).
    rhs_template: RhsNode,
}

impl std::fmt::Debug for Rewrite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rewrite")
            .field("name", &self.name)
            .field("conditional", &self.condition.is_some())
            .finish()
    }
}

impl Rewrite {
    /// Build a rule from pattern strings, compiling both sides. Panics on
    /// malformed patterns — rules are compile-time constants of the tool.
    pub fn new(name: &str, lhs: &str, rhs: &str) -> Rewrite {
        let lhs_p = parse_pattern(lhs).unwrap_or_else(|e| panic!("rule {name}: bad lhs: {e}"));
        let rhs_p = parse_pattern(rhs).unwrap_or_else(|e| panic!("rule {name}: bad rhs: {e}"));
        let program = Program::compile(&lhs_p);
        // every rhs variable must be bound by the lhs (RhsNode::compile
        // panics with a per-variable message otherwise)
        let rhs_template = RhsNode::compile(&rhs_p.root, &program, name);
        Rewrite {
            name: name.to_string(),
            lhs: lhs_p,
            rhs: rhs_p,
            condition: None,
            program,
            rhs_template,
        }
    }

    /// Attach a side condition.
    pub fn with_condition(mut self, cond: Condition) -> Rewrite {
        self.condition = Some(cond);
        self
    }

    /// Interned variable names of the left-hand side.
    pub fn vars(&self) -> &[String] {
        self.program.vars()
    }

    /// The compiled left-hand-side program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Materialize a name → id map from a compiled substitution (side
    /// conditions, tests, debugging).
    pub fn subst_map(&self, subst: &VarSubst) -> Subst {
        self.program
            .vars()
            .iter()
            .zip(subst.as_slice())
            .map(|(name, &id)| (name.clone(), id))
            .collect()
    }

    /// Search the e-graph for matches of `lhs` with the compiled VM,
    /// restricted to candidate classes when `restrict` is given (the
    /// runner's dirty-class search).
    pub fn search_filtered(&self, eg: &EGraph, restrict: Option<&FxHashSet<Id>>) -> Vec<RuleMatch> {
        let mut raw = Vec::new();
        self.program.search_filtered(eg, restrict, &mut raw);
        let mut matches: Vec<RuleMatch> =
            raw.into_iter().map(|(class, subst)| RuleMatch { class, subst }).collect();
        if let Some(cond) = self.condition {
            matches.retain(|m| cond(eg, &self.subst_map(&m.subst)));
        }
        matches
    }

    /// Search the whole e-graph for matches of `lhs` (compiled engine).
    pub fn search(&self, eg: &EGraph) -> Vec<RuleMatch> {
        self.search_filtered(eg, None)
    }

    /// Search with the legacy backtracking tree-walk matcher — the oracle
    /// the compiled engine is differentially tested against.
    pub fn search_legacy(&self, eg: &EGraph) -> Vec<(Id, Subst)> {
        let mut matches = self.lhs.search(eg);
        if let Some(cond) = self.condition {
            matches.retain(|(_, s)| cond(eg, s));
        }
        matches
    }

    /// Apply one match: instantiate `rhs` and union with the matched class.
    /// Returns `true` if the e-graph changed.
    pub fn apply_match(&self, eg: &mut EGraph, class: Id, subst: &VarSubst) -> bool {
        let new_id = self.rhs_template.instantiate(eg, subst);
        eg.union(class, new_id).1
    }

    /// Apply one legacy-form match (name-keyed substitution).
    pub fn apply_match_legacy(&self, eg: &mut EGraph, class: Id, subst: &Subst) -> bool {
        let new_id = self.rhs.instantiate(eg, subst);
        eg.union(class, new_id).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, Op};

    #[test]
    fn apply_comm_add() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let ba = eg.add(Node::new(Op::Add, vec![b, a]));
        assert!(!eg.same(ab, ba));

        let rule = Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)");
        for m in rule.search(&eg) {
            rule.apply_match(&mut eg, m.class, &m.subst);
        }
        eg.rebuild();
        assert!(eg.same(ab, ba));
    }

    #[test]
    fn fma_rule_adds_node_to_class() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let bc = eg.add(Node::new(Op::Mul, vec![b, c]));
        let sum = eg.add(Node::new(Op::Add, vec![a, bc]));

        let rule = Rewrite::new("fma1", "(+ ?a (* ?b ?c))", "(fma ?a ?b ?c)");
        let matches = rule.search(&eg);
        assert_eq!(matches.len(), 1);
        let map = rule.subst_map(&matches[0].subst);
        assert_eq!(map["a"], eg.find(a));
        assert_eq!(map["b"], eg.find(b));
        assert_eq!(map["c"], eg.find(c));
        for m in matches {
            rule.apply_match(&mut eg, m.class, &m.subst);
        }
        eg.rebuild();
        // the sum's class must now contain an Fma node
        assert!(eg.class(sum).nodes.iter().any(|n| n.op == Op::Fma));
    }

    #[test]
    fn conditional_rule_filters() {
        fn never(_: &EGraph, _: &Subst) -> bool {
            false
        }
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let _ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let rule = Rewrite::new("nope", "(+ ?a ?b)", "(+ ?b ?a)").with_condition(never);
        assert!(rule.search(&eg).is_empty());
        assert!(rule.search_legacy(&eg).is_empty());
    }

    #[test]
    fn compiled_and_legacy_agree_on_small_graph() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let bc = eg.add(Node::new(Op::Mul, vec![b, c]));
        let _s1 = eg.add(Node::new(Op::Add, vec![a, bc]));
        let _s2 = eg.add(Node::new(Op::Add, vec![bc, a]));
        for rule in crate::rules::all_rules() {
            let mut compiled: Vec<(Id, Vec<(String, Id)>)> = rule
                .search(&eg)
                .iter()
                .map(|m| {
                    let mut s: Vec<_> = rule.subst_map(&m.subst).into_iter().collect();
                    s.sort();
                    (eg.find(m.class), s)
                })
                .collect();
            let mut legacy: Vec<(Id, Vec<(String, Id)>)> = rule
                .search_legacy(&eg)
                .into_iter()
                .map(|(class, s)| {
                    let mut s: Vec<_> = s.into_iter().collect();
                    s.sort();
                    (eg.find(class), s)
                })
                .collect();
            compiled.sort();
            legacy.sort();
            assert_eq!(compiled, legacy, "rule {}", rule.name);
        }
    }

    #[test]
    #[should_panic(expected = "not bound by lhs")]
    fn unbound_rhs_variable_panics() {
        let _ = Rewrite::new("bad", "(+ ?a ?b)", "(+ ?a ?c)");
    }
}
