//! Rewrite rules: a named left-hand pattern, right-hand pattern, and an
//! optional side condition on the matched substitution.

use crate::egraph::EGraph;
use crate::node::Id;
use crate::pattern::{parse_pattern, Pattern, Subst};

/// Side condition evaluated on every match before application.
pub type Condition = fn(&EGraph, &Subst) -> bool;

/// A rewrite rule `lhs → rhs`.
#[derive(Clone)]
pub struct Rewrite {
    pub name: String,
    pub lhs: Pattern,
    pub rhs: Pattern,
    pub condition: Option<Condition>,
}

impl std::fmt::Debug for Rewrite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rewrite")
            .field("name", &self.name)
            .field("conditional", &self.condition.is_some())
            .finish()
    }
}

impl Rewrite {
    /// Build a rule from pattern strings. Panics on malformed patterns —
    /// rules are compile-time constants of the tool.
    pub fn new(name: &str, lhs: &str, rhs: &str) -> Rewrite {
        let lhs_p = parse_pattern(lhs).unwrap_or_else(|e| panic!("rule {name}: bad lhs: {e}"));
        let rhs_p = parse_pattern(rhs).unwrap_or_else(|e| panic!("rule {name}: bad rhs: {e}"));
        // every rhs variable must be bound by the lhs
        let lhs_vars = lhs_p.vars();
        for v in rhs_p.vars() {
            assert!(
                lhs_vars.contains(&v),
                "rule {name}: rhs variable ?{v} not bound by lhs"
            );
        }
        Rewrite { name: name.to_string(), lhs: lhs_p, rhs: rhs_p, condition: None }
    }

    /// Attach a side condition.
    pub fn with_condition(mut self, cond: Condition) -> Rewrite {
        self.condition = Some(cond);
        self
    }

    /// Search the whole e-graph for matches of `lhs`.
    pub fn search(&self, eg: &EGraph) -> Vec<(Id, Subst)> {
        let mut matches = self.lhs.search(eg);
        if let Some(cond) = self.condition {
            matches.retain(|(_, s)| cond(eg, s));
        }
        matches
    }

    /// Apply one match: instantiate `rhs` and union with the matched class.
    /// Returns `true` if the e-graph changed.
    pub fn apply_match(&self, eg: &mut EGraph, class: Id, subst: &Subst) -> bool {
        let new_id = self.rhs.instantiate(eg, subst);
        eg.union(class, new_id).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, Op};

    #[test]
    fn apply_comm_add() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let ba = eg.add(Node::new(Op::Add, vec![b, a]));
        assert!(!eg.same(ab, ba));

        let rule = Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)");
        for (class, subst) in rule.search(&eg) {
            rule.apply_match(&mut eg, class, &subst);
        }
        eg.rebuild();
        assert!(eg.same(ab, ba));
    }

    #[test]
    fn fma_rule_adds_node_to_class() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let bc = eg.add(Node::new(Op::Mul, vec![b, c]));
        let sum = eg.add(Node::new(Op::Add, vec![a, bc]));

        let rule = Rewrite::new("fma1", "(+ ?a (* ?b ?c))", "(fma ?a ?b ?c)");
        let matches = rule.search(&eg);
        assert_eq!(matches.len(), 1);
        for (class, subst) in matches {
            rule.apply_match(&mut eg, class, &subst);
        }
        eg.rebuild();
        // the sum's class must now contain an Fma node
        assert!(eg.class(sum).nodes.iter().any(|n| n.op == Op::Fma));
    }

    #[test]
    fn conditional_rule_filters() {
        fn never(_: &EGraph, _: &Subst) -> bool {
            false
        }
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let _ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let rule = Rewrite::new("nope", "(+ ?a ?b)", "(+ ?b ?a)").with_condition(never);
        assert!(rule.search(&eg).is_empty());
    }

    #[test]
    #[should_panic(expected = "not bound by lhs")]
    fn unbound_rhs_variable_panics() {
        let _ = Rewrite::new("bad", "(+ ?a ?b)", "(+ ?a ?c)");
    }
}
