//! ACC Saturator's rewrite rules — Table I of the paper, verbatim:
//!
//! | Name       | Pattern         | Result          |
//! |------------|-----------------|-----------------|
//! | FMA1       | A + B * C       | FMA(A, B, C)    |
//! | FMA2       | A - B * C       | FMA(A, -B, C)   |
//! | FMA3       | B * C - A       | FMA(-A, B, C)   |
//! | COMM-ADD   | A + B           | B + A           |
//! | COMM-MUL   | A * B           | B * A           |
//! | ASSOC-ADD1 | A + (B + C)     | (A + B) + C     |
//! | ASSOC-ADD2 | (A + B) + C     | A + (B + C)     |
//! | ASSOC-MUL1 | A * (B * C)     | (A * B) * C     |
//! | ASSOC-MUL2 | (A * B) * C     | A * (B * C)     |
//!
//! `FMA(a, b, c) = a + b * c`. Constant folding is an e-class analysis
//! (see [`crate::analysis`]), not a rule. The paper deliberately excludes
//! rules for subtraction, division, memory-access order, conditionals and
//! iteration, to keep e-graphs small (§V-A) — we follow suit; the optional
//! [`reorder_rules`] set exists for the ablation benches only.

use crate::rewrite::Rewrite;

/// FMA-introduction rules (Table I, first block).
pub fn fma_rules() -> Vec<Rewrite> {
    vec![
        Rewrite::new("FMA1", "(+ ?a (* ?b ?c))", "(fma ?a ?b ?c)"),
        Rewrite::new("FMA2", "(- ?a (* ?b ?c))", "(fma ?a (neg ?b) ?c)"),
        Rewrite::new("FMA3", "(- (* ?b ?c) ?a)", "(fma (neg ?a) ?b ?c)"),
    ]
}

/// Commutativity rules (Table I, second block).
pub fn comm_rules() -> Vec<Rewrite> {
    vec![
        Rewrite::new("COMM-ADD", "(+ ?a ?b)", "(+ ?b ?a)"),
        Rewrite::new("COMM-MUL", "(* ?a ?b)", "(* ?b ?a)"),
    ]
}

/// Associativity rules (Table I, third block).
pub fn assoc_rules() -> Vec<Rewrite> {
    vec![
        Rewrite::new("ASSOC-ADD1", "(+ ?a (+ ?b ?c))", "(+ (+ ?a ?b) ?c)"),
        Rewrite::new("ASSOC-ADD2", "(+ (+ ?a ?b) ?c)", "(+ ?a (+ ?b ?c))"),
        Rewrite::new("ASSOC-MUL1", "(* ?a (* ?b ?c))", "(* (* ?a ?b) ?c)"),
        Rewrite::new("ASSOC-MUL2", "(* (* ?a ?b) ?c)", "(* ?a (* ?b ?c))"),
    ]
}

/// The full default rule set of ACC Saturator (Table I).
pub fn all_rules() -> Vec<Rewrite> {
    let mut rules = fma_rules();
    rules.extend(comm_rules());
    rules.extend(assoc_rules());
    rules
}

/// Extra rules the paper mentions as *possible* but disabled by default
/// ("ACC Saturator can rewrite subtraction, division, … these rules can
/// increase the size of e-graphs", §V-A). Used by the rule-set ablation.
pub fn reorder_rules() -> Vec<Rewrite> {
    vec![
        Rewrite::new("SUB-AS-ADD", "(- ?a ?b)", "(+ ?a (neg ?b))"),
        Rewrite::new("ADD-NEG-AS-SUB", "(+ ?a (neg ?b))", "(- ?a ?b)"),
        Rewrite::new("NEG-NEG", "(neg (neg ?a))", "?a"),
        Rewrite::new("NEG-MUL-L", "(* (neg ?a) ?b)", "(neg (* ?a ?b))"),
        Rewrite::new("MUL-NEG-OUT", "(neg (* ?a ?b))", "(* (neg ?a) ?b)"),
        Rewrite::new("DIV-AS-MUL", "(/ (/ ?a ?b) ?c)", "(/ ?a (* ?b ?c))"),
    ]
}

/// Look up a default rule by name (tests, examples, custom rule sets).
pub fn rule_by_name(name: &str) -> Option<Rewrite> {
    all_rules().into_iter().chain(reorder_rules()).find(|r| r.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::egraph::EGraph;
    use crate::node::{Node, Op};
    use crate::runner::Runner;

    #[test]
    fn table1_is_complete() {
        let names: Vec<String> = all_rules().into_iter().map(|r| r.name).collect();
        assert_eq!(
            names,
            vec![
                "FMA1",
                "FMA2",
                "FMA3",
                "COMM-ADD",
                "COMM-MUL",
                "ASSOC-ADD1",
                "ASSOC-ADD2",
                "ASSOC-MUL1",
                "ASSOC-MUL2",
            ]
        );
    }

    #[test]
    fn rule_by_name_finds() {
        assert!(rule_by_name("FMA2").is_some());
        assert!(rule_by_name("NEG-NEG").is_some());
        assert!(rule_by_name("NOPE").is_none());
    }

    /// The paper's Fig. 1 example: `B = D + E` and `C = E + D` must be
    /// proven equal (COMM-ADD), enabling CSE.
    #[test]
    fn fig1_comm_cse() {
        let mut eg = EGraph::new();
        let d = eg.add(Node::sym("D"));
        let e = eg.add(Node::sym("E"));
        let b = eg.add(Node::new(Op::Add, vec![d, e]));
        let c = eg.add(Node::new(Op::Add, vec![e, d]));
        Runner::new(comm_rules()).run(&mut eg);
        assert!(eg.same(b, c));
    }

    /// FMA2: a - b*c must gain FMA(a, -b, c).
    #[test]
    fn fma2_applies() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let bc = eg.add(Node::new(Op::Mul, vec![b, c]));
        let diff = eg.add(Node::new(Op::Sub, vec![a, bc]));
        Runner::new(fma_rules()).run(&mut eg);
        assert!(eg.class(diff).nodes.iter().any(|n| n.op == Op::Fma));
    }

    /// FMA3: b*c - a must gain FMA(-a, b, c).
    #[test]
    fn fma3_applies() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let bc = eg.add(Node::new(Op::Mul, vec![b, c]));
        let diff = eg.add(Node::new(Op::Sub, vec![bc, a]));
        Runner::new(fma_rules()).run(&mut eg);
        assert!(eg.class(diff).nodes.iter().any(|n| n.op == Op::Fma));
    }

    /// Reassociation enables CSE across statements:
    /// `t1 = (a + b) + c` and `t2 = a + (b + c)` become one class.
    #[test]
    fn assoc_enables_cross_statement_cse() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let t1 = eg.add(Node::new(Op::Add, vec![ab, c]));
        let bc = eg.add(Node::new(Op::Add, vec![b, c]));
        let t2 = eg.add(Node::new(Op::Add, vec![a, bc]));
        Runner::new(assoc_rules()).run(&mut eg);
        assert!(eg.same(t1, t2));
    }

    #[test]
    fn neg_neg_cancels() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let na = eg.add(Node::new(Op::Neg, vec![a]));
        let nna = eg.add(Node::new(Op::Neg, vec![na]));
        Runner::new(reorder_rules()).run(&mut eg);
        assert!(eg.same(a, nna));
    }
}
