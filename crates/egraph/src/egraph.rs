//! The e-graph: hash-consed e-nodes grouped into e-classes with deferred
//! congruence restoration (the "rebuilding" algorithm of egg).

use crate::analysis::{eval_node, merge_const, ConstValue};
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::node::{Id, Node, Op};
use crate::unionfind::UnionFind;

/// An e-class: a set of equal e-nodes plus analysis data and parent
/// back-references used by congruence restoration.
#[derive(Debug, Clone, Default)]
pub struct EClass {
    /// E-nodes in this class (children canonical as of the last rebuild).
    pub nodes: Vec<Node>,
    /// (parent node, parent class) pairs for congruence repair.
    pub parents: Vec<(Node, Id)>,
    /// Constant-folding analysis data: `Some` if every term in this class
    /// evaluates to this compile-time constant.
    pub constant: Option<ConstValue>,
}

/// The e-graph.
#[derive(Debug, Clone, Default)]
pub struct EGraph {
    // Fields are `pub(crate)` (not `pub`) so the serializer in
    // `crate::serialize` can dump and restore the exact internal state —
    // external code still goes through the method API.
    pub(crate) unionfind: UnionFind,
    /// Canonical-node → class memo (hash-consing).
    pub(crate) memo: FxHashMap<Node, Id>,
    /// Class storage, indexed by canonical id; `None` after being merged away.
    pub(crate) classes: Vec<Option<EClass>>,
    /// Classes whose parents must be reprocessed by `rebuild`.
    pub(crate) dirty: Vec<Id>,
    /// Operator → classes containing an e-node with that head operator.
    /// Maintained incrementally by `add`; entries may go stale after unions
    /// (resolved through `find` on query) and are compacted by `rebuild`.
    pub(crate) op_index: FxHashMap<Op, Vec<Id>>,
    /// Classes touched since the last [`EGraph::take_search_dirty`]: newly
    /// created, target of a union, or given a materialized constant leaf.
    /// The saturation runner uses this (closed over parents) to re-search
    /// only the part of the graph that can hold new matches.
    pub(crate) search_dirty: Vec<Id>,
    /// Total number of e-nodes ever added (the paper's 10 000-node budget is
    /// measured against this).
    pub(crate) num_nodes: usize,
    /// Whether constant folding is enabled (on by default; the plain `CSE`
    /// variant of the paper also folds nothing because it runs no rules and
    /// no analysis-driven unions happen without `fold_constants`).
    pub fold_constants: bool,
}

impl EGraph {
    /// New empty e-graph with constant folding enabled.
    pub fn new() -> EGraph {
        EGraph { fold_constants: true, ..Default::default() }
    }

    /// New e-graph with constant folding disabled.
    pub fn without_constant_folding() -> EGraph {
        EGraph { fold_constants: false, ..Default::default() }
    }

    /// Number of live e-classes.
    pub fn num_classes(&self) -> usize {
        self.classes.iter().filter(|c| c.is_some()).count()
    }

    /// Total number of e-nodes ever added (monotone; the saturation budget).
    pub fn total_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of distinct canonical e-nodes currently in the memo.
    pub fn num_memo_nodes(&self) -> usize {
        self.memo.len()
    }

    /// Canonical id of `id`.
    pub fn find(&self, id: Id) -> Id {
        self.unionfind.find(id)
    }

    /// Are `a` and `b` known equal?
    pub fn same(&self, a: Id, b: Id) -> bool {
        self.unionfind.same(a, b)
    }

    /// Borrow an e-class by (any) id.
    pub fn class(&self, id: Id) -> &EClass {
        let id = self.find(id);
        self.classes[id.index()].as_ref().expect("canonical class must exist")
    }

    /// Iterate over `(canonical id, class)` pairs.
    pub fn classes(&self) -> impl Iterator<Item = (Id, &EClass)> {
        self.classes.iter().enumerate().filter_map(|(i, c)| c.as_ref().map(|c| (Id::from(i), c)))
    }

    /// The constant value of a class, if the analysis proved one.
    pub fn constant(&self, id: Id) -> Option<ConstValue> {
        self.class(id).constant
    }

    /// Canonical ids of the live classes containing an e-node whose head
    /// operator is `op` — the compiled matcher's candidate lookup. Stale
    /// index entries are resolved through `find` and deduplicated.
    pub fn classes_with_op(&self, op: &Op) -> Vec<Id> {
        let Some(ids) = self.op_index.get(op) else {
            return Vec::new();
        };
        let mut seen = FxHashSet::default();
        seen.reserve(ids.len());
        let mut out = Vec::with_capacity(ids.len());
        for &id in ids {
            let id = self.find(id);
            if self.classes[id.index()].is_some() && seen.insert(id) {
                out.push(id);
            }
        }
        out
    }

    /// Take the set of classes touched since the previous call, closed
    /// transitively over parent classes: any class that could root a *new*
    /// pattern match (new e-node, union changing a non-linear equality, or
    /// a match reaching a changed class through any chain of children) is in
    /// the returned set. Ids are canonical; dead classes are dropped.
    pub fn take_search_dirty(&mut self) -> FxHashSet<Id> {
        let raw = std::mem::take(&mut self.search_dirty);
        let mut set = FxHashSet::default();
        set.reserve(raw.len());
        let mut stack: Vec<Id> = Vec::with_capacity(raw.len());
        for id in raw {
            let id = self.find(id);
            if self.classes[id.index()].is_some() {
                stack.push(id);
            }
        }
        while let Some(id) = stack.pop() {
            if !set.insert(id) {
                continue;
            }
            let class = self.classes[id.index()].as_ref().expect("live class");
            for &(_, parent) in &class.parents {
                let parent = self.find(parent);
                if self.classes[parent.index()].is_some() && !set.contains(&parent) {
                    stack.push(parent);
                }
            }
        }
        set
    }

    /// Discard accumulated search-dirty marks (used before a full search,
    /// which covers everything anyway).
    pub fn clear_search_dirty(&mut self) {
        self.search_dirty.clear();
    }

    fn canonicalize(&mut self, node: &Node) -> Node {
        let mut n = node.clone();
        for c in &mut n.children {
            *c = self.unionfind.find_mut(*c);
        }
        n
    }

    /// Look up a node without inserting. Returns the canonical class if the
    /// (canonicalized) node already exists.
    pub fn lookup(&mut self, node: &Node) -> Option<Id> {
        let n = self.canonicalize(node);
        self.memo.get(&n).map(|&id| self.unionfind.find_mut(id))
    }

    /// Add a node, returning its e-class (existing or fresh).
    pub fn add(&mut self, mut node: Node) -> Id {
        // canonicalize in place — `add` owns the node, no clone needed
        for c in &mut node.children {
            *c = self.unionfind.find_mut(*c);
        }
        if let Some(&id) = self.memo.get(&node) {
            return self.unionfind.find_mut(id);
        }
        let id = self.unionfind.make_set();
        debug_assert_eq!(id.index(), self.classes.len());
        let constant =
            if self.fold_constants { eval_node(&node, |c| self.constant(c)) } else { None };
        self.classes.push(Some(EClass {
            nodes: vec![node.clone()],
            parents: Vec::new(),
            constant,
        }));
        self.num_nodes += 1;
        self.op_index.entry(node.op.clone()).or_default().push(id);
        self.search_dirty.push(id);
        for &child in &node.children {
            let child = self.unionfind.find_mut(child);
            self.classes[child.index()]
                .as_mut()
                .expect("child class")
                .parents
                .push((node.clone(), id));
        }
        self.memo.insert(node, id);
        // analysis `modify`: materialize proven constants as leaf nodes so
        // extraction can pick them at zero cost
        if let Some(c) = self.classes[id.index()].as_ref().unwrap().constant {
            self.add_constant_leaf(id, c);
        }
        id
    }

    fn add_constant_leaf(&mut self, id: Id, c: ConstValue) {
        let leaf = match c {
            ConstValue::Int(v) => Node::int(v),
            ConstValue::Float(v) => Node::float(v),
        };
        if self.memo.contains_key(&leaf) {
            let leaf_id = self.memo[&leaf];
            self.union(id, leaf_id);
        } else {
            let cls = self.unionfind.find_mut(id);
            self.memo.insert(leaf.clone(), cls);
            self.op_index.entry(leaf.op.clone()).or_default().push(cls);
            self.classes[cls.index()].as_mut().unwrap().nodes.push(leaf);
            self.num_nodes += 1;
            self.search_dirty.push(cls);
        }
    }

    /// Add a whole term (tree of nodes), returning the root class.
    pub fn add_expr(&mut self, op: Op, children: Vec<Id>) -> Id {
        self.add(Node::new(op, children))
    }

    /// Union two e-classes. Returns the canonical id and whether anything
    /// changed. Congruence is restored lazily by [`EGraph::rebuild`].
    pub fn union(&mut self, a: Id, b: Id) -> (Id, bool) {
        let a = self.unionfind.find_mut(a);
        let b = self.unionfind.find_mut(b);
        if a == b {
            return (a, false);
        }
        // keep the class with more parents as root (fewer parent moves)
        let (to, from) = {
            let pa = self.classes[a.index()].as_ref().unwrap().parents.len();
            let pb = self.classes[b.index()].as_ref().unwrap().parents.len();
            if pa >= pb {
                (a, b)
            } else {
                (b, a)
            }
        };
        self.unionfind.union(to, from);
        let from_class = self.classes[from.index()].take().expect("from class");
        let to_class = self.classes[to.index()].as_mut().expect("to class");
        to_class.nodes.extend(from_class.nodes);
        to_class.parents.extend(from_class.parents);
        let merged = merge_const(to_class.constant, from_class.constant);
        let new_constant_appeared = merged.is_some() && to_class.constant.is_none();
        to_class.constant = merged;
        self.dirty.push(to);
        self.search_dirty.push(to);
        if new_constant_appeared {
            if let Some(c) = merged {
                self.add_constant_leaf(to, c);
            }
        }
        (to, true)
    }

    /// Restore the congruence invariant after unions (egg's deferred
    /// rebuilding). Must be called before e-matching.
    pub fn rebuild(&mut self) {
        // Only unions make memo keys stale, and every union marks a class
        // dirty — a completed rebuild leaves the memo fully canonical, so
        // with nothing dirty there is nothing to repair or sweep.
        if self.dirty.is_empty() {
            return;
        }
        loop {
            self.process_dirty();
            // A congruence node appears in every child's parents list, each
            // holding the node form current when that entry was created. A
            // repair pass re-canonicalizes only the form it holds, so a
            // second child merged later removes a key the first repair
            // already replaced — leaving its half-canonical replacement
            // stranded in the memo. Sweep such keys up to a fixpoint; the
            // collisions this surfaces are congruences, merged like any
            // other.
            let mut stale: Vec<Node> = self
                .memo
                .keys()
                .filter(|n| n.children.iter().any(|&c| self.unionfind.find(c) != c))
                .cloned()
                .collect();
            if stale.is_empty() {
                break;
            }
            // Sweep in node order, not memo-iteration order: hash-map order
            // depends on the map's insertion history, which differs between
            // a graph built live and the same graph restored from a
            // serialized snapshot. Sorting makes every downstream union
            // (and thus root choice) a function of graph *content* only, so
            // a deserialized e-graph re-saturates byte-identically.
            stale.sort_unstable();
            for old in stale {
                let id = self.memo.remove(&old).expect("stale key present");
                let canon = self.canonicalize(&old);
                let id = self.unionfind.find_mut(id);
                match self.memo.get(&canon) {
                    Some(&other) => {
                        let other = self.unionfind.find_mut(other);
                        if other != id {
                            let (merged, _) = self.union(other, id);
                            self.memo.insert(canon, merged);
                        }
                    }
                    None => {
                        self.memo.insert(canon, id);
                    }
                }
            }
            if self.dirty.is_empty() {
                break;
            }
        }
        debug_assert!(self.dirty.is_empty());
        self.compact_op_index();
    }

    /// Drop dead / stale entries from the op → class index so lookup cost
    /// stays proportional to the live graph. Run once per rebuild.
    fn compact_op_index(&mut self) {
        for ids in self.op_index.values_mut() {
            let mut seen = FxHashSet::default();
            seen.reserve(ids.len());
            let mut out = Vec::with_capacity(ids.len());
            for &id in ids.iter() {
                let id = self.unionfind.find(id);
                if self.classes[id.index()].is_some() && seen.insert(id) {
                    out.push(id);
                }
            }
            *ids = out;
        }
    }

    fn process_dirty(&mut self) {
        while !self.dirty.is_empty() {
            // drain the worklist in deduplicated batches: a class unioned
            // several times since the last pass is repaired once, not once
            // per union (its parents list would be reprocessed in full each
            // time otherwise)
            let raw = std::mem::take(&mut self.dirty);
            let mut batch_seen = FxHashSet::default();
            batch_seen.reserve(raw.len());
            for dirty_id in raw {
                let id = self.unionfind.find_mut(dirty_id);
                if batch_seen.insert(id) {
                    self.repair(id);
                }
            }
            if self.dirty.is_empty() {
                // analysis propagation: unions may have given children
                // constant data that now folds their parents (egg's
                // analysis worklist, run to fixpoint)
                self.propagate_constants();
            }
        }
    }

    /// Re-canonicalize one dirty class's parents, restoring hash-cons and
    /// congruence invariants for them (the egg `repair`).
    fn repair(&mut self, id: Id) {
        let id = self.unionfind.find_mut(id);
        if self.classes[id.index()].is_none() {
            return;
        }
        {
            let parents = std::mem::take(
                &mut self.classes[id.index()].as_mut().expect("dirty class").parents,
            );
            // canon form → index into `new_parents`: congruent parents are
            // merged, and duplicate entries (the same parent reached through
            // several merged children) collapse to one — parents lists stay
            // proportional to distinct parent nodes instead of growing with
            // every union that touches the class.
            let mut seen: FxHashMap<Node, usize> = FxHashMap::default();
            seen.reserve(parents.len());
            let mut new_parents: Vec<(Node, Id)> = Vec::with_capacity(parents.len());
            for (node, parent_id) in parents {
                // remove the stale memo entry, re-canonicalize, re-insert
                self.memo.remove(&node);
                let canon = self.canonicalize(&node);
                let mut parent_id = self.unionfind.find_mut(parent_id);
                if let Some(&ix) = seen.get(&canon) {
                    // congruence (or duplicate entry): same canonical form
                    let prev = self.unionfind.find_mut(new_parents[ix].1);
                    if prev != parent_id {
                        let (merged, _) = self.union(prev, parent_id);
                        parent_id = merged;
                    }
                    new_parents[ix].1 = parent_id;
                    self.memo.insert(canon, parent_id);
                } else {
                    match self.memo.get(&canon) {
                        Some(&existing) => {
                            let existing = self.unionfind.find_mut(existing);
                            if existing != parent_id {
                                let (merged, _) = self.union(existing, parent_id);
                                parent_id = merged;
                            }
                            self.memo.insert(canon.clone(), parent_id);
                        }
                        None => {
                            self.memo.insert(canon.clone(), parent_id);
                        }
                    }
                    seen.insert(canon.clone(), new_parents.len());
                    new_parents.push((canon, parent_id));
                }
            }
            let id = self.unionfind.find_mut(id);
            if let Some(cls) = self.classes[id.index()].as_mut() {
                cls.parents.extend(new_parents);
            }
            // refresh stored nodes to canonical form and dedupe
            let id2 = id;
            let nodes = std::mem::take(&mut self.classes[id2.index()].as_mut().unwrap().nodes);
            let mut node_set: FxHashSet<Node> = FxHashSet::default();
            node_set.reserve(nodes.len());
            let mut canon_nodes: Vec<Node> = Vec::with_capacity(nodes.len());
            for n in nodes {
                let c = self.canonicalize(&n);
                if node_set.insert(c.clone()) {
                    canon_nodes.push(c);
                }
            }
            if let Some(cls) = self.classes[id2.index()].as_mut() {
                cls.nodes = canon_nodes;
            }
        }
    }

    /// Re-evaluate constant data for classes whose children gained
    /// constants after unions; materialize newly proven constants (which
    /// may trigger further unions handled by the enclosing rebuild loop).
    fn propagate_constants(&mut self) {
        if !self.fold_constants {
            return;
        }
        let mut changed = true;
        while changed {
            // phase 1: scan immutably — no node clones; `constant()`
            // resolves children through `find`, so the stored (possibly
            // stale-child) node forms evaluate correctly as they are
            let mut proven: Vec<(Id, ConstValue)> = Vec::new();
            for (id, class) in self.classes() {
                if class.constant.is_some() {
                    continue;
                }
                for n in &class.nodes {
                    if let Some(v) = eval_node(n, |c| self.constant(c)) {
                        proven.push((id, v));
                        break;
                    }
                }
            }
            // phase 2: record the new constants and materialize leaves
            // (which may union and re-dirty — handled by the enclosing
            // rebuild loop)
            changed = !proven.is_empty();
            for (id, v) in proven {
                let id = self.unionfind.find_mut(id);
                if let Some(cls) = self.classes[id.index()].as_mut() {
                    if cls.constant.is_none() {
                        cls.constant = Some(v);
                        self.add_constant_leaf(id, v);
                    }
                }
            }
        }
    }

    /// Check the congruence + hashcons invariants (test helper; O(nodes)).
    pub fn check_invariants(&self) {
        for (id, class) in self.classes() {
            for node in &class.nodes {
                for &c in &node.children {
                    assert!(
                        self.classes[self.find(c).index()].is_some(),
                        "child {c} of node in {id} must resolve to a live class"
                    );
                }
            }
        }
        // every memo entry must map a canonical node to its class
        for (node, &id) in &self.memo {
            let canon = node.canonicalized(|c| self.find(c));
            assert_eq!(&canon, node, "memo key must be canonical: {node}");
            assert!(self.classes[self.find(id).index()].is_some(), "memo value {id} must be live");
        }
        // the op index must cover every live e-node's head operator
        for (id, class) in self.classes() {
            for node in &class.nodes {
                assert!(
                    self.classes_with_op(&node.op).contains(&id),
                    "op index must list {id} under {:?}",
                    node.op
                );
            }
        }
    }

    /// Extract *some* concrete term from a class (smallest by node count),
    /// used in tests and debugging. Panics on cyclic-only classes.
    pub fn term_string(&self, id: Id) -> String {
        fn go(eg: &EGraph, id: Id, depth: usize) -> String {
            if depth > 64 {
                return "…".into();
            }
            let class = eg.class(id);
            // prefer leaves for brevity
            let node = class
                .nodes
                .iter()
                .min_by_key(|n| n.children.len())
                .expect("class has at least one node");
            if node.children.is_empty() {
                node.op.name()
            } else {
                let kids: Vec<String> =
                    node.children.iter().map(|&c| go(eg, c, depth + 1)).collect();
                format!("({} {})", node.op.name(), kids.join(" "))
            }
        }
        go(self, id, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(eg: &mut EGraph, name: &str) -> Id {
        eg.add(Node::sym(name))
    }

    #[test]
    fn hashcons_dedupes() {
        let mut eg = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let s1 = eg.add(Node::new(Op::Add, vec![a, b]));
        let s2 = eg.add(Node::new(Op::Add, vec![a, b]));
        assert_eq!(s1, s2);
        assert_eq!(eg.num_classes(), 3);
    }

    #[test]
    fn union_merges_classes() {
        let mut eg = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        assert!(!eg.same(a, b));
        eg.union(a, b);
        eg.rebuild();
        assert!(eg.same(a, b));
        assert_eq!(eg.num_classes(), 1);
    }

    #[test]
    fn congruence_after_rebuild() {
        // f(a), f(b): union(a, b) must make f(a) == f(b) after rebuild
        let mut eg = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let fa = eg.add(Node::new(Op::Neg, vec![a]));
        let fb = eg.add(Node::new(Op::Neg, vec![b]));
        assert!(!eg.same(fa, fb));
        eg.union(a, b);
        eg.rebuild();
        assert!(eg.same(fa, fb), "congruence must merge f(a) and f(b)");
        eg.check_invariants();
    }

    #[test]
    fn congruence_cascades() {
        // g(f(a)), g(f(b)): one union at the leaves cascades two levels up
        let mut eg = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let fa = eg.add(Node::new(Op::Neg, vec![a]));
        let fb = eg.add(Node::new(Op::Neg, vec![b]));
        let gfa = eg.add(Node::new(Op::Not, vec![fa]));
        let gfb = eg.add(Node::new(Op::Not, vec![fb]));
        eg.union(a, b);
        eg.rebuild();
        assert!(eg.same(gfa, gfb));
        eg.check_invariants();
    }

    #[test]
    fn constant_folding_on_add() {
        let mut eg = EGraph::new();
        let two = eg.add(Node::int(2));
        let three = eg.add(Node::int(3));
        let sum = eg.add(Node::new(Op::Add, vec![two, three]));
        assert_eq!(eg.constant(sum), Some(ConstValue::Int(5)));
        // the class must also contain the literal 5 so extraction is free
        let five = eg.add(Node::int(5));
        assert!(eg.same(sum, five));
    }

    #[test]
    fn float_folding() {
        let mut eg = EGraph::new();
        let half = eg.add(Node::float(0.5));
        let two = eg.add(Node::float(2.0));
        let prod = eg.add(Node::new(Op::Mul, vec![half, two]));
        assert_eq!(eg.constant(prod), Some(ConstValue::Float(1.0)));
    }

    #[test]
    fn no_folding_when_disabled() {
        let mut eg = EGraph::without_constant_folding();
        let two = eg.add(Node::int(2));
        let three = eg.add(Node::int(3));
        let sum = eg.add(Node::new(Op::Add, vec![two, three]));
        assert_eq!(eg.constant(sum), None);
    }

    #[test]
    fn union_propagates_constants() {
        let mut eg = EGraph::new();
        let x = leaf(&mut eg, "x");
        let four = eg.add(Node::int(4));
        // assert x == 4, then x + 1 should fold to 5 via congruence
        let one = eg.add(Node::int(1));
        let xp1 = eg.add(Node::new(Op::Add, vec![x, one]));
        eg.union(x, four);
        eg.rebuild();
        // xp1's class now contains (+ 4 1); adding it again folds
        let again = eg.add(Node::new(Op::Add, vec![x, one]));
        assert!(eg.same(xp1, again));
        eg.check_invariants();
    }

    #[test]
    fn lookup_does_not_insert() {
        let mut eg = EGraph::new();
        let a = leaf(&mut eg, "a");
        let n = Node::new(Op::Neg, vec![a]);
        assert_eq!(eg.lookup(&n), None);
        let id = eg.add(n.clone());
        assert_eq!(eg.lookup(&n), Some(id));
    }

    #[test]
    fn total_nodes_is_monotone() {
        let mut eg = EGraph::new();
        let a = leaf(&mut eg, "a");
        let before = eg.total_nodes();
        let _ = eg.add(Node::new(Op::Neg, vec![a]));
        assert!(eg.total_nodes() > before);
        let same = eg.add(Node::new(Op::Neg, vec![a]));
        let _ = same;
        // re-adding an existing node does not grow the count
        assert_eq!(eg.total_nodes(), before + 1);
    }

    #[test]
    fn term_string_renders() {
        let mut eg = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let s = eg.add(Node::new(Op::Mul, vec![a, b]));
        assert_eq!(eg.term_string(s), "(* a b)");
    }

    #[test]
    fn rebuild_purges_half_canonical_memo_keys() {
        // m = (* a b) lives in the parents lists of BOTH a and b, each
        // holding the node form current when the entry was created. Merging
        // b away rewrites m's memo key to (* a b2); merging a away later
        // removes by the original form (* a b), which misses — the
        // intermediate key (* a b2) must be swept by rebuild, not left
        // half-canonical. (Found by proptest seed 0x129038e447bd52ca.)
        let mut eg = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let m = eg.add(Node::new(Op::Mul, vec![a, b]));
        let a2 = leaf(&mut eg, "a2");
        let b2 = leaf(&mut eg, "b2");
        // give the replacements parents so they survive as union roots
        eg.add(Node::new(Op::Neg, vec![a2]));
        eg.add(Node::new(Op::Neg, vec![b2]));
        eg.union(b2, b);
        eg.rebuild();
        eg.union(a2, a);
        eg.rebuild();
        eg.check_invariants();
        let relooked = eg.lookup(&Node::new(Op::Mul, vec![a2, b2])).expect("congruent node");
        assert!(eg.same(m, relooked));
    }

    #[test]
    fn op_index_tracks_adds_and_unions() {
        let mut eg = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let m1 = eg.add(Node::new(Op::Mul, vec![a, b]));
        let m2 = eg.add(Node::new(Op::Mul, vec![b, a]));
        let s = eg.add(Node::new(Op::Add, vec![a, b]));
        assert_eq!(eg.classes_with_op(&Op::Mul).len(), 2);
        assert_eq!(eg.classes_with_op(&Op::Add), vec![s]);
        assert!(eg.classes_with_op(&Op::Div).is_empty());
        // merging the two Mul classes collapses the index entry
        eg.union(m1, m2);
        eg.rebuild();
        assert_eq!(eg.classes_with_op(&Op::Mul).len(), 1);
        assert_eq!(eg.classes_with_op(&Op::Mul)[0], eg.find(m1));
    }

    #[test]
    fn search_dirty_closes_over_parents() {
        let mut eg = EGraph::new();
        let a = leaf(&mut eg, "a");
        let b = leaf(&mut eg, "b");
        let m = eg.add(Node::new(Op::Mul, vec![a, b]));
        let root = eg.add(Node::new(Op::Add, vec![m, a]));
        // drain construction-time marks
        let initial = eg.take_search_dirty();
        assert!(initial.contains(&eg.find(root)));
        assert!(eg.take_search_dirty().is_empty());
        // a union deep in the graph must dirty every ancestor
        let c = leaf(&mut eg, "c");
        eg.union(a, c);
        eg.rebuild();
        let dirty = eg.take_search_dirty();
        assert!(dirty.contains(&eg.find(a)));
        assert!(dirty.contains(&eg.find(m)), "parent of merged class is dirty");
        assert!(dirty.contains(&eg.find(root)), "grandparent is dirty");
    }

    #[test]
    fn stress_random_unions_hold_invariants() {
        // deterministic pseudo-random unions over a pool of nodes
        let mut eg = EGraph::new();
        let leaves: Vec<Id> = (0..10).map(|i| eg.add(Node::sym(&format!("v{i}")))).collect();
        let mut ids = leaves.clone();
        let mut state = 0x12345678u64;
        let mut rand = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..200 {
            let a = ids[rand() % ids.len()];
            let b = ids[rand() % ids.len()];
            let op = match rand() % 3 {
                0 => Op::Add,
                1 => Op::Mul,
                _ => Op::Sub,
            };
            let id = eg.add(Node::new(op, vec![a, b]));
            ids.push(id);
            if rand() % 4 == 0 {
                let x = ids[rand() % ids.len()];
                let y = ids[rand() % ids.len()];
                eg.union(x, y);
            }
        }
        eg.rebuild();
        eg.check_invariants();
    }
}
