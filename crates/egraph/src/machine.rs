//! The compiled e-matching engine: patterns compiled once into linear
//! instruction programs executed against registers of e-class ids.
//!
//! The interpretive matcher in [`crate::pattern`] walks the pattern tree for
//! every candidate e-node and clones a `HashMap<String, Id>` per partial
//! match. This module is the production path: [`Program::compile`] turns a
//! [`Pattern`] into a flat sequence of [`Inst`]ructions over a register
//! file, pattern variables are interned to `u32` indices into a per-pattern
//! var table, and substitutions are [`VarSubst`] — a small-vec of ids
//! indexed by variable, allocated only when a complete match is yielded.
//! Backtracking happens by re-entering the instruction at the choice point
//! (a `Bind` over a class's e-nodes), never by cloning bindings.
//!
//! The legacy tree-walk matcher is kept as the differential-testing oracle
//! (`tests/property_matcher.rs` proves the two produce identical
//! substitution sets on random e-graphs and patterns).

use crate::egraph::EGraph;
use crate::fxhash::FxHashSet;
use crate::node::{Id, Node, Op};
use crate::pattern::{Pattern, PatternNode};

/// Interned pattern-variable index into a program's var table.
pub type VarId = u32;

/// A virtual register holding an e-class id during execution.
pub type Reg = u32;

/// How many variable bindings a [`VarSubst`] stores inline before spilling
/// to the heap. Every Table I pattern has at most three variables.
pub const SUBST_INLINE: usize = 4;

/// A substitution produced by the compiled matcher: variable index →
/// e-class id, stored small-vec-style (inline up to [`SUBST_INLINE`]).
#[derive(Debug, Clone)]
pub enum VarSubst {
    /// Up to [`SUBST_INLINE`] bindings stored inline.
    Inline {
        /// Number of live bindings in `buf`.
        len: u8,
        /// Binding storage, `buf[..len]` valid.
        buf: [Id; SUBST_INLINE],
    },
    /// Spilled storage for patterns with many variables.
    Heap(Vec<Id>),
}

impl VarSubst {
    /// Build a substitution from the yielded register values.
    pub fn from_slice(vals: &[Id]) -> VarSubst {
        if vals.len() <= SUBST_INLINE {
            let mut buf = [Id::from(0usize); SUBST_INLINE];
            buf[..vals.len()].copy_from_slice(vals);
            VarSubst::Inline { len: vals.len() as u8, buf }
        } else {
            VarSubst::Heap(vals.to_vec())
        }
    }

    /// Gather the bindings out of the register file without an intermediate
    /// allocation (the VM's yield path).
    fn from_regs(subst_regs: &[Reg], regs: &[Id]) -> VarSubst {
        if subst_regs.len() <= SUBST_INLINE {
            let mut buf = [Id::from(0usize); SUBST_INLINE];
            for (i, &r) in subst_regs.iter().enumerate() {
                buf[i] = regs[r as usize];
            }
            VarSubst::Inline { len: subst_regs.len() as u8, buf }
        } else {
            VarSubst::Heap(subst_regs.iter().map(|&r| regs[r as usize]).collect())
        }
    }

    /// The bound ids, indexed by [`VarId`].
    pub fn as_slice(&self) -> &[Id] {
        match self {
            VarSubst::Inline { len, buf } => &buf[..*len as usize],
            VarSubst::Heap(v) => v,
        }
    }

    /// Binding of variable `v`.
    pub fn get(&self, v: VarId) -> Id {
        self.as_slice()[v as usize]
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    /// True when the pattern binds no variables (ground pattern).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy with every id replaced by its canonical representative.
    pub fn canonicalized(&self, eg: &EGraph) -> VarSubst {
        let mut s = self.clone();
        match &mut s {
            VarSubst::Inline { len, buf } => {
                for id in &mut buf[..*len as usize] {
                    *id = eg.find(*id);
                }
            }
            VarSubst::Heap(v) => {
                for id in v {
                    *id = eg.find(*id);
                }
            }
        }
        s
    }
}

impl PartialEq for VarSubst {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for VarSubst {}

impl std::hash::Hash for VarSubst {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for VarSubst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for VarSubst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

/// One instruction of a compiled pattern program.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Enumerate the e-nodes of the class in `reg` whose operator is `op`
    /// with `arity` children; for each, write the (canonical) children into
    /// registers `out .. out + arity` and continue. This is the backtracking
    /// choice point.
    Bind {
        /// Register holding the class to enumerate.
        reg: Reg,
        /// Required head operator.
        op: Op,
        /// Required child count.
        arity: u32,
        /// First output register for the children.
        out: Reg,
    },
    /// Require the classes in registers `a` and `b` to be equal (a repeated
    /// — non-linear — pattern variable).
    Compare {
        /// Left register.
        a: Reg,
        /// Right register.
        b: Reg,
    },
}

/// A pattern compiled to a linear program plus its variable table.
#[derive(Debug, Clone)]
pub struct Program {
    insts: Vec<Inst>,
    /// Variable index → register holding its binding at yield time.
    subst_regs: Vec<Reg>,
    /// Interned variable names, indexed by [`VarId`].
    vars: Vec<String>,
    /// Total registers used.
    n_regs: u32,
    /// Head operator of the pattern root (`None` when the root is a bare
    /// variable, which matches every class).
    root_op: Option<Op>,
}

impl Program {
    /// Compile a pattern. Registers are assigned in pattern pre-order:
    /// register 0 is the root class, a `Bind` writes its children into a
    /// fresh contiguous block.
    pub fn compile(pattern: &Pattern) -> Program {
        let mut prog = Program {
            insts: Vec::new(),
            subst_regs: Vec::new(),
            vars: Vec::new(),
            n_regs: 1,
            root_op: match &pattern.root {
                PatternNode::Apply { op, .. } => Some(op.clone()),
                PatternNode::Var(_) => None,
            },
        };
        prog.compile_node(&pattern.root, 0);
        prog
    }

    fn compile_node(&mut self, node: &PatternNode, reg: Reg) {
        match node {
            PatternNode::Var(name) => {
                match self.vars.iter().position(|v| v == name) {
                    // repeated variable: emit an equality check
                    Some(i) => self.insts.push(Inst::Compare { a: self.subst_regs[i], b: reg }),
                    None => {
                        self.vars.push(name.clone());
                        self.subst_regs.push(reg);
                    }
                }
            }
            PatternNode::Apply { op, children } => {
                let out = self.n_regs;
                self.n_regs += children.len() as u32;
                self.insts.push(Inst::Bind {
                    reg,
                    op: op.clone(),
                    arity: children.len() as u32,
                    out,
                });
                for (i, child) in children.iter().enumerate() {
                    self.compile_node(child, out + i as u32);
                }
            }
        }
    }

    /// Interned variable names, indexed by [`VarId`].
    pub fn vars(&self) -> &[String] {
        &self.vars
    }

    /// Variable index of `name`, if the pattern binds it.
    pub fn var_id(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v == name).map(|i| i as VarId)
    }

    /// Head operator of the pattern root (`None` = variable root).
    pub fn root_op(&self) -> Option<&Op> {
        self.root_op.as_ref()
    }

    /// The compiled instructions (stats / debugging).
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Run the program against one e-class, appending a [`VarSubst`] per
    /// complete match.
    pub fn search_class(&self, eg: &EGraph, root: Id, out: &mut Vec<VarSubst>) {
        let mut regs = vec![Id::from(0usize); self.n_regs as usize];
        self.search_class_scratch(eg, root, &mut regs, out);
    }

    /// `search_class` with a caller-provided register file, so a whole-graph
    /// search reuses one allocation across every candidate class.
    fn search_class_scratch(
        &self,
        eg: &EGraph,
        root: Id,
        regs: &mut [Id],
        out: &mut Vec<VarSubst>,
    ) {
        regs[0] = eg.find(root);
        self.step(eg, 0, regs, &mut |regs| {
            out.push(VarSubst::from_regs(&self.subst_regs, regs));
        });
    }

    fn step(&self, eg: &EGraph, pc: usize, regs: &mut [Id], yield_fn: &mut impl FnMut(&[Id])) {
        let Some(inst) = self.insts.get(pc) else {
            yield_fn(regs);
            return;
        };
        match inst {
            Inst::Compare { a, b } => {
                if eg.find(regs[*a as usize]) == eg.find(regs[*b as usize]) {
                    self.step(eg, pc + 1, regs, yield_fn);
                }
            }
            Inst::Bind { reg, op, arity, out } => {
                let class = eg.class(regs[*reg as usize]);
                for node in &class.nodes {
                    if &node.op != op || node.children.len() != *arity as usize {
                        continue;
                    }
                    for (i, &c) in node.children.iter().enumerate() {
                        regs[*out as usize + i] = eg.find(c);
                    }
                    self.step(eg, pc + 1, regs, yield_fn);
                }
            }
        }
    }

    /// Search the whole e-graph through the op → e-class index: only
    /// classes whose node set contains the root operator are visited.
    pub fn search(&self, eg: &EGraph) -> Vec<(Id, VarSubst)> {
        let mut results = Vec::new();
        self.search_filtered(eg, None, &mut results);
        results
    }

    /// Search, optionally restricted to a candidate class set (canonical
    /// ids) — the runner's incremental dirty-class search.
    pub fn search_filtered(
        &self,
        eg: &EGraph,
        restrict: Option<&FxHashSet<Id>>,
        results: &mut Vec<(Id, VarSubst)>,
    ) {
        let mut substs = Vec::new();
        let mut regs = vec![Id::from(0usize); self.n_regs as usize];
        let mut visit = |id: Id, substs: &mut Vec<VarSubst>, regs: &mut [Id]| {
            if let Some(set) = restrict {
                if !set.contains(&id) {
                    return;
                }
            }
            self.search_class_scratch(eg, id, regs, substs);
            results.extend(substs.drain(..).map(|s| (id, s)));
        };
        match &self.root_op {
            Some(op) => {
                for id in eg.classes_with_op(op) {
                    visit(id, &mut substs, &mut regs);
                }
            }
            None => {
                for (id, _) in eg.classes() {
                    visit(id, &mut substs, &mut regs);
                }
            }
        }
    }
}

/// A right-hand-side template with variables resolved to [`VarId`]s at rule
/// construction, so instantiation never does a string lookup.
#[derive(Debug, Clone)]
pub enum RhsNode {
    /// A variable of the left-hand side, inserted by binding.
    Var(VarId),
    /// An operator applied to instantiated children.
    Apply {
        /// Head operator of the node to insert.
        op: Op,
        /// Templates for the child classes.
        children: Vec<RhsNode>,
    },
}

impl RhsNode {
    /// Resolve a pattern's variables against `lhs`'s var table. Panics on
    /// unbound variables — rules are compile-time constants of the tool.
    pub fn compile(rhs: &PatternNode, lhs: &Program, rule: &str) -> RhsNode {
        match rhs {
            PatternNode::Var(v) => RhsNode::Var(
                lhs.var_id(v)
                    .unwrap_or_else(|| panic!("rule {rule}: rhs variable ?{v} not bound by lhs")),
            ),
            PatternNode::Apply { op, children } => RhsNode::Apply {
                op: op.clone(),
                children: children.iter().map(|c| RhsNode::compile(c, lhs, rule)).collect(),
            },
        }
    }

    /// Instantiate under `subst`, adding nodes to the e-graph. Returns the
    /// root class of the instantiated term.
    pub fn instantiate(&self, eg: &mut EGraph, subst: &VarSubst) -> Id {
        match self {
            RhsNode::Var(v) => subst.get(*v),
            RhsNode::Apply { op, children } => {
                let kids: Vec<Id> = children.iter().map(|c| c.instantiate(eg, subst)).collect();
                eg.add(Node::new(op.clone(), kids))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::parse_pattern;

    fn compile(src: &str) -> Program {
        Program::compile(&parse_pattern(src).unwrap())
    }

    #[test]
    fn compiles_fma_pattern() {
        let p = compile("(+ ?a (* ?b ?c))");
        assert_eq!(p.vars(), &["a", "b", "c"]);
        assert_eq!(p.root_op(), Some(&Op::Add));
        // two Binds: one for the +, one for the nested *
        let binds = p.insts().iter().filter(|i| matches!(i, Inst::Bind { .. })).count();
        assert_eq!(binds, 2);
    }

    #[test]
    fn nonlinear_pattern_emits_compare() {
        let p = compile("(+ ?x ?x)");
        assert_eq!(p.vars(), &["x"]);
        assert!(p.insts().iter().any(|i| matches!(i, Inst::Compare { .. })));
    }

    #[test]
    fn vm_matches_simple_term() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let bc = eg.add(Node::new(Op::Mul, vec![b, c]));
        let root = eg.add(Node::new(Op::Add, vec![a, bc]));
        let p = compile("(+ ?x (* ?y ?z))");
        let mut out = Vec::new();
        p.search_class(&eg, root, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].get(0), eg.find(a));
        assert_eq!(out[0].get(1), eg.find(b));
        assert_eq!(out[0].get(2), eg.find(c));
    }

    #[test]
    fn vm_nonlinear_requires_equality() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let ab = eg.add(Node::new(Op::Add, vec![a, b]));
        let aa = eg.add(Node::new(Op::Add, vec![a, a]));
        let p = compile("(+ ?x ?x)");
        let mut out = Vec::new();
        p.search_class(&eg, ab, &mut out);
        assert!(out.is_empty(), "a+b must not match (+ ?x ?x)");
        p.search_class(&eg, aa, &mut out);
        assert_eq!(out.len(), 1);
        // after union(a, b) the non-linear match appears
        eg.union(a, b);
        eg.rebuild();
        out.clear();
        p.search_class(&eg, ab, &mut out);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn vm_search_uses_op_index() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let _m = eg.add(Node::new(Op::Mul, vec![a, b]));
        let _s = eg.add(Node::new(Op::Add, vec![a, b]));
        let p = compile("(* ?x ?y)");
        let found = p.search(&eg);
        assert_eq!(found.len(), 1);
    }

    #[test]
    fn var_subst_inline_and_heap() {
        let ids: Vec<Id> = (0..6).map(Id::from).collect();
        let small = VarSubst::from_slice(&ids[..3]);
        let big = VarSubst::from_slice(&ids);
        assert!(matches!(small, VarSubst::Inline { .. }));
        assert!(matches!(big, VarSubst::Heap(_)));
        assert_eq!(small.as_slice(), &ids[..3]);
        assert_eq!(big.as_slice(), &ids[..]);
        assert_eq!(small, VarSubst::from_slice(&ids[..3]));
    }

    #[test]
    fn rhs_template_instantiates() {
        let mut eg = EGraph::new();
        let a = eg.add(Node::sym("a"));
        let b = eg.add(Node::sym("b"));
        let c = eg.add(Node::sym("c"));
        let lhs = compile("(+ ?a (* ?b ?c))");
        let rhs = parse_pattern("(fma ?a ?b ?c)").unwrap();
        let template = RhsNode::compile(&rhs.root, &lhs, "fma1");
        let subst = VarSubst::from_slice(&[a, b, c]);
        let id = template.instantiate(&mut eg, &subst);
        assert_eq!(eg.term_string(id), "(fma a b c)");
    }
}
