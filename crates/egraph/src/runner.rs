//! The saturation runner: applies a rule set until saturation or until the
//! paper's limits are hit (10 000 e-nodes, 10 iterations, 10 seconds).

use crate::egraph::EGraph;
use crate::rewrite::Rewrite;
use std::time::{Duration, Instant};

/// Why the runner stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No rule produced a change: the e-graph is saturated.
    Saturated,
    /// The e-node budget was exhausted.
    NodeLimit,
    /// The iteration budget was exhausted.
    IterLimit,
    /// The wall-clock budget was exhausted.
    TimeLimit,
}

/// Runner limits. Defaults mirror the paper's §VII configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunnerLimits {
    pub node_limit: usize,
    pub iter_limit: usize,
    pub time_limit: Duration,
}

impl Default for RunnerLimits {
    fn default() -> RunnerLimits {
        RunnerLimits {
            node_limit: 10_000,
            iter_limit: 10,
            time_limit: Duration::from_secs(10),
        }
    }
}

/// Per-iteration statistics.
#[derive(Debug, Clone, Default)]
pub struct IterationStats {
    pub applied: usize,
    pub total_nodes: usize,
    pub num_classes: usize,
}

/// Result of a saturation run.
#[derive(Debug, Clone)]
pub struct RunnerReport {
    pub stop_reason: StopReason,
    pub iterations: Vec<IterationStats>,
    pub elapsed: Duration,
}

impl RunnerReport {
    /// Total number of rule applications across all iterations.
    pub fn total_applied(&self) -> usize {
        self.iterations.iter().map(|i| i.applied).sum()
    }
}

/// The equality-saturation runner.
pub struct Runner {
    pub limits: RunnerLimits,
    pub rules: Vec<Rewrite>,
}

impl Runner {
    /// New runner with the given rules and default (paper) limits.
    pub fn new(rules: Vec<Rewrite>) -> Runner {
        Runner { limits: RunnerLimits::default(), rules }
    }

    /// Override the limits.
    pub fn with_limits(mut self, limits: RunnerLimits) -> Runner {
        self.limits = limits;
        self
    }

    /// Run saturation on `eg` until a stop condition is reached.
    pub fn run(&self, eg: &mut EGraph) -> RunnerReport {
        let start = Instant::now();
        let mut iterations = Vec::new();
        let stop_reason = loop {
            if iterations.len() >= self.limits.iter_limit {
                break StopReason::IterLimit;
            }
            if start.elapsed() >= self.limits.time_limit {
                break StopReason::TimeLimit;
            }
            if eg.total_nodes() >= self.limits.node_limit {
                break StopReason::NodeLimit;
            }

            // 1. search all rules against the current (frozen) e-graph
            let mut all_matches = Vec::new();
            for (ri, rule) in self.rules.iter().enumerate() {
                for (class, subst) in rule.search(eg) {
                    all_matches.push((ri, class, subst));
                }
                if start.elapsed() >= self.limits.time_limit {
                    break;
                }
            }

            // 2. apply every match, then restore congruence once
            let mut applied = 0usize;
            for (ri, class, subst) in all_matches {
                if eg.total_nodes() >= self.limits.node_limit {
                    break;
                }
                if self.rules[ri].apply_match(eg, class, &subst) {
                    applied += 1;
                }
            }
            eg.rebuild();

            iterations.push(IterationStats {
                applied,
                total_nodes: eg.total_nodes(),
                num_classes: eg.num_classes(),
            });

            if applied == 0 {
                break StopReason::Saturated;
            }
        };
        RunnerReport { stop_reason, iterations, elapsed: start.elapsed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, Op};
    use crate::rules::all_rules;

    fn chain_add(eg: &mut EGraph, names: &[&str]) -> Vec<crate::node::Id> {
        names.iter().map(|n| eg.add(Node::sym(n))).collect()
    }

    #[test]
    fn saturates_small_graph() {
        let mut eg = EGraph::new();
        let ids = chain_add(&mut eg, &["a", "b"]);
        let _sum = eg.add(Node::new(Op::Add, vec![ids[0], ids[1]]));
        let runner = Runner::new(vec![Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)")]);
        let report = runner.run(&mut eg);
        assert_eq!(report.stop_reason, StopReason::Saturated);
        assert!(report.iterations.len() <= 3);
    }

    #[test]
    fn comm_assoc_proves_reassociation() {
        // (a + b) + c  ==  a + (b + c) under assoc rules
        let mut eg = EGraph::new();
        let ids = chain_add(&mut eg, &["a", "b", "c"]);
        let ab = eg.add(Node::new(Op::Add, vec![ids[0], ids[1]]));
        let abc1 = eg.add(Node::new(Op::Add, vec![ab, ids[2]]));
        let bc = eg.add(Node::new(Op::Add, vec![ids[1], ids[2]]));
        let abc2 = eg.add(Node::new(Op::Add, vec![ids[0], bc]));
        assert!(!eg.same(abc1, abc2));
        let runner = Runner::new(all_rules());
        let report = runner.run(&mut eg);
        assert!(eg.same(abc1, abc2), "associativity must merge the two sums");
        assert!(matches!(
            report.stop_reason,
            StopReason::Saturated | StopReason::IterLimit
        ));
    }

    #[test]
    fn fma_discovered_through_commutativity() {
        // b * c + a  —  needs COMM-ADD then FMA1 (paper Fig. 1 step II)
        let mut eg = EGraph::new();
        let ids = chain_add(&mut eg, &["a", "b", "c"]);
        let bc = eg.add(Node::new(Op::Mul, vec![ids[1], ids[2]]));
        let sum = eg.add(Node::new(Op::Add, vec![bc, ids[0]]));
        let runner = Runner::new(all_rules());
        runner.run(&mut eg);
        assert!(
            eg.class(sum).nodes.iter().any(|n| n.op == Op::Fma),
            "FMA must appear in the sum's class"
        );
    }

    #[test]
    fn node_limit_stops_growth() {
        let mut eg = EGraph::new();
        // big associative sum: saturation would explode; the limit must bite
        let leaves: Vec<_> = (0..12).map(|i| eg.add(Node::sym(&format!("x{i}")))).collect();
        let mut acc = leaves[0];
        for &l in &leaves[1..] {
            acc = eg.add(Node::new(Op::Add, vec![acc, l]));
        }
        let limits = RunnerLimits { node_limit: 200, ..Default::default() };
        let runner = Runner::new(all_rules()).with_limits(limits);
        let report = runner.run(&mut eg);
        assert_eq!(report.stop_reason, StopReason::NodeLimit);
        // the budget can be overshot only by the last iteration's additions
        assert!(eg.total_nodes() < 200 * 20);
    }

    #[test]
    fn iter_limit_respected() {
        let mut eg = EGraph::new();
        let leaves: Vec<_> = (0..8).map(|i| eg.add(Node::sym(&format!("x{i}")))).collect();
        let mut acc = leaves[0];
        for &l in &leaves[1..] {
            acc = eg.add(Node::new(Op::Mul, vec![acc, l]));
        }
        let limits = RunnerLimits { iter_limit: 2, node_limit: usize::MAX, ..Default::default() };
        let runner = Runner::new(all_rules()).with_limits(limits);
        let report = runner.run(&mut eg);
        assert!(report.iterations.len() <= 2);
    }

    #[test]
    fn constant_folding_composes_with_rules() {
        // (x + 1) + 2 → x + (1 + 2) → x + 3 via assoc + folding
        let mut eg = EGraph::new();
        let x = eg.add(Node::sym("x"));
        let one = eg.add(Node::int(1));
        let two = eg.add(Node::int(2));
        let x1 = eg.add(Node::new(Op::Add, vec![x, one]));
        let x12 = eg.add(Node::new(Op::Add, vec![x1, two]));
        let runner = Runner::new(all_rules());
        runner.run(&mut eg);
        let three = eg.add(Node::int(3));
        let x3 = eg.add(Node::new(Op::Add, vec![x, three]));
        assert!(eg.same(x12, x3), "folding must discover x + 3");
    }
}
