//! The saturation runner: applies a rule set until saturation or until the
//! paper's limits are hit (10 000 e-nodes, 10 iterations, 10 seconds).
//!
//! The default engine is the compiled pattern VM ([`crate::machine`]) with
//! operator-indexed candidate lookup, incremental dirty-class search after
//! the first iteration, per-rule match/apply statistics, and a backoff
//! scheduler that temporarily benches rules whose match counts explode
//! (commutativity/associativity on large graphs). The seed's interpretive
//! tree-walk engine remains available as [`MatchEngine::Legacy`] — it is
//! the differential-testing oracle and the baseline for the saturation
//! throughput bench.
//!
//! # Parallel search
//!
//! The rebuild discipline already splits every iteration into a read-only
//! *search* phase over a frozen e-graph and a mutating *apply* phase.
//! [`Runner::sat_threads`] parallelizes the search: each non-banned rule
//! becomes one task, tasks are drained from an atomic cursor by scoped
//! threads sharing `&EGraph`, and every task writes its matches into a
//! pre-allocated per-rule slot. After the join the slots are walked in
//! rule-index order — backoff decisions, per-rule statistics and the
//! concatenated match list are computed from deterministic per-rule match
//! counts, so the result is byte-identical at any thread count. Stopping
//! is governed by the node/iteration budgets; the wall-clock limit is
//! checked only at iteration boundaries (a safety valve, as in
//! extraction), never mid-search, so it cannot reorder or truncate the
//! match stream on one thread count but not another.

use crate::egraph::EGraph;
use crate::fxhash::FxHashSet;
use crate::machine::VarSubst;
use crate::node::Id;
use crate::pool::ThreadBudget;
use crate::rewrite::{Rewrite, RuleMatch};
use accsat_obs::trace;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Why the runner stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// No rule produced a change: the e-graph is saturated.
    Saturated,
    /// The e-node budget was exhausted.
    NodeLimit,
    /// The iteration budget was exhausted.
    IterLimit,
    /// The wall-clock budget was exhausted.
    TimeLimit,
}

/// Runner limits. Defaults mirror the paper's §VII configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunnerLimits {
    /// Stop once the e-graph holds this many e-nodes (paper: 10 000).
    pub node_limit: usize,
    /// Maximum saturation iterations (paper: 10).
    pub iter_limit: usize,
    /// Wall-clock budget for the whole run (paper: 10 s).
    pub time_limit: Duration,
}

impl Default for RunnerLimits {
    fn default() -> RunnerLimits {
        RunnerLimits { node_limit: 10_000, iter_limit: 10, time_limit: Duration::from_secs(10) }
    }
}

/// Which e-matching engine the runner drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchEngine {
    /// Compiled pattern VM + op index + dirty-class search (default).
    Compiled,
    /// The seed's interpretive backtracking tree-walk over every class,
    /// every iteration. Kept as oracle and benchmark baseline.
    Legacy,
}

/// Backoff-scheduler configuration: a rule matching more than
/// `match_limit` substitutions in one iteration is banned for `ban_length`
/// iterations; each subsequent ban doubles both numbers (as in egg's
/// `BackoffScheduler`).
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// Matches per iteration above which a rule is banned.
    pub match_limit: usize,
    /// Iterations a first ban lasts (doubles per subsequent ban).
    pub ban_length: usize,
}

impl Default for BackoffConfig {
    fn default() -> BackoffConfig {
        BackoffConfig { match_limit: 1000, ban_length: 5 }
    }
}

/// Per-iteration statistics.
#[derive(Debug, Clone, Default)]
pub struct IterationStats {
    /// Substitutions found by the search phase (before dedup).
    pub matches: usize,
    /// Rule applications that changed the e-graph (deduplicated,
    /// canonicalized — each counted union is real work).
    pub applied: usize,
    /// E-nodes ever added, as of the end of the iteration.
    pub total_nodes: usize,
    /// Live e-classes at the end of the iteration.
    pub num_classes: usize,
    /// Wall time of the search phase (dirty-set snapshot, rule matching,
    /// backoff accounting). Observability only — wall-clock fields never
    /// reach the stable JSON reports.
    pub search_time: Duration,
    /// Wall time of the serial apply phase (dedup + rule instantiation).
    pub apply_time: Duration,
    /// Wall time of the single congruence rebuild closing the iteration.
    pub rebuild_time: Duration,
}

/// The deterministic counters of one iteration — [`IterationStats`] with
/// the wall-clock fields stripped. This is what the metrics registry
/// aggregates and the stage cache persists, so a cache hit replays the
/// exact same metrics the original run produced.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IterCounts {
    /// Substitutions found by the search phase (before dedup).
    pub matches: usize,
    /// Rule applications that changed the e-graph.
    pub applied: usize,
    /// E-nodes ever added, as of the end of the iteration.
    pub total_nodes: usize,
    /// Live e-classes at the end of the iteration.
    pub num_classes: usize,
}

impl From<&IterationStats> for IterCounts {
    fn from(it: &IterationStats) -> IterCounts {
        IterCounts {
            matches: it.matches,
            applied: it.applied,
            total_nodes: it.total_nodes,
            num_classes: it.num_classes,
        }
    }
}

/// Cumulative per-rule statistics over a saturation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RuleStats {
    /// Rule name.
    pub name: String,
    /// Substitutions yielded by search.
    pub matches: usize,
    /// Applications that changed the e-graph.
    pub applied: usize,
    /// How many times the backoff scheduler banned the rule.
    pub times_banned: usize,
    /// Iterations spent banned.
    pub banned_iters: usize,
}

/// Result of a saturation run.
#[derive(Debug, Clone)]
pub struct RunnerReport {
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Per-iteration statistics, in order.
    pub iterations: Vec<IterationStats>,
    /// Cumulative per-rule statistics, in rule order.
    pub rule_stats: Vec<RuleStats>,
    /// Total wall-clock time of the run.
    pub elapsed: Duration,
}

impl RunnerReport {
    /// Total number of rule applications across all iterations.
    pub fn total_applied(&self) -> usize {
        self.iterations.iter().map(|i| i.applied).sum()
    }

    /// Total number of substitutions found across all iterations.
    pub fn total_matches(&self) -> usize {
        self.iterations.iter().map(|i| i.matches).sum()
    }

    /// Cumulative wall time of the search phases.
    pub fn search_time(&self) -> Duration {
        self.iterations.iter().map(|i| i.search_time).sum()
    }

    /// Cumulative wall time of the apply phases.
    pub fn apply_time(&self) -> Duration {
        self.iterations.iter().map(|i| i.apply_time).sum()
    }

    /// Cumulative wall time of the rebuild phases.
    pub fn rebuild_time(&self) -> Duration {
        self.iterations.iter().map(|i| i.rebuild_time).sum()
    }

    /// The wall-clock-free per-iteration counters, in iteration order.
    pub fn iteration_counts(&self) -> Vec<IterCounts> {
        self.iterations.iter().map(IterCounts::from).collect()
    }
}

/// Classes a benched rule still owes a search over, accumulated while the
/// ban is active and consumed (together with the current dirty set) when it
/// lifts.
#[derive(Debug, Clone, Default)]
enum Pending {
    /// Nothing deferred.
    #[default]
    Empty,
    /// These classes must be re-searched.
    Classes(FxHashSet<Id>),
    /// A whole-graph search is owed.
    Full,
}

impl Pending {
    fn merge_dirty(&mut self, dirty: Option<&FxHashSet<Id>>) {
        match (std::mem::take(self), dirty) {
            (_, None) | (Pending::Full, _) => *self = Pending::Full,
            (Pending::Empty, Some(d)) => {
                if !d.is_empty() {
                    *self = Pending::Classes(d.clone());
                }
            }
            (Pending::Classes(mut p), Some(d)) => {
                p.extend(d.iter().copied());
                *self = Pending::Classes(p);
            }
        }
    }
}

#[derive(Debug, Clone, Default)]
struct RuleState {
    /// First iteration index at which the rule may run again.
    banned_until: usize,
    times_banned: usize,
    pending: Pending,
}

/// What one search task is restricted to. Resolved against the shared
/// dirty set inside the worker, so tasks carry no per-rule copy of it.
enum Restrict {
    /// Search the whole graph (first iteration, or a deferred full search).
    Whole,
    /// Search the iteration's shared dirty set.
    Dirty,
    /// Search an owned set (deferred classes merged with the dirty set).
    Owned(FxHashSet<Id>),
}

/// The equality-saturation runner.
pub struct Runner {
    /// Node / iteration / wall-clock limits (defaults mirror §VII).
    pub limits: RunnerLimits,
    /// The compiled rule set. Behind an [`Arc`] so a batch driver can
    /// compile the rules once and share them across every kernel and
    /// worker thread ([`Runner::from_shared`]).
    pub rules: Arc<Vec<Rewrite>>,
    /// Which e-matching engine drives the search phase.
    pub engine: MatchEngine,
    /// `None` disables the backoff scheduler (every rule runs every
    /// iteration, as in the seed).
    pub backoff: Option<BackoffConfig>,
    /// Worker threads for the compiled engine's search phase (`1` searches
    /// serially on the calling thread). Results are byte-identical at any
    /// value — see the module docs.
    pub sat_threads: usize,
    /// Optional shared lease pool: when set, the search fan-out takes at
    /// most `1 + leased` threads per iteration instead of `sat_threads`
    /// outright, so concurrent kernels of a batch share one thread budget.
    pub budget: Option<Arc<ThreadBudget>>,
}

impl Runner {
    /// New runner with the given rules, default (paper) limits, the
    /// compiled engine and the default backoff scheduler.
    pub fn new(rules: Vec<Rewrite>) -> Runner {
        Runner::from_shared(Arc::new(rules))
    }

    /// New runner over an already-compiled shared rule set. Cloning the
    /// `Arc` is free — this is the constructor the parallel batch driver
    /// uses so rules are compiled once per process, not once per kernel.
    pub fn from_shared(rules: Arc<Vec<Rewrite>>) -> Runner {
        Runner {
            limits: RunnerLimits::default(),
            rules,
            engine: MatchEngine::Compiled,
            backoff: Some(BackoffConfig::default()),
            sat_threads: 1,
            budget: None,
        }
    }

    /// Override the limits.
    pub fn with_limits(mut self, limits: RunnerLimits) -> Runner {
        self.limits = limits;
        self
    }

    /// Select the matching engine.
    pub fn with_engine(mut self, engine: MatchEngine) -> Runner {
        self.engine = engine;
        self
    }

    /// Override (or disable, with `None`) the backoff scheduler.
    pub fn with_backoff(mut self, backoff: Option<BackoffConfig>) -> Runner {
        self.backoff = backoff;
        self
    }

    /// Set the search-phase thread count (clamped to at least 1).
    pub fn with_sat_threads(mut self, threads: usize) -> Runner {
        self.sat_threads = threads.max(1);
        self
    }

    /// Attach a shared thread budget (batch mode; see [`ThreadBudget`]).
    pub fn with_budget(mut self, budget: Option<Arc<ThreadBudget>>) -> Runner {
        self.budget = budget;
        self
    }

    /// Run saturation on `eg` until a stop condition is reached.
    pub fn run(&self, eg: &mut EGraph) -> RunnerReport {
        match self.engine {
            MatchEngine::Compiled => self.run_compiled(eg),
            MatchEngine::Legacy => self.run_legacy(eg),
        }
    }

    fn run_compiled(&self, eg: &mut EGraph) -> RunnerReport {
        let _run_span = trace::span_args("sat", "runner.run", || {
            vec![("rules", self.rules.len().into()), ("threads", self.sat_threads.into())]
        });
        let start = Instant::now();
        let mut iterations = Vec::new();
        let mut rule_stats: Vec<RuleStats> = self
            .rules
            .iter()
            .map(|r| RuleStats { name: r.name.clone(), ..Default::default() })
            .collect();
        let mut states: Vec<RuleState> = vec![RuleState::default(); self.rules.len()];
        // (rule, root, subst) triples already applied, persisted across
        // iterations: re-finding an identical canonical match later (the
        // dirty-class search re-yields every match in a touched class, and
        // commutative rules report one instantiation from several e-nodes)
        // is a guaranteed no-op union, so it is skipped before the apply
        // phase rather than re-instantiated.
        let mut seen: FxHashSet<(usize, Id, VarSubst)> = FxHashSet::default();

        let stop_reason = loop {
            let it = iterations.len();
            let _iter_span = trace::span_args("sat", "iteration", || {
                vec![("iter", it.into()), ("nodes", eg.total_nodes().into())]
            });
            if it >= self.limits.iter_limit {
                break StopReason::IterLimit;
            }
            // wall-clock safety valve, checked at iteration boundaries
            // only: a mid-search check would truncate the match stream at a
            // scheduling-dependent point and break byte-identity across
            // thread counts. The node and iteration budgets are what
            // normally stop a run.
            if start.elapsed() >= self.limits.time_limit {
                break StopReason::TimeLimit;
            }
            if eg.total_nodes() >= self.limits.node_limit {
                break StopReason::NodeLimit;
            }

            // 1. search. The first iteration scans every op-index candidate;
            // later iterations re-search only classes touched since the
            // previous rebuild (closed over parents), plus whatever benched
            // rules still owe. Banned-rule bookkeeping happens up front so
            // the remaining tasks are independent of each other.
            let t_search = Instant::now();
            let search_span = trace::span("sat", "search");
            let dirty: Option<FxHashSet<Id>> = if it == 0 {
                eg.clear_search_dirty();
                None
            } else {
                Some(eg.take_search_dirty())
            };
            let mut tasks: Vec<(usize, Restrict)> = Vec::with_capacity(self.rules.len());
            for ri in 0..self.rules.len() {
                if states[ri].banned_until > it {
                    rule_stats[ri].banned_iters += 1;
                    states[ri].pending.merge_dirty(dirty.as_ref());
                    continue;
                }
                let restrict = match (std::mem::take(&mut states[ri].pending), dirty.as_ref()) {
                    (Pending::Full, _) | (_, None) => Restrict::Whole,
                    (Pending::Empty, Some(_)) => Restrict::Dirty,
                    (Pending::Classes(mut p), Some(d)) => {
                        p.extend(d.iter().copied());
                        Restrict::Owned(p)
                    }
                };
                tasks.push((ri, restrict));
            }

            // Pre-allocated per-task slots: whichever thread searches a
            // rule writes by task index, and the walk below reads in
            // rule-index order — completion order never shows.
            let slots: Vec<Mutex<Option<Vec<RuleMatch>>>> =
                tasks.iter().map(|_| Mutex::new(None)).collect();
            {
                let eg_ref: &EGraph = eg;
                let dirty_ref = dirty.as_ref();
                let search_one = |ti: usize| {
                    let (ri, restrict) = &tasks[ti];
                    let _rule_span = trace::span_named("sat.rule", || {
                        format!("search {}", self.rules[*ri].name)
                    });
                    let restrict = match restrict {
                        Restrict::Whole => None,
                        Restrict::Dirty => dirty_ref,
                        Restrict::Owned(s) => Some(s),
                    };
                    *slots[ti].lock().expect("search slot") =
                        Some(self.rules[*ri].search_filtered(eg_ref, restrict));
                };
                let (width, _lease) = crate::pool::fanout_width(
                    self.budget.as_deref(),
                    self.sat_threads,
                    tasks.len(),
                );
                if width <= 1 {
                    for ti in 0..tasks.len() {
                        search_one(ti);
                    }
                } else {
                    let cursor = AtomicUsize::new(0);
                    let drain = || loop {
                        let ti = cursor.fetch_add(1, Ordering::Relaxed);
                        if ti >= tasks.len() {
                            break;
                        }
                        search_one(ti);
                    };
                    std::thread::scope(|scope| {
                        for _ in 1..width {
                            scope.spawn(drain);
                        }
                        // the kernel's own thread always participates
                        drain();
                    });
                }
            }

            // Join complete: walk the slots in rule-index order. Backoff
            // decisions are taken here, from the deterministic per-rule
            // match counts — never inside a worker.
            let mut all_matches: Vec<(usize, RuleMatch)> = Vec::new();
            let mut found = 0usize;
            for ((ri, restrict), slot) in tasks.into_iter().zip(slots) {
                let matches =
                    slot.into_inner().expect("search slot").expect("every search task ran");
                found += matches.len();
                rule_stats[ri].matches += matches.len();
                if let Some(cfg) = self.backoff {
                    let shift = states[ri].times_banned.min(16) as u32;
                    if matches.len() > cfg.match_limit << shift {
                        // bench the rule and queue the searched classes for
                        // re-search when the ban lifts
                        states[ri].banned_until = it + 1 + (cfg.ban_length << shift);
                        states[ri].times_banned += 1;
                        rule_stats[ri].times_banned += 1;
                        states[ri].pending = match (restrict, dirty.as_ref()) {
                            (Restrict::Whole, _) | (Restrict::Dirty, None) => Pending::Full,
                            (Restrict::Dirty, Some(d)) => Pending::Classes(d.clone()),
                            (Restrict::Owned(s), _) => Pending::Classes(s),
                        };
                        continue;
                    }
                }
                all_matches.extend(matches.into_iter().map(|m| (ri, m)));
            }
            let search_time = t_search.elapsed();
            drop(search_span);

            // 2. apply every distinct match, then restore congruence once.
            // Match roots and substitutions are canonical as of the search
            // (the VM canonicalizes while matching), so the dedup key needs
            // no extra `find` calls; `apply_match` canonicalizes internally
            // and `applied` counts only unions that changed the graph. The
            // key is moved, not cloned: a contains-probe filters repeats
            // and the insert afterwards consumes the match.
            let t_apply = Instant::now();
            let apply_span = trace::span("sat", "apply");
            let mut applied = 0usize;
            for (ri, m) in all_matches {
                if eg.total_nodes() >= self.limits.node_limit {
                    break;
                }
                let key = (ri, m.class, m.subst);
                if seen.contains(&key) {
                    continue;
                }
                if self.rules[ri].apply_match(eg, key.1, &key.2) {
                    applied += 1;
                    rule_stats[ri].applied += 1;
                }
                seen.insert(key);
            }
            let apply_time = t_apply.elapsed();
            drop(apply_span);
            let t_rebuild = Instant::now();
            {
                let _rebuild_span = trace::span("sat", "rebuild");
                eg.rebuild();
            }
            let rebuild_time = t_rebuild.elapsed();
            trace::counter("sat", "egraph.nodes", eg.total_nodes() as u64);
            trace::counter("sat", "egraph.classes", eg.num_classes() as u64);

            iterations.push(IterationStats {
                matches: found,
                applied,
                total_nodes: eg.total_nodes(),
                num_classes: eg.num_classes(),
                search_time,
                apply_time,
                rebuild_time,
            });

            // saturated only when nothing changed AND no benched rule still
            // owes a deferred search
            let owes = states.iter().any(|s| !matches!(s.pending, Pending::Empty));
            if applied == 0 && !owes {
                break StopReason::Saturated;
            }
        };
        RunnerReport { stop_reason, iterations, rule_stats, elapsed: start.elapsed() }
    }

    /// The seed's loop, verbatim: interpretive full-graph search each
    /// iteration, no scheduling, no dedup.
    fn run_legacy(&self, eg: &mut EGraph) -> RunnerReport {
        let start = Instant::now();
        let mut iterations = Vec::new();
        let mut rule_stats: Vec<RuleStats> = self
            .rules
            .iter()
            .map(|r| RuleStats { name: r.name.clone(), ..Default::default() })
            .collect();
        let stop_reason = loop {
            if iterations.len() >= self.limits.iter_limit {
                break StopReason::IterLimit;
            }
            if start.elapsed() >= self.limits.time_limit {
                break StopReason::TimeLimit;
            }
            if eg.total_nodes() >= self.limits.node_limit {
                break StopReason::NodeLimit;
            }
            eg.clear_search_dirty();

            // 1. search all rules against the current (frozen) e-graph
            let t_search = Instant::now();
            let mut all_matches = Vec::new();
            for (ri, rule) in self.rules.iter().enumerate() {
                let matches = rule.search_legacy(eg);
                rule_stats[ri].matches += matches.len();
                for (class, subst) in matches {
                    all_matches.push((ri, class, subst));
                }
                if start.elapsed() >= self.limits.time_limit {
                    break;
                }
            }
            let found = all_matches.len();
            let search_time = t_search.elapsed();

            // 2. apply every match, then restore congruence once
            let t_apply = Instant::now();
            let mut applied = 0usize;
            for (ri, class, subst) in all_matches {
                if eg.total_nodes() >= self.limits.node_limit {
                    break;
                }
                if self.rules[ri].apply_match_legacy(eg, class, &subst) {
                    applied += 1;
                    rule_stats[ri].applied += 1;
                }
            }
            let apply_time = t_apply.elapsed();
            let t_rebuild = Instant::now();
            eg.rebuild();
            let rebuild_time = t_rebuild.elapsed();

            iterations.push(IterationStats {
                matches: found,
                applied,
                total_nodes: eg.total_nodes(),
                num_classes: eg.num_classes(),
                search_time,
                apply_time,
                rebuild_time,
            });

            if applied == 0 {
                break StopReason::Saturated;
            }
        };
        RunnerReport { stop_reason, iterations, rule_stats, elapsed: start.elapsed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::{Node, Op};
    use crate::rules::all_rules;

    fn chain_add(eg: &mut EGraph, names: &[&str]) -> Vec<crate::node::Id> {
        names.iter().map(|n| eg.add(Node::sym(n))).collect()
    }

    #[test]
    fn saturates_small_graph() {
        let mut eg = EGraph::new();
        let ids = chain_add(&mut eg, &["a", "b"]);
        let _sum = eg.add(Node::new(Op::Add, vec![ids[0], ids[1]]));
        let runner = Runner::new(vec![Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)")]);
        let report = runner.run(&mut eg);
        assert_eq!(report.stop_reason, StopReason::Saturated);
        assert!(report.iterations.len() <= 3);
    }

    #[test]
    fn comm_assoc_proves_reassociation() {
        // (a + b) + c  ==  a + (b + c) under assoc rules
        let mut eg = EGraph::new();
        let ids = chain_add(&mut eg, &["a", "b", "c"]);
        let ab = eg.add(Node::new(Op::Add, vec![ids[0], ids[1]]));
        let abc1 = eg.add(Node::new(Op::Add, vec![ab, ids[2]]));
        let bc = eg.add(Node::new(Op::Add, vec![ids[1], ids[2]]));
        let abc2 = eg.add(Node::new(Op::Add, vec![ids[0], bc]));
        assert!(!eg.same(abc1, abc2));
        let runner = Runner::new(all_rules());
        let report = runner.run(&mut eg);
        assert!(eg.same(abc1, abc2), "associativity must merge the two sums");
        assert!(matches!(report.stop_reason, StopReason::Saturated | StopReason::IterLimit));
    }

    #[test]
    fn fma_discovered_through_commutativity() {
        // b * c + a  —  needs COMM-ADD then FMA1 (paper Fig. 1 step II)
        let mut eg = EGraph::new();
        let ids = chain_add(&mut eg, &["a", "b", "c"]);
        let bc = eg.add(Node::new(Op::Mul, vec![ids[1], ids[2]]));
        let sum = eg.add(Node::new(Op::Add, vec![bc, ids[0]]));
        let runner = Runner::new(all_rules());
        runner.run(&mut eg);
        assert!(
            eg.class(sum).nodes.iter().any(|n| n.op == Op::Fma),
            "FMA must appear in the sum's class"
        );
    }

    #[test]
    fn node_limit_stops_growth() {
        let mut eg = EGraph::new();
        // big associative sum: saturation would explode; the limit must bite
        let leaves: Vec<_> = (0..12).map(|i| eg.add(Node::sym(&format!("x{i}")))).collect();
        let mut acc = leaves[0];
        for &l in &leaves[1..] {
            acc = eg.add(Node::new(Op::Add, vec![acc, l]));
        }
        let limits = RunnerLimits { node_limit: 200, ..Default::default() };
        let runner = Runner::new(all_rules()).with_limits(limits);
        let report = runner.run(&mut eg);
        assert_eq!(report.stop_reason, StopReason::NodeLimit);
        // the budget can be overshot only by the last iteration's additions
        assert!(eg.total_nodes() < 200 * 20);
    }

    #[test]
    fn iter_limit_respected() {
        let mut eg = EGraph::new();
        let leaves: Vec<_> = (0..8).map(|i| eg.add(Node::sym(&format!("x{i}")))).collect();
        let mut acc = leaves[0];
        for &l in &leaves[1..] {
            acc = eg.add(Node::new(Op::Mul, vec![acc, l]));
        }
        let limits = RunnerLimits { iter_limit: 2, node_limit: usize::MAX, ..Default::default() };
        let runner = Runner::new(all_rules()).with_limits(limits);
        let report = runner.run(&mut eg);
        assert!(report.iterations.len() <= 2);
    }

    #[test]
    fn constant_folding_composes_with_rules() {
        // (x + 1) + 2 → x + (1 + 2) → x + 3 via assoc + folding
        let mut eg = EGraph::new();
        let x = eg.add(Node::sym("x"));
        let one = eg.add(Node::int(1));
        let two = eg.add(Node::int(2));
        let x1 = eg.add(Node::new(Op::Add, vec![x, one]));
        let x12 = eg.add(Node::new(Op::Add, vec![x1, two]));
        let runner = Runner::new(all_rules());
        runner.run(&mut eg);
        let three = eg.add(Node::int(3));
        let x3 = eg.add(Node::new(Op::Add, vec![x, three]));
        assert!(eg.same(x12, x3), "folding must discover x + 3");
    }

    #[test]
    fn legacy_engine_reaches_same_equalities() {
        for engine in [MatchEngine::Compiled, MatchEngine::Legacy] {
            let mut eg = EGraph::new();
            let ids = chain_add(&mut eg, &["a", "b", "c"]);
            let bc = eg.add(Node::new(Op::Mul, vec![ids[1], ids[2]]));
            let sum = eg.add(Node::new(Op::Add, vec![bc, ids[0]]));
            let runner = Runner::new(all_rules()).with_engine(engine);
            runner.run(&mut eg);
            assert!(
                eg.class(sum).nodes.iter().any(|n| n.op == Op::Fma),
                "{engine:?}: FMA must appear"
            );
        }
    }

    #[test]
    fn dedup_counts_each_union_once() {
        // (+ a b) with COMM-ADD: once (+ b a) exists, the rule matches both
        // node orders but instantiates the same classes — the dedup must
        // collapse them, so the second iteration applies nothing.
        let mut eg = EGraph::new();
        let ids = chain_add(&mut eg, &["a", "b"]);
        let _sum = eg.add(Node::new(Op::Add, vec![ids[0], ids[1]]));
        let runner = Runner::new(vec![Rewrite::new("comm-add", "(+ ?a ?b)", "(+ ?b ?a)")]);
        let report = runner.run(&mut eg);
        assert_eq!(report.stop_reason, StopReason::Saturated);
        let total: usize = report.iterations.iter().map(|i| i.applied).sum();
        assert_eq!(total, 1, "one real union: {:?}", report.iterations);
    }

    #[test]
    fn per_rule_stats_accumulate() {
        let mut eg = EGraph::new();
        let ids = chain_add(&mut eg, &["a", "b", "c"]);
        let bc = eg.add(Node::new(Op::Mul, vec![ids[1], ids[2]]));
        let _sum = eg.add(Node::new(Op::Add, vec![bc, ids[0]]));
        let report = Runner::new(all_rules()).run(&mut eg);
        assert_eq!(report.rule_stats.len(), all_rules().len());
        let comm = report.rule_stats.iter().find(|s| s.name == "COMM-ADD").unwrap();
        assert!(comm.matches > 0);
        assert!(comm.applied > 0);
        let fma = report.rule_stats.iter().find(|s| s.name == "FMA1").unwrap();
        assert!(fma.applied > 0, "FMA1 must fire after COMM-ADD: {:?}", report.rule_stats);
        assert_eq!(report.total_matches(), report.iterations.iter().map(|i| i.matches).sum());
    }

    #[test]
    fn backoff_benches_exploding_rule() {
        // an 8-leaf multiplication chain explodes under comm+assoc; with a
        // tiny match limit the scheduler must ban and record it
        let mut eg = EGraph::new();
        let leaves: Vec<_> = (0..8).map(|i| eg.add(Node::sym(&format!("x{i}")))).collect();
        let mut acc = leaves[0];
        for &l in &leaves[1..] {
            acc = eg.add(Node::new(Op::Mul, vec![acc, l]));
        }
        let backoff = BackoffConfig { match_limit: 8, ban_length: 1 };
        let limits = RunnerLimits { iter_limit: 6, node_limit: 4000, ..Default::default() };
        let runner = Runner::new(all_rules()).with_limits(limits).with_backoff(Some(backoff));
        let report = runner.run(&mut eg);
        let banned: usize = report.rule_stats.iter().map(|s| s.times_banned).sum();
        assert!(banned > 0, "scheduler must bench at least one rule: {:?}", report.rule_stats);
        // the run must not be reported as saturated while work is benched
        if report.stop_reason == StopReason::Saturated {
            let last = report.iterations.last().unwrap();
            assert_eq!(last.applied, 0);
        }
    }

    /// Saturation reports (and resulting e-graphs) must be identical at
    /// any search thread count, including under backoff pressure.
    #[test]
    fn parallel_search_matches_serial() {
        let run = |threads: usize| {
            let mut eg = EGraph::new();
            let leaves: Vec<_> = (0..8).map(|i| eg.add(Node::sym(&format!("x{i}")))).collect();
            let mut acc = leaves[0];
            for &l in &leaves[1..] {
                acc = eg.add(Node::new(Op::Mul, vec![acc, l]));
            }
            let backoff = BackoffConfig { match_limit: 16, ban_length: 1 };
            let limits = RunnerLimits { iter_limit: 6, node_limit: 3000, ..Default::default() };
            let runner = Runner::new(all_rules())
                .with_limits(limits)
                .with_backoff(Some(backoff))
                .with_sat_threads(threads);
            let report = runner.run(&mut eg);
            (report, eg.total_nodes(), eg.num_classes())
        };
        let (serial, nodes1, classes1) = run(1);
        for threads in [2, 8] {
            let (par, nodes, classes) = run(threads);
            assert_eq!(nodes, nodes1, "{threads} threads: node counts diverge");
            assert_eq!(classes, classes1, "{threads} threads: class counts diverge");
            assert_eq!(par.stop_reason, serial.stop_reason);
            assert_eq!(par.iterations.len(), serial.iterations.len());
            for (a, b) in par.iterations.iter().zip(&serial.iterations) {
                assert_eq!((a.matches, a.applied), (b.matches, b.applied));
                assert_eq!((a.total_nodes, a.num_classes), (b.total_nodes, b.num_classes));
            }
            for (a, b) in par.rule_stats.iter().zip(&serial.rule_stats) {
                assert_eq!(a.name, b.name);
                assert_eq!(
                    (a.matches, a.applied, a.times_banned, a.banned_iters),
                    (b.matches, b.applied, b.times_banned, b.banned_iters),
                    "rule {} diverges at {threads} threads",
                    a.name
                );
            }
        }
    }

    /// A shared budget with no spare permits degrades the fan-out to the
    /// calling thread; with permits it widens. Results are identical.
    #[test]
    fn budgeted_search_is_identical() {
        use crate::pool::ThreadBudget;
        let run = |budget: Option<Arc<ThreadBudget>>| {
            let mut eg = EGraph::new();
            let ids = chain_add(&mut eg, &["a", "b", "c", "d"]);
            let ab = eg.add(Node::new(Op::Add, vec![ids[0], ids[1]]));
            let cd = eg.add(Node::new(Op::Add, vec![ids[2], ids[3]]));
            let _r = eg.add(Node::new(Op::Mul, vec![ab, cd]));
            let runner = Runner::new(all_rules()).with_sat_threads(4).with_budget(budget);
            let report = runner.run(&mut eg);
            (report.total_matches(), report.total_applied(), eg.total_nodes())
        };
        let starving = run(Some(Arc::new(ThreadBudget::new(0))));
        let flush = run(Some(Arc::new(ThreadBudget::new(8))));
        let unbudgeted = run(None);
        assert_eq!(starving, flush);
        assert_eq!(starving, unbudgeted);
    }

    /// Phase timings are recorded for every iteration and sum into the
    /// report accessors.
    #[test]
    fn phase_timings_populated() {
        let mut eg = EGraph::new();
        let ids = chain_add(&mut eg, &["a", "b", "c"]);
        let bc = eg.add(Node::new(Op::Mul, vec![ids[1], ids[2]]));
        let _sum = eg.add(Node::new(Op::Add, vec![bc, ids[0]]));
        let report = Runner::new(all_rules()).run(&mut eg);
        assert!(!report.iterations.is_empty());
        let total = report.search_time() + report.apply_time() + report.rebuild_time();
        assert!(total <= report.elapsed, "phases cannot exceed the whole run");
        let per_iter: Duration =
            report.iterations.iter().map(|i| i.search_time + i.apply_time + i.rebuild_time).sum();
        assert_eq!(per_iter, total);
    }

    #[test]
    fn backoff_ban_lifts_and_work_completes() {
        // with a ban in the middle, the final equalities must still appear
        // once the ban lifts (deferred classes are re-searched)
        let mut eg = EGraph::new();
        let ids = chain_add(&mut eg, &["a", "b", "c"]);
        let ab = eg.add(Node::new(Op::Add, vec![ids[0], ids[1]]));
        let abc1 = eg.add(Node::new(Op::Add, vec![ab, ids[2]]));
        let bc = eg.add(Node::new(Op::Add, vec![ids[1], ids[2]]));
        let abc2 = eg.add(Node::new(Op::Add, vec![ids[0], bc]));
        let backoff = BackoffConfig { match_limit: 2, ban_length: 1 };
        let runner = Runner::new(all_rules()).with_backoff(Some(backoff));
        runner.run(&mut eg);
        assert!(eg.same(abc1, abc2), "deferred searches must complete after bans lift");
    }
}
