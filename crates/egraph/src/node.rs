//! The e-node term language for ACC Saturator's SSA form.
//!
//! Every SSA value in a kernel body becomes an e-node: constants, input
//! symbols, arithmetic, FMA (the target of Table I's rewrite rules), array
//! `Load`/`Store` in SSA style (a store yields a *new array value*, paper
//! §IV-A), branch φ (`Select`), loop φ (`PhiLoop`), and opaque function
//! calls.

use std::fmt;

/// An e-class id. Internally an index into the union-find.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Id(u32);

impl Id {
    /// The index this id wraps.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<usize> for Id {
    fn from(v: usize) -> Id {
        Id(u32::try_from(v).expect("e-graph exceeded u32 ids"))
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Operator of an e-node. Payload-carrying variants are leaves or carry
/// identity beyond their children (symbols, constants, call names).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Op {
    /// Integer constant.
    Int(i64),
    /// Floating constant, stored as bits so `Op: Eq + Hash`. NaNs are
    /// canonicalized on construction.
    Float(u64),
    /// Input symbol: a kernel parameter, loop index, or initial variable
    /// value. Also used for the abstract initial state of an array.
    Sym(String),
    /// Abstract loop condition symbol for φ-for nodes (paper Fig. 1:
    /// `Φ(for-cond, for-x, x0)`); carries the loop's stable label.
    LoopCond(String),

    // -- arithmetic (children in node.children) --
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (a heavy op in the cost model).
    Div,
    /// Modulo (a heavy op in the cost model).
    Mod,
    /// Arithmetic negation.
    Neg,
    /// Fused multiply-add: `Fma(a, b, c) = a + b * c` (paper Table I).
    Fma,

    // -- comparisons / logic (appear in conditions feeding φ nodes) --
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Logical and.
    And,
    /// Logical or.
    Or,
    /// Logical not.
    Not,

    /// Branch φ / ternary: `Select(cond, then, else)`.
    Select,
    /// Loop-carried φ: `PhiLoop(cond, body_value, init_value)`.
    PhiLoop,
    /// Array load: `Load(array_value, idx0, idx1, …)`.
    Load,
    /// Array store producing a new array value:
    /// `Store(array_value, idx0, …, value)`.
    Store,
    /// Opaque function call by name: `Call(args…)`.
    Call(String),
    /// Cast to integer (a cost-free register move in the model).
    CastInt,
    /// Cast to floating point (cost-free, like [`Op::CastInt`]).
    CastFloat,
}

impl Op {
    /// Make a float op with canonical NaN bits.
    pub fn float(v: f64) -> Op {
        let v = if v.is_nan() { f64::NAN } else { v };
        Op::Float(v.to_bits())
    }

    /// Read back a float constant.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Op::Float(bits) => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }

    /// Read back an integer constant.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Op::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Is this op a leaf (never has children)?
    pub fn is_leaf(&self) -> bool {
        matches!(self, Op::Int(_) | Op::Float(_) | Op::Sym(_) | Op::LoopCond(_))
    }

    /// Display name used by pattern syntax and debugging.
    pub fn name(&self) -> String {
        match self {
            Op::Int(v) => v.to_string(),
            Op::Float(b) => format!("{}", f64::from_bits(*b)),
            Op::Sym(s) => s.clone(),
            Op::LoopCond(l) => format!("loopcond:{l}"),
            Op::Add => "+".into(),
            Op::Sub => "-".into(),
            Op::Mul => "*".into(),
            Op::Div => "/".into(),
            Op::Mod => "%".into(),
            Op::Neg => "neg".into(),
            Op::Fma => "fma".into(),
            Op::Lt => "<".into(),
            Op::Le => "<=".into(),
            Op::Gt => ">".into(),
            Op::Ge => ">=".into(),
            Op::Eq => "==".into(),
            Op::Ne => "!=".into(),
            Op::And => "&&".into(),
            Op::Or => "||".into(),
            Op::Not => "!".into(),
            Op::Select => "select".into(),
            Op::PhiLoop => "phi-loop".into(),
            Op::Load => "load".into(),
            Op::Store => "store".into(),
            Op::Call(n) => format!("call:{n}"),
            Op::CastInt => "cast-int".into(),
            Op::CastFloat => "cast-float".into(),
        }
    }

    /// Parse an operator name as used in pattern syntax. Returns `None` for
    /// pattern variables and unknown words (treated as symbols by the
    /// pattern parser).
    pub fn from_name(name: &str) -> Option<Op> {
        Some(match name {
            "+" => Op::Add,
            "-" => Op::Sub,
            "*" => Op::Mul,
            "/" => Op::Div,
            "%" => Op::Mod,
            "neg" => Op::Neg,
            "fma" => Op::Fma,
            "<" => Op::Lt,
            "<=" => Op::Le,
            ">" => Op::Gt,
            ">=" => Op::Ge,
            "==" => Op::Eq,
            "!=" => Op::Ne,
            "&&" => Op::And,
            "||" => Op::Or,
            "!" => Op::Not,
            "select" => Op::Select,
            "phi-loop" => Op::PhiLoop,
            "load" => Op::Load,
            "store" => Op::Store,
            "cast-int" => Op::CastInt,
            "cast-float" => Op::CastFloat,
            _ => {
                if let Some(rest) = name.strip_prefix("call:") {
                    Op::Call(rest.to_string())
                } else if let Ok(v) = name.parse::<i64>() {
                    Op::Int(v)
                } else if let Ok(v) = name.parse::<f64>() {
                    Op::float(v)
                } else {
                    return None;
                }
            }
        })
    }
}

/// An e-node: an operator applied to e-class children.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Node {
    /// Head operator.
    pub op: Op,
    /// Child e-classes, in operator order.
    pub children: Vec<Id>,
}

impl Node {
    /// Construct a node.
    pub fn new(op: Op, children: Vec<Id>) -> Node {
        debug_assert!(!op.is_leaf() || children.is_empty(), "leaf op with children: {op:?}");
        Node { op, children }
    }

    /// Leaf constructor.
    pub fn leaf(op: Op) -> Node {
        Node::new(op, Vec::new())
    }

    /// Integer constant node.
    pub fn int(v: i64) -> Node {
        Node::leaf(Op::Int(v))
    }

    /// Float constant node.
    pub fn float(v: f64) -> Node {
        Node::leaf(Op::float(v))
    }

    /// Symbol node.
    pub fn sym(name: &str) -> Node {
        Node::leaf(Op::Sym(name.to_string()))
    }

    /// Return a copy with children mapped through `find` (canonicalization).
    pub fn canonicalized(&self, mut find: impl FnMut(Id) -> Id) -> Node {
        Node { op: self.op.clone(), children: self.children.iter().map(|&c| find(c)).collect() }
    }
}

impl fmt::Display for Node {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.children.is_empty() {
            write!(f, "{}", self.op.name())
        } else {
            write!(f, "({}", self.op.name())?;
            for c in &self.children {
                write!(f, " {c}")?;
            }
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_bits_roundtrip() {
        let op = Op::float(0.25);
        assert_eq!(op.as_float(), Some(0.25));
        // equal constants hash-cons to the same op
        assert_eq!(Op::float(1.5), Op::float(1.5));
    }

    #[test]
    fn nan_is_canonical() {
        assert_eq!(Op::float(f64::NAN), Op::float(-f64::NAN));
    }

    #[test]
    fn op_name_roundtrip() {
        for op in [
            Op::Add,
            Op::Sub,
            Op::Mul,
            Op::Div,
            Op::Mod,
            Op::Neg,
            Op::Fma,
            Op::Lt,
            Op::Le,
            Op::Gt,
            Op::Ge,
            Op::Eq,
            Op::Ne,
            Op::And,
            Op::Or,
            Op::Not,
            Op::Select,
            Op::PhiLoop,
            Op::Load,
            Op::Store,
            Op::Int(42),
            Op::float(2.5),
            Op::Call("sqrt".into()),
        ] {
            assert_eq!(Op::from_name(&op.name()), Some(op.clone()), "op {op:?}");
        }
    }

    #[test]
    fn unknown_name_is_none() {
        assert_eq!(Op::from_name("someident"), None);
    }

    #[test]
    fn display_sexp() {
        let n = Node::new(Op::Add, vec![Id::from(0), Id::from(1)]);
        assert_eq!(n.to_string(), "(+ e0 e1)");
        assert_eq!(Node::int(3).to_string(), "3");
    }
}
