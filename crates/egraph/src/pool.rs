//! A shared lease pool for worker threads: the arbitration layer of the
//! two-level batch scheduler.
//!
//! The batch driver (`accsat::batch`) hands whole kernels to a fixed set
//! of workers. Inside a kernel, two more fan-outs want threads of their
//! own: the saturation runner's parallel rule search
//! ([`crate::Runner::sat_threads`]) and the extraction portfolio's racing
//! branch-and-bound strategies. Spawning those unconditionally would
//! oversubscribe the machine (every in-flight kernel multiplying the
//! worker count), so a batch shares one [`ThreadBudget`]: a counted pool
//! of *spare* thread permits. A kernel-internal fan-out leases as many
//! permits as are free at that moment — never blocking, never below its
//! own calling thread — and returns them when the fan-out joins. When a
//! batch worker runs out of whole kernels it retires its own permit into
//! the budget, so the tail of a suite (the few heaviest kernels) widens
//! automatically instead of leaving the retired workers' cores idle.
//!
//! # Determinism
//!
//! Leasing only ever changes *how many threads* execute a fan-out whose
//! result is thread-count-invariant by construction (pre-allocated result
//! slots indexed by task, winners picked after a full join). The budget
//! therefore affects wall clock only; outputs are byte-identical whether
//! a fan-out ran on one thread or eight.

use std::sync::{Mutex, OnceLock};

use accsat_obs::trace;

/// A counted pool of spare worker-thread permits shared by one batch run.
#[derive(Debug)]
pub struct ThreadBudget {
    spare: Mutex<usize>,
}

impl ThreadBudget {
    /// New budget with `spare` free permits. A batch driver whose queue is
    /// narrower than its thread count starts the surplus here; otherwise
    /// permits arrive as workers retire ([`ThreadBudget::release`]).
    pub fn new(spare: usize) -> ThreadBudget {
        ThreadBudget { spare: Mutex::new(spare) }
    }

    /// Return `n` permits to the pool (a worker retiring from the kernel
    /// queue, or a lease being dropped).
    pub fn release(&self, n: usize) {
        if n > 0 {
            *self.spare.lock().expect("thread budget") += n;
        }
    }

    /// Take up to `want` permits without blocking. The caller's own thread
    /// never needs a permit, so a lease of `0` still makes progress — it
    /// just runs the fan-out serially.
    pub fn lease(&self, want: usize) -> Lease<'_> {
        if want == 0 {
            return Lease { budget: self, taken: 0 };
        }
        let mut spare = self.spare.lock().expect("thread budget");
        let taken = want.min(*spare);
        *spare -= taken;
        Lease { budget: self, taken }
    }

    /// Currently free permits (diagnostic only; racy by nature).
    pub fn spare(&self) -> usize {
        *self.spare.lock().expect("thread budget")
    }
}

/// Permits leased from a [`ThreadBudget`]; returned on drop.
#[derive(Debug)]
pub struct Lease<'a> {
    budget: &'a ThreadBudget,
    taken: usize,
}

impl Lease<'_> {
    /// How many extra threads (beyond the calling thread) the lease grants.
    pub fn extra(&self) -> usize {
        self.taken
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        self.budget.release(self.taken);
    }
}

/// The host's available hardware parallelism, queried once and cached.
/// Falls back to 1 when the runtime cannot tell (e.g. a restricted
/// container).
pub fn hardware_parallelism() -> usize {
    static CACHED: OnceLock<usize> = OnceLock::new();
    *CACHED.get_or_init(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Effective width of a fan-out of `tasks` independent tasks: the calling
/// thread plus either a budget lease (shared-pool mode) or the requested
/// width outright (standalone mode, `budget = None`). Returns the lease so
/// the permits survive until the fan-out joins.
///
/// The width is additionally clamped to [`hardware_parallelism`]: asking
/// for 16 search threads on a 4-core host spawns 4. Threads beyond the
/// core count cannot help a CPU-bound fan-out, and the outputs are
/// thread-count-invariant by construction, so the clamp changes wall
/// clock only.
pub fn fanout_width<'a>(
    budget: Option<&'a ThreadBudget>,
    want: usize,
    tasks: usize,
) -> (usize, Option<Lease<'a>>) {
    fanout_width_capped(budget, want, tasks, hardware_parallelism())
}

/// [`fanout_width`] with an explicit hardware cap instead of the host's
/// (exposed so tests can pin the cap and stay host-independent).
pub fn fanout_width_capped<'a>(
    budget: Option<&'a ThreadBudget>,
    want: usize,
    tasks: usize,
    cap: usize,
) -> (usize, Option<Lease<'a>>) {
    let want = want.min(cap.max(1)).clamp(1, tasks.max(1));
    match budget {
        None => (want, None),
        Some(b) => {
            let lease = b.lease(want - 1);
            let width = 1 + lease.extra();
            trace::instant("pool", "lease", || {
                vec![
                    ("want", (want - 1).into()),
                    ("taken", lease.extra().into()),
                    ("width", width.into()),
                    ("tasks", tasks.into()),
                ]
            });
            (width, Some(lease))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_returns_on_drop() {
        let b = ThreadBudget::new(3);
        {
            let l = b.lease(2);
            assert_eq!(l.extra(), 2);
            assert_eq!(b.spare(), 1);
            let l2 = b.lease(5);
            assert_eq!(l2.extra(), 1, "lease never blocks; it takes what is free");
            assert_eq!(b.spare(), 0);
        }
        assert_eq!(b.spare(), 3, "both leases returned");
    }

    #[test]
    fn release_grows_the_pool() {
        let b = ThreadBudget::new(0);
        assert_eq!(b.lease(4).extra(), 0);
        b.release(2);
        let l = b.lease(4);
        assert_eq!(l.extra(), 2);
    }

    #[test]
    fn fanout_width_modes() {
        // standalone: the requested width, clamped to the task count
        let (w, l) = fanout_width_capped(None, 8, 3, 64);
        assert_eq!(w, 3);
        assert!(l.is_none());
        let b = ThreadBudget::new(1);
        // pooled: own thread plus whatever the budget spares
        let (w, l) = fanout_width_capped(Some(&b), 8, 16, 64);
        assert_eq!(w, 2);
        drop(l);
        assert_eq!(b.spare(), 1);
        // a single task never leases anything
        let (w, _l) = fanout_width_capped(Some(&b), 8, 1, 64);
        assert_eq!(w, 1);
        assert_eq!(b.spare(), 1);
    }

    #[test]
    fn fanout_width_clamps_to_hardware_cap() {
        // requesting 16 threads on a 4-way host fans out 4 wide
        let (w, _) = fanout_width_capped(None, 16, 32, 4);
        assert_eq!(w, 4);
        // a pooled fan-out leases at most cap-1 extra permits
        let b = ThreadBudget::new(16);
        let (w, l) = fanout_width_capped(Some(&b), 16, 32, 4);
        assert_eq!(w, 4);
        drop(l);
        assert_eq!(b.spare(), 16);
        // a degenerate cap of 0 still runs the fan-out serially
        let (w, _) = fanout_width_capped(None, 16, 32, 0);
        assert_eq!(w, 1);
        // the real entry point agrees with the capped one at the host cap
        let (w_real, _) = fanout_width(None, 2, 4);
        let (w_capped, _) = fanout_width_capped(None, 2, 4, hardware_parallelism());
        assert_eq!(w_real, w_capped);
        assert!(hardware_parallelism() >= 1);
    }
}
