//! A shared lease pool for worker threads: the arbitration layer of the
//! two-level batch scheduler.
//!
//! The batch driver (`accsat::batch`) hands whole kernels to a fixed set
//! of workers. Inside a kernel, two more fan-outs want threads of their
//! own: the saturation runner's parallel rule search
//! ([`crate::Runner::sat_threads`]) and the extraction portfolio's racing
//! branch-and-bound strategies. Spawning those unconditionally would
//! oversubscribe the machine (every in-flight kernel multiplying the
//! worker count), so a batch shares one [`ThreadBudget`]: a counted pool
//! of *spare* thread permits. A kernel-internal fan-out leases as many
//! permits as are free at that moment — never blocking, never below its
//! own calling thread — and returns them when the fan-out joins. When a
//! batch worker runs out of whole kernels it retires its own permit into
//! the budget, so the tail of a suite (the few heaviest kernels) widens
//! automatically instead of leaving the retired workers' cores idle.
//!
//! # Determinism
//!
//! Leasing only ever changes *how many threads* execute a fan-out whose
//! result is thread-count-invariant by construction (pre-allocated result
//! slots indexed by task, winners picked after a full join). The budget
//! therefore affects wall clock only; outputs are byte-identical whether
//! a fan-out ran on one thread or eight.

use std::sync::Mutex;

/// A counted pool of spare worker-thread permits shared by one batch run.
#[derive(Debug)]
pub struct ThreadBudget {
    spare: Mutex<usize>,
}

impl ThreadBudget {
    /// New budget with `spare` free permits. A batch driver whose queue is
    /// narrower than its thread count starts the surplus here; otherwise
    /// permits arrive as workers retire ([`ThreadBudget::release`]).
    pub fn new(spare: usize) -> ThreadBudget {
        ThreadBudget { spare: Mutex::new(spare) }
    }

    /// Return `n` permits to the pool (a worker retiring from the kernel
    /// queue, or a lease being dropped).
    pub fn release(&self, n: usize) {
        if n > 0 {
            *self.spare.lock().expect("thread budget") += n;
        }
    }

    /// Take up to `want` permits without blocking. The caller's own thread
    /// never needs a permit, so a lease of `0` still makes progress — it
    /// just runs the fan-out serially.
    pub fn lease(&self, want: usize) -> Lease<'_> {
        if want == 0 {
            return Lease { budget: self, taken: 0 };
        }
        let mut spare = self.spare.lock().expect("thread budget");
        let taken = want.min(*spare);
        *spare -= taken;
        Lease { budget: self, taken }
    }

    /// Currently free permits (diagnostic only; racy by nature).
    pub fn spare(&self) -> usize {
        *self.spare.lock().expect("thread budget")
    }
}

/// Permits leased from a [`ThreadBudget`]; returned on drop.
#[derive(Debug)]
pub struct Lease<'a> {
    budget: &'a ThreadBudget,
    taken: usize,
}

impl Lease<'_> {
    /// How many extra threads (beyond the calling thread) the lease grants.
    pub fn extra(&self) -> usize {
        self.taken
    }
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        self.budget.release(self.taken);
    }
}

/// Effective width of a fan-out of `tasks` independent tasks: the calling
/// thread plus either a budget lease (shared-pool mode) or the requested
/// width outright (standalone mode, `budget = None`). Returns the lease so
/// the permits survive until the fan-out joins.
pub fn fanout_width<'a>(
    budget: Option<&'a ThreadBudget>,
    want: usize,
    tasks: usize,
) -> (usize, Option<Lease<'a>>) {
    let want = want.clamp(1, tasks.max(1));
    match budget {
        None => (want, None),
        Some(b) => {
            let lease = b.lease(want - 1);
            let width = 1 + lease.extra();
            (width, Some(lease))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_returns_on_drop() {
        let b = ThreadBudget::new(3);
        {
            let l = b.lease(2);
            assert_eq!(l.extra(), 2);
            assert_eq!(b.spare(), 1);
            let l2 = b.lease(5);
            assert_eq!(l2.extra(), 1, "lease never blocks; it takes what is free");
            assert_eq!(b.spare(), 0);
        }
        assert_eq!(b.spare(), 3, "both leases returned");
    }

    #[test]
    fn release_grows_the_pool() {
        let b = ThreadBudget::new(0);
        assert_eq!(b.lease(4).extra(), 0);
        b.release(2);
        let l = b.lease(4);
        assert_eq!(l.extra(), 2);
    }

    #[test]
    fn fanout_width_modes() {
        // standalone: the requested width, clamped to the task count
        let (w, l) = fanout_width(None, 8, 3);
        assert_eq!(w, 3);
        assert!(l.is_none());
        let b = ThreadBudget::new(1);
        // pooled: own thread plus whatever the budget spares
        let (w, l) = fanout_width(Some(&b), 8, 16);
        assert_eq!(w, 2);
        drop(l);
        assert_eq!(b.spare(), 1);
        // a single task never leases anything
        let (w, _l) = fanout_width(Some(&b), 8, 1);
        assert_eq!(w, 1);
        assert_eq!(b.spare(), 1);
    }
}
