//! Parallel batch optimization driver: the full pipeline over every kernel
//! of a benchmark suite on a scoped thread pool.
//!
//! The paper's evaluation (§VIII) sweeps every NPB and SPEC ACCEL kernel,
//! yet the pipeline itself optimizes one kernel at a time. This module
//! closes that gap: [`optimize_suite`] parses every benchmark, flattens the
//! suite into per-function work items, and drains them from a shared queue
//! with `std::thread::scope` workers. The compiled rewrite rules live in
//! one `Arc` ([`SaturatorConfig::rules`]) shared by every worker — rules
//! are compiled once per batch, not once per kernel.
//!
//! # Determinism
//!
//! A batch run's report depends only on the inputs and the configuration,
//! not on scheduling: work items land in pre-allocated result slots (never
//! in completion order), every kernel is optimized by the exact same code
//! path a sequential run uses, and the per-kernel extraction portfolio is
//! deterministic by construction (see [`accsat_extract::portfolio`]). So
//! `threads = 8` and `threads = 1` produce byte-identical optimized
//! sources, selections and costs — parallelism only changes the wall
//! clock. (The wall-clock safety valves — saturation time limit,
//! extraction deadline, per-kernel deadline — are generous defaults that
//! do not bind at benchmark sizes; a run that does hit one falls back to
//! sound-but-unproven results.)

use crate::pipeline::{optimize_function, OptStats, SaturatorConfig, Variant};
use accsat_benchmarks::Benchmark;
use accsat_ir::{parse_program, print_program, Program};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Thread-pool configuration for a batch run.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Worker threads draining the kernel queue. `1` runs the suite
    /// sequentially on the calling thread (same results, more wall clock).
    pub threads: usize,
    /// Optional per-kernel wall-clock deadline. Split between saturation
    /// and extraction in the paper's 10 s : 30 s proportion; clamps the
    /// corresponding limits in the per-kernel [`SaturatorConfig`].
    pub kernel_deadline: Option<Duration>,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        // each in-flight kernel also races a 2-wide extraction portfolio
        // (`SaturatorConfig::extraction_threads`), so sizing the pool at
        // half the cores keeps the default batch from oversubscribing
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ParallelConfig { threads: cores.div_ceil(2), kernel_deadline: None }
    }
}

/// Outcome of one optimized function (one work item of the batch).
#[derive(Debug, Clone)]
pub struct FunctionRecord {
    /// Benchmark the function belongs to.
    pub benchmark: String,
    /// Function name.
    pub function: String,
    /// Per-kernel-loop optimizer statistics (one entry per innermost
    /// parallel loop in the function).
    pub stats: Vec<OptStats>,
    /// Wall time this work item took on its worker.
    pub wall: Duration,
}

/// Everything the batch produced for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkRecord {
    /// Benchmark name (Table II/III).
    pub benchmark: String,
    /// The optimized source, printed back to C.
    pub optimized_source: String,
    /// Per-function outcomes, in source order.
    pub functions: Vec<FunctionRecord>,
}

impl BenchmarkRecord {
    /// Sum of extracted DAG costs over all kernels.
    pub fn total_cost(&self) -> u64 {
        self.kernel_stats().map(|s| s.extracted_cost).sum()
    }

    /// Iterate over every kernel-loop stat of the benchmark.
    pub fn kernel_stats(&self) -> impl Iterator<Item = &OptStats> {
        self.functions.iter().flat_map(|f| f.stats.iter())
    }
}

/// Aggregated result of a batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The generated-code variant the batch ran.
    pub variant: Variant,
    /// Worker threads used.
    pub threads: usize,
    /// Per-benchmark results, in suite order.
    pub benchmarks: Vec<BenchmarkRecord>,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
}

impl BatchReport {
    /// Sum of extracted DAG costs over the whole suite.
    pub fn total_cost(&self) -> u64 {
        self.benchmarks.iter().map(|b| b.total_cost()).sum()
    }

    /// Total kernel count across the suite.
    pub fn total_kernels(&self) -> usize {
        self.benchmarks.iter().map(|b| b.kernel_stats().count()).sum()
    }

    /// Sum of per-work-item wall times: the sequential work the pool
    /// compressed into `wall`.
    pub fn sequential_work(&self) -> Duration {
        self.benchmarks.iter().flat_map(|b| b.functions.iter()).map(|f| f.wall).sum()
    }

    /// Render the per-benchmark summary as an ASCII table.
    pub fn render_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .benchmarks
            .iter()
            .map(|b| {
                let kernels = b.kernel_stats().count();
                let nodes: usize = b.kernel_stats().map(|s| s.egraph_nodes).sum();
                let proven = b.kernel_stats().filter(|s| s.extraction_proven).count();
                let sat_ms: f64 = b.kernel_stats().map(|s| s.saturation.as_secs_f64() * 1e3).sum();
                let ext_ms: f64 = b.kernel_stats().map(|s| s.extraction.as_secs_f64() * 1e3).sum();
                vec![
                    b.benchmark.clone(),
                    kernels.to_string(),
                    nodes.to_string(),
                    b.total_cost().to_string(),
                    format!("{proven}/{kernels}"),
                    format!("{sat_ms:.1}"),
                    format!("{ext_ms:.1}"),
                ]
            })
            .collect();
        crate::report::render_table(
            &["Benchmark", "Kernels", "E-nodes", "Cost", "Optimal", "Sat ms", "Extract ms"],
            &rows,
        )
    }

    /// Serialize the report as JSON (hand-rolled — the environment has no
    /// serde; names are simple identifiers but are escaped anyway).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"variant\": \"{}\",\n", self.variant.label()));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"wall_ms\": {:.3},\n", self.wall.as_secs_f64() * 1e3));
        out.push_str(&format!(
            "  \"sequential_work_ms\": {:.3},\n",
            self.sequential_work().as_secs_f64() * 1e3
        ));
        out.push_str(&format!("  \"total_cost\": {},\n", self.total_cost()));
        out.push_str("  \"benchmarks\": [\n");
        for (bi, b) in self.benchmarks.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"total_cost\": {}, \"kernels\": [\n",
                escape(&b.benchmark),
                b.total_cost()
            ));
            let stats: Vec<(&str, &OptStats)> = b
                .functions
                .iter()
                .flat_map(|f| f.stats.iter().map(move |s| (f.function.as_str(), s)))
                .collect();
            for (ki, (func, s)) in stats.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"function\": \"{}\", \"egraph_nodes\": {}, \
                     \"iterations\": {}, \"cost\": {}, \"proven_optimal\": {}, \
                     \"winner\": \"{}\", \"explored\": {}, \"saturation_ms\": {:.3}, \
                     \"extraction_ms\": {:.3}}}{}\n",
                    escape(func),
                    s.egraph_nodes,
                    s.saturation_iters,
                    s.extracted_cost,
                    s.extraction_proven,
                    s.extraction_winner,
                    s.extraction_explored,
                    s.saturation.as_secs_f64() * 1e3,
                    s.extraction.as_secs_f64() * 1e3,
                    if ki + 1 < stats.len() { "," } else { "" },
                ));
            }
            out.push_str(&format!(
                "    ]}}{}\n",
                if bi + 1 < self.benchmarks.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Derive the per-kernel configuration: clamp saturation and extraction
/// wall budgets to the kernel deadline (25% saturation, 75% extraction —
/// the paper's 10 s : 30 s split).
fn kernel_config(base: &SaturatorConfig, deadline: Option<Duration>) -> SaturatorConfig {
    let mut cfg = base.clone();
    if let Some(d) = deadline {
        cfg.limits.time_limit = cfg.limits.time_limit.min(d.mul_f64(0.25));
        cfg.extraction_budget = cfg.extraction_budget.min(d.mul_f64(0.75));
    }
    cfg
}

/// Run the full pipeline over every kernel of `benches` on a scoped
/// thread pool. Results are identical to a sequential run; only the wall
/// clock changes with `par.threads`.
pub fn optimize_suite(
    benches: &[Benchmark],
    variant: Variant,
    config: &SaturatorConfig,
    par: &ParallelConfig,
) -> Result<BatchReport, String> {
    let t0 = Instant::now();
    let cfg = kernel_config(config, par.kernel_deadline);

    // parse up-front (cheap, sequential, deterministic), then flatten the
    // suite into (benchmark, function) work items
    let mut programs: Vec<Program> = Vec::with_capacity(benches.len());
    for b in benches {
        programs.push(parse_program(&b.acc_source).map_err(|e| format!("{}: {e}", b.name))?);
    }
    let items: Vec<(usize, usize)> = programs
        .iter()
        .enumerate()
        .flat_map(|(bi, p)| (0..p.functions.len()).map(move |fi| (bi, fi)))
        .collect();

    // pre-allocated result slots: workers write by item index, so the
    // aggregation below never depends on completion order
    type Slot = Option<Result<(accsat_ir::Function, Vec<OptStats>, Duration), String>>;
    let slots: Vec<Mutex<Slot>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = par.threads.clamp(1, items.len().max(1));

    let drain = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(&(bi, fi)) = items.get(i) else { break };
        let f = &programs[bi].functions[fi];
        let t = Instant::now();
        let r = optimize_function(f, variant, &cfg).map(|(nf, stats)| (nf, stats, t.elapsed()));
        *slots[i].lock().expect("result slot") = Some(r);
    };
    if workers == 1 {
        // truly sequential: the calling thread drains the queue itself
        drain();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(drain);
            }
        });
    }

    // reassemble per benchmark, in suite order
    let mut records: Vec<BenchmarkRecord> = benches
        .iter()
        .map(|b| BenchmarkRecord {
            benchmark: b.name.to_string(),
            optimized_source: String::new(),
            functions: Vec::new(),
        })
        .collect();
    for (i, &(bi, fi)) in items.iter().enumerate() {
        let slot = slots[i].lock().expect("result slot").take();
        let (nf, stats, wall) = slot.expect("worker filled every slot")?;
        records[bi].functions.push(FunctionRecord {
            benchmark: benches[bi].name.to_string(),
            function: nf.name.clone(),
            stats,
            wall,
        });
        programs[bi].functions[fi] = nf;
    }
    for (bi, rec) in records.iter_mut().enumerate() {
        rec.optimized_source = print_program(&programs[bi]);
    }

    Ok(BatchReport { variant, threads: workers, benchmarks: records, wall: t0.elapsed() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_egraph::RunnerLimits;
    use std::sync::Arc;

    /// A small two-benchmark suite so tests stay fast in debug builds.
    fn mini_suite() -> Vec<Benchmark> {
        accsat_benchmarks::npb_benchmarks()
            .into_iter()
            .filter(|b| b.name == "CG" || b.name == "EP")
            .collect()
    }

    fn fast_config() -> SaturatorConfig {
        SaturatorConfig {
            limits: RunnerLimits { node_limit: 2000, ..Default::default() },
            extraction_node_budget: 10_000,
            extraction_budget: Duration::from_secs(60),
            ..Default::default()
        }
    }

    #[test]
    fn batch_runs_and_aggregates() {
        let suite = mini_suite();
        let cfg = fast_config();
        let par = ParallelConfig { threads: 2, kernel_deadline: None };
        let report = optimize_suite(&suite, Variant::AccSat, &cfg, &par).unwrap();
        assert_eq!(report.benchmarks.len(), 2);
        assert!(report.total_kernels() >= 2);
        assert!(report.total_cost() > 0);
        for b in &report.benchmarks {
            assert!(!b.optimized_source.is_empty());
            assert!(b.optimized_source.contains("#pragma acc"), "directives preserved");
        }
        let table = report.render_table();
        assert!(table.contains("CG") && table.contains("EP"));
        let json = report.to_json();
        assert!(json.contains("\"variant\": \"ACCSAT\""));
        assert!(json.contains("\"proven_optimal\""));
    }

    #[test]
    fn parallel_equals_sequential_byte_for_byte() {
        let suite = mini_suite();
        let cfg = fast_config();
        let seq = optimize_suite(
            &suite,
            Variant::AccSat,
            &cfg,
            &ParallelConfig { threads: 1, kernel_deadline: None },
        )
        .unwrap();
        let par = optimize_suite(
            &suite,
            Variant::AccSat,
            &cfg,
            &ParallelConfig { threads: 4, kernel_deadline: None },
        )
        .unwrap();
        assert_eq!(seq.total_cost(), par.total_cost());
        for (a, b) in seq.benchmarks.iter().zip(&par.benchmarks) {
            assert_eq!(
                a.optimized_source, b.optimized_source,
                "{}: sources must be byte-identical",
                a.benchmark
            );
            let ca: Vec<u64> = a.kernel_stats().map(|s| s.extracted_cost).collect();
            let cb: Vec<u64> = b.kernel_stats().map(|s| s.extracted_cost).collect();
            assert_eq!(ca, cb, "{}: per-kernel costs must match", a.benchmark);
        }
    }

    #[test]
    fn shared_rules_are_not_recompiled() {
        // the Arc in the config is what every worker clones: after a batch
        // run the strong count must be back to 1 (no leaked clones) and
        // the batch must have used the same allocation throughout
        let cfg = fast_config();
        let rules = Arc::clone(&cfg.rules);
        let suite = mini_suite();
        let _ = optimize_suite(
            &suite,
            Variant::AccSat,
            &cfg,
            &ParallelConfig { threads: 2, kernel_deadline: None },
        )
        .unwrap();
        assert_eq!(Arc::strong_count(&rules), 2, "config + test handle only");
    }

    #[test]
    fn kernel_deadline_clamps_budgets() {
        let base = SaturatorConfig::default();
        let cfg = kernel_config(&base, Some(Duration::from_secs(4)));
        assert_eq!(cfg.limits.time_limit, Duration::from_secs(1));
        assert_eq!(cfg.extraction_budget, Duration::from_secs(3));
        let cfg2 = kernel_config(&base, Some(Duration::from_millis(400)));
        assert_eq!(cfg2.extraction_budget, Duration::from_millis(300));
        // no deadline: the base budgets pass through untouched
        let cfg3 = kernel_config(&base, None);
        assert_eq!(cfg3.limits.time_limit, base.limits.time_limit);
        assert_eq!(cfg3.extraction_budget, base.extraction_budget);
    }
}
