//! Parallel batch optimization driver: the full pipeline over every kernel
//! of a benchmark suite on a scoped thread pool.
//!
//! The paper's evaluation (§VIII) sweeps every NPB and SPEC ACCEL kernel,
//! yet the pipeline itself optimizes one kernel at a time. This module
//! closes that gap: [`optimize_suite`] parses every benchmark, flattens the
//! suite into per-function work items, and drains them from a shared queue
//! with `std::thread::scope` workers. The compiled rewrite rules live in
//! one `Arc` ([`SaturatorConfig::rules`]) shared by every worker — rules
//! are compiled once per batch, not once per kernel.
//!
//! # The two-level pool
//!
//! Whole kernels are only the first level of schedulable work. Inside a
//! kernel, the saturation runner's parallel rule search
//! ([`accsat_egraph::Runner::sat_threads`]) and the extraction
//! portfolio's racing strategies are fan-outs of their own, and all of
//! them draw threads from one shared [`accsat_egraph::ThreadBudget`]:
//! the batch starts `min(threads, items)` workers and banks the rest as
//! spare permits; a worker that runs out of whole kernels retires its
//! own permit into the budget. In-flight kernels lease those permits for
//! the duration of each internal fan-out, so the tail of a suite — the
//! few heaviest kernels (BT `z_solve`, LU `jacld`, MG `resid`) — widens
//! onto the retired workers' cores instead of leaving them idle. Leases
//! never block and never drop below the leasing thread itself, so the
//! scheme cannot deadlock, and every fan-out's result is
//! thread-count-invariant by construction (see the determinism notes
//! below and in [`accsat_egraph::pool`]).
//!
//! # Determinism
//!
//! A batch run's report depends only on the inputs and the configuration,
//! not on scheduling: work items land in pre-allocated result slots (never
//! in completion order), every kernel is optimized by the exact same code
//! path a sequential run uses, and the per-kernel extraction portfolio is
//! deterministic by construction (see [`accsat_extract::portfolio`]). So
//! `threads = 8` and `threads = 1` produce byte-identical optimized
//! sources, selections and costs — parallelism only changes the wall
//! clock. (The wall-clock safety valves — saturation time limit,
//! extraction deadline, per-kernel deadline — are generous defaults that
//! do not bind at benchmark sizes; a run that does hit one falls back to
//! sound-but-unproven results.)

use crate::metrics::add_opt_stats;
use crate::pipeline::{optimize_function, tune_function, OptStats, SaturatorConfig, Variant};
use accsat_autotune::TuneConfig;
use accsat_benchmarks::Benchmark;
use accsat_egraph::ThreadBudget;
use accsat_ir::{parse_program, print_program, Program};
use accsat_obs::{trace, MetricsRegistry};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Thread-pool configuration for a batch run.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Worker threads draining the kernel queue. `1` runs the suite
    /// sequentially on the calling thread (same results, more wall clock).
    pub threads: usize,
    /// Optional per-kernel wall-clock deadline. Split between saturation
    /// and extraction in the paper's 10 s : 30 s proportion; clamps the
    /// corresponding limits in the per-kernel [`SaturatorConfig`].
    pub kernel_deadline: Option<Duration>,
    /// Deterministic multi-process sharding: `Some((i, n))` makes this run
    /// process only the work items (functions) whose suite-order index is
    /// ≡ i (mod n). Independent processes running shards `0/n … (n-1)/n`
    /// together cover the suite exactly once, and because per-kernel
    /// results depend only on inputs and configuration, their JSON reports
    /// merge by simple concatenation of the per-benchmark kernel lists.
    pub shard: Option<(usize, usize)>,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        // one thread per core: kernel-internal fan-outs (rule search,
        // portfolio race) lease spare permits from the shared budget
        // instead of spawning unconditionally, so a full-width pool can
        // no longer oversubscribe the machine
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        ParallelConfig { threads: cores, kernel_deadline: None, shard: None }
    }
}

/// Outcome of one optimized function (one work item of the batch).
#[derive(Debug, Clone)]
pub struct FunctionRecord {
    /// Benchmark the function belongs to.
    pub benchmark: String,
    /// Function name.
    pub function: String,
    /// Per-kernel-loop optimizer statistics (one entry per innermost
    /// parallel loop in the function).
    pub stats: Vec<OptStats>,
    /// Wall time this work item took on its worker.
    pub wall: Duration,
}

/// Everything the batch produced for one benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkRecord {
    /// Benchmark name (Table II/III).
    pub benchmark: String,
    /// The optimized source, printed back to C.
    pub optimized_source: String,
    /// Per-function outcomes, in source order.
    pub functions: Vec<FunctionRecord>,
}

impl BenchmarkRecord {
    /// Sum of extracted DAG costs over all kernels.
    pub fn total_cost(&self) -> u64 {
        self.kernel_stats().map(|s| s.extracted_cost).sum()
    }

    /// Iterate over every kernel-loop stat of the benchmark.
    pub fn kernel_stats(&self) -> impl Iterator<Item = &OptStats> {
        self.functions.iter().flat_map(|f| f.stats.iter())
    }
}

/// Aggregated result of a batch run.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The generated-code variant the batch ran.
    pub variant: Variant,
    /// Worker threads used.
    pub threads: usize,
    /// Per-benchmark results, in suite order.
    pub benchmarks: Vec<BenchmarkRecord>,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Was the simulation-guided tuner the objective ([`tune_suite`])?
    pub tuned: bool,
    /// The shard this run covered, when sharded.
    pub shard: Option<(usize, usize)>,
}

impl BatchReport {
    /// Sum of extracted DAG costs over the whole suite.
    pub fn total_cost(&self) -> u64 {
        self.benchmarks.iter().map(|b| b.total_cost()).sum()
    }

    /// Total kernel count across the suite.
    pub fn total_kernels(&self) -> usize {
        self.benchmarks.iter().map(|b| b.kernel_stats().count()).sum()
    }

    /// Kernels whose extraction was proven DAG-optimal.
    pub fn proven_kernels(&self) -> usize {
        self.benchmarks
            .iter()
            .map(|b| b.kernel_stats().filter(|s| s.extraction_proven).count())
            .sum()
    }

    /// Sum of per-kernel bound gaps ([`OptStats::bound_gap`]) — `0` when
    /// every kernel of a plain batch is certified optimal. (In tune mode
    /// the gap also counts static cost the simulator deliberately spent,
    /// so it can be positive on proven kernels — see
    /// [`OptStats::extraction_lower_bound`].)
    pub fn total_bound_gap(&self) -> u64 {
        self.benchmarks.iter().flat_map(|b| b.kernel_stats()).map(|s| s.bound_gap()).sum()
    }

    /// Sum of per-work-item wall times: the sequential work the pool
    /// compressed into `wall`.
    pub fn sequential_work(&self) -> Duration {
        self.benchmarks.iter().flat_map(|b| b.functions.iter()).map(|f| f.wall).sum()
    }

    /// Fold every kernel's deterministic counters into one registry, in
    /// suite order. Registry merging is commutative, so the rendered
    /// report is byte-identical at any `--threads` — the `--metrics`
    /// file can be diffed across thread counts and cache states
    /// (modulo `cache.request.*`, which legitimately warms up).
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.add("benchmarks", self.benchmarks.len() as u64);
        for b in &self.benchmarks {
            for s in b.kernel_stats() {
                add_opt_stats(&mut reg, s);
            }
        }
        reg
    }

    /// Render the per-benchmark summary as an ASCII table.
    pub fn render_table(&self) -> String {
        let rows: Vec<Vec<String>> = self
            .benchmarks
            .iter()
            .map(|b| {
                let kernels = b.kernel_stats().count();
                let nodes: usize = b.kernel_stats().map(|s| s.egraph_nodes).sum();
                let proven = b.kernel_stats().filter(|s| s.extraction_proven).count();
                let gap: u64 = b.kernel_stats().map(|s| s.bound_gap()).sum();
                let sat_ms: f64 = b.kernel_stats().map(|s| s.saturation.as_secs_f64() * 1e3).sum();
                let ext_ms: f64 = b.kernel_stats().map(|s| s.extraction.as_secs_f64() * 1e3).sum();
                vec![
                    b.benchmark.clone(),
                    kernels.to_string(),
                    nodes.to_string(),
                    b.total_cost().to_string(),
                    format!("{proven}/{kernels}"),
                    gap.to_string(),
                    format!("{sat_ms:.1}"),
                    format!("{ext_ms:.1}"),
                ]
            })
            .collect();
        crate::report::render_table(
            &["Benchmark", "Kernels", "E-nodes", "Cost", "Optimal", "Gap", "Sat ms", "Extract ms"],
            &rows,
        )
    }

    /// Render the per-candidate tuning table: one row per simulated
    /// candidate of every tuned kernel, Table IV metrics included. Fully
    /// deterministic (no wall-clock columns), so the output is
    /// byte-identical at any thread count.
    pub fn render_tuning_table(&self) -> String {
        let mut rows: Vec<Vec<String>> = Vec::new();
        for b in &self.benchmarks {
            for f in &b.functions {
                for s in &f.stats {
                    let Some(t) = &s.tuning else { continue };
                    for (ci, c) in t.candidates.iter().enumerate() {
                        let verdict = match (ci == t.winner, ci == t.static_winner) {
                            (true, true) => "sim+static",
                            (true, false) => "sim",
                            (false, true) => "static",
                            (false, false) => "",
                        };
                        rows.push(vec![
                            b.benchmark.clone(),
                            f.function.clone(),
                            c.label.clone(),
                            c.static_cost.to_string(),
                            c.cycles.to_string(),
                            format!("{:.3}", c.metrics.time_ms * 1e3),
                            format!("{:.0}", c.metrics.instructions),
                            c.metrics.regs_per_thread.to_string(),
                            format!("{:.2}", c.metrics.occupancy),
                            format!("{:.2}", c.metrics.mem_util),
                            verdict.to_string(),
                        ]);
                    }
                }
            }
        }
        crate::report::render_table(
            &[
                "Benchmark",
                "Kernel",
                "Candidate",
                "Static",
                "Cycles",
                "Time us",
                "Instr",
                "Regs",
                "Occ",
                "MemUtil",
                "Winner",
            ],
            &rows,
        )
    }

    /// Serialize the report as JSON (hand-rolled — the environment has no
    /// serde; names are simple identifiers but are escaped anyway).
    /// Includes wall-clock timing fields, so two runs of the same inputs
    /// differ in those fields only.
    pub fn to_json(&self) -> String {
        self.json_impl(true)
    }

    /// Timing-free JSON: identical structure minus the wall-clock fields
    /// (`wall_ms`, `sequential_work_ms`, per-kernel `*_ms`). The output is
    /// **byte-identical** for a fixed suite and configuration at any
    /// thread count and across processes — this is what `accsat tune`
    /// writes, and what sharded runs merge.
    pub fn to_stable_json(&self) -> String {
        self.json_impl(false)
    }

    fn json_impl(&self, timing: bool) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"variant\": \"{}\",\n", self.variant.label()));
        out.push_str(&format!("  \"tuned\": {},\n", self.tuned));
        if let Some((i, n)) = self.shard {
            out.push_str(&format!("  \"shard\": \"{i}/{n}\",\n"));
        }
        if timing {
            out.push_str(&format!("  \"threads\": {},\n", self.threads));
            out.push_str(&format!("  \"wall_ms\": {:.3},\n", self.wall.as_secs_f64() * 1e3));
            out.push_str(&format!(
                "  \"sequential_work_ms\": {:.3},\n",
                self.sequential_work().as_secs_f64() * 1e3
            ));
        }
        out.push_str(&format!("  \"total_cost\": {},\n", self.total_cost()));
        out.push_str("  \"benchmarks\": [\n");
        for (bi, b) in self.benchmarks.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"total_cost\": {}, \"kernels\": [\n",
                escape(&b.benchmark),
                b.total_cost()
            ));
            let stats: Vec<(&str, &OptStats)> = b
                .functions
                .iter()
                .flat_map(|f| f.stats.iter().map(move |s| (f.function.as_str(), s)))
                .collect();
            for (ki, (func, s)) in stats.iter().enumerate() {
                out.push_str(&format!(
                    "      {{\"function\": \"{}\", \"egraph_nodes\": {}, \
                     \"iterations\": {}, \"cost\": {}, \"proven_optimal\": {}, \
                     \"lower_bound\": {}, \"bound_gap\": {}, \
                     \"winner\": \"{}\", \"explored\": {}",
                    escape(func),
                    s.egraph_nodes,
                    s.saturation_iters,
                    s.extracted_cost,
                    s.extraction_proven,
                    s.extraction_lower_bound,
                    s.bound_gap(),
                    s.extraction_winner,
                    s.extraction_explored,
                ));
                if timing {
                    out.push_str(&format!(
                        ", \"saturation_ms\": {:.3}, \"extraction_ms\": {:.3}",
                        s.saturation.as_secs_f64() * 1e3,
                        s.extraction.as_secs_f64() * 1e3,
                    ));
                }
                if let Some(t) = &s.tuning {
                    out.push_str(&format!(
                        ", \"tuning\": {{\"harvested\": {}, \"winner\": \"{}\", \
                         \"static_winner\": \"{}\", \"divergent\": {}, \"candidates\": [",
                        t.harvested,
                        escape(&t.winning().label),
                        escape(&t.static_winning().label),
                        t.divergent(),
                    ));
                    for (ci, c) in t.candidates.iter().enumerate() {
                        out.push_str(&format!(
                            "{}{{\"label\": \"{}\", \"static_cost\": {}, \"cycles\": {}, \
                             \"time_us\": {:.3}, \"instructions\": {:.0}, \"regs\": {}, \
                             \"occupancy\": {:.4}, \"mem_util\": {:.4}}}",
                            if ci > 0 { ", " } else { "" },
                            escape(&c.label),
                            c.static_cost,
                            c.cycles,
                            c.metrics.time_ms * 1e3,
                            c.metrics.instructions,
                            c.metrics.regs_per_thread,
                            c.metrics.occupancy,
                            c.metrics.mem_util,
                        ));
                    }
                    out.push_str("]}");
                }
                out.push_str(&format!("}}{}\n", if ki + 1 < stats.len() { "," } else { "" }));
            }
            out.push_str(&format!(
                "    ]}}{}\n",
                if bi + 1 < self.benchmarks.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Derive the per-kernel configuration: clamp saturation and extraction
/// wall budgets to the kernel deadline (25% saturation, 75% extraction —
/// the paper's 10 s : 30 s split).
fn kernel_config(base: &SaturatorConfig, deadline: Option<Duration>) -> SaturatorConfig {
    let mut cfg = base.clone();
    if let Some(d) = deadline {
        cfg.limits.time_limit = cfg.limits.time_limit.min(d.mul_f64(0.25));
        cfg.extraction_budget = cfg.extraction_budget.min(d.mul_f64(0.75));
    }
    cfg
}

/// Run the full pipeline over every kernel of `benches` on a scoped
/// thread pool. Results are identical to a sequential run; only the wall
/// clock changes with `par.threads`.
pub fn optimize_suite(
    benches: &[Benchmark],
    variant: Variant,
    config: &SaturatorConfig,
    par: &ParallelConfig,
) -> Result<BatchReport, String> {
    run_suite(benches, variant, config, par, None)
}

/// Run the **simulation-guided tuner** over every kernel of `benches`:
/// the same pool-driven batch as [`optimize_suite`], but each kernel's
/// code is chosen by simulated cycles over a harvested candidate set
/// instead of by the static cost model. Per-kernel [`OptStats::tuning`]
/// carries every candidate's static cost and Table IV metrics.
pub fn tune_suite(
    benches: &[Benchmark],
    variant: Variant,
    config: &SaturatorConfig,
    tcfg: &TuneConfig,
    par: &ParallelConfig,
) -> Result<BatchReport, String> {
    run_suite(benches, variant, config, par, Some(tcfg))
}

fn run_suite(
    benches: &[Benchmark],
    variant: Variant,
    config: &SaturatorConfig,
    par: &ParallelConfig,
    tune: Option<&TuneConfig>,
) -> Result<BatchReport, String> {
    let t0 = Instant::now();
    let mut cfg = kernel_config(config, par.kernel_deadline);
    if let Some((i, n)) = par.shard {
        if n == 0 || i >= n {
            return Err(format!("invalid shard {i}/{n}: need 0 <= i < n"));
        }
    }

    // parse up-front (cheap, sequential, deterministic), then flatten the
    // suite into (benchmark, function) work items
    let mut programs: Vec<Program> = Vec::with_capacity(benches.len());
    {
        let _parse_span = trace::span("batch", "parse");
        for b in benches {
            programs.push(parse_program(&b.acc_source).map_err(|e| format!("{}: {e}", b.name))?);
        }
    }
    let bindings: Vec<std::collections::HashMap<String, i64>> =
        benches.iter().map(|b| b.bindings_map()).collect();
    let items: Vec<(usize, usize)> = programs
        .iter()
        .enumerate()
        .flat_map(|(bi, p)| (0..p.functions.len()).map(move |fi| (bi, fi)))
        .enumerate()
        // deterministic sharding: suite-order index mod n picks the shard,
        // so shards 0/n … (n-1)/n partition the suite exactly
        .filter(|(idx, _)| par.shard.is_none_or(|(i, n)| idx % n == i))
        .map(|(_, it)| it)
        .collect();

    // pre-allocated result slots: workers write by item index, so the
    // aggregation below never depends on completion order
    type Slot = Option<Result<(accsat_ir::Function, Vec<OptStats>, Duration), String>>;
    let slots: Vec<Mutex<Slot>> = items.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = par.threads.clamp(1, items.len().max(1));

    // second scheduling level: the thread permits not consumed by the
    // worker pool seed the shared budget, and every worker returns its
    // own permit when the kernel queue runs dry. Kernel-internal
    // fan-outs (rule search, portfolio race) lease from here.
    let budget = Arc::new(ThreadBudget::new(par.threads.saturating_sub(workers)));
    cfg.thread_budget = Some(Arc::clone(&budget));

    let drain = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        let Some(&(bi, fi)) = items.get(i) else {
            // this worker retires into the budget: in-flight kernels can
            // now widen their internal fan-outs onto its core
            budget.release(1);
            break;
        };
        let f = &programs[bi].functions[fi];
        let _item_span = trace::span_named("batch", || format!("{} {}", benches[bi].name, f.name));
        let t = Instant::now();
        let r = match tune {
            Some(tcfg) => tune_function(f, variant, &cfg, tcfg, &bindings[bi]),
            None => optimize_function(f, variant, &cfg),
        }
        .map(|(nf, stats)| (nf, stats, t.elapsed()));
        *slots[i].lock().expect("result slot") = Some(r);
    };
    if workers == 1 {
        // truly sequential: the calling thread drains the queue itself
        drain();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(drain);
            }
        });
    }

    // reassemble per benchmark, in suite order
    let mut records: Vec<BenchmarkRecord> = benches
        .iter()
        .map(|b| BenchmarkRecord {
            benchmark: b.name.to_string(),
            optimized_source: String::new(),
            functions: Vec::new(),
        })
        .collect();
    for (i, &(bi, fi)) in items.iter().enumerate() {
        let slot = slots[i].lock().expect("result slot").take();
        let (nf, stats, wall) = slot.expect("worker filled every slot")?;
        records[bi].functions.push(FunctionRecord {
            benchmark: benches[bi].name.to_string(),
            function: nf.name.clone(),
            stats,
            wall,
        });
        programs[bi].functions[fi] = nf;
    }
    for (bi, rec) in records.iter_mut().enumerate() {
        rec.optimized_source = print_program(&programs[bi]);
    }
    if par.shard.is_some() {
        // a shard only reports benchmarks it actually touched, so the
        // shards' reports concatenate into exactly one full suite
        let mut touched = vec![false; benches.len()];
        for &(bi, _) in &items {
            touched[bi] = true;
        }
        let mut bi = 0;
        records.retain(|_| {
            bi += 1;
            touched[bi - 1]
        });
    }

    Ok(BatchReport {
        variant,
        threads: workers,
        benchmarks: records,
        wall: t0.elapsed(),
        tuned: tune.is_some(),
        shard: par.shard,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_egraph::RunnerLimits;
    use std::sync::Arc;

    /// A small two-benchmark suite so tests stay fast in debug builds.
    fn mini_suite() -> Vec<Benchmark> {
        accsat_benchmarks::npb_benchmarks()
            .into_iter()
            .filter(|b| b.name == "CG" || b.name == "EP")
            .collect()
    }

    fn fast_config() -> SaturatorConfig {
        SaturatorConfig {
            limits: RunnerLimits { node_limit: 2000, ..Default::default() },
            extraction_node_budget: 10_000,
            extraction_budget: Duration::from_secs(60),
            ..Default::default()
        }
    }

    #[test]
    fn batch_runs_and_aggregates() {
        let suite = mini_suite();
        let cfg = fast_config();
        let par = ParallelConfig { threads: 2, kernel_deadline: None, shard: None };
        let report = optimize_suite(&suite, Variant::AccSat, &cfg, &par).unwrap();
        assert_eq!(report.benchmarks.len(), 2);
        assert!(report.total_kernels() >= 2);
        assert!(report.total_cost() > 0);
        for b in &report.benchmarks {
            assert!(!b.optimized_source.is_empty());
            assert!(b.optimized_source.contains("#pragma acc"), "directives preserved");
        }
        let table = report.render_table();
        assert!(table.contains("CG") && table.contains("EP"));
        let json = report.to_json();
        assert!(json.contains("\"variant\": \"ACCSAT\""));
        assert!(json.contains("\"proven_optimal\""));
    }

    #[test]
    fn parallel_equals_sequential_byte_for_byte() {
        let suite = mini_suite();
        let cfg = fast_config();
        let seq = optimize_suite(
            &suite,
            Variant::AccSat,
            &cfg,
            &ParallelConfig { threads: 1, kernel_deadline: None, shard: None },
        )
        .unwrap();
        let par = optimize_suite(
            &suite,
            Variant::AccSat,
            &cfg,
            &ParallelConfig { threads: 4, kernel_deadline: None, shard: None },
        )
        .unwrap();
        assert_eq!(seq.total_cost(), par.total_cost());
        for (a, b) in seq.benchmarks.iter().zip(&par.benchmarks) {
            assert_eq!(
                a.optimized_source, b.optimized_source,
                "{}: sources must be byte-identical",
                a.benchmark
            );
            let ca: Vec<u64> = a.kernel_stats().map(|s| s.extracted_cost).collect();
            let cb: Vec<u64> = b.kernel_stats().map(|s| s.extracted_cost).collect();
            assert_eq!(ca, cb, "{}: per-kernel costs must match", a.benchmark);
        }
    }

    #[test]
    fn sat_threads_and_budget_preserve_bytes() {
        // the full two-level pool — wide worker pool, parallel rule
        // search, budget-leased portfolio — against the one-thread,
        // serial-search baseline: stable output must not move a byte
        let suite = mini_suite();
        let base = optimize_suite(
            &suite,
            Variant::AccSat,
            &fast_config(),
            &ParallelConfig { threads: 1, kernel_deadline: None, shard: None },
        )
        .unwrap();
        let cfg8 = SaturatorConfig { sat_threads: 8, ..fast_config() };
        let wide = optimize_suite(
            &suite,
            Variant::AccSat,
            &cfg8,
            &ParallelConfig { threads: 8, kernel_deadline: None, shard: None },
        )
        .unwrap();
        assert_eq!(base.to_stable_json(), wide.to_stable_json());
        for (a, b) in base.benchmarks.iter().zip(&wide.benchmarks) {
            assert_eq!(a.optimized_source, b.optimized_source, "{}", a.benchmark);
        }
    }

    #[test]
    fn shared_rules_are_not_recompiled() {
        // the Arc in the config is what every worker clones: after a batch
        // run the strong count must be back to 1 (no leaked clones) and
        // the batch must have used the same allocation throughout
        let cfg = fast_config();
        let rules = Arc::clone(&cfg.rules);
        let suite = mini_suite();
        let _ = optimize_suite(
            &suite,
            Variant::AccSat,
            &cfg,
            &ParallelConfig { threads: 2, kernel_deadline: None, shard: None },
        )
        .unwrap();
        assert_eq!(Arc::strong_count(&rules), 2, "config + test handle only");
    }

    #[test]
    fn sharding_partitions_the_suite_exactly() {
        let suite = mini_suite();
        let cfg = fast_config();
        let full = optimize_suite(
            &suite,
            Variant::AccSat,
            &cfg,
            &ParallelConfig { threads: 1, kernel_deadline: None, shard: None },
        )
        .unwrap();
        let shards: Vec<BatchReport> = (0..2)
            .map(|i| {
                optimize_suite(
                    &suite,
                    Variant::AccSat,
                    &cfg,
                    &ParallelConfig { threads: 1, kernel_deadline: None, shard: Some((i, 2)) },
                )
                .unwrap()
            })
            .collect();
        // shards cover the suite exactly once…
        let count: usize = shards.iter().map(|r| r.total_kernels()).sum();
        assert_eq!(count, full.total_kernels());
        let cost: u64 = shards.iter().map(|r| r.total_cost()).sum();
        assert_eq!(cost, full.total_cost());
        // …and every sharded kernel matches the full run byte-for-byte
        let full_stats: Vec<(String, u64)> = full
            .benchmarks
            .iter()
            .flat_map(|b| {
                b.functions.iter().flat_map(|f| {
                    f.stats.iter().map(move |s| (f.function.clone(), s.extracted_cost))
                })
            })
            .collect();
        let mut shard_stats: Vec<(String, u64)> = shards
            .iter()
            .flat_map(|r| r.benchmarks.iter())
            .flat_map(|b| {
                b.functions.iter().flat_map(|f| {
                    f.stats.iter().map(move |s| (f.function.clone(), s.extracted_cost))
                })
            })
            .collect();
        shard_stats.sort();
        let mut sorted_full = full_stats;
        sorted_full.sort();
        assert_eq!(shard_stats, sorted_full);
        // the shard is recorded in the stable JSON
        assert!(shards[0].to_stable_json().contains("\"shard\": \"0/2\""));
    }

    #[test]
    fn invalid_shard_is_rejected() {
        let suite = mini_suite();
        let cfg = fast_config();
        let par = ParallelConfig { threads: 1, kernel_deadline: None, shard: Some((2, 2)) };
        assert!(optimize_suite(&suite, Variant::AccSat, &cfg, &par).is_err());
    }

    #[test]
    fn tune_suite_is_byte_identical_across_thread_counts() {
        let suite = mini_suite();
        let cfg = fast_config();
        let tcfg = TuneConfig::default();
        let runs: Vec<BatchReport> = [1, 4]
            .iter()
            .map(|&threads| {
                tune_suite(
                    &suite,
                    Variant::AccSat,
                    &cfg,
                    &tcfg,
                    &ParallelConfig { threads, kernel_deadline: None, shard: None },
                )
                .unwrap()
            })
            .collect();
        assert!(runs[0].tuned);
        assert_eq!(runs[0].render_tuning_table(), runs[1].render_tuning_table());
        assert_eq!(runs[0].to_stable_json(), runs[1].to_stable_json());
        for (a, b) in runs[0].benchmarks.iter().zip(&runs[1].benchmarks) {
            assert_eq!(a.optimized_source, b.optimized_source, "{}", a.benchmark);
        }
        // every tuned kernel carries candidate reports and a sane winner
        for b in &runs[0].benchmarks {
            for s in b.kernel_stats() {
                let t = s.tuning.as_ref().expect("tune mode populates tuning");
                assert!(!t.candidates.is_empty());
                assert!(t.winner < t.candidates.len());
                let min = t.candidates.iter().map(|c| c.cycles).min().unwrap();
                assert_eq!(t.winning().cycles, min);
                assert_eq!(s.extraction_winner, "tune");
            }
        }
        let json = runs[0].to_stable_json();
        assert!(json.contains("\"tuning\""));
        assert!(json.contains("\"candidates\""));
        assert!(!json.contains("wall_ms"), "stable JSON must carry no wall clocks");
    }

    #[test]
    fn kernel_deadline_clamps_budgets() {
        let base = SaturatorConfig::default();
        let cfg = kernel_config(&base, Some(Duration::from_secs(4)));
        assert_eq!(cfg.limits.time_limit, Duration::from_secs(1));
        assert_eq!(cfg.extraction_budget, Duration::from_secs(3));
        let cfg2 = kernel_config(&base, Some(Duration::from_millis(400)));
        assert_eq!(cfg2.extraction_budget, Duration::from_millis(300));
        // no deadline: the base budgets pass through untouched
        let cfg3 = kernel_config(&base, None);
        assert_eq!(cfg3.limits.time_limit, base.limits.time_limit);
        assert_eq!(cfg3.extraction_budget, base.extraction_budget);
    }
}
