//! Content-addressed stage cache: kernel source → parsed IR → saturated
//! e-graph → certified selection, each stage keyed by a content hash.
//!
//! This is the amortization layer behind `accsat serve` and `--cache-dir`:
//! a re-submitted (or cosmetically edited) kernel reuses the expensive
//! stages instead of redoing them. Three stage levels are cached:
//!
//! * **parsed** — raw source bytes → parsed [`Program`]. Persisted to
//!   `parsed/` in disk-backed caches as the canonical printed program
//!   (the printer round-trips, so re-parsing on promotion is lossless);
//!   parsing is cheap, so this level mostly exists so an unchanged
//!   request never re-parses and a restarted serve daemon keeps its
//!   parsed floor.
//! * **saturated** — kernel hash → full-fidelity serialized e-graph (see
//!   `accsat_egraph::serialize`) plus the saturation metadata the reports
//!   need (iterations, stop reason, per-rule stats).
//! * **selected** — kernel+objective hash → serialized
//!   [`Selection`](accsat_extract::Selection) plus
//!   extraction metadata (cost, proven flag, winner, explored, bound).
//!
//! **Keys.** The kernel-level hash is FNV-1a over the *canonical printed
//! IR* of the kernel body (`accsat_ir::fingerprint_block`) — comments and
//! whitespace are already gone — mixed with every configuration value
//! that can change the stage's output: whether the variant saturates, the
//! saturation limits, and the rule set for the saturation key; plus the
//! cost model, portfolio width and node budget for the selection key.
//! Wall-clock budgets are deliberately *not* part of the keys: they are
//! safety valves that do not bind in deterministic runs, and two runs
//! differing only in a valve setting should share cache entries.
//! Codegen options (`bulk_load`) are also excluded — codegen runs fresh
//! on every request, so `CSE+SAT` and `ACCSAT` share both cached stages.
//!
//! **Invalidation.** There is none by design: entries are immutable values
//! under content hashes. A format version bump (see the `v1` headers)
//! orphans old entries, which then age out by eviction; corrupt or
//! version-mismatched entries read as misses.
//!
//! **Eviction** is deterministic: FIFO by insertion order with a fixed
//! entry capacity, both in memory and on disk (the disk index file records
//! insertion order). No clocks, no LRU — byte-identical cache behavior
//! for byte-identical request sequences.

use crate::pipeline::{SaturatorConfig, Variant};
use accsat_egraph::{IterCounts, RuleStats, StopReason};
use accsat_ir::{fingerprint_block, fnv1a, fnv1a_mix, Block, Program};
use accsat_obs::trace;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

/// How much of the pipeline a request reused, `Miss < Parsed < Saturated
/// < Selected`. Reported per request in the service's stable JSON and per
/// kernel on batch stderr; never part of the stable batch report (warm
/// and cold runs must stay byte-identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum CacheLevel {
    /// Nothing reused: every stage ran.
    #[default]
    Miss,
    /// The parsed IR was reused (source bytes unchanged).
    Parsed,
    /// The saturated e-graph was restored; extraction re-ran.
    Saturated,
    /// Saturation *and* the certified selection were reused; only code
    /// generation ran.
    Selected,
}

impl CacheLevel {
    /// Stable lowercase label used in JSON reports.
    pub fn label(self) -> &'static str {
        match self {
            CacheLevel::Miss => "miss",
            CacheLevel::Parsed => "parsed",
            CacheLevel::Saturated => "saturated",
            CacheLevel::Selected => "selected",
        }
    }
}

/// Cached outcome of the saturation stage.
#[derive(Debug, Clone)]
pub struct SatEntry {
    /// Serialized e-graph (`accsat_egraph::serialize` format).
    pub egraph: String,
    /// Saturation iterations performed.
    pub iters: usize,
    /// Why saturation stopped (`None` for non-saturating variants).
    pub stop: Option<StopReason>,
    /// Per-rule statistics of the original run.
    pub rule_stats: Vec<RuleStats>,
    /// Deterministic per-iteration counters of the original run, so a
    /// warm hit replays the exact metrics the cold run measured.
    pub iter_counts: Vec<IterCounts>,
}

/// Cached outcome of the extraction stage.
#[derive(Debug, Clone)]
pub struct SelEntry {
    /// Serialized winning selection (`Selection::serialize` format).
    pub selection: String,
    /// DAG cost of the selection.
    pub cost: u64,
    /// Was the selection proven optimal?
    pub proven: bool,
    /// Winning portfolio member name.
    pub winner: String,
    /// Search nodes explored across the portfolio.
    pub explored: u64,
    /// Certified lower bound.
    pub lower_bound: u64,
    /// Candidates removed per pruning layer (orbit, dominance, closure)
    /// while building the search context of the original extraction.
    pub pruned: [usize; 3],
}

// v2: sat entries persist per-iteration counters, sel entries persist the
// pruning-layer counts. v1 entries fail the header check and read as
// misses, exactly as the module docs promise for format bumps.
const SAT_HEADER: &str = "accsat-stage sat v2";
const SEL_HEADER: &str = "accsat-stage sel v2";
const PARSED_HEADER: &str = "accsat-stage parsed v1";

fn stop_token(stop: Option<StopReason>) -> &'static str {
    match stop {
        None => "none",
        Some(StopReason::Saturated) => "saturated",
        Some(StopReason::NodeLimit) => "node-limit",
        Some(StopReason::IterLimit) => "iter-limit",
        Some(StopReason::TimeLimit) => "time-limit",
    }
}

fn parse_stop_token(tok: &str) -> Result<Option<StopReason>, String> {
    Ok(match tok {
        "none" => None,
        "saturated" => Some(StopReason::Saturated),
        "node-limit" => Some(StopReason::NodeLimit),
        "iter-limit" => Some(StopReason::IterLimit),
        "time-limit" => Some(StopReason::TimeLimit),
        other => return Err(format!("unknown stop token {other:?}")),
    })
}

impl SatEntry {
    /// Serialize to the versioned cache-entry text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(SAT_HEADER);
        out.push('\n');
        let _ = writeln!(
            out,
            "meta {} {} {} {}",
            self.iters,
            stop_token(self.stop),
            self.rule_stats.len(),
            self.iter_counts.len()
        );
        for r in &self.rule_stats {
            debug_assert!(!r.name.chars().any(char::is_whitespace));
            let _ = writeln!(
                out,
                "r {} {} {} {} {}",
                r.name, r.matches, r.applied, r.times_banned, r.banned_iters
            );
        }
        for it in &self.iter_counts {
            let _ = writeln!(
                out,
                "i {} {} {} {}",
                it.matches, it.applied, it.total_nodes, it.num_classes
            );
        }
        out.push_str("egraph\n");
        out.push_str(&self.egraph);
        out
    }

    /// Parse [`SatEntry::to_text`] output.
    pub fn from_text(text: &str) -> Result<SatEntry, String> {
        let mut rest = text;
        let mut take_line = |what: &str| -> Result<&str, String> {
            let nl = rest.find('\n').ok_or_else(|| format!("truncated sat entry: {what}"))?;
            let line = &rest[..nl];
            rest = &rest[nl + 1..];
            Ok(line)
        };
        if take_line("header")? != SAT_HEADER {
            return Err("unsupported sat entry format".into());
        }
        let meta = take_line("meta")?.to_string();
        let mut toks = meta.split_whitespace();
        let mut next = || toks.next().ok_or("truncated sat meta");
        if next()? != "meta" {
            return Err("bad sat meta line".into());
        }
        let iters: usize = next()?.parse().map_err(|e| format!("bad iters: {e}"))?;
        let stop = parse_stop_token(next()?)?;
        let n_rules: usize = next()?.parse().map_err(|e| format!("bad rule count: {e}"))?;
        let n_iters: usize = next()?.parse().map_err(|e| format!("bad iter count: {e}"))?;
        let mut rule_stats = Vec::with_capacity(n_rules);
        for _ in 0..n_rules {
            let line = take_line("rule stats")?;
            let mut toks = line.split_whitespace();
            let mut next = || toks.next().ok_or_else(|| format!("truncated rule line {line:?}"));
            if next()? != "r" {
                return Err(format!("bad rule line {line:?}"));
            }
            let name = next()?.to_string();
            let mut num = |what: &str| -> Result<usize, String> {
                next()?.parse().map_err(|e| format!("bad {what}: {e}"))
            };
            rule_stats.push(RuleStats {
                name,
                matches: num("matches")?,
                applied: num("applied")?,
                times_banned: num("times_banned")?,
                banned_iters: num("banned_iters")?,
            });
        }
        let mut iter_counts = Vec::with_capacity(n_iters);
        for _ in 0..n_iters {
            let line = take_line("iteration counts")?;
            let mut toks = line.split_whitespace();
            let mut next = || toks.next().ok_or_else(|| format!("truncated iter line {line:?}"));
            if next()? != "i" {
                return Err(format!("bad iter line {line:?}"));
            }
            let mut num = |what: &str| -> Result<usize, String> {
                next()?.parse().map_err(|e| format!("bad {what}: {e}"))
            };
            iter_counts.push(IterCounts {
                matches: num("matches")?,
                applied: num("applied")?,
                total_nodes: num("total_nodes")?,
                num_classes: num("num_classes")?,
            });
        }
        if take_line("egraph marker")? != "egraph" {
            return Err("missing egraph marker".into());
        }
        Ok(SatEntry { egraph: rest.to_string(), iters, stop, rule_stats, iter_counts })
    }
}

impl SelEntry {
    /// Serialize to the versioned cache-entry text format.
    pub fn to_text(&self) -> String {
        debug_assert!(!self.winner.chars().any(char::is_whitespace));
        let mut out = String::new();
        out.push_str(SEL_HEADER);
        out.push('\n');
        let _ = writeln!(
            out,
            "meta {} {} {} {} {} {} {} {}",
            self.cost,
            u8::from(self.proven),
            self.explored,
            self.lower_bound,
            self.pruned[0],
            self.pruned[1],
            self.pruned[2],
            self.winner
        );
        out.push_str("selection\n");
        out.push_str(&self.selection);
        out
    }

    /// Parse [`SelEntry::to_text`] output.
    pub fn from_text(text: &str) -> Result<SelEntry, String> {
        let mut lines = text.splitn(3, '\n');
        let header = lines.next().ok_or("empty sel entry")?;
        if header != SEL_HEADER {
            return Err("unsupported sel entry format".into());
        }
        let meta = lines.next().ok_or("truncated sel entry")?;
        let rest = lines.next().ok_or("truncated sel entry")?;
        let mut toks = meta.split_whitespace();
        let mut next = || toks.next().ok_or("truncated sel meta");
        if next()? != "meta" {
            return Err("bad sel meta line".into());
        }
        let cost: u64 = next()?.parse().map_err(|e| format!("bad cost: {e}"))?;
        let proven = match next()? {
            "0" => false,
            "1" => true,
            other => return Err(format!("bad proven flag {other:?}")),
        };
        let explored: u64 = next()?.parse().map_err(|e| format!("bad explored: {e}"))?;
        let lower_bound: u64 = next()?.parse().map_err(|e| format!("bad bound: {e}"))?;
        let mut pruned = [0usize; 3];
        for slot in &mut pruned {
            *slot = next()?.parse().map_err(|e| format!("bad pruned: {e}"))?;
        }
        let winner = next()?.to_string();
        let selection =
            rest.strip_prefix("selection\n").ok_or("missing selection marker")?.to_string();
        Ok(SelEntry { selection, cost, proven, winner, explored, lower_bound, pruned })
    }
}

/// Hash key of the saturation stage for one kernel body under a variant
/// and configuration. See the module docs for what is (and is not) mixed
/// into the key.
pub fn sat_stage_key(body: &Block, variant: Variant, config: &SaturatorConfig) -> u64 {
    let mut h = fnv1a(b"accsat-sat-key v1");
    h = fnv1a_mix(h, fingerprint_block(body));
    h = fnv1a_mix(h, u64::from(variant.saturates()));
    h = fnv1a_mix(h, config.limits.node_limit as u64);
    h = fnv1a_mix(h, config.limits.iter_limit as u64);
    h = fnv1a_mix(h, config.rules.len() as u64);
    for r in config.rules.iter() {
        h = fnv1a_mix(h, fnv1a(r.name.as_bytes()));
    }
    h
}

/// Hash key of the extraction stage: the saturation key plus everything
/// the objective depends on (cost model, portfolio width, node budget).
pub fn sel_stage_key(body: &Block, variant: Variant, config: &SaturatorConfig) -> u64 {
    let mut h = sat_stage_key(body, variant, config);
    h = fnv1a_mix(h, fnv1a(b"accsat-sel-key v1"));
    let cm = &config.cost_model;
    for w in [cm.constant, cm.variable, cm.operation, cm.heavy] {
        h = fnv1a_mix(h, w);
    }
    h = fnv1a_mix(h, config.extraction_node_budget);
    h = fnv1a_mix(h, config.extraction_threads as u64);
    h
}

/// Hit/miss/eviction counters, per stage level (a snapshot from
/// [`StageCache::stats`]). Counters are cumulative over the cache's
/// lifetime and deterministic for a deterministic request sequence.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Parsed-level hits.
    pub parsed_hits: u64,
    /// Parsed-level misses.
    pub parsed_misses: u64,
    /// Saturated-level hits.
    pub sat_hits: u64,
    /// Saturated-level misses.
    pub sat_misses: u64,
    /// Selected-level hits.
    pub sel_hits: u64,
    /// Selected-level misses.
    pub sel_misses: u64,
    /// Entries evicted (all levels, memory + disk).
    pub evictions: u64,
    /// Single-flight claims of a selection key that some earlier request
    /// had already claimed — the requests eligible to coalesce onto a
    /// prior computation. Counted by claim history, not by who actually
    /// blocked, so the value depends only on the request sequence, never
    /// on thread timing.
    pub coalesced: u64,
}

impl CacheStats {
    /// Render as a stable single-line JSON object.
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"parsed_hits\":{},\"parsed_misses\":{},\"sat_hits\":{},",
                "\"sat_misses\":{},\"sel_hits\":{},\"sel_misses\":{},",
                "\"evictions\":{},\"coalesced\":{}}}"
            ),
            self.parsed_hits,
            self.parsed_misses,
            self.sat_hits,
            self.sat_misses,
            self.sel_hits,
            self.sel_misses,
            self.evictions,
            self.coalesced
        )
    }

    /// Fold the counters into a metrics registry under `cache.*` names.
    pub fn add_to(&self, reg: &mut accsat_obs::MetricsRegistry) {
        reg.add("cache.parsed.hits", self.parsed_hits);
        reg.add("cache.parsed.misses", self.parsed_misses);
        reg.add("cache.sat.hits", self.sat_hits);
        reg.add("cache.sat.misses", self.sat_misses);
        reg.add("cache.sel.hits", self.sel_hits);
        reg.add("cache.sel.misses", self.sel_misses);
        reg.add("cache.evictions", self.evictions);
        reg.add("cache.coalesced", self.coalesced);
    }
}

/// One FIFO-evicted text shelf (sat or sel level).
struct Shelf {
    map: HashMap<u64, Arc<String>>,
    order: VecDeque<u64>,
}

impl Shelf {
    fn new() -> Shelf {
        Shelf { map: HashMap::new(), order: VecDeque::new() }
    }

    /// Insert; returns how many entries were evicted.
    fn insert(&mut self, key: u64, text: Arc<String>, capacity: usize) -> u64 {
        if self.map.insert(key, text).is_none() {
            self.order.push_back(key);
        }
        let mut evicted = 0;
        while self.order.len() > capacity {
            let old = self.order.pop_front().expect("non-empty order queue");
            if self.map.remove(&old).is_some() {
                evicted += 1;
            }
        }
        evicted
    }
}

/// FIFO shelf for parsed programs — the same discipline as [`Shelf`],
/// holding [`Program`]s instead of serialized text (the parsed stage is
/// memory-only).
struct ParsedShelf {
    map: HashMap<u64, Arc<Program>>,
    order: VecDeque<u64>,
}

/// The in-memory + on-disk stage store. Cheap to share: wrap in an [`Arc`]
/// and clone the handle into every worker / request (all interior state is
/// mutex-guarded).
pub struct StageCache {
    dir: Option<PathBuf>,
    mem_capacity: usize,
    disk_capacity: usize,
    parsed: Mutex<ParsedShelf>,
    sat: Mutex<Shelf>,
    sel: Mutex<Shelf>,
    stats: Mutex<CacheStats>,
    /// Selection-stage keys currently being computed, for single-flight
    /// request coalescing (see [`StageCache::single_flight`]).
    in_flight: Mutex<HashSet<u64>>,
    in_flight_done: Condvar,
    /// Every key ever claimed via [`StageCache::single_flight`], for the
    /// deterministic `coalesced` counter.
    ever_flown: Mutex<HashSet<u64>>,
}

impl std::fmt::Debug for StageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StageCache")
            .field("dir", &self.dir)
            .field("mem_capacity", &self.mem_capacity)
            .field("disk_capacity", &self.disk_capacity)
            .finish_non_exhaustive()
    }
}

/// Default in-memory entry capacity per stage level.
pub const DEFAULT_MEM_CAPACITY: usize = 512;
/// Default on-disk entry capacity per stage level.
pub const DEFAULT_DISK_CAPACITY: usize = 4096;

impl StageCache {
    /// In-memory-only cache with default capacities.
    pub fn in_memory() -> StageCache {
        StageCache::new(None, DEFAULT_MEM_CAPACITY, DEFAULT_DISK_CAPACITY)
    }

    /// Cache backed by `dir` (created if missing) with default capacities.
    pub fn with_dir(dir: &Path) -> std::io::Result<StageCache> {
        std::fs::create_dir_all(dir.join("parsed"))?;
        std::fs::create_dir_all(dir.join("sat"))?;
        std::fs::create_dir_all(dir.join("sel"))?;
        Ok(StageCache::new(Some(dir.to_path_buf()), DEFAULT_MEM_CAPACITY, DEFAULT_DISK_CAPACITY))
    }

    /// Fully explicit constructor (capacities are entries per level).
    pub fn new(dir: Option<PathBuf>, mem_capacity: usize, disk_capacity: usize) -> StageCache {
        StageCache {
            dir,
            mem_capacity: mem_capacity.max(1),
            disk_capacity: disk_capacity.max(1),
            parsed: Mutex::new(ParsedShelf { map: HashMap::new(), order: VecDeque::new() }),
            sat: Mutex::new(Shelf::new()),
            sel: Mutex::new(Shelf::new()),
            stats: Mutex::new(CacheStats::default()),
            in_flight: Mutex::new(HashSet::new()),
            in_flight_done: Condvar::new(),
            ever_flown: Mutex::new(HashSet::new()),
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock().expect("cache stats lock")
    }

    /// Claim `key` for computation, blocking while another thread holds
    /// it. Concurrent requests for the same kernel thus coalesce: the
    /// first computes and populates the cache, the rest wait and then hit
    /// — deterministic cache levels instead of thundering-herd misses.
    pub fn single_flight(&self, key: u64) -> FlightGuard<'_> {
        if !self.ever_flown.lock().expect("ever-flown lock").insert(key) {
            // a repeat claim: this request could have coalesced onto the
            // first one (and does, whenever they overlap in time)
            self.stats.lock().expect("cache stats lock").coalesced += 1;
            trace::instant("cache", "coalesce", || vec![("key", format!("{key:016x}").into())]);
        }
        let mut set = self.in_flight.lock().expect("in-flight lock");
        while set.contains(&key) {
            set = self.in_flight_done.wait(set).expect("in-flight wait");
        }
        set.insert(key);
        FlightGuard { cache: self, key }
    }

    /// Look up a parsed program by source hash: memory first, then (for
    /// disk-backed caches) the `parsed/` stage directory, whose entries
    /// store the canonical printed program and re-parse on promotion (the
    /// printer round-trips by construction — it is the same text the
    /// golden tests diff).
    pub fn get_parsed(&self, src_hash: u64) -> Option<Arc<Program>> {
        let got = self.parsed.lock().expect("parsed lock").map.get(&src_hash).cloned();
        if let Some(p) = &got {
            self.stats.lock().expect("cache stats lock").parsed_hits += 1;
            self.probe("parsed", true);
            return Some(p.clone());
        }
        if let Some(dir) = &self.dir {
            if let Some(prog) =
                std::fs::read_to_string(entry_path(dir, "parsed", src_hash)).ok().and_then(|text| {
                    let body = text.strip_prefix(PARSED_HEADER)?.strip_prefix('\n')?;
                    accsat_ir::parse_program(body).ok()
                })
            {
                let prog = Arc::new(prog);
                self.promote_parsed(src_hash, prog.clone());
                self.stats.lock().expect("cache stats lock").parsed_hits += 1;
                self.probe("parsed", true);
                return Some(prog);
            }
        }
        self.stats.lock().expect("cache stats lock").parsed_misses += 1;
        self.probe("parsed", false);
        None
    }

    /// Store a parsed program under its source hash — in memory, and for
    /// disk-backed caches also in the `parsed/` stage directory, so a
    /// restarted serve daemon recovers its parsed floor like the sat/sel
    /// levels.
    pub fn put_parsed(&self, src_hash: u64, prog: Arc<Program>) {
        if let Some(dir) = self.dir.clone() {
            let mut text = String::from(PARSED_HEADER);
            text.push('\n');
            text.push_str(&accsat_ir::print_program(&prog));
            let evicted = self.write_disk(&dir, "parsed", src_hash, &text).unwrap_or(0);
            if evicted > 0 {
                self.stats.lock().expect("cache stats lock").evictions += evicted;
            }
        }
        self.promote_parsed(src_hash, prog);
    }

    /// Insert into the in-memory parsed shelf with FIFO eviction.
    fn promote_parsed(&self, src_hash: u64, prog: Arc<Program>) {
        let mut guard = self.parsed.lock().expect("parsed lock");
        let ParsedShelf { map, order } = &mut *guard;
        if map.insert(src_hash, prog).is_none() {
            order.push_back(src_hash);
        }
        let mut evicted = 0;
        while order.len() > self.mem_capacity {
            let old = order.pop_front().expect("non-empty parsed queue");
            if map.remove(&old).is_some() {
                evicted += 1;
            }
        }
        drop(guard);
        if evicted > 0 {
            self.stats.lock().expect("cache stats lock").evictions += evicted;
        }
    }

    /// Look up a saturation-stage entry.
    pub fn get_sat(&self, key: u64) -> Option<SatEntry> {
        self.get_entry(&self.sat, "sat", key).and_then(|t| SatEntry::from_text(&t).ok())
    }

    /// Store a saturation-stage entry.
    pub fn put_sat(&self, key: u64, entry: &SatEntry) {
        self.put_entry(&self.sat, "sat", key, entry.to_text());
    }

    /// Look up an extraction-stage entry.
    pub fn get_sel(&self, key: u64) -> Option<SelEntry> {
        self.get_entry(&self.sel, "sel", key).and_then(|t| SelEntry::from_text(&t).ok())
    }

    /// Store an extraction-stage entry.
    pub fn put_sel(&self, key: u64, entry: &SelEntry) {
        self.put_entry(&self.sel, "sel", key, entry.to_text());
    }

    fn count(&self, level: &str, hit: bool) {
        let mut stats = self.stats.lock().expect("cache stats lock");
        match (level, hit) {
            ("sat", true) => stats.sat_hits += 1,
            ("sat", false) => stats.sat_misses += 1,
            ("sel", true) => stats.sel_hits += 1,
            ("sel", false) => stats.sel_misses += 1,
            _ => unreachable!("unknown cache level {level}"),
        }
        drop(stats);
        self.probe(level, hit);
    }

    /// Trace a cache probe (diagnostic only — the counters above are the
    /// deterministic record).
    fn probe(&self, level: &str, hit: bool) {
        if !accsat_obs::trace::enabled() {
            return;
        }
        let name: &'static str = match (level, hit) {
            ("parsed", true) => "parsed.hit",
            ("parsed", false) => "parsed.miss",
            ("sat", true) => "sat.hit",
            ("sat", false) => "sat.miss",
            ("sel", true) => "sel.hit",
            ("sel", false) => "sel.miss",
            _ => "probe",
        };
        trace::instant("cache", name, Vec::new);
    }

    fn get_entry(&self, shelf: &Mutex<Shelf>, level: &str, key: u64) -> Option<Arc<String>> {
        if let Some(text) = shelf.lock().expect("shelf lock").map.get(&key).cloned() {
            self.count(level, true);
            return Some(text);
        }
        // disk fallback; promote into memory on success
        if let Some(dir) = &self.dir {
            if let Ok(text) = std::fs::read_to_string(entry_path(dir, level, key)) {
                let text = Arc::new(text);
                let evicted =
                    shelf.lock().expect("shelf lock").insert(key, text.clone(), self.mem_capacity);
                self.count(level, true);
                if evicted > 0 {
                    self.stats.lock().expect("cache stats lock").evictions += evicted;
                }
                return Some(text);
            }
        }
        self.count(level, false);
        None
    }

    fn put_entry(&self, shelf: &Mutex<Shelf>, level: &str, key: u64, text: String) {
        let _span = trace::span_args("cache", "fill", || {
            vec![("level", level.to_string().into()), ("bytes", text.len().into())]
        });
        let text = Arc::new(text);
        let mut evicted =
            shelf.lock().expect("shelf lock").insert(key, text.clone(), self.mem_capacity);
        if let Some(dir) = &self.dir {
            evicted += self.write_disk(dir, level, key, &text).unwrap_or(0);
        }
        if evicted > 0 {
            self.stats.lock().expect("cache stats lock").evictions += evicted;
        }
    }

    /// Write one entry to disk and FIFO-evict by the index file. Index
    /// mutations happen under the shelf-level file lock surrogate (the
    /// whole method is only called with the shelf mutex released, so the
    /// in-process writers serialize on the stats mutex-free path via the
    /// per-level index mutex below). Failures are swallowed: the disk
    /// layer is an optimization, never a correctness dependency.
    fn write_disk(&self, dir: &Path, level: &str, key: u64, text: &str) -> Option<u64> {
        // serialize disk index updates through the in-flight mutex's
        // sibling: reuse the shelf mutex would deadlock promotion, so take
        // a dedicated critical section on the stats mutex? No — keep it
        // simple: a per-process global disk lock.
        static DISK_LOCK: Mutex<()> = Mutex::new(());
        let _disk = DISK_LOCK.lock().expect("disk lock");
        let path = entry_path(dir, level, key);
        if path.exists() {
            return Some(0);
        }
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, text).ok()?;
        std::fs::rename(&tmp, &path).ok()?;
        // maintain the insertion-order index and evict beyond capacity
        let index = dir.join(level).join("index");
        let mut keys: Vec<u64> = std::fs::read_to_string(&index)
            .unwrap_or_default()
            .lines()
            .filter_map(|l| u64::from_str_radix(l.trim(), 16).ok())
            .collect();
        keys.push(key);
        let mut evicted = 0;
        while keys.len() > self.disk_capacity {
            let old = keys.remove(0);
            let _ = std::fs::remove_file(entry_path(dir, level, old));
            evicted += 1;
        }
        let body: String = keys.iter().map(|k| format!("{k:016x}\n")).collect();
        let tmp = index.with_extension("tmp");
        std::fs::write(&tmp, body).ok()?;
        std::fs::rename(&tmp, &index).ok()?;
        Some(evicted)
    }
}

fn entry_path(dir: &Path, level: &str, key: u64) -> PathBuf {
    dir.join(level).join(format!("{key:016x}.entry"))
}

/// RAII claim from [`StageCache::single_flight`]; releases the key and
/// wakes waiters on drop.
pub struct FlightGuard<'a> {
    cache: &'a StageCache,
    key: u64,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        let mut set = self.cache.in_flight.lock().expect("in-flight lock");
        set.remove(&self.key);
        drop(set);
        self.cache.in_flight_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_ir::parse_program;

    const KERNEL: &str = r#"
void k(double a[16], double out[16], double c0) {
  #pragma acc parallel loop gang vector
  for (int i = 1; i < 15; i++) {
    out[i] = a[i] * c0 + a[i - 1];
  }
}
"#;

    fn body() -> Block {
        parse_program(KERNEL).unwrap().functions[0].body.clone()
    }

    #[test]
    fn stage_keys_separate_config_axes() {
        let b = body();
        let base = SaturatorConfig::default();
        let sat0 = sat_stage_key(&b, Variant::AccSat, &base);
        let sel0 = sel_stage_key(&b, Variant::AccSat, &base);
        // saturating variants share keys; non-saturating ones do not
        assert_eq!(sat_stage_key(&b, Variant::CseSat, &base), sat0);
        assert_ne!(sat_stage_key(&b, Variant::Cse, &base), sat0);
        assert_eq!(sat_stage_key(&b, Variant::CseBulk, &base), {
            sat_stage_key(&b, Variant::Cse, &base)
        });
        // objective changes move the selection key but not the sat key
        let mut heavy = base.clone();
        heavy.cost_model = accsat_extract::CostModel::with_heavy(1000);
        assert_eq!(sat_stage_key(&b, Variant::AccSat, &heavy), sat0);
        assert_ne!(sel_stage_key(&b, Variant::AccSat, &heavy), sel0);
        // saturation-limit changes move both
        let mut deeper = base.clone();
        deeper.limits.iter_limit = 3;
        assert_ne!(sat_stage_key(&b, Variant::AccSat, &deeper), sat0);
        // wall-clock budgets are excluded on purpose
        let mut valve = base.clone();
        valve.extraction_budget = std::time::Duration::from_secs(99);
        valve.limits.time_limit = std::time::Duration::from_secs(99);
        assert_eq!(sat_stage_key(&b, Variant::AccSat, &valve), sat0);
        assert_eq!(sel_stage_key(&b, Variant::AccSat, &valve), sel0);
    }

    #[test]
    fn entries_round_trip_and_reject_corruption() {
        let sat = SatEntry {
            egraph: "accsat-egraph v1\nfake body\n".into(),
            iters: 3,
            stop: Some(StopReason::Saturated),
            rule_stats: vec![RuleStats {
                name: "COMM-ADD".into(),
                matches: 10,
                applied: 4,
                times_banned: 1,
                banned_iters: 2,
            }],
            iter_counts: vec![
                IterCounts { matches: 10, applied: 4, total_nodes: 50, num_classes: 30 },
                IterCounts { matches: 2, applied: 0, total_nodes: 52, num_classes: 30 },
            ],
        };
        let back = SatEntry::from_text(&sat.to_text()).unwrap();
        assert_eq!(back.iters, 3);
        assert_eq!(back.stop, Some(StopReason::Saturated));
        assert_eq!(back.rule_stats.len(), 1);
        assert_eq!(back.rule_stats[0].name, "COMM-ADD");
        assert_eq!(back.iter_counts, sat.iter_counts);
        assert_eq!(back.egraph, sat.egraph);
        assert!(SatEntry::from_text("bogus\n").is_err());
        // a v1 entry (no version bump migration) reads as a miss
        assert!(SatEntry::from_text("accsat-stage sat v1\nmeta 0 none 0\negraph\n").is_err());

        let sel = SelEntry {
            selection: "accsat-selection v1 0\nend\n".into(),
            cost: 120,
            proven: true,
            winner: "greedy".into(),
            explored: 7,
            lower_bound: 120,
            pruned: [5, 2, 9],
        };
        let back = SelEntry::from_text(&sel.to_text()).unwrap();
        assert_eq!((back.cost, back.proven, back.explored, back.lower_bound), (120, true, 7, 120));
        assert_eq!(back.winner, "greedy");
        assert_eq!(back.pruned, [5, 2, 9]);
        assert_eq!(back.selection, sel.selection);
        assert!(SelEntry::from_text("bogus\n").is_err());
    }

    #[test]
    fn fifo_eviction_is_deterministic() {
        let cache = StageCache::new(None, 2, 2);
        let entry = |i: u64| SelEntry {
            selection: format!("accsat-selection v1 0\nend\n# {i}"),
            cost: i,
            proven: false,
            winner: "greedy".into(),
            explored: 0,
            lower_bound: 0,
            pruned: [0; 3],
        };
        cache.put_sel(1, &entry(1));
        cache.put_sel(2, &entry(2));
        cache.put_sel(3, &entry(3)); // evicts key 1
        assert!(cache.get_sel(1).is_none());
        assert_eq!(cache.get_sel(2).unwrap().cost, 2);
        assert_eq!(cache.get_sel(3).unwrap().cost, 3);
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.sel_hits, 2);
        assert_eq!(stats.sel_misses, 1);
    }

    #[test]
    fn disk_store_persists_across_cache_instances() {
        let dir = std::env::temp_dir().join(format!("accsat-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let cache = StageCache::with_dir(&dir).unwrap();
            cache.put_sel(
                42,
                &SelEntry {
                    selection: "accsat-selection v1 0\nend\n".into(),
                    cost: 9,
                    proven: true,
                    winner: "refine".into(),
                    explored: 1,
                    lower_bound: 9,
                    pruned: [0; 3],
                },
            );
        }
        let cache = StageCache::with_dir(&dir).unwrap();
        let entry = cache.get_sel(42).expect("disk entry must survive the process boundary");
        assert_eq!(entry.cost, 9);
        assert_eq!(entry.winner, "refine");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_flight_coalesces_concurrent_computations() {
        let cache = Arc::new(StageCache::in_memory());
        let started = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cache = cache.clone();
                let started = started.clone();
                scope.spawn(move || {
                    let _flight = cache.single_flight(7);
                    if cache.get_sel(7).is_none() {
                        started.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(10));
                        cache.put_sel(
                            7,
                            &SelEntry {
                                selection: "accsat-selection v1 0\nend\n".into(),
                                cost: 1,
                                proven: false,
                                winner: "greedy".into(),
                                explored: 0,
                                lower_bound: 1,
                                pruned: [0; 3],
                            },
                        );
                    }
                });
            }
        });
        assert_eq!(
            started.load(std::sync::atomic::Ordering::SeqCst),
            1,
            "only the first request computes; the rest coalesce"
        );
        assert_eq!(
            cache.stats().coalesced,
            3,
            "every repeat claim of an already-claimed key counts, at any interleaving"
        );
    }

    #[test]
    fn parsed_level_persists_to_disk() {
        let dir = std::env::temp_dir().join(format!("accsat-parsed-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let prog = Arc::new(parse_program(KERNEL).unwrap());
        let key = fnv1a(KERNEL.as_bytes());
        {
            let cache = StageCache::with_dir(&dir).unwrap();
            cache.put_parsed(key, prog.clone());
            assert!(cache.get_parsed(key).is_some());
        }
        // a fresh cache instance recovers the entry from disk, and the
        // printed program round-trips exactly
        let cache = StageCache::with_dir(&dir).unwrap();
        let back = cache.get_parsed(key).expect("parsed entry survives the process boundary");
        assert_eq!(accsat_ir::print_program(&back), accsat_ir::print_program(&prog));
        let stats = cache.stats();
        assert_eq!((stats.parsed_hits, stats.parsed_misses), (1, 0));
        // in-memory caches still miss across instances
        let mem = StageCache::in_memory();
        assert!(mem.get_parsed(key).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
