//! `accsat` — the command-line tool of the paper (§III): "a convenient
//! command-line tool that wraps normal C-compiler invocation and replaces
//! the original inputs with saturated codes".
//!
//! Without a real compiler to wrap, this binary reads an OpenACC/OpenMP C
//! source, optimizes every kernel, and writes the saturated C — the part of
//! `% accsat nvc …` that ACC Saturator itself performs.
//!
//! Usage:
//! ```text
//! accsat [--variant cse|cse+sat|cse+bulk|accsat] [-o OUT.c] INPUT.c
//! accsat --stats INPUT.c            # print per-kernel optimizer stats
//! ```

use accsat::{optimize_program, Variant};
use accsat_ir::{parse_program, print_program};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: accsat [--variant cse|cse+sat|cse+bulk|accsat] [--stats] [-o OUT.c] INPUT.c");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut variant = Variant::AccSat;
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut stats = false;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--variant" => {
                let v = match it.next().as_deref() {
                    Some("cse") => Variant::Cse,
                    Some("cse+sat") => Variant::CseSat,
                    Some("cse+bulk") => Variant::CseBulk,
                    Some("accsat") => Variant::AccSat,
                    other => {
                        eprintln!("unknown variant: {other:?}");
                        return usage();
                    }
                };
                variant = v;
            }
            "--stats" => stats = true,
            "-o" => output = it.next(),
            "-h" | "--help" => return usage(),
            other if !other.starts_with('-') => input = Some(other.to_string()),
            other => {
                eprintln!("unknown flag: {other}");
                return usage();
            }
        }
    }

    let Some(input) = input else { return usage() };
    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("accsat: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("accsat: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (optimized, kernel_stats) = match optimize_program(&prog, variant) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("accsat: optimization failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if stats {
        for s in &kernel_stats {
            eprintln!(
                "accsat: kernel `{}`: {} e-nodes, {} iterations ({:?}), \
                 cost {}, ssa+codegen {:.1} ms, saturation {:.1} ms, extraction {:.1} ms",
                s.function,
                s.egraph_nodes,
                s.saturation_iters,
                s.stop_reason,
                s.extracted_cost,
                s.ssa_codegen.as_secs_f64() * 1e3,
                s.saturation.as_secs_f64() * 1e3,
                s.extraction.as_secs_f64() * 1e3,
            );
        }
    }
    let text = print_program(&optimized);
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("accsat: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}
