//! `accsat` — the command-line tool of the paper (§III): "a convenient
//! command-line tool that wraps normal C-compiler invocation and replaces
//! the original inputs with saturated codes".
//!
//! Without a real compiler to wrap, this binary reads an OpenACC/OpenMP C
//! source, optimizes every kernel, and writes the saturated C — the part of
//! `% accsat nvc …` that ACC Saturator itself performs.
//!
//! Usage:
//! ```text
//! accsat [--variant cse|cse+sat|cse+bulk|accsat] [--sat-threads N]
//!        [--metrics OUT.txt] [--trace-out OUT.json] [-o OUT.c] INPUT.c
//! accsat --stats INPUT.c            # print per-kernel optimizer stats
//! accsat batch [--suite npb|spec|all] [--threads N] [--sat-threads N]
//!              [--variant V] [--deadline-ms D] [--extract-budget NODES]
//!              [--json OUT.json] [--shard I/N] [--tune]
//!              [--metrics OUT.txt] [--trace-out OUT.json]
//!              # full pipeline over a whole benchmark suite, in parallel
//! accsat tune  [--suite npb|spec|all] [--threads N] [--sat-threads N]
//!              [--device pcie|sxm] [--compiler nvhpc|gcc] [--sweep H1,H2,…]
//!              [--keep K] [--shard I/N] [--json OUT.json]
//!              # simulation-guided autotuning: pick each kernel's code by
//!              # simulated cycles over a harvested candidate set; output
//!              # is byte-identical at any thread count
//! accsat fuzz  [--cases N] [--seed S] [--threads T] [--sat-threads N]
//!              [--json OUT.json] [--corpus DIR] [--cache] [--cache-dir DIR]
//!              # differential kernel fuzzing: random kernels through every
//!              # variant, interpreter-checked against the original; fails
//!              # on any divergence and writes minimized repros to --corpus;
//!              # --cache additionally runs every case cold *and* warm
//!              # through the stage cache and reports any divergence
//! accsat serve [--threads N] [--cache-dir DIR] [--cache-cap N]
//!              [--socket PATH] [--trace-out OUT.json]
//!              # persistent optimization service: line-delimited requests
//!              # on stdin (or a Unix socket), one JSON response per line,
//!              # whole pipeline stages amortized across requests through
//!              # the content-addressed cache (see DESIGN.md)
//! accsat trace-check TRACE.json
//!              # validate a --trace-out file: JSON well-formedness, event
//!              # fields, per-thread span nesting; prints a summary line
//! ```
//!
//! `--metrics` writes the deterministic counter/histogram report of
//! `accsat-obs` — byte-identical at any thread count. `--trace-out`
//! arms the hierarchical tracer and writes a Chrome trace event file
//! (load it at `ui.perfetto.dev`); traces contain wall-clock timings
//! and are *not* deterministic. See DESIGN.md §Observability.
//!
//! `--sat-threads` controls the *parallel rule search inside saturation*
//! (distinct from `--threads`, the worker pool over kernels or fuzz
//! cases). All output is byte-identical at any `--sat-threads` value; in
//! `batch`/`tune` it defaults to `--threads` so idle workers widen into
//! the heavy kernels, elsewhere it defaults to 1.
//!
//! `batch` also accepts `--cache-dir DIR` (reuse saturated e-graphs and
//! selections across runs) and `--stable-json OUT.json` (the
//! timing-free report CI diffs between warm and cold runs).

use accsat::batch::{optimize_suite, tune_suite, ParallelConfig};
use accsat::cache::{StageCache, DEFAULT_DISK_CAPACITY, DEFAULT_MEM_CAPACITY};
use accsat::fuzz::{run_campaign, FuzzConfig};
use accsat::serve::{run_session, ServeConfig};
use accsat::{optimize_program_with, SaturatorConfig, Variant};
use accsat_autotune::TuneConfig;
use accsat_compilers::{Compiler, CompilerModel};
use accsat_gpusim::Device;
use accsat_ir::{parse_program, print_program, Model};
use std::process::ExitCode;
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: accsat [--variant cse|cse+sat|cse+bulk|accsat] [--sat-threads N] [--stats]\n\
         \x20            [--metrics OUT.txt] [--trace-out OUT.json] [-o OUT.c] INPUT.c\n\
                accsat batch [--suite npb|spec|all] [--threads N] [--sat-threads N]\n\
         \x20            [--variant V] [--deadline-ms D] [--extract-budget NODES]\n\
         \x20            [--json OUT.json] [--stable-json OUT.json] [--shard I/N]\n\
         \x20            [--cache-dir DIR] [--tune] [--metrics OUT.txt]\n\
         \x20            [--trace-out OUT.json]\n\
                accsat tune [--suite npb|spec|all] [--threads N] [--sat-threads N]\n\
         \x20            [--device pcie|sxm] [--compiler nvhpc|gcc] [--sweep H1,H2,...]\n\
         \x20            [--keep K] [--shard I/N] [--json OUT.json]\n\
                accsat fuzz [--cases N] [--seed S] [--threads T] [--sat-threads N]\n\
         \x20            [--json OUT.json] [--corpus DIR] [--cache] [--cache-dir DIR]\n\
         \x20            [--trace-out OUT.json]\n\
                accsat serve [--threads N] [--cache-dir DIR] [--cache-cap N]\n\
         \x20            [--socket PATH] [--trace-out OUT.json]\n\
                accsat trace-check TRACE.json"
    );
    ExitCode::from(2)
}

/// Disarm the tracer and write the rendered Chrome trace to `path`.
/// Call only after `trace::start()` — i.e. when `--trace-out` was given.
fn write_trace(path: &str, tool: &str) -> Result<(), ExitCode> {
    let json = accsat::obs::trace::finish().expect("tracer armed by --trace-out");
    if let Err(e) = std::fs::write(path, json) {
        eprintln!("{tool}: cannot write trace {path}: {e}");
        return Err(ExitCode::FAILURE);
    }
    eprintln!("{tool}: trace written to {path} (load at ui.perfetto.dev)");
    Ok(())
}

/// `accsat trace-check`: validate a `--trace-out` file — JSON
/// well-formedness, per-event required fields, per-thread span nesting —
/// and print a one-line summary. CI runs this on its smoke traces.
fn trace_check_main(args: Vec<String>) -> ExitCode {
    let [path] = args.as_slice() else {
        eprintln!("usage: accsat trace-check TRACE.json");
        return ExitCode::from(2);
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("accsat trace-check: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match accsat::obs::validate::validate_trace(&src) {
        Ok(s) => {
            println!(
                "trace ok: {} events ({} spans, {} instants, {} counter samples) \
                 on {} thread{}, {:.1} ms, categories: {}",
                s.events,
                s.spans,
                s.instants,
                s.counters,
                s.threads,
                if s.threads == 1 { "" } else { "s" },
                s.span_end_us as f64 / 1e3,
                s.categories.join(","),
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("accsat trace-check: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Parse a `--shard I/N` operand.
fn parse_shard(s: &str) -> Option<(usize, usize)> {
    let (i, n) = s.split_once('/')?;
    let (i, n) = (i.parse::<usize>().ok()?, n.parse::<usize>().ok()?);
    (n > 0 && i < n).then_some((i, n))
}

fn parse_variant(v: Option<&str>) -> Option<Variant> {
    match v {
        Some("cse") => Some(Variant::Cse),
        Some("cse+sat") => Some(Variant::CseSat),
        Some("cse+bulk") => Some(Variant::CseBulk),
        Some("accsat") => Some(Variant::AccSat),
        _ => None,
    }
}

/// `accsat batch` / `accsat tune`: the parallel drivers over a benchmark
/// suite. `tune_mode` switches the per-kernel objective from the static
/// cost model to simulated cycles, and makes all output deterministic
/// (byte-identical at any `--threads`).
fn batch_main(args: Vec<String>, mut tune_mode: bool) -> ExitCode {
    let mut suite = "npb".to_string();
    let mut variant = Variant::AccSat;
    let mut par = ParallelConfig::default();
    let mut json: Option<String> = None;
    let mut stable_json: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut cache_dir: Option<String> = None;
    let mut extract_budget: Option<u64> = None;
    let mut sat_threads: Option<usize> = None;
    let mut tcfg = TuneConfig::default();
    // tuner-only flags seen while parsing: a plain batch must reject
    // them instead of silently ignoring the user's tuning intent
    let mut tune_flags: Vec<&'static str> = Vec::new();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--suite" => match it.next().as_deref() {
                Some(s @ ("npb" | "spec" | "all")) => suite = s.to_string(),
                other => {
                    eprintln!("unknown suite: {other:?}");
                    return usage();
                }
            },
            "--variant" => match parse_variant(it.next().as_deref()) {
                Some(v) => variant = v,
                None => {
                    eprintln!("unknown variant");
                    return usage();
                }
            },
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => par.threads = n,
                _ => {
                    eprintln!("--threads needs a positive integer");
                    return usage();
                }
            },
            "--deadline-ms" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(ms) => par.kernel_deadline = Some(Duration::from_millis(ms)),
                None => {
                    eprintln!("--deadline-ms needs an integer");
                    return usage();
                }
            },
            "--extract-budget" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n > 0 => extract_budget = Some(n),
                _ => {
                    eprintln!("--extract-budget needs a positive node count");
                    return usage();
                }
            },
            "--sat-threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => sat_threads = Some(n),
                _ => {
                    eprintln!("--sat-threads needs a positive integer");
                    return usage();
                }
            },
            "--json" => match it.next() {
                Some(path) => json = Some(path),
                None => {
                    eprintln!("--json needs an output path");
                    return usage();
                }
            },
            "--stable-json" => match it.next() {
                Some(path) => stable_json = Some(path),
                None => {
                    eprintln!("--stable-json needs an output path");
                    return usage();
                }
            },
            "--metrics" => match it.next() {
                Some(path) => metrics_out = Some(path),
                None => {
                    eprintln!("--metrics needs an output path");
                    return usage();
                }
            },
            "--trace-out" => match it.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out needs an output path");
                    return usage();
                }
            },
            "--cache-dir" => match it.next() {
                Some(dir) => cache_dir = Some(dir),
                None => {
                    eprintln!("--cache-dir needs a directory");
                    return usage();
                }
            },
            "--shard" => match it.next().as_deref().and_then(parse_shard) {
                Some(sh) => par.shard = Some(sh),
                None => {
                    eprintln!("--shard needs I/N with 0 <= I < N");
                    return usage();
                }
            },
            "--tune" => tune_mode = true,
            "--device" => {
                tune_flags.push("--device");
                match it.next().as_deref() {
                    Some("pcie" | "a100-40g") => tcfg.device = Device::a100_pcie_40gb(),
                    Some("sxm" | "a100-80g") => tcfg.device = Device::a100_sxm4_80gb(),
                    other => {
                        eprintln!("unknown device: {other:?} (pcie|sxm)");
                        return usage();
                    }
                }
            }
            "--compiler" => {
                tune_flags.push("--compiler");
                match it.next().as_deref() {
                    Some("nvhpc") => {
                        tcfg.compiler = CompilerModel::new(Compiler::Nvhpc, Model::OpenAcc)
                    }
                    Some("gcc") => {
                        tcfg.compiler = CompilerModel::new(Compiler::Gcc, Model::OpenAcc)
                    }
                    other => {
                        eprintln!("unknown compiler: {other:?} (nvhpc|gcc)");
                        return usage();
                    }
                }
            }
            "--sweep" => {
                tune_flags.push("--sweep");
                let vals: Option<Vec<u64>> = it
                    .next()
                    .map(|s| s.split(',').map(|v| v.trim().parse::<u64>().ok()).collect())
                    .unwrap_or(None);
                match vals {
                    Some(v) if !v.is_empty() => tcfg.sweep = v,
                    _ => {
                        eprintln!("--sweep needs a comma-separated list of heavy costs");
                        return usage();
                    }
                }
            }
            "--keep" => {
                tune_flags.push("--keep");
                match it.next().and_then(|n| n.parse::<usize>().ok()) {
                    Some(k) if k > 0 => tcfg.keep = k,
                    _ => {
                        eprintln!("--keep needs a positive integer");
                        return usage();
                    }
                }
            }
            _ => {
                eprintln!("unknown batch flag: {arg}");
                return usage();
            }
        }
    }

    if !tune_mode && !tune_flags.is_empty() {
        eprintln!(
            "accsat batch: {} only take{} effect with --tune (or `accsat tune`)",
            tune_flags.join(", "),
            if tune_flags.len() == 1 { "s" } else { "" },
        );
        return usage();
    }

    let benches = match suite.as_str() {
        "npb" => accsat_benchmarks::npb_benchmarks(),
        "spec" => accsat_benchmarks::spec_benchmarks(),
        _ => accsat_benchmarks::all_benchmarks(),
    };
    let mut config = SaturatorConfig::default();
    if let Some(n) = extract_budget {
        config.extraction_node_budget = n;
    }
    // rule search defaults to the pool width: the two-level budget only
    // grants extra threads when workers are idle, and the output is
    // byte-identical at any width either way
    config.sat_threads = sat_threads.unwrap_or(par.threads);
    if let Some(dir) = &cache_dir {
        match StageCache::with_dir(std::path::Path::new(dir)) {
            Ok(c) => config.cache = Some(std::sync::Arc::new(c)),
            Err(e) => {
                eprintln!("accsat batch: cannot open cache dir {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if trace_out.is_some() {
        accsat::obs::trace::start();
    }
    let report = if tune_mode {
        tune_suite(&benches, variant, &config, &tcfg, &par)
    } else {
        optimize_suite(&benches, variant, &config, &par)
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("accsat batch: {e}");
            return ExitCode::FAILURE;
        }
    };

    if tune_mode {
        // everything printed here is deterministic: simulated metrics
        // only, never wall-clock measurements
        print!("{}", report.render_tuning_table());
        let kernels = report.total_kernels();
        let (mut simulated, mut divergent) = (0usize, 0usize);
        for b in &report.benchmarks {
            for s in b.kernel_stats() {
                if let Some(t) = &s.tuning {
                    simulated += t.candidates.len();
                    divergent += t.divergent() as usize;
                }
            }
        }
        println!(
            "{kernels} kernels tuned, {simulated} candidates simulated, \
             {divergent} divergent, total static cost {}",
            report.total_cost(),
        );
    } else {
        print!("{}", report.render_table());
        let wall = report.wall.as_secs_f64();
        let work = report.sequential_work().as_secs_f64();
        println!(
            "{} kernels ({} proven optimal, bound gap {}), total cost {}, \
             wall {:.2} s on {} threads (Σ kernel time {:.2} s, {:.2}x)",
            report.total_kernels(),
            report.proven_kernels(),
            report.total_bound_gap(),
            report.total_cost(),
            wall,
            report.threads,
            work,
            if wall > 0.0 { work / wall } else { 1.0 },
        );
    }
    if let Some(path) = json {
        let body = if tune_mode { report.to_stable_json() } else { report.to_json() };
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("accsat batch: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !tune_mode {
            // (suppressed in tune mode to keep stdout byte-identical
            // regardless of whether --json is passed)
            println!("report written to {path}");
        }
    }
    if let Some(path) = stable_json {
        // the timing-free report: byte-identical warm vs cold and at any
        // thread count — CI diffs this file across cache states
        if let Err(e) = std::fs::write(&path, report.to_stable_json()) {
            eprintln!("accsat batch: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = metrics_out {
        // the deterministic counter/histogram report: byte-identical at
        // any --threads — CI diffs this file across thread counts
        let mut reg = report.metrics();
        if let Some(cache) = &config.cache {
            cache.stats().add_to(&mut reg);
        }
        if let Err(e) = std::fs::write(&path, reg.to_text()) {
            eprintln!("accsat batch: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &trace_out {
        if let Err(code) = write_trace(path, "accsat batch") {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// `accsat fuzz`: the differential kernel fuzzer. Stdout and the JSON
/// report are deterministic functions of `--cases`/`--seed` alone — CI
/// diffs them across thread counts; timing goes to stderr only.
fn fuzz_main(args: Vec<String>) -> ExitCode {
    let mut fc = FuzzConfig::default();
    let mut json: Option<String> = None;
    let mut corpus: Option<String> = None;
    let mut trace_out: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cases" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(n) if n > 0 => fc.cases = n,
                _ => {
                    eprintln!("--cases needs a positive integer");
                    return usage();
                }
            },
            "--seed" => match it.next().and_then(|n| n.parse::<u64>().ok()) {
                Some(s) => fc.seed = s,
                None => {
                    eprintln!("--seed needs an integer");
                    return usage();
                }
            },
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => fc.threads = n,
                _ => {
                    eprintln!("--threads needs a positive integer");
                    return usage();
                }
            },
            "--sat-threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => fc.saturator.sat_threads = n,
                _ => {
                    eprintln!("--sat-threads needs a positive integer");
                    return usage();
                }
            },
            "--json" => match it.next() {
                Some(path) => json = Some(path),
                None => {
                    eprintln!("--json needs an output path");
                    return usage();
                }
            },
            "--corpus" => match it.next() {
                Some(dir) => corpus = Some(dir),
                None => {
                    eprintln!("--corpus needs a directory");
                    return usage();
                }
            },
            "--cache" => fc.cache_check = true,
            "--cache-dir" => match it.next() {
                Some(dir) => {
                    fc.cache_check = true;
                    fc.cache_dir = Some(std::path::PathBuf::from(dir));
                }
                None => {
                    eprintln!("--cache-dir needs a directory");
                    return usage();
                }
            },
            "--trace-out" => match it.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out needs an output path");
                    return usage();
                }
            },
            _ => {
                eprintln!("unknown fuzz flag: {arg}");
                return usage();
            }
        }
    }

    if trace_out.is_some() {
        accsat::obs::trace::start();
    }
    let t = std::time::Instant::now();
    let report = run_campaign(&fc);
    let wall = t.elapsed().as_secs_f64();
    eprintln!(
        "accsat fuzz: {} cases in {:.2} s ({:.0} cases/s) on {} thread{}",
        fc.cases,
        wall,
        if wall > 0.0 { fc.cases as f64 / wall } else { 0.0 },
        fc.threads,
        if fc.threads == 1 { "" } else { "s" },
    );
    print!("{}", report.render_summary());
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, report.to_stable_json()) {
            eprintln!("accsat fuzz: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(dir) = corpus {
        match report.write_corpus(std::path::Path::new(&dir), &fc) {
            Ok(paths) => {
                if !paths.is_empty() {
                    eprintln!("accsat fuzz: {} repro(s) written to {dir}", paths.len());
                }
            }
            Err(e) => {
                eprintln!("accsat fuzz: cannot write corpus to {dir}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &trace_out {
        if let Err(code) = write_trace(path, "accsat fuzz") {
            return code;
        }
    }
    if report.failures.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `accsat serve`: the persistent optimization service. Compiles the rule
/// set once, then answers line-delimited requests on stdin/stdout (or a
/// Unix socket) with one JSON object per line, amortizing pipeline stages
/// across requests through the content-addressed cache.
fn serve_main(args: Vec<String>) -> ExitCode {
    let mut cfg = ServeConfig::default();
    let mut cache_dir: Option<String> = None;
    let mut cache_cap: Option<usize> = None;
    let mut socket: Option<String> = None;
    let mut trace_out: Option<String> = None;

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => cfg.threads = n,
                _ => {
                    eprintln!("--threads needs a positive integer");
                    return usage();
                }
            },
            "--cache-dir" => match it.next() {
                Some(dir) => cache_dir = Some(dir),
                None => {
                    eprintln!("--cache-dir needs a directory");
                    return usage();
                }
            },
            "--cache-cap" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => cache_cap = Some(n),
                _ => {
                    eprintln!("--cache-cap needs a positive entry count");
                    return usage();
                }
            },
            "--socket" => match it.next() {
                Some(path) => socket = Some(path),
                None => {
                    eprintln!("--socket needs a path");
                    return usage();
                }
            },
            "--trace-out" => match it.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out needs an output path");
                    return usage();
                }
            },
            _ => {
                eprintln!("unknown serve flag: {arg}");
                return usage();
            }
        }
    }

    let mem_cap = cache_cap.unwrap_or(DEFAULT_MEM_CAPACITY);
    let disk_cap = cache_cap.unwrap_or(DEFAULT_DISK_CAPACITY);
    let cache = match &cache_dir {
        Some(dir) => {
            let dir = std::path::PathBuf::from(dir);
            if let Err(e) = std::fs::create_dir_all(dir.join("parsed"))
                .and_then(|()| std::fs::create_dir_all(dir.join("sat")))
                .and_then(|()| std::fs::create_dir_all(dir.join("sel")))
            {
                eprintln!("accsat serve: cannot open cache dir {}: {e}", dir.display());
                return ExitCode::FAILURE;
            }
            StageCache::new(Some(dir), mem_cap, disk_cap)
        }
        None => StageCache::new(None, mem_cap, disk_cap),
    };
    cfg.saturator.cache = Some(std::sync::Arc::new(cache));

    if trace_out.is_some() {
        accsat::obs::trace::start();
    }
    let result = match socket {
        Some(path) => {
            #[cfg(unix)]
            {
                eprintln!("accsat serve: listening on {path}");
                accsat::serve::serve_unix_socket(std::path::Path::new(&path), &cfg)
            }
            #[cfg(not(unix))]
            {
                eprintln!("accsat serve: --socket {path} requires a Unix platform");
                return ExitCode::FAILURE;
            }
        }
        // `Stdout` (not `StdoutLock`) — the session's writer thread needs
        // a `Send` sink, and the lock guard is thread-bound
        None => run_session(std::io::stdin().lock(), std::io::stdout(), &cfg),
    };
    if let Some(path) = &trace_out {
        if let Err(code) = write_trace(path, "accsat serve") {
            return code;
        }
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("accsat serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("batch") => return batch_main(args.into_iter().skip(1).collect(), false),
        Some("tune") => return batch_main(args.into_iter().skip(1).collect(), true),
        Some("fuzz") => return fuzz_main(args.into_iter().skip(1).collect()),
        Some("serve") => return serve_main(args.into_iter().skip(1).collect()),
        Some("trace-check") => return trace_check_main(args.into_iter().skip(1).collect()),
        _ => {}
    }
    let mut variant = Variant::AccSat;
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut trace_out: Option<String> = None;
    let mut stats = false;
    let mut config = SaturatorConfig::default();

    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--variant" => {
                let Some(v) = parse_variant(it.next().as_deref()) else {
                    eprintln!("unknown variant");
                    return usage();
                };
                variant = v;
            }
            "--sat-threads" => match it.next().and_then(|n| n.parse::<usize>().ok()) {
                Some(n) if n > 0 => config.sat_threads = n,
                _ => {
                    eprintln!("--sat-threads needs a positive integer");
                    return usage();
                }
            },
            "--stats" => stats = true,
            "--metrics" => match it.next() {
                Some(path) => metrics_out = Some(path),
                None => {
                    eprintln!("--metrics needs an output path");
                    return usage();
                }
            },
            "--trace-out" => match it.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace-out needs an output path");
                    return usage();
                }
            },
            "-o" => output = it.next(),
            "-h" | "--help" => return usage(),
            other if !other.starts_with('-') => input = Some(other.to_string()),
            other => {
                eprintln!("unknown flag: {other}");
                return usage();
            }
        }
    }

    let Some(input) = input else { return usage() };
    if trace_out.is_some() {
        accsat::obs::trace::start();
    }
    let src = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("accsat: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let prog = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("accsat: {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (optimized, kernel_stats) = match optimize_program_with(&prog, variant, &config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("accsat: optimization failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if stats {
        for s in &kernel_stats {
            eprintln!(
                "accsat: kernel `{}`: {} e-nodes, {} iterations ({:?}), \
                 cost {}, ssa+codegen {:.1} ms, saturation {:.1} ms, extraction {:.1} ms",
                s.function,
                s.egraph_nodes,
                s.saturation_iters,
                s.stop_reason,
                s.extracted_cost,
                s.ssa_codegen.as_secs_f64() * 1e3,
                s.saturation.as_secs_f64() * 1e3,
                s.extraction.as_secs_f64() * 1e3,
            );
        }
    }
    let text = print_program(&optimized);
    match output {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("accsat: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
        None => print!("{text}"),
    }
    if let Some(path) = metrics_out {
        let mut reg = accsat::obs::MetricsRegistry::new();
        for s in &kernel_stats {
            accsat::metrics::add_opt_stats(&mut reg, s);
        }
        if let Err(e) = std::fs::write(&path, reg.to_text()) {
            eprintln!("accsat: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Some(path) = &trace_out {
        if let Err(code) = write_trace(path, "accsat") {
            return code;
        }
    }
    ExitCode::SUCCESS
}
