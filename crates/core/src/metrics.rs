//! Assembling the deterministic metrics report from per-run statistics.
//!
//! This module is the bridge between the pipeline's per-kernel
//! [`OptStats`] / the cache's [`CacheStats`] and the passive
//! [`MetricsRegistry`] of `accsat-obs`: drivers (batch, serve, the
//! single-file CLI) call [`add_opt_stats`] once per optimized kernel and
//! [`CacheStats::add_to`] once per cache snapshot, then render the merged
//! registry with `to_text` (the `--metrics` file) or `to_json` (the serve
//! protocol's `metrics` reply).
//!
//! Everything folded in here is a deterministic counter: rule match
//! counts, per-iteration e-graph growth, branch-and-bound explored and
//! pruned totals, winner and stop-reason tallies. No wall clock —
//! durations stay in [`OptStats`] for the human tables and in the trace
//! sink for profiles — so the rendered report is byte-identical at any
//! thread count and any worker interleaving (registries merge
//! commutatively).
//!
//! [`CacheStats`]: crate::cache::CacheStats
//! [`CacheStats::add_to`]: crate::cache::CacheStats::add_to

use crate::pipeline::OptStats;
use accsat_egraph::StopReason;
use accsat_obs::MetricsRegistry;

fn stop_name(stop: Option<StopReason>) -> &'static str {
    match stop {
        None => "none",
        Some(StopReason::Saturated) => "saturated",
        Some(StopReason::NodeLimit) => "node-limit",
        Some(StopReason::IterLimit) => "iter-limit",
        Some(StopReason::TimeLimit) => "time-limit",
    }
}

/// Fold one kernel's [`OptStats`] into a registry. Every value added is a
/// deterministic counter; merging per-kernel registries in any order
/// yields the same totals.
pub fn add_opt_stats(reg: &mut MetricsRegistry, s: &OptStats) {
    reg.add("kernels", 1);
    reg.add(&format!("cache.request.{}", s.cache_level.label()), 1);
    reg.add(&format!("stop.{}", stop_name(s.stop_reason)), 1);

    reg.add("saturation.iterations", s.saturation_iters as u64);
    reg.add("egraph.nodes", s.egraph_nodes as u64);
    reg.observe("kernel.egraph_nodes", s.egraph_nodes as u64);
    for it in &s.iteration_counts {
        reg.add("saturation.matches", it.matches as u64);
        reg.add("saturation.applied", it.applied as u64);
        reg.observe("saturation.nodes_per_iter", it.total_nodes as u64);
        reg.observe("saturation.classes_per_iter", it.num_classes as u64);
    }
    for r in &s.rule_stats {
        if r.matches > 0 || r.applied > 0 {
            reg.add(&format!("rule.{}.matches", r.name), r.matches as u64);
            reg.add(&format!("rule.{}.applied", r.name), r.applied as u64);
        }
        if r.times_banned > 0 {
            reg.add(&format!("rule.{}.banned", r.name), r.times_banned as u64);
        }
    }

    reg.add("extraction.cost", s.extracted_cost);
    reg.add("extraction.explored", s.extraction_explored);
    reg.add("extraction.prune.orbit", s.extraction_pruned[0] as u64);
    reg.add("extraction.prune.dominance", s.extraction_pruned[1] as u64);
    reg.add("extraction.prune.closure", s.extraction_pruned[2] as u64);
    reg.add(&format!("extraction.winner.{}", s.extraction_winner), 1);
    if s.extraction_proven {
        reg.add("extraction.proven", 1);
    }
    reg.add("extraction.bound_gap", s.bound_gap());
    reg.observe("kernel.cost", s.extracted_cost);
    reg.observe("kernel.explored", s.extraction_explored);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::StageCache;
    use crate::pipeline::{optimize_program, SaturatorConfig, Variant};
    use accsat_ir::parse_program;
    use std::sync::Arc;

    const KERNEL: &str = r#"
void k(double a[32], double out[32], double c) {
  #pragma acc parallel loop gang vector
  for (int i = 1; i < 31; i++) {
    out[i] = c * a[i - 1] + c * a[i] + c * a[i + 1];
  }
}
"#;

    #[test]
    fn registry_reflects_a_real_run() {
        let prog = parse_program(KERNEL).unwrap();
        let (_, stats) = optimize_program(&prog, Variant::AccSat).unwrap();
        let mut reg = MetricsRegistry::new();
        for s in &stats {
            add_opt_stats(&mut reg, s);
        }
        assert_eq!(reg.counter("kernels"), 1);
        assert_eq!(reg.counter("cache.request.miss"), 1);
        assert!(reg.counter("saturation.iterations") > 0);
        assert!(reg.counter("saturation.matches") > 0);
        assert!(reg.counter("egraph.nodes") > 10);
        assert!(reg.counter("extraction.cost") > 0);
        assert_eq!(reg.counter(&format!("extraction.winner.{}", stats[0].extraction_winner)), 1);
        assert_eq!(reg.histogram("kernel.cost").unwrap().count, 1);
        // per-iteration growth histogram has one sample per iteration
        assert_eq!(
            reg.histogram("saturation.nodes_per_iter").unwrap().count as usize,
            stats[0].saturation_iters
        );
        // rendering is reproducible
        assert_eq!(reg.to_text(), {
            let mut again = MetricsRegistry::new();
            for s in &stats {
                add_opt_stats(&mut again, s);
            }
            again.to_text()
        });
    }

    #[test]
    fn warm_cache_hit_replays_cold_metrics() {
        // a selected-level hit must fold in the same saturation counters
        // the original run measured (cache.request.* differs, by design)
        let prog = parse_program(KERNEL).unwrap();
        let cache = Arc::new(StageCache::in_memory());
        let config = SaturatorConfig { cache: Some(cache), ..SaturatorConfig::default() };
        let run = |config: &SaturatorConfig| {
            let (_, stats) =
                crate::pipeline::optimize_program_with(&prog, Variant::AccSat, config).unwrap();
            let mut reg = MetricsRegistry::new();
            for s in &stats {
                add_opt_stats(&mut reg, s);
            }
            reg
        };
        let cold = run(&config);
        let warm = run(&config);
        assert_eq!(cold.counter("cache.request.miss"), 1);
        assert_eq!(warm.counter("cache.request.selected"), 1);
        for key in [
            "saturation.iterations",
            "saturation.matches",
            "saturation.applied",
            "egraph.nodes",
            "extraction.cost",
            "extraction.explored",
        ] {
            assert_eq!(cold.counter(key), warm.counter(key), "{key} must replay");
        }
        assert_eq!(
            cold.histogram("saturation.nodes_per_iter"),
            warm.histogram("saturation.nodes_per_iter")
        );
        // the warm run re-claims the cold run's flight key → one
        // deterministic coalesce in the cache counters
        assert_eq!(config.cache.as_ref().unwrap().stats().coalesced, 1);
    }
}
