//! `accsat` — ACC Saturator: automatic kernel optimization for
//! directive-based GPU code through equality saturation.
//!
//! This is the top-level crate of the reproduction of *"ACC Saturator:
//! Automatic Kernel Optimization for Directive-Based GPU Code"* (SC 2024).
//! It wires the substrate crates into the paper's pipeline (Fig. 1):
//!
//! ```text
//!  OpenACC/OpenMP C ──parse──▶ AST ──SSA──▶ e-graph ──saturate──▶ e-graph*
//!       ▲                                                            │
//!       └────────────── codegen (temps + bulk load) ◀── extract ─────┘
//! ```
//!
//! # Quick start
//!
//! ```
//! use accsat::{optimize_program, Variant};
//!
//! let src = r#"
//! void axpy(double x[64], double y[64], double a) {
//!   #pragma acc parallel loop gang vector_length(64)
//!   for (int i = 0; i < 64; i++) {
//!     y[i] = a * x[i] + y[i];
//!   }
//! }
//! "#;
//! let prog = accsat_ir::parse_program(src).unwrap();
//! let (optimized, stats) = optimize_program(&prog, Variant::AccSat).unwrap();
//! let text = accsat_ir::print_program(&optimized);
//! assert!(text.contains("#pragma acc parallel loop"), "directives preserved");
//! assert_eq!(stats.len(), 1);
//! ```
//!
//! The four generated-code variants of the evaluation (§VIII) are
//! [`Variant::Cse`], [`Variant::CseSat`], [`Variant::CseBulk`] and
//! [`Variant::AccSat`]; [`Variant::Original`] passes code through untouched.

pub mod batch;
pub mod cache;
pub mod evaluate;
pub mod fuzz;
pub mod metrics;
pub mod pipeline;
pub mod report;
pub mod serve;

pub use batch::{
    optimize_suite, tune_suite, BatchReport, BenchmarkRecord, FunctionRecord, ParallelConfig,
};
pub use cache::{
    sat_stage_key, sel_stage_key, CacheLevel, CacheStats, SatEntry, SelEntry, StageCache,
};
pub use evaluate::{evaluate_benchmark, speedup, BenchmarkResult, KernelResult};
pub use fuzz::{
    check_kernel, check_seeded, minimize_function, run_campaign, run_case, CaseOutcome, Finding,
    FuzzConfig, FuzzReport,
};
pub use metrics::add_opt_stats;
pub use pipeline::{
    optimize_function, optimize_program, optimize_program_with, tune_function, OptStats,
    SaturatorConfig, Variant,
};
pub use report::{format_speedup_row, render_table};
pub use serve::{optimize_source, run_session, ServeConfig};

// Re-export the substrate crates so downstream users need a single
// dependency.
pub use accsat_autotune as autotune;
pub use accsat_benchmarks as benchmarks;
pub use accsat_codegen as codegen;
pub use accsat_compilers as compilers;
pub use accsat_egraph as egraph;
pub use accsat_extract as extract;
pub use accsat_gpusim as gpusim;
pub use accsat_interp as interp;
pub use accsat_ir as ir;
pub use accsat_obs as obs;
pub use accsat_ssa as ssa;

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_ir::{parse_program, print_program};

    const MATMUL: &str = r#"
void mm(double a[16][16], double b[16][16], double c[16][16], double r[16][16],
        double alpha, double beta) {
  #pragma acc kernels loop independent
  for (int i = 0; i < 16; i++) {
    #pragma acc loop independent gang(16) vector(256)
    for (int j = 0; j < 16; j++) {
      double tmp = 0.0;
      for (int l = 0; l < 16; l++) {
        tmp += a[i][l] * b[l][j];
      }
      r[i][j] = alpha * tmp + beta * c[i][j];
    }
  }
}
"#;

    #[test]
    fn listing1_pipeline_all_variants() {
        let prog = parse_program(MATMUL).unwrap();
        for v in [Variant::Cse, Variant::CseSat, Variant::CseBulk, Variant::AccSat] {
            let (opt, stats) = optimize_program(&prog, v).unwrap();
            let text = print_program(&opt);
            assert!(text.contains("gang(16) vector(256)"), "{v:?}: directives kept");
            assert_eq!(stats.len(), 1, "{v:?}: one kernel optimized");
            assert!(stats[0].egraph_nodes > 0);
        }
    }

    #[test]
    fn original_variant_is_identity() {
        let prog = parse_program(MATMUL).unwrap();
        let (opt, stats) = optimize_program(&prog, Variant::Original).unwrap();
        assert_eq!(opt, prog);
        assert!(stats.is_empty());
    }

    #[test]
    fn saturation_runs_only_for_sat_variants() {
        let prog = parse_program(MATMUL).unwrap();
        let (_, cse) = optimize_program(&prog, Variant::Cse).unwrap();
        let (_, sat) = optimize_program(&prog, Variant::AccSat).unwrap();
        assert_eq!(cse[0].saturation_iters, 0);
        assert!(sat[0].saturation_iters > 0);
        assert!(sat[0].egraph_nodes >= cse[0].egraph_nodes);
    }
}
