//! `accsat fuzz` — the differential kernel fuzzer.
//!
//! Every e-graph optimization must preserve semantics (paper §IV). The
//! property tests check that claim on hand-picked shapes; this module
//! checks it *at scale*: a seeded stream of random kernels (from
//! [`accsat_benchmarks::genkern`]) runs through the full saturate →
//! extract → codegen pipeline under every [`Variant`], and each result is
//! validated against two oracles:
//!
//! 1. **Differential oracle** — the interpreter executes the original and
//!    the optimized kernel on identical inputs; outputs must agree within
//!    a fast-math tolerance ([`accsat_interp::compare_arrays_with`]).
//! 2. **Structural invariants** — the portfolio's claimed cost must equal
//!    the selection's recomputed DAG cost, the certified lower bound must
//!    not exceed the cost, the selection must be acyclic and total over
//!    the extraction roots ([`Selection::try_reachable`]), and the
//!    optimized source must survive a printer round-trip.
//! 3. **Cache oracle** (opt-in, [`FuzzConfig::cache_check`] / `--cache`) —
//!    the pipeline runs cold then warm through a content-addressed stage
//!    cache; the warm run must be byte-identical and hit the `selected`
//!    level (`cache-divergence` / `cache-level` findings otherwise).
//!
//! Campaigns are deterministic: per-case seeds derive from the campaign
//! seed and the case index alone, workers write pre-allocated result
//! slots (the `batch` pool discipline), and the report contains no
//! wall-clock fields — so `--threads 1` and `--threads 8` produce
//! byte-identical stdout and JSON, which CI diffs.
//!
//! When a case fails, a greedy AST minimizer ([`minimize_function`])
//! shrinks it while the *same* invariant keeps failing, and the shrunk
//! repro can be written to a corpus directory as a standalone `.sat` file.
//!
//! [`Selection::try_reachable`]: accsat_extract::Selection::try_reachable

use crate::pipeline::{SaturatorConfig, Variant};
use accsat_benchmarks::genkern::{generate_kernel, GenConfig, GeneratedKernel, SplitMix64};
use accsat_codegen::{generate, CodegenOptions, TypeMap};
use accsat_egraph::{Runner, RunnerLimits};
use accsat_extract::{extract_portfolio, PortfolioConfig};
use accsat_interp::{compare_arrays_with, try_run_function, ArrayData, Env, EvalErrorKind};
use accsat_ir::{parse_program, print_program, Block, Expr, Function, Program, Stmt};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Campaign configuration.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of kernels to generate and check.
    pub cases: u64,
    /// Campaign seed: together with a case's index it fully determines
    /// that case (kernel, inputs, and verdict).
    pub seed: u64,
    /// Worker threads. Never affects results, only wall clock.
    pub threads: usize,
    /// Kernel-generator knobs.
    pub gen: GenConfig,
    /// Pipeline configuration. Defaults to small, fully deterministic
    /// limits (the node budget binds, never the wall clock) so debug-build
    /// campaigns stay fast.
    pub saturator: SaturatorConfig,
    /// Relative tolerance of the differential oracle.
    pub rel_tol: f64,
    /// Absolute floor of the differential oracle. Raised well above the
    /// default 1e-12 because saturation reassociates under fast-math
    /// semantics: catastrophic cancellation near zero is rounding noise,
    /// while real miscompiles produce O(1) errors.
    pub abs_tol: f64,
    /// Interpreter loop fuel per run (generated kernels execute a few
    /// hundred iterations; anything beyond this is a runaway loop).
    pub fuel: u64,
    /// Cap on minimizer pipeline re-runs per failing case.
    pub max_shrink_attempts: usize,
    /// Run the **cache oracle**: each variant additionally goes through
    /// the pipeline twice with a stage cache — cold populating, warm
    /// reading — and any byte difference between the two outputs (or a
    /// warm run that fails to reach the `selected` level) is a finding
    /// (`cache-divergence` / `cache-level`). Off by default: it triples
    /// per-case pipeline work.
    pub cache_check: bool,
    /// Directory for the cache oracle's store. `None` (default) gives
    /// every case a fresh in-memory cache, which keeps findings
    /// independent of case execution order; a directory additionally
    /// exercises the disk round-trip, sharing entries across cases.
    pub cache_dir: Option<std::path::PathBuf>,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            cases: 200,
            seed: 7,
            threads: 1,
            gen: GenConfig::default(),
            saturator: SaturatorConfig {
                limits: RunnerLimits { node_limit: 1500, iter_limit: 3, ..Default::default() },
                extraction_node_budget: 10_000,
                extraction_budget: Duration::from_secs(60),
                ..Default::default()
            },
            rel_tol: 1e-5,
            abs_tol: 1e-5,
            fuel: 100_000,
            max_shrink_attempts: 300,
            cache_check: false,
            cache_dir: None,
        }
    }
}

/// One violated invariant on one case.
#[derive(Debug, Clone, PartialEq)]
pub struct Finding {
    /// Variant label (`"-"` for variant-independent findings such as a
    /// generator parse failure).
    pub variant: &'static str,
    /// Stable invariant key (`differential`, `cost-mismatch`, …): the
    /// minimizer shrinks while this exact key keeps failing.
    pub invariant: &'static str,
    /// Human-readable specifics (mismatching values, error text).
    pub detail: String,
}

/// A shrunk reproduction of a failing case.
#[derive(Debug, Clone)]
pub struct MinimizedRepro {
    /// The shrunk kernel source (still failing the same invariant).
    pub source: String,
    /// Statement count before / after shrinking.
    pub stmts_before: usize,
    pub stmts_after: usize,
}

/// Verdict for one generated case.
#[derive(Debug, Clone)]
pub struct CaseOutcome {
    pub index: u64,
    pub seed: u64,
    pub flavor: &'static str,
    /// `Some(reason)` when the *original* kernel failed to run — an
    /// interpreter limitation or generator gap, not an optimizer bug; the
    /// case is skipped rather than failed.
    pub skipped: Option<String>,
    /// All violated invariants (empty = pass).
    pub findings: Vec<Finding>,
    /// Shrunk repro for the first finding, when the minimizer applies.
    pub minimized: Option<MinimizedRepro>,
}

/// Campaign report. Contains no wall-clock or thread-count fields: two
/// runs with the same `--cases/--seed` render byte-identical summaries
/// and JSON at any thread count.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    pub cases: u64,
    pub seed: u64,
    /// Generated-flavor histogram (sorted by flavor name).
    pub flavors: Vec<(String, u64)>,
    pub passed: u64,
    pub skipped: u64,
    /// Failing cases in index order, each carrying its outcome.
    pub failures: Vec<CaseOutcome>,
}

/// Derive the seed of case `index` from the campaign seed. Pure function
/// of `(campaign, index)`, so results are independent of which worker
/// claims the case.
fn case_seed(campaign: u64, index: u64) -> u64 {
    SplitMix64::new(campaign ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15)).next_u64()
}

/// Build the input environment for a generated kernel: every array cell
/// and scalar parameter drawn from `[0.5, 2.5]` — positive and away from
/// zero, which the generator's safety discipline relies on.
fn build_env(gk: &GeneratedKernel, seed: u64) -> Env {
    let mut rng = SplitMix64::new(seed ^ 0xC0FF_EE00_D15E_A5E5);
    let mut env = Env::new();
    for (name, dims) in &gk.arrays {
        let len: usize = dims.iter().product();
        let data: Vec<f64> = (0..len).map(|_| rng.range_f64(0.5, 2.5)).collect();
        env.set_array(name, ArrayData::from_f64(dims, data));
    }
    for s in &gk.scalars {
        env.set_f64(s, rng.range_f64(0.5, 2.5));
    }
    env
}

/// Stable invariant key for an optimized-run interpreter error: the
/// optimizer turned a clean kernel into one that traps, and the typed
/// [`EvalErrorKind`] says how.
fn run_invariant(kind: EvalErrorKind) -> &'static str {
    match kind {
        EvalErrorKind::UnboundVariable => "opt-run:unbound-variable",
        EvalErrorKind::UnboundArray => "opt-run:unbound-array",
        EvalErrorKind::ShapeMismatch => "opt-run:shape-mismatch",
        EvalErrorKind::OutOfBounds => "opt-run:out-of-bounds",
        EvalErrorKind::DivisionByZero => "opt-run:division-by-zero",
        EvalErrorKind::FuelExhausted => "opt-run:fuel-exhausted",
        EvalErrorKind::BadCall => "opt-run:bad-call",
        EvalErrorKind::Unsupported => "opt-run:unsupported",
    }
}

/// Run the pipeline stages on every kernel of `f` under `variant`,
/// checking the extraction invariants stage by stage. Returns the
/// optimized function plus any structural findings.
fn optimize_checked(
    f: &Function,
    variant: Variant,
    fc: &FuzzConfig,
) -> Result<(Function, Vec<Finding>), String> {
    let tm = TypeMap::from_function(f);
    let bodies: Vec<Block> =
        accsat_ir::innermost_parallel_loops(f).into_iter().map(|l| l.body.clone()).collect();
    if bodies.is_empty() {
        return Err("no parallel kernel".into());
    }
    let cfg = &fc.saturator;
    let cm = cfg.cost_model;
    let pcfg = PortfolioConfig {
        threads: cfg.extraction_threads,
        node_budget: cfg.extraction_node_budget,
        deadline: cfg.extraction_budget,
    };
    let mut findings = Vec::new();
    let mut new_bodies = Vec::with_capacity(bodies.len());
    for body in &bodies {
        let mut kernel = accsat_ssa::build_kernel(body);
        if variant.saturates() {
            let runner = Runner::from_shared(cfg.rules.clone()).with_limits(cfg.limits);
            runner.run(&mut kernel.egraph);
        } else {
            kernel.egraph.rebuild();
        }
        let roots = kernel.extraction_roots();
        let ex = extract_portfolio(&kernel.egraph, &roots, &cm, &pcfg);
        if let Err(e) = ex.selection.try_reachable(&kernel.egraph, &roots) {
            findings.push(Finding {
                variant: variant.label(),
                invariant: "selection-walk",
                detail: format!("winner `{}`: {e}", ex.winner),
            });
            // the selection cannot be lowered; skip codegen for this case
            return Ok((f.clone(), findings));
        }
        let recomputed = ex.selection.dag_cost(&kernel.egraph, &cm, &roots);
        if recomputed != ex.cost {
            findings.push(Finding {
                variant: variant.label(),
                invariant: "cost-mismatch",
                detail: format!(
                    "winner `{}` claimed cost {} but the selection recomputes to {recomputed}",
                    ex.winner, ex.cost
                ),
            });
        }
        if ex.lower_bound > ex.cost {
            findings.push(Finding {
                variant: variant.label(),
                invariant: "lower-bound",
                detail: format!(
                    "certified lower bound {} exceeds achieved cost {}",
                    ex.lower_bound, ex.cost
                ),
            });
        }
        let copts = CodegenOptions { bulk_load: variant.bulk_loads() };
        new_bodies.push(generate(&kernel, &ex.selection, &tm, &copts));
    }
    let mut out = f.clone();
    for (l, nb) in accsat_ir::innermost_parallel_loops_mut(&mut out).into_iter().zip(new_bodies) {
        l.body = nb;
    }
    Ok((out, findings))
}

/// Check one function against all variants: structural invariants, the
/// optimized printer round-trip, and the differential oracle. `Err` means
/// the *original* kernel did not run cleanly (skip, not failure).
/// Run every oracle on one parsed kernel function against the inputs in
/// `env0`: the four-variant pipeline with structural invariants, the
/// printer round-trip, and the interpreter differential. `only` restricts
/// the sweep to a single variant (the minimizer's fast path). Returns
/// `Err` when the *original* kernel fails to run (a skip, not a bug).
pub fn check_kernel(
    f: &Function,
    env0: &Env,
    fc: &FuzzConfig,
    only: Option<Variant>,
) -> Result<Vec<Finding>, String> {
    let mut env_orig = env0.clone();
    if let Err(e) = try_run_function(f, &mut env_orig, fc.fuel) {
        return Err(format!("original run failed ({}): {e}", e.kind.label()));
    }
    let mut findings = Vec::new();
    for variant in Variant::all() {
        if only.is_some_and(|v| v != variant) {
            continue;
        }
        // adversarial inputs may panic deep in saturate/extract/codegen;
        // record the panic as a finding instead of aborting the campaign
        let optimized = match catch_unwind(AssertUnwindSafe(|| optimize_checked(f, variant, fc))) {
            Ok(Ok((opt, fs))) => {
                let had_walk_failure = fs.iter().any(|x| x.invariant == "selection-walk");
                findings.extend(fs);
                if had_walk_failure {
                    continue;
                }
                opt
            }
            Ok(Err(e)) => {
                findings.push(Finding {
                    variant: variant.label(),
                    invariant: "pipeline-error",
                    detail: e,
                });
                continue;
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("<non-string panic>");
                findings.push(Finding {
                    variant: variant.label(),
                    invariant: "panic",
                    detail: msg.to_string(),
                });
                continue;
            }
        };
        // printer round-trip on the optimized source
        let text = print_program(&Program { functions: vec![optimized.clone()] });
        match parse_program(&text) {
            Err(e) => {
                findings.push(Finding {
                    variant: variant.label(),
                    invariant: "opt-reparse",
                    detail: format!("{e}"),
                });
                continue;
            }
            Ok(p2) => {
                let text2 = print_program(&p2);
                if text2 != text {
                    findings.push(Finding {
                        variant: variant.label(),
                        invariant: "opt-roundtrip",
                        detail: "printed optimized source is not a print-parse fixpoint".into(),
                    });
                }
            }
        }
        // differential oracle
        let mut env_opt = env0.clone();
        match try_run_function(&optimized, &mut env_opt, fc.fuel) {
            Err(e) => {
                findings.push(Finding {
                    variant: variant.label(),
                    invariant: run_invariant(e.kind),
                    detail: format!("{e}"),
                });
            }
            Ok(_) => {
                if let Some((name, i, x, y)) =
                    compare_arrays_with(&env_orig, &env_opt, fc.rel_tol, fc.abs_tol)
                {
                    findings.push(Finding {
                        variant: variant.label(),
                        invariant: "differential",
                        detail: format!("{name}[{i}]: original {x:?} vs optimized {y:?}"),
                    });
                }
            }
        }
        // cache oracle: cold vs warm through the stage cache
        if fc.cache_check {
            findings.extend(check_cache(f, variant, fc));
        }
    }
    Ok(findings)
}

/// The cache oracle: run the *real* pipeline (`pipeline::optimize_function`,
/// not the fuzz-internal staged checker) twice through a stage cache. The
/// cold run populates every level; the warm run must (a) print
/// byte-identically, (b) agree on every stable statistic, and (c) hit the
/// `selected` level on every kernel. Any violation is a new failure kind
/// in the invariant taxonomy: `cache-divergence` for output/stat drift,
/// `cache-level` for a warm run that recomputed a stage it should have
/// reused.
fn check_cache(f: &Function, variant: Variant, fc: &FuzzConfig) -> Vec<Finding> {
    use crate::cache::{CacheLevel, StageCache};
    use crate::pipeline::optimize_function;

    let mut findings = Vec::new();
    let mut diverged = |invariant: &'static str, detail: String| {
        findings.push(Finding { variant: variant.label(), invariant, detail });
    };
    let cache = match &fc.cache_dir {
        Some(dir) => match StageCache::with_dir(dir) {
            Ok(c) => std::sync::Arc::new(c),
            Err(e) => {
                diverged("cache-divergence", format!("cannot open cache dir: {e}"));
                return findings;
            }
        },
        None => std::sync::Arc::new(StageCache::in_memory()),
    };
    let mut cfg = fc.saturator.clone();
    cfg.cache = Some(cache);
    let runs = (optimize_function(f, variant, &cfg), optimize_function(f, variant, &cfg));
    let ((cold_f, cold_s), (warm_f, warm_s)) = match runs {
        (Ok(c), Ok(w)) => (c, w),
        (Err(e), _) => {
            diverged("cache-divergence", format!("cold pipeline error: {e}"));
            return findings;
        }
        (_, Err(e)) => {
            diverged("cache-divergence", format!("warm pipeline error: {e}"));
            return findings;
        }
    };
    let cold_text = print_program(&Program { functions: vec![cold_f] });
    let warm_text = print_program(&Program { functions: vec![warm_f] });
    if cold_text != warm_text {
        diverged("cache-divergence", "warm output is not byte-identical to cold".into());
    }
    // every stable (non-wall-clock) statistic must agree
    let stable = |ss: &[crate::pipeline::OptStats]| -> Vec<_> {
        ss.iter()
            .map(|s| {
                (
                    s.extracted_cost,
                    s.extraction_proven,
                    s.extraction_winner,
                    s.extraction_explored,
                    s.extraction_lower_bound,
                    s.egraph_nodes,
                    s.saturation_iters,
                    s.stop_reason,
                    s.rule_stats.clone(),
                )
            })
            .collect()
    };
    if stable(&cold_s) != stable(&warm_s) {
        diverged("cache-divergence", "warm statistics differ from cold".into());
    }
    for (i, s) in warm_s.iter().enumerate() {
        if s.cache_level != CacheLevel::Selected {
            diverged(
                "cache-level",
                format!("warm kernel {i} reused only `{}`, expected `selected`", {
                    s.cache_level.label()
                }),
            );
        }
    }
    findings
}

/// Resolve a variant label recorded in a [`Finding`] back to the variant.
fn variant_by_label(label: &str) -> Option<Variant> {
    Variant::all().into_iter().find(|v| v.label() == label)
}

/// Check case `index` of the campaign end to end: regenerate the kernel
/// from the pure `(campaign seed, index)` derivation, then run every
/// oracle and shrink the first finding. Public so regression tests can
/// pin previously-failing indices of a known campaign.
pub fn run_case(index: u64, fc: &FuzzConfig) -> CaseOutcome {
    check_seeded(index, case_seed(fc.seed, index), fc)
}

/// Check one generated kernel by its *case seed* directly, bypassing the
/// campaign derivation — the entry point for property tests that pin a
/// known-bad seed (or explore arbitrary ones) without a campaign around
/// them.
pub fn check_seeded(index: u64, seed: u64, fc: &FuzzConfig) -> CaseOutcome {
    let gk = generate_kernel(seed, &fc.gen);
    let mut outcome = CaseOutcome {
        index,
        seed,
        flavor: gk.flavor,
        skipped: None,
        findings: Vec::new(),
        minimized: None,
    };
    let prog = match parse_program(&gk.source) {
        Ok(p) => p,
        Err(e) => {
            outcome.findings.push(Finding {
                variant: "-",
                invariant: "gen-parse",
                detail: format!("{e}"),
            });
            return outcome;
        }
    };
    // printer round-trip on the generated source
    let printed = print_program(&prog);
    match parse_program(&printed) {
        Err(e) => outcome.findings.push(Finding {
            variant: "-",
            invariant: "src-reparse",
            detail: format!("{e}"),
        }),
        Ok(p2) => {
            if p2 != prog {
                outcome.findings.push(Finding {
                    variant: "-",
                    invariant: "src-roundtrip",
                    detail: "print-parse round-trip changed the AST".into(),
                });
            }
        }
    }
    let f = &prog.functions[0];
    let env0 = build_env(&gk, seed);
    match check_kernel(f, &env0, fc, None) {
        Err(reason) => outcome.skipped = Some(reason),
        Ok(fs) => outcome.findings.extend(fs),
    }
    // shrink the first pipeline-level finding while it keeps reproducing
    if let Some(first) = outcome.findings.first().cloned() {
        if let Some(v) = variant_by_label(first.variant) {
            let key = first.invariant;
            let reproduces = |cand: &Function| {
                catch_unwind(AssertUnwindSafe(|| check_kernel(cand, &env0, fc, Some(v))))
                    .map(|r| match r {
                        Ok(fs) => fs.iter().any(|x| x.invariant == key),
                        Err(_) => false,
                    })
                    .unwrap_or(false)
            };
            let before = f.body.stmt_count();
            let (shrunk, _) = minimize_function(f, &reproduces, fc.max_shrink_attempts);
            outcome.minimized = Some(MinimizedRepro {
                source: print_program(&Program { functions: vec![shrunk.clone()] }),
                stmts_before: before,
                stmts_after: shrunk.body.stmt_count(),
            });
        }
    }
    outcome
}

/// Run a campaign: `fc.cases` independent cases on `fc.threads` workers,
/// each writing a pre-allocated slot so aggregation never depends on
/// completion order.
pub fn run_campaign(fc: &FuzzConfig) -> FuzzReport {
    let slots: Vec<Mutex<Option<CaseOutcome>>> = (0..fc.cases).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let workers = fc.threads.clamp(1, fc.cases.max(1) as usize);
    let drain = || loop {
        let i = next.fetch_add(1, Ordering::Relaxed);
        if i as u64 >= fc.cases {
            break;
        }
        let outcome = run_case(i as u64, fc);
        *slots[i].lock().expect("result slot") = Some(outcome);
    };
    if workers == 1 {
        drain();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(drain);
            }
        });
    }

    let mut flavors: BTreeMap<String, u64> = BTreeMap::new();
    let (mut passed, mut skipped) = (0u64, 0u64);
    let mut failures = Vec::new();
    for slot in &slots {
        let outcome = slot.lock().expect("result slot").take().expect("worker filled slot");
        *flavors.entry(outcome.flavor.to_string()).or_insert(0) += 1;
        if !outcome.findings.is_empty() {
            failures.push(outcome);
        } else if outcome.skipped.is_some() {
            skipped += 1;
        } else {
            passed += 1;
        }
    }
    FuzzReport {
        cases: fc.cases,
        seed: fc.seed,
        flavors: flavors.into_iter().collect(),
        passed,
        skipped,
        failures,
    }
}

impl FuzzReport {
    /// Human-readable summary: deterministic, no wall-clock content.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("fuzz: {} cases from seed {}\n", self.cases, self.seed));
        let fl =
            self.flavors.iter().map(|(n, c)| format!("{n} {c}")).collect::<Vec<_>>().join(", ");
        out.push_str(&format!("  flavors: {fl}\n"));
        out.push_str(
            "  oracles: interpreter differential (4 variants), claimed-vs-recomputed cost, \
             lower bound, selection walk, printer round-trip\n",
        );
        out.push_str(&format!(
            "  passed {}, skipped {}, failed {}\n",
            self.passed,
            self.skipped,
            self.failures.len()
        ));
        for c in &self.failures {
            for fd in &c.findings {
                out.push_str(&format!(
                    "  FAIL case {} seed {:#018x} flavor {} variant {} invariant {}: {}\n",
                    c.index, c.seed, c.flavor, fd.variant, fd.invariant, fd.detail
                ));
            }
            if let Some(m) = &c.minimized {
                out.push_str(&format!(
                    "       shrunk {} -> {} statements\n",
                    m.stmts_before, m.stmts_after
                ));
            }
        }
        out
    }

    /// Stable JSON: key order fixed, no wall-clock or thread-count fields,
    /// so reports from different thread counts diff empty.
    pub fn to_stable_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"cases\": {},\n", self.cases));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"flavors\": {");
        let fl = self
            .flavors
            .iter()
            .map(|(n, c)| format!("\"{}\": {c}", escape(n)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&fl);
        out.push_str("},\n");
        out.push_str(&format!("  \"passed\": {},\n", self.passed));
        out.push_str(&format!("  \"skipped\": {},\n", self.skipped));
        out.push_str("  \"failures\": [\n");
        for (ci, c) in self.failures.iter().enumerate() {
            out.push_str("    {\n");
            out.push_str(&format!("      \"index\": {},\n", c.index));
            out.push_str(&format!("      \"seed\": {},\n", c.seed));
            out.push_str(&format!("      \"flavor\": \"{}\",\n", escape(c.flavor)));
            out.push_str("      \"findings\": [\n");
            for (fi, fd) in c.findings.iter().enumerate() {
                out.push_str(&format!(
                    "        {{\"variant\": \"{}\", \"invariant\": \"{}\", \"detail\": \"{}\"}}{}\n",
                    escape(fd.variant),
                    escape(fd.invariant),
                    escape(&fd.detail),
                    if fi + 1 < c.findings.len() { "," } else { "" }
                ));
            }
            out.push_str("      ]");
            if let Some(m) = &c.minimized {
                out.push_str(&format!(
                    ",\n      \"shrunk\": {{\"before\": {}, \"after\": {}}}\n",
                    m.stmts_before, m.stmts_after
                ));
            } else {
                out.push('\n');
            }
            out.push_str(&format!(
                "    }}{}\n",
                if ci + 1 < self.failures.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Write one `.sat` repro file per failing case into `dir` (created if
    /// missing): a `//`-comment header (the lexer skips comments) plus the
    /// minimized source when available, the generated source otherwise.
    /// Returns the written paths in case order.
    pub fn write_corpus(
        &self,
        dir: &std::path::Path,
        fc: &FuzzConfig,
    ) -> std::io::Result<Vec<std::path::PathBuf>> {
        if self.failures.is_empty() {
            return Ok(Vec::new());
        }
        std::fs::create_dir_all(dir)?;
        let mut paths = Vec::new();
        for c in &self.failures {
            let first = &c.findings[0];
            let mut body = String::new();
            body.push_str(&format!(
                "// accsat fuzz repro: campaign seed {}, case {} (case seed {:#018x})\n",
                self.seed, c.index, c.seed
            ));
            body.push_str(&format!("// flavor: {}\n", c.flavor));
            for fd in &c.findings {
                body.push_str(&format!(
                    "// failing invariant: {} [variant {}] {}\n",
                    fd.invariant, fd.variant, fd.detail
                ));
            }
            match &c.minimized {
                Some(m) => {
                    body.push_str(&format!(
                        "// minimized: {} -> {} statements\n",
                        m.stmts_before, m.stmts_after
                    ));
                    body.push_str(&m.source);
                }
                None => body.push_str(&generate_kernel(c.seed, &fc.gen).source),
            }
            let key: String = first
                .invariant
                .chars()
                .map(|ch| if ch.is_ascii_alphanumeric() { ch } else { '-' })
                .collect();
            let path = dir.join(format!("case-{:05}-{key}.sat", c.index));
            std::fs::write(&path, body)?;
            paths.push(path);
        }
        Ok(paths)
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

// ---------------------------------------------------------------------
// Greedy AST minimizer
// ---------------------------------------------------------------------

/// Walk state: every candidate mutation site gets one index; the walk
/// applies the mutation whose index equals `target` and stops.
struct MutState {
    next: usize,
    target: usize,
    applied: bool,
}

impl MutState {
    fn counting() -> MutState {
        MutState { next: 0, target: usize::MAX, applied: false }
    }

    fn targeting(k: usize) -> MutState {
        MutState { next: 0, target: k, applied: false }
    }

    /// Claim the next site index; true exactly when it is the target.
    fn hit(&mut self) -> bool {
        let h = !self.applied && self.next == self.target;
        self.next += 1;
        if h {
            self.applied = true;
        }
        h
    }
}

/// Shape of a statement, peeked before mutation to keep borrows disjoint.
enum Peek {
    If { has_else: bool },
    PlainFor,
    NestedBlock,
    Other,
}

fn walk_block(b: &mut Block, st: &mut MutState) {
    let mut i = 0;
    while i < b.stmts.len() {
        // candidate: delete this statement outright — except the directive
        // loop, which *is* the kernel
        let deletable = !matches!(&b.stmts[i], Stmt::For(l) if l.directive.is_some());
        if deletable && st.hit() {
            b.stmts.remove(i);
            return;
        }
        let peek = match &b.stmts[i] {
            Stmt::If { els, .. } => Peek::If { has_else: els.is_some() },
            Stmt::For(l) if l.directive.is_none() => Peek::PlainFor,
            Stmt::Block(_) => Peek::NestedBlock,
            _ => Peek::Other,
        };
        match peek {
            Peek::If { has_else } => {
                if st.hit() {
                    // replace the `if` by its then-branch statements
                    if let Stmt::If { then, .. } = b.stmts.remove(i) {
                        splice_at(b, i, then.stmts);
                    }
                    return;
                }
                if has_else && st.hit() {
                    // replace the `if` by its else-branch statements
                    if let Stmt::If { els: Some(e), .. } = b.stmts.remove(i) {
                        splice_at(b, i, e.stmts);
                    }
                    return;
                }
                if has_else && st.hit() {
                    if let Stmt::If { els, .. } = &mut b.stmts[i] {
                        *els = None;
                    }
                    return;
                }
            }
            Peek::PlainFor => {
                if st.hit() {
                    // unwrap the loop: keep a single copy of its body
                    if let Stmt::For(l) = b.stmts.remove(i) {
                        splice_at(b, i, l.body.stmts);
                    }
                    return;
                }
            }
            Peek::NestedBlock => {
                if st.hit() {
                    // flatten the braces
                    if let Stmt::Block(inner) = b.stmts.remove(i) {
                        splice_at(b, i, inner.stmts);
                    }
                    return;
                }
            }
            Peek::Other => {}
        }
        // recurse into the statement's expressions and sub-blocks
        match &mut b.stmts[i] {
            Stmt::Decl { init: Some(e), .. } => walk_expr(e, st),
            Stmt::Assign { rhs, .. } => walk_expr(rhs, st),
            Stmt::Expr(e) => walk_expr(e, st),
            Stmt::If { cond, then, els } => {
                walk_expr(cond, st);
                if !st.applied {
                    walk_block(then, st);
                }
                if !st.applied {
                    if let Some(e) = els {
                        walk_block(e, st);
                    }
                }
            }
            // loop headers are left alone: mutating bounds turns a
            // terminating loop into a runaway one far more often than it
            // shrinks a repro
            Stmt::For(l) => walk_block(&mut l.body, st),
            Stmt::While { body, .. } => walk_block(body, st),
            _ => {}
        }
        if st.applied {
            return;
        }
        i += 1;
    }
}

fn splice_at(b: &mut Block, i: usize, stmts: Vec<Stmt>) {
    let tail = b.stmts.split_off(i);
    b.stmts.extend(stmts);
    b.stmts.extend(tail);
}

fn walk_expr(e: &mut Expr, st: &mut MutState) {
    // candidate replacements by a subterm (hoisting shrinks the tree)
    let replacement: Option<Expr> = match e {
        Expr::Binary { lhs, rhs, .. } => {
            if st.hit() {
                Some((**lhs).clone())
            } else if st.hit() {
                Some((**rhs).clone())
            } else {
                None
            }
        }
        Expr::Unary { operand, .. } => {
            if st.hit() {
                Some((**operand).clone())
            } else {
                None
            }
        }
        Expr::Ternary { then, els, .. } => {
            if st.hit() {
                Some((**then).clone())
            } else if st.hit() {
                Some((**els).clone())
            } else {
                None
            }
        }
        Expr::Call { args, .. } if !args.is_empty() => {
            if st.hit() {
                Some(args[0].clone())
            } else {
                None
            }
        }
        Expr::Cast { expr, .. } => {
            if st.hit() {
                Some((**expr).clone())
            } else {
                None
            }
        }
        _ => None,
    };
    if let Some(r) = replacement {
        *e = r;
        return;
    }
    match e {
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, st);
            if !st.applied {
                walk_expr(rhs, st);
            }
        }
        Expr::Unary { operand, .. } => walk_expr(operand, st),
        Expr::Ternary { cond, then, els } => {
            walk_expr(cond, st);
            if !st.applied {
                walk_expr(then, st);
            }
            if !st.applied {
                walk_expr(els, st);
            }
        }
        Expr::Call { args, .. } => {
            for a in args {
                walk_expr(a, st);
                if st.applied {
                    return;
                }
            }
        }
        Expr::Cast { expr, .. } => walk_expr(expr, st),
        Expr::Index { indices, .. } => {
            for ix in indices {
                walk_expr(ix, st);
                if st.applied {
                    return;
                }
            }
        }
        _ => {}
    }
}

/// Greedily shrink `f` while `reproduces` stays true: statement deletion,
/// branch flattening, loop unwrapping, and subterm hoisting, restarting
/// from the front after every accepted edit. `max_attempts` bounds the
/// number of candidate evaluations. Returns the shrunk function and the
/// number of attempts spent.
pub fn minimize_function(
    f: &Function,
    reproduces: &dyn Fn(&Function) -> bool,
    max_attempts: usize,
) -> (Function, usize) {
    let mut cur = f.clone();
    let mut attempts = 0usize;
    'outer: loop {
        let total = {
            let mut st = MutState::counting();
            walk_block(&mut cur.body, &mut st);
            st.next
        };
        for k in 0..total {
            if attempts >= max_attempts {
                break 'outer;
            }
            let mut cand = cur.clone();
            let mut st = MutState::targeting(k);
            walk_block(&mut cand.body, &mut st);
            if !st.applied {
                continue;
            }
            attempts += 1;
            if reproduces(&cand) {
                cur = cand;
                continue 'outer;
            }
        }
        break;
    }
    (cur, attempts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(cases: u64, seed: u64, threads: usize) -> FuzzConfig {
        FuzzConfig { cases, seed, threads, ..FuzzConfig::default() }
    }

    #[test]
    fn case_seed_is_pure_and_spreads() {
        assert_eq!(case_seed(7, 3), case_seed(7, 3));
        let seeds: std::collections::HashSet<u64> = (0..64).map(|i| case_seed(7, i)).collect();
        assert_eq!(seeds.len(), 64);
    }

    #[test]
    fn small_campaign_passes_and_is_thread_invariant() {
        let r1 = run_campaign(&tiny_config(12, 0xFA22, 1));
        let r8 = run_campaign(&tiny_config(12, 0xFA22, 8));
        assert_eq!(r1.render_summary(), r8.render_summary());
        assert_eq!(r1.to_stable_json(), r8.to_stable_json());
        assert_eq!(r1.passed + r1.skipped + r1.failures.len() as u64, 12);
        assert!(r1.failures.is_empty(), "{}", r1.render_summary());
    }

    #[test]
    fn minimizer_shrinks_while_predicate_holds() {
        // synthetic bug: "the kernel still contains a division" — the
        // minimizer must keep a division while deleting everything else
        let src = r#"
void fz(double a[8], double out[8], double c0) {
  #pragma acc parallel loop gang vector
  for (int i = 1; i < 7; i++) {
    double v1 = a[i] + c0;
    out[i] = a[i - 1] * 2.0;
    if (a[i] < c0) {
      out[i] = v1 + a[i + 1];
    }
    out[i] += a[i] / (c0 + 0.5);
  }
}
"#;
        let f = parse_program(src).unwrap().functions.remove(0);
        fn has_div(e: &Expr) -> bool {
            match e {
                Expr::Binary { op, lhs, rhs } => {
                    *op == accsat_ir::BinOp::Div || has_div(lhs) || has_div(rhs)
                }
                Expr::Unary { operand, .. } => has_div(operand),
                Expr::Ternary { cond, then, els } => has_div(cond) || has_div(then) || has_div(els),
                Expr::Call { args, .. } => args.iter().any(has_div),
                Expr::Cast { expr, .. } => has_div(expr),
                Expr::Index { indices, .. } => indices.iter().any(has_div),
                _ => false,
            }
        }
        fn block_has_div(b: &Block) -> bool {
            b.stmts.iter().any(|s| match s {
                Stmt::Decl { init: Some(e), .. } => has_div(e),
                Stmt::Assign { rhs, .. } => has_div(rhs),
                Stmt::If { cond, then, els } => {
                    has_div(cond) || block_has_div(then) || els.as_ref().is_some_and(block_has_div)
                }
                Stmt::For(l) => block_has_div(&l.body),
                Stmt::While { body, .. } => block_has_div(body),
                Stmt::Block(b) => block_has_div(b),
                Stmt::Expr(e) => has_div(e),
                _ => false,
            })
        }
        let pred = |cand: &Function| block_has_div(&cand.body);
        assert!(pred(&f));
        let before = f.body.stmt_count();
        let (shrunk, attempts) = minimize_function(&f, &pred, 500);
        assert!(pred(&shrunk), "shrunk repro must still fail the same predicate");
        assert!(attempts > 0);
        assert!(
            shrunk.body.stmt_count() < before,
            "minimizer should delete the unrelated statements: {} vs {}",
            shrunk.body.stmt_count(),
            before
        );
        // the shrunk kernel is just the loop plus the dividing statement
        assert!(shrunk.body.stmt_count() <= 2, "{:#?}", shrunk.body);
    }

    #[test]
    fn corpus_files_are_reparseable() {
        // force a "failure" artificially by writing a corpus from a report
        // with a fabricated failing case
        let fc = tiny_config(1, 3, 1);
        let gk = generate_kernel(case_seed(3, 0), &fc.gen);
        let report = FuzzReport {
            cases: 1,
            seed: 3,
            flavors: vec![(gk.flavor.to_string(), 1)],
            passed: 0,
            skipped: 0,
            failures: vec![CaseOutcome {
                index: 0,
                seed: gk.seed,
                flavor: gk.flavor,
                skipped: None,
                findings: vec![Finding {
                    variant: "ACCSAT",
                    invariant: "differential",
                    detail: "synthetic".into(),
                }],
                minimized: None,
            }],
        };
        let dir = std::env::temp_dir().join(format!("accsat-fuzz-corpus-{}", std::process::id()));
        let paths = report.write_corpus(&dir, &fc).unwrap();
        assert_eq!(paths.len(), 1);
        let text = std::fs::read_to_string(&paths[0]).unwrap();
        assert!(text.starts_with("// accsat fuzz repro"));
        // comment headers are skipped by the lexer: the repro reparses
        assert!(parse_program(&text).is_ok(), "{text}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
