//! Benchmark evaluation: optimize → compile (per compiler model) →
//! simulate → aggregate, producing the numbers behind every figure/table.

use crate::pipeline::{optimize_program_with, SaturatorConfig, Variant};
use accsat_compilers::{compile_kernel, CompilerModel};
use accsat_gpusim::{run_kernel, Device, KernelMetrics};
use accsat_ir::{parse_program, Model, Program};

/// Simulated result of one kernel under one variant.
#[derive(Debug, Clone)]
pub struct KernelResult {
    pub function: String,
    pub metrics: KernelMetrics,
}

/// Simulated result of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchmarkResult {
    pub benchmark: String,
    pub variant: Variant,
    pub compiler: CompilerModel,
    pub kernels: Vec<KernelResult>,
    /// Total kernel time for the whole run (launches × per-launch time), s.
    pub total_time_s: f64,
}

/// Evaluate one benchmark under (variant, compiler model, device).
pub fn evaluate_benchmark(
    bench: &accsat_benchmarks::Benchmark,
    variant: Variant,
    cm: &CompilerModel,
    dev: &Device,
) -> Result<BenchmarkResult, String> {
    let src = match cm.model {
        Model::OpenAcc => bench.acc_source.clone(),
        Model::OpenMp => bench.omp_source(),
    };
    let prog = parse_program(&src).map_err(|e| format!("{}: {e}", bench.name))?;
    let config = SaturatorConfig::default();
    let (optimized, _) = optimize_program_with(&prog, variant, &config)?;
    evaluate_program(&optimized, bench, variant, cm, dev)
}

/// Simulate an already-optimized program.
pub fn evaluate_program(
    prog: &Program,
    bench: &accsat_benchmarks::Benchmark,
    variant: Variant,
    cm: &CompilerModel,
    dev: &Device,
) -> Result<BenchmarkResult, String> {
    let bindings = bench.bindings_map();
    let mut kernels = Vec::new();
    let mut total_ms = 0.0;
    for f in &prog.functions {
        let compiled = compile_kernel(f, cm, &bindings)?;
        let metrics = run_kernel(&compiled.trace, &compiled.launch, dev);
        total_ms += metrics.time_ms * bench.launches as f64;
        kernels.push(KernelResult { function: f.name.clone(), metrics });
    }
    Ok(BenchmarkResult {
        benchmark: bench.name.to_string(),
        variant,
        compiler: *cm,
        kernels,
        total_time_s: total_ms / 1e3,
    })
}

/// Speedup of `variant` over `original` (total benchmark time ratio).
pub fn speedup(original: &BenchmarkResult, variant: &BenchmarkResult) -> f64 {
    if variant.total_time_s <= 0.0 {
        return 1.0;
    }
    original.total_time_s / variant.total_time_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_compilers::Compiler;

    fn nvhpc_acc() -> CompilerModel {
        CompilerModel::new(Compiler::Nvhpc, Model::OpenAcc)
    }

    fn gcc_acc() -> CompilerModel {
        CompilerModel::new(Compiler::Gcc, Model::OpenAcc)
    }

    #[test]
    fn npb_bt_all_variants_run() {
        let bt = accsat_benchmarks::npb_benchmarks().remove(0);
        let dev = Device::a100_pcie_40gb();
        let orig = evaluate_benchmark(&bt, Variant::Original, &nvhpc_acc(), &dev).unwrap();
        assert!(orig.total_time_s > 0.0);
        for v in Variant::all() {
            let r = evaluate_benchmark(&bt, v, &nvhpc_acc(), &dev).unwrap();
            assert!(r.total_time_s > 0.0, "{v:?}");
            let s = speedup(&orig, &r);
            assert!(s > 0.5 && s < 10.0, "{v:?} speedup {s} out of plausible range");
        }
    }

    #[test]
    fn bulk_load_helps_gcc_bt_most() {
        // the paper's headline: GCC + kernels directive + bulk load ≫ 1
        let bt = accsat_benchmarks::spec_benchmarks().pop().unwrap(); // SPEC bt
        let dev = Device::a100_pcie_40gb();
        let orig = evaluate_benchmark(&bt, Variant::Original, &gcc_acc(), &dev).unwrap();
        let bulk = evaluate_benchmark(&bt, Variant::CseBulk, &gcc_acc(), &dev).unwrap();
        let s = speedup(&orig, &bulk);
        assert!(s > 1.2, "GCC bt CSE+BULK speedup {s} must be well above 1");
    }

    #[test]
    fn accsat_never_hurts_much() {
        // "ACCSAT does not degrade the original performance" (§VIII)
        let dev = Device::a100_pcie_40gb();
        for bench in accsat_benchmarks::npb_benchmarks() {
            let orig = evaluate_benchmark(&bench, Variant::Original, &nvhpc_acc(), &dev).unwrap();
            let acc = evaluate_benchmark(&bench, Variant::AccSat, &nvhpc_acc(), &dev).unwrap();
            let s = speedup(&orig, &acc);
            assert!(s > 0.85, "{}: ACCSAT speedup {s} degrades too much", bench.name);
        }
    }
}
