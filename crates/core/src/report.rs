//! Plain-text rendering of tables and figure series (the bench harness
//! prints the same rows the paper's tables and figures report).

/// Render an ASCII table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:<w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let cell = row.get(i).unwrap_or(&empty);
            out.push_str(&format!(" {cell:<w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Format one figure row: benchmark name plus speedups per variant.
pub fn format_speedup_row(name: &str, speedups: &[(&str, f64)]) -> String {
    let mut s = format!("{name:>10}:");
    for (label, v) in speedups {
        s.push_str(&format!("  {label}={v:.2}x"));
    }
    s
}

/// Geometric-mean-free average as the paper reports ("average speedups").
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["Name", "Time"],
            &[vec!["BT".into(), "14.85s".into()], vec!["CG".into(), "1.27s".into()]],
        );
        assert!(t.contains("| Name | Time   |"));
        assert!(t.contains("| BT   | 14.85s |"));
        assert!(t.lines().all(|l| l.len() == t.lines().next().unwrap().len()));
    }

    #[test]
    fn speedup_row_format() {
        let r = format_speedup_row("BT", &[("CSE", 1.01), ("ACCSAT", 1.21)]);
        assert!(r.contains("CSE=1.01x"));
        assert!(r.contains("ACCSAT=1.21x"));
    }

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
