//! `accsat serve` — a persistent optimization service.
//!
//! The batch driver pays rule compilation and process startup on every
//! invocation; the service pays them once and then amortizes whole
//! pipeline stages across requests through the content-addressed
//! [`StageCache`]. A build system (or an editor
//! integration) keeps one `accsat serve` process alive and streams kernels
//! at it; re-submitted kernels come back at the `selected` cache level
//! without re-running saturation or extraction.
//!
//! # Protocol
//!
//! Line-delimited requests on the input stream, one JSON object per
//! response on the output stream, **in request order** (responses to slow
//! requests are buffered so a fast later request never overtakes them):
//!
//! ```text
//! ping                                        → {"status":"ok","event":"pong"}
//! stats                                       → cache counters + cumulative
//!                                               requests-by-verb (after a barrier:
//!                                               all in-flight requests drain first)
//! metrics                                     → full deterministic metrics
//!                                               registry (same barrier as stats):
//!                                               saturation/extraction/rule/cache
//!                                               counters merged over all requests
//! optimize id=<id> variant=<v> bytes=<N>      → <N> bytes of C source follow the
//!                                               newline; response carries the
//!                                               optimized source and cache level
//! optimize-file id=<id> variant=<v> path=<p>  → same, reading the source from <p>
//! quit                                        → {"status":"ok","event":"bye"}, end
//! ```
//!
//! `<v>` is one of `original`, `cse`, `cse+sat`, `cse+bulk`, `accsat`
//! (case-insensitive; `-` accepted for `+`). Responses never contain wall
//! times — they are byte-deterministic for a given request sequence, so
//! session transcripts can be diffed (CI does exactly that).
//!
//! Requests run concurrently on a worker pool; identical concurrent
//! kernels coalesce through the cache's single-flight claim, so cache
//! levels in the responses are deterministic too.

use crate::cache::{CacheLevel, StageCache};
use crate::metrics::add_opt_stats;
use crate::pipeline::{optimize_program_with, OptStats, SaturatorConfig, Variant};
use accsat_egraph::ThreadBudget;
use accsat_ir::{fnv1a, parse_program, print_program, Program};
use accsat_obs::{trace, MetricsRegistry};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::sync::{mpsc, Arc, Condvar, Mutex};

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent request workers.
    pub threads: usize,
    /// Pipeline configuration shared by every request. If its `cache` is
    /// unset, [`run_session`] installs a per-session in-memory cache; set
    /// it explicitly (e.g. from `--cache-dir`) to share across sessions.
    pub saturator: SaturatorConfig,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig { threads: 2, saturator: SaturatorConfig::default() }
    }
}

/// Optimize a source string through the cached pipeline.
///
/// Returns the optimized program text, the per-kernel statistics, and the
/// request-level [`CacheLevel`]: the *minimum* stage level over the
/// kernels (a request is only as warm as its coldest kernel), floored at
/// `Parsed` when the raw source bytes hit the parse cache. A kernel with
/// an edited comment therefore still reports `selected`: the parse level
/// misses but the kernel fingerprint — taken over canonical printed IR —
/// is unchanged.
pub fn optimize_source(
    src: &str,
    variant: Variant,
    config: &SaturatorConfig,
) -> Result<(String, Vec<OptStats>, CacheLevel), String> {
    let cache = config.cache.as_deref();
    let src_hash = fnv1a(src.as_bytes());
    let mut parsed_floor = CacheLevel::Miss;
    let prog: Arc<Program> = match cache.and_then(|c| c.get_parsed(src_hash)) {
        Some(p) => {
            parsed_floor = CacheLevel::Parsed;
            p
        }
        None => {
            let p = Arc::new(parse_program(src).map_err(|e| format!("parse error: {e}"))?);
            if let Some(c) = cache {
                c.put_parsed(src_hash, p.clone());
            }
            p
        }
    };
    let (optimized, stats) = optimize_program_with(&prog, variant, config)?;
    let kernel_level = stats.iter().map(|s| s.cache_level).min().unwrap_or(parsed_floor);
    let level = parsed_floor.max(kernel_level);
    Ok((print_program(&optimized), stats, level))
}

/// Escape a string into a JSON string literal (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn parse_variant(s: &str) -> Option<Variant> {
    match s.to_ascii_lowercase().replace('-', "+").as_str() {
        "original" => Some(Variant::Original),
        "cse" => Some(Variant::Cse),
        "cse+sat" | "csesat" => Some(Variant::CseSat),
        "cse+bulk" | "csebulk" => Some(Variant::CseBulk),
        "accsat" => Some(Variant::AccSat),
        _ => None,
    }
}

struct Job {
    seq: u64,
    id: String,
    variant: Variant,
    source: String,
}

fn error_line(id: Option<&str>, msg: &str) -> String {
    match id {
        Some(id) => {
            format!("{{\"id\":{},\"status\":\"error\",\"error\":{}}}", json_str(id), json_str(msg))
        }
        None => format!("{{\"status\":\"error\",\"error\":{}}}", json_str(msg)),
    }
}

fn handle_optimize(
    job: &Job,
    config: &SaturatorConfig,
    metrics: &Mutex<MetricsRegistry>,
) -> String {
    let _span = trace::span_named("serve", || format!("request {}", job.id));
    match optimize_source(&job.source, job.variant, config) {
        Ok((text, stats, level)) => {
            // fold this request's deterministic counters into the session
            // registry off to the side; the merge is commutative, so the
            // worker interleaving never shows in a `metrics` reply
            let mut local = MetricsRegistry::new();
            for s in &stats {
                add_opt_stats(&mut local, s);
            }
            local.add("serve.responses.ok", 1);
            metrics.lock().expect("metrics lock").merge(&local);
            let cost: u64 = stats.iter().map(|s| s.extracted_cost).sum();
            let proven = stats.iter().all(|s| s.extraction_proven);
            format!(
                concat!(
                    "{{\"id\":{},\"status\":\"ok\",\"variant\":\"{}\",\"cache\":\"{}\",",
                    "\"kernels\":{},\"cost\":{},\"proven\":{},\"source\":{}}}"
                ),
                json_str(&job.id),
                job.variant.label(),
                level.label(),
                stats.len(),
                cost,
                proven,
                json_str(&text)
            )
        }
        Err(e) => {
            metrics.lock().expect("metrics lock").add("serve.responses.error", 1);
            error_line(Some(&job.id), &e)
        }
    }
}

/// Key=value fields of a request header line.
struct Fields<'a> {
    id: Option<&'a str>,
    variant: Option<&'a str>,
    bytes: Option<&'a str>,
    path: Option<&'a str>,
}

fn parse_fields<'a>(toks: impl Iterator<Item = &'a str>) -> Result<Fields<'a>, String> {
    let mut f = Fields { id: None, variant: None, bytes: None, path: None };
    for tok in toks {
        let (k, v) = tok.split_once('=').ok_or_else(|| format!("malformed field {tok:?}"))?;
        match k {
            "id" => f.id = Some(v),
            "variant" => f.variant = Some(v),
            "bytes" => f.bytes = Some(v),
            "path" => f.path = Some(v),
            _ => return Err(format!("unknown field {k:?}")),
        }
    }
    Ok(f)
}

/// Run one service session over arbitrary streams until `quit` or EOF.
///
/// This is the whole daemon: `accsat serve` calls it on locked
/// stdin/stdout, the Unix-socket listener calls it per connection, and
/// tests call it on in-memory buffers to diff golden transcripts.
pub fn run_session<R: BufRead, W: Write + Send>(
    mut input: R,
    output: W,
    config: &ServeConfig,
) -> std::io::Result<()> {
    let mut saturator = config.saturator.clone();
    if saturator.cache.is_none() {
        saturator.cache = Some(Arc::new(StageCache::in_memory()));
    }
    if saturator.thread_budget.is_none() {
        // request workers are the outer level of the two-level pool; with
        // no spare budget each request's saturation/extraction stays
        // single-threaded and concurrency comes from request fan-out,
        // mirroring the batch driver's fully-loaded configuration
        saturator.thread_budget = Some(Arc::new(ThreadBudget::new(0)));
    }
    let cache = saturator.cache.clone().expect("cache installed above");
    let workers = config.threads.max(1);
    // in-flight request count, for the `stats`/`metrics` barrier
    let outstanding = Arc::new((Mutex::new(0usize), Condvar::new()));
    // session-cumulative deterministic counters, merged in by workers
    let metrics = Arc::new(Mutex::new(MetricsRegistry::new()));
    // requests seen, keyed by verb; only the (serial) reader touches this
    let mut verbs: BTreeMap<&'static str, u64> = BTreeMap::new();

    std::thread::scope(|scope| -> std::io::Result<()> {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (res_tx, res_rx) = mpsc::channel::<(u64, String)>();

        // writer: reorder completions into request order
        let writer = scope.spawn(move || -> std::io::Result<()> {
            let mut output = output;
            let mut next = 0u64;
            let mut pending: BTreeMap<u64, String> = BTreeMap::new();
            while let Ok((seq, line)) = res_rx.recv() {
                pending.insert(seq, line);
                while let Some(line) = pending.remove(&next) {
                    writeln!(output, "{line}")?;
                    output.flush()?;
                    next += 1;
                }
            }
            Ok(())
        });

        for _ in 0..workers {
            let job_rx = Arc::clone(&job_rx);
            let res_tx = res_tx.clone();
            let saturator = saturator.clone();
            let outstanding = Arc::clone(&outstanding);
            let metrics = Arc::clone(&metrics);
            scope.spawn(move || loop {
                let job = job_rx.lock().expect("job queue lock").recv();
                let Ok(job) = job else { break };
                let line = handle_optimize(&job, &saturator, &metrics);
                let _ = res_tx.send((job.seq, line));
                let (count, done) = &*outstanding;
                let depth = {
                    let mut n = count.lock().expect("outstanding lock");
                    *n -= 1;
                    *n
                };
                trace::counter("serve", "queue.depth", depth as u64);
                done.notify_all();
            });
        }

        let enqueue = |job: Job| {
            let depth = {
                let mut n = outstanding.0.lock().expect("outstanding lock");
                *n += 1;
                *n
            };
            trace::counter("serve", "queue.depth", depth as u64);
            job_tx.send(job).expect("workers outlive the reader");
        };

        // drain every in-flight request so counters are deterministic
        let barrier = || {
            let (count, done) = &*outstanding;
            let mut n = count.lock().expect("outstanding lock");
            while *n > 0 {
                n = done.wait(n).expect("outstanding wait");
            }
        };

        let mut seq = 0u64;
        let mut line = String::new();
        loop {
            line.clear();
            if input.read_line(&mut line)? == 0 {
                break;
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            let this_seq = seq;
            seq += 1;
            let mut toks = trimmed.split_whitespace();
            let cmd = toks.next().expect("non-empty line has a token");
            let verb: &'static str = match cmd {
                "ping" => "ping",
                "quit" => "quit",
                "stats" => "stats",
                "metrics" => "metrics",
                "optimize" => "optimize",
                "optimize-file" => "optimize-file",
                _ => "unknown",
            };
            *verbs.entry(verb).or_insert(0) += 1;
            match cmd {
                "ping" => {
                    let _ =
                        res_tx.send((this_seq, "{\"status\":\"ok\",\"event\":\"pong\"}".into()));
                }
                "quit" => {
                    let _ = res_tx.send((this_seq, "{\"status\":\"ok\",\"event\":\"bye\"}".into()));
                    break;
                }
                "stats" => {
                    // barrier: every earlier request completes (and counts)
                    // before the snapshot, so the counters are deterministic
                    barrier();
                    let requests: Vec<String> =
                        verbs.iter().map(|(k, v)| format!("{}:{v}", json_str(k))).collect();
                    let _ = res_tx.send((
                        this_seq,
                        format!(
                            "{{\"status\":\"ok\",\"event\":\"stats\",\"cache\":{},\
                             \"requests\":{{{}}}}}",
                            cache.stats().to_json(),
                            requests.join(","),
                        ),
                    ));
                }
                "metrics" => {
                    // same barrier; the reply is the full deterministic
                    // registry — per-request counters merged by the workers,
                    // plus the cache snapshot and requests-by-verb, all
                    // independent of worker count and interleaving
                    barrier();
                    let mut reg = metrics.lock().expect("metrics lock").clone();
                    cache.stats().add_to(&mut reg);
                    for (k, v) in &verbs {
                        reg.add(&format!("serve.request.{k}"), *v);
                    }
                    let _ = res_tx.send((
                        this_seq,
                        format!(
                            "{{\"status\":\"ok\",\"event\":\"metrics\",\"metrics\":{}}}",
                            reg.to_json()
                        ),
                    ));
                }
                "optimize" | "optimize-file" => {
                    let response = (|| -> Result<Job, String> {
                        let f = parse_fields(toks)?;
                        let id = f.id.ok_or("missing id=")?.to_string();
                        let variant = parse_variant(f.variant.ok_or("missing variant=")?)
                            .ok_or("unknown variant")?;
                        let source = if cmd == "optimize" {
                            let n: usize = f
                                .bytes
                                .ok_or("missing bytes=")?
                                .parse()
                                .map_err(|e| format!("bad bytes=: {e}"))?;
                            let mut buf = vec![0u8; n];
                            std::io::Read::read_exact(&mut input, &mut buf)
                                .map_err(|e| format!("short payload: {e}"))?;
                            String::from_utf8(buf)
                                .map_err(|_| "payload is not UTF-8".to_string())?
                        } else {
                            let path = f.path.ok_or("missing path=")?;
                            std::fs::read_to_string(path)
                                .map_err(|e| format!("read {path}: {e}"))?
                        };
                        Ok(Job { seq: this_seq, id, variant, source })
                    })();
                    match response {
                        Ok(job) => enqueue(job),
                        Err(e) => {
                            let _ = res_tx.send((this_seq, error_line(None, &e)));
                        }
                    }
                }
                other => {
                    let _ = res_tx
                        .send((this_seq, error_line(None, &format!("unknown request {other:?}"))));
                }
            }
        }

        drop(job_tx); // workers drain the queue, then hang up their res_tx clones
        drop(res_tx);
        writer.join().expect("writer thread must not panic")
    })
}

/// Serve sessions on a Unix-domain socket, one thread per connection,
/// until the process is killed. All connections share `config` —
/// including its stage cache, when one is set.
#[cfg(unix)]
pub fn serve_unix_socket(path: &std::path::Path, config: &ServeConfig) -> std::io::Result<()> {
    let _ = std::fs::remove_file(path);
    let listener = std::os::unix::net::UnixListener::bind(path)?;
    std::thread::scope(|scope| {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            scope.spawn(move || {
                let reader = match stream.try_clone() {
                    Ok(s) => std::io::BufReader::new(s),
                    Err(_) => return,
                };
                let _ = run_session(reader, stream, config);
            });
        }
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const KERNEL: &str = r#"void k(double a[32], double out[32], double c) {
  #pragma acc parallel loop gang vector
  for (int i = 1; i < 31; i++) {
    out[i] = c * a[i - 1] + c * a[i] + c * a[i + 1];
  }
}
"#;

    fn session(requests: &str, config: &ServeConfig) -> Vec<String> {
        let mut out = Vec::new();
        run_session(requests.as_bytes(), &mut out, config).expect("session runs");
        String::from_utf8(out).unwrap().lines().map(str::to_string).collect()
    }

    fn optimize_request(id: &str, variant: &str, src: &str) -> String {
        format!("optimize id={id} variant={variant} bytes={}\n{src}", src.len())
    }

    #[test]
    fn responses_arrive_in_request_order_and_reuse_stages() {
        let config = ServeConfig { threads: 4, ..ServeConfig::default() };
        let mut script = String::from("ping\n");
        script.push_str(&optimize_request("cold", "accsat", KERNEL));
        // `stats` is a barrier: the cold request completes before `warm`
        // is read, so the cache levels in the transcript are deterministic
        // even with four workers
        script.push_str("stats\n");
        script.push_str(&optimize_request("warm", "accsat", KERNEL));
        script.push_str("stats\nmetrics\nquit\n");
        let lines = session(&script, &config);
        assert_eq!(lines.len(), 7);
        assert_eq!(lines[0], "{\"status\":\"ok\",\"event\":\"pong\"}");
        assert!(lines[1].starts_with("{\"id\":\"cold\""));
        assert!(lines[1].contains("\"cache\":\"miss\""), "cold request: {}", lines[1]);
        assert_eq!(
            lines[2],
            "{\"status\":\"ok\",\"event\":\"stats\",\"cache\":{\"parsed_hits\":0,\
             \"parsed_misses\":1,\"sat_hits\":0,\"sat_misses\":1,\"sel_hits\":0,\
             \"sel_misses\":1,\"evictions\":0,\"coalesced\":0},\
             \"requests\":{\"optimize\":1,\"ping\":1,\"stats\":1}}"
        );
        assert!(lines[3].starts_with("{\"id\":\"warm\""));
        assert!(lines[3].contains("\"cache\":\"selected\""), "warm request: {}", lines[3]);
        assert!(lines[4].contains("\"sel_hits\":1"), "{}", lines[4]);
        assert!(lines[4].contains("\"requests\":{\"optimize\":2,\"ping\":1,\"stats\":2}"));
        // the metrics reply merges worker registries + the cache snapshot
        let m = &lines[5];
        assert!(
            m.starts_with("{\"status\":\"ok\",\"event\":\"metrics\",\"metrics\":{\"counters\":{")
        );
        for needle in [
            "\"kernels\":2",
            "\"serve.responses.ok\":2",
            "\"cache.sel.hits\":1",
            "\"cache.sel.misses\":1",
            "\"serve.request.optimize\":2",
            "\"serve.request.metrics\":1",
        ] {
            assert!(m.contains(needle), "metrics reply missing {needle}: {m}");
        }
        assert!(lines[6].contains("\"event\":\"bye\""));
        // warm and cold agree on everything but the cache level
        assert_eq!(
            lines[1].replace("\"id\":\"cold\"", "").replace("\"cache\":\"miss\"", ""),
            lines[3].replace("\"id\":\"warm\"", "").replace("\"cache\":\"selected\"", ""),
        );
    }

    #[test]
    fn comment_edits_still_hit_the_selected_level() {
        // one worker: requests process strictly in order, so the second
        // is guaranteed to find the first's cache entries
        let config = ServeConfig { threads: 1, ..ServeConfig::default() };
        let edited = KERNEL.replace("out[i] =", "/* stencil write */ out[i] =");
        assert_ne!(edited, KERNEL);
        let mut script = optimize_request("a", "accsat", KERNEL);
        script.push_str(&optimize_request("b", "accsat", &edited));
        script.push_str("quit\n");
        let lines = session(&script, &config);
        // source bytes differ (parse-level miss) but the kernel fingerprint
        // is over canonical printed IR, so both cached stages hit
        assert!(lines[1].contains("\"cache\":\"selected\""), "comment edit: {}", lines[1]);
        // and the optimized output is byte-identical
        let src = |l: &str| l.split("\"source\":").nth(1).unwrap().to_string();
        assert_eq!(src(&lines[0]), src(&lines[1]));
    }

    #[test]
    fn malformed_requests_get_error_responses_in_order() {
        let config = ServeConfig::default();
        let lines = session("bogus\noptimize id=x variant=nope bytes=0\nping\nquit\n", &config);
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"status\":\"error\""));
        assert!(lines[1].contains("unknown variant"));
        assert_eq!(lines[2], "{\"status\":\"ok\",\"event\":\"pong\"}");
    }

    #[test]
    fn json_escaping_covers_control_characters() {
        assert_eq!(json_str("a\"b\\c\nd\te\r\u{1}"), "\"a\\\"b\\\\c\\nd\\te\\r\\u0001\"");
    }

    #[test]
    fn parse_errors_are_reported_not_fatal() {
        let config = ServeConfig::default();
        let bad = "void k( {\n";
        let mut script = format!("optimize id=bad variant=cse bytes={}\n{bad}", bad.len());
        script.push_str("quit\n");
        let lines = session(&script, &config);
        assert!(lines[0].contains("\"status\":\"error\""), "{}", lines[0]);
        assert!(lines[0].contains("parse error"));
    }
}
