//! The ACC Saturator pipeline: SSA → e-graph → saturation → extraction →
//! code generation, per innermost parallel loop.

use crate::cache::{sat_stage_key, sel_stage_key, CacheLevel, SatEntry, SelEntry, StageCache};
use accsat_autotune::{tune_kernel, KernelTuning, TuneConfig};
use accsat_codegen::{generate, CodegenOptions, TypeMap};
use accsat_egraph::{
    all_rules, EGraph, IterCounts, Rewrite, RuleStats, Runner, RunnerLimits, StopReason,
    ThreadBudget,
};
use accsat_extract::{
    extract_portfolio_budgeted, intern_strategy, CostModel, PortfolioConfig, Selection,
};
use accsat_ir::{Block, Function, Program, Stmt};
use accsat_obs::trace;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The generated-code variants of the evaluation (§VIII).
///
/// * `Cse` — e-graph round-trip without rewriting: hash-consing alone
///   eliminates redundant loads and expressions.
/// * `CseSat` — plus equality saturation (Table I rules + constant folding).
/// * `CseBulk` — CSE plus bulk load reordering.
/// * `AccSat` — the full tool: CSE + saturation + bulk load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    Original,
    Cse,
    CseSat,
    CseBulk,
    AccSat,
}

impl Variant {
    /// All evaluated variants, in the paper's plotting order.
    pub fn all() -> [Variant; 4] {
        [Variant::Cse, Variant::CseSat, Variant::CseBulk, Variant::AccSat]
    }

    /// Does this variant run equality saturation?
    pub fn saturates(&self) -> bool {
        matches!(self, Variant::CseSat | Variant::AccSat)
    }

    /// Does this variant reorder loads (bulk load)?
    pub fn bulk_loads(&self) -> bool {
        matches!(self, Variant::CseBulk | Variant::AccSat)
    }

    /// Display label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Original => "Original",
            Variant::Cse => "CSE",
            Variant::CseSat => "CSE+SAT",
            Variant::CseBulk => "CSE+BULK",
            Variant::AccSat => "ACCSAT",
        }
    }
}

/// Saturation / extraction configuration. Defaults mirror §VII: 10 000
/// e-nodes, 10 iterations, 10 s saturation, 30 s extraction (scaled down for
/// the in-repo benchmarks, which are far smaller than full NPB kernels).
#[derive(Debug, Clone)]
pub struct SaturatorConfig {
    /// Saturation limits (e-nodes / iterations / wall clock).
    pub limits: RunnerLimits,
    /// Wall-clock safety cap per extraction (the paper's 30 s limit,
    /// scaled down). The deterministic budget is `extraction_node_budget`.
    pub extraction_budget: Duration,
    /// Width of the extraction portfolio: how many branch-and-bound
    /// strategies race per kernel. `1` disables the racing threads.
    pub extraction_threads: usize,
    /// Deterministic per-strategy search budget in explored nodes; this,
    /// not the wall clock, is what normally ends a hard extraction, so
    /// results are reproducible run to run.
    pub extraction_node_budget: u64,
    /// Op-cost model for extraction (paper §V-B values by default).
    pub cost_model: CostModel,
    /// Compiled rewrite rules. Shared (`Arc`) so batch drivers compile the
    /// rule set once per process instead of once per kernel.
    pub rules: Arc<Vec<Rewrite>>,
    /// Width of the saturation runner's parallel rule search. `1` (the
    /// default) searches on the calling thread; higher values fan the
    /// per-iteration rule searches out over scoped threads. Output is
    /// byte-identical at any value.
    pub sat_threads: usize,
    /// Shared thread budget of the two-level batch pool. When set, the
    /// saturation search and the extraction portfolio lease their extra
    /// threads from here instead of spawning unconditionally; `None`
    /// (standalone runs) spawns up to the configured widths outright.
    pub thread_budget: Option<Arc<ThreadBudget>>,
    /// Content-addressed stage cache (see [`crate::cache`]). When set,
    /// the pipeline consults it before saturation and extraction and
    /// populates it after; `None` (the default) runs every stage cold.
    /// Cached and cold runs produce byte-identical output — the cache is
    /// a wall-clock optimization, never an observable one.
    pub cache: Option<Arc<StageCache>>,
}

impl Default for SaturatorConfig {
    fn default() -> SaturatorConfig {
        SaturatorConfig {
            limits: RunnerLimits::default(),
            // the *node* budget is sized to finish well inside the wall
            // valve (~0.1 s per strategy in release on the largest in-repo
            // kernels), so runs are reproducible: the deterministic limit
            // binds, the clock does not
            extraction_budget: Duration::from_secs(5),
            extraction_threads: 2,
            extraction_node_budget: 60_000,
            cost_model: CostModel::paper(),
            rules: Arc::new(all_rules()),
            sat_threads: 1,
            thread_budget: None,
            cache: None,
        }
    }
}

/// Per-kernel optimization statistics (the §VII timing numbers).
#[derive(Debug, Clone)]
pub struct OptStats {
    pub function: String,
    /// SSA construction + code generation time.
    pub ssa_codegen: Duration,
    /// Equality saturation time.
    pub saturation: Duration,
    /// Extraction time.
    pub extraction: Duration,
    /// Total e-nodes in the kernel's e-graph after processing.
    pub egraph_nodes: usize,
    /// Saturation iterations performed.
    pub saturation_iters: usize,
    /// Why saturation stopped.
    pub stop_reason: Option<StopReason>,
    /// Per-rule match/apply/ban statistics from the saturation runner
    /// (empty for variants that do not saturate).
    pub rule_stats: Vec<RuleStats>,
    /// Deterministic per-iteration counters (matches, applied, nodes,
    /// classes) of the saturation run, in iteration order. Persisted by
    /// the stage cache, so warm runs report the same growth curve the
    /// original run measured.
    pub iteration_counts: Vec<IterCounts>,
    /// Total extracted DAG cost under the paper cost model.
    pub extracted_cost: u64,
    /// Did the extraction portfolio prove its selection optimal?
    pub extraction_proven: bool,
    /// Which portfolio member produced the winning selection (`"tune"`
    /// when the simulation-guided tuner chose it — see `tuning`).
    pub extraction_winner: &'static str,
    /// Branch-and-bound nodes explored across all portfolio members
    /// (0 in tune mode, where exploration is spread over the harvest).
    pub extraction_explored: u64,
    /// The strongest certified lower bound on the kernel's optimal DAG
    /// cost. For plain extraction this equals `extracted_cost` whenever
    /// `extraction_proven`. In tune mode the proven flag describes the
    /// *winning candidate's own search* (possibly under a sweep cost
    /// model) while this bound stays the base-model bound, so a proven
    /// tune winner can still report a positive [`OptStats::bound_gap`] —
    /// the static cost the simulator deliberately spent. See
    /// [`OptStats::bound_gap`].
    pub extraction_lower_bound: u64,
    /// Candidates removed per extraction pruning layer (orbit, dominance,
    /// closure — in that order) while building the shared search context.
    /// Zero in tune mode and for non-extracting cache hits.
    pub extraction_pruned: [usize; 3],
    /// Per-candidate simulation report when the kernel was optimized by
    /// the simulation-guided tuner ([`tune_function`]); `None` for plain
    /// static-cost extraction.
    pub tuning: Option<KernelTuning>,
    /// How much of this kernel's pipeline came from the stage cache
    /// (`Miss` when no cache is configured). Deliberately excluded from
    /// the stable batch report: warm and cold runs must stay
    /// byte-identical there.
    pub cache_level: CacheLevel,
}

impl OptStats {
    /// How far the shipped cost sits above the certified lower bound:
    /// `0` for proven-optimal extractions; for budget-stopped kernels the
    /// honest distance the branch-and-bound could not close (and in tune
    /// mode, additionally the static cost the simulator chose to spend).
    pub fn bound_gap(&self) -> u64 {
        self.extracted_cost.saturating_sub(self.extraction_lower_bound)
    }
}

/// Optimize every kernel (innermost parallel loop) of a function.
pub fn optimize_function(
    f: &Function,
    variant: Variant,
    config: &SaturatorConfig,
) -> Result<(Function, Vec<OptStats>), String> {
    if variant == Variant::Original {
        return Ok((f.clone(), Vec::new()));
    }
    let mut out = f.clone();
    let mut stats = Vec::new();
    let tm = TypeMap::from_function(f);
    optimize_block(&mut out.body, variant, config, &tm, &f.name, &mut stats)?;
    Ok((out, stats))
}

/// Optimize every kernel of a function with the **simulation-guided
/// tuner**: instead of shipping the static-cost extraction winner, a
/// harvest of structurally distinct candidates is lowered through codegen,
/// simulated on `tcfg.device` under `tcfg.compiler`, and the candidate
/// with the fewest simulated whole-launch cycles wins (ties broken by
/// static cost, then candidate index). `bindings` supplies problem-size
/// constants for trip counts, exactly as in benchmark evaluation.
pub fn tune_function(
    f: &Function,
    variant: Variant,
    config: &SaturatorConfig,
    tcfg: &TuneConfig,
    bindings: &HashMap<String, i64>,
) -> Result<(Function, Vec<OptStats>), String> {
    if variant == Variant::Original {
        return Ok((f.clone(), Vec::new()));
    }
    let tm = TypeMap::from_function(f);
    // one traversal definition, shared with the tuner: kernels are
    // visited in `innermost_parallel_loops` order, and the tuned bodies
    // splice back through the mutable twin of the same walk — the
    // indices agree by construction
    let kernel_bodies: Vec<Block> =
        accsat_ir::innermost_parallel_loops(f).into_iter().map(|l| l.body.clone()).collect();
    let mut stats = Vec::with_capacity(kernel_bodies.len());
    let mut new_bodies = Vec::with_capacity(kernel_bodies.len());
    for (kernel_index, body) in kernel_bodies.iter().enumerate() {
        let (nb, st) =
            tune_kernel_body(body, f, kernel_index, variant, config, tcfg, bindings, &tm)?;
        new_bodies.push(nb);
        stats.push(st);
    }
    let mut out = f.clone();
    for (l, nb) in accsat_ir::innermost_parallel_loops_mut(&mut out).into_iter().zip(new_bodies) {
        l.body = nb;
    }
    Ok((out, stats))
}

/// The tune-mode counterpart of [`optimize_kernel_body`]: saturate, then
/// hand the e-graph to the autotuner, which harvests, lowers, simulates
/// and ranks the candidates.
#[allow(clippy::too_many_arguments)]
fn tune_kernel_body(
    body: &Block,
    f: &Function,
    kernel_index: usize,
    variant: Variant,
    config: &SaturatorConfig,
    tcfg: &TuneConfig,
    bindings: &HashMap<String, i64>,
    tm: &TypeMap,
) -> Result<(Block, OptStats), String> {
    let sat = saturate_body(body, variant, config);
    let Saturated { kernel, ssa_time, sat_time, iters, stop, rule_stats, iter_counts } = sat;

    let t2 = Instant::now();
    let copts = CodegenOptions { bulk_load: variant.bulk_loads() };
    // harvest at full portfolio width: every strategy's selection is a
    // candidate, regardless of how narrow the static extraction races.
    // The tune path keeps its own unbudgeted fan-out: the tuner's
    // lower-and-simulate stage dominates its wall time, not the race.
    let mut pcfg = portfolio_config(config);
    pcfg.threads = pcfg.threads.max(accsat_extract::STRATEGY_COUNT);
    let tuned = tune_kernel(
        f,
        kernel_index,
        &kernel,
        tm,
        &config.cost_model,
        &pcfg,
        &copts,
        bindings,
        tcfg,
    )?;
    let tune_time = t2.elapsed();

    let stats = OptStats {
        function: f.name.clone(),
        ssa_codegen: ssa_time,
        saturation: sat_time,
        extraction: tune_time,
        egraph_nodes: kernel.egraph.total_nodes(),
        saturation_iters: iters,
        stop_reason: stop,
        rule_stats,
        iteration_counts: iter_counts,
        extracted_cost: tuned.tuning.winning().static_cost,
        extraction_proven: tuned.tuning.winning().proven_optimal,
        extraction_winner: "tune",
        extraction_explored: 0,
        extraction_lower_bound: tuned.tuning.lower_bound,
        extraction_pruned: [0; 3],
        tuning: Some(tuned.tuning),
        // tune mode ranks by *simulated cycles*, an objective the stage
        // cache does not key — it always runs cold
        cache_level: CacheLevel::Miss,
    };
    Ok((tuned.body, stats))
}

fn optimize_block(
    b: &mut Block,
    variant: Variant,
    config: &SaturatorConfig,
    tm: &TypeMap,
    fname: &str,
    stats: &mut Vec<OptStats>,
) -> Result<(), String> {
    for s in &mut b.stmts {
        match s {
            Stmt::For(l) => {
                if l.directive.is_some() && !accsat_ir::has_directive_loop(&l.body) {
                    let (new_body, st) = optimize_kernel_body(&l.body, variant, config, tm, fname)?;
                    l.body = new_body;
                    stats.push(st);
                } else {
                    optimize_block(&mut l.body, variant, config, tm, fname, stats)?;
                }
            }
            Stmt::If { then, els, .. } => {
                optimize_block(then, variant, config, tm, fname, stats)?;
                if let Some(e) = els {
                    optimize_block(e, variant, config, tm, fname, stats)?;
                }
            }
            Stmt::While { body, .. } => {
                optimize_block(body, variant, config, tm, fname, stats)?;
            }
            Stmt::Block(inner) => {
                optimize_block(inner, variant, config, tm, fname, stats)?;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Outcome of the shared SSA + saturation front half of the pipeline
/// (steps ① and ② — everything before an objective picks the code).
struct Saturated {
    kernel: accsat_ssa::SsaKernel,
    ssa_time: Duration,
    sat_time: Duration,
    iters: usize,
    stop: Option<StopReason>,
    rule_stats: Vec<RuleStats>,
    iter_counts: Vec<IterCounts>,
}

/// SSA-construct and (for saturating variants) saturate one kernel body.
fn saturate_body(body: &Block, variant: Variant, config: &SaturatorConfig) -> Saturated {
    // 1. SSA construction (paper step ①)
    let t0 = Instant::now();
    let mut kernel = {
        let _span = trace::span("pipeline", "ssa");
        accsat_ssa::build_kernel(body)
    };
    let ssa_time = t0.elapsed();

    // 2. equality saturation (step ②)
    let t1 = Instant::now();
    let _sat_span = trace::span("pipeline", "saturate");
    let (iters, stop, rule_stats, iter_counts) = if variant.saturates() {
        let runner = Runner::from_shared(config.rules.clone())
            .with_limits(config.limits)
            .with_sat_threads(config.sat_threads)
            .with_budget(config.thread_budget.clone());
        let report = runner.run(&mut kernel.egraph);
        let iter_counts = report.iteration_counts();
        (report.iterations.len(), Some(report.stop_reason), report.rule_stats, iter_counts)
    } else {
        kernel.egraph.rebuild();
        (0, None, Vec::new(), Vec::new())
    };
    let sat_time = t1.elapsed();
    Saturated { kernel, ssa_time, sat_time, iters, stop, rule_stats, iter_counts }
}

/// The extraction portfolio configuration derived from a [`SaturatorConfig`].
fn portfolio_config(config: &SaturatorConfig) -> PortfolioConfig {
    PortfolioConfig {
        threads: config.extraction_threads,
        node_budget: config.extraction_node_budget,
        deadline: config.extraction_budget,
    }
}

/// Cache-aware saturation stage: restore the e-graph from a cached
/// snapshot when possible, otherwise run [`saturate_body`] and populate
/// the cache. SSA construction always re-runs — it is deterministic and
/// cheap, and the restored e-graph is swapped in over the fresh one (the
/// class ids of the assignment roots are identical by construction: the
/// snapshot was taken from an e-graph built by the very same SSA walk).
fn saturate_stage(
    body: &Block,
    variant: Variant,
    config: &SaturatorConfig,
) -> (Saturated, CacheLevel) {
    let Some(cache) = config.cache.as_deref() else {
        return (saturate_body(body, variant, config), CacheLevel::Miss);
    };
    let key = sat_stage_key(body, variant, config);
    if let Some(entry) = cache.get_sat(key) {
        if let Ok(eg) = EGraph::deserialize(&entry.egraph) {
            let t0 = Instant::now();
            let mut kernel = accsat_ssa::build_kernel(body);
            let ssa_time = t0.elapsed();
            let t1 = Instant::now();
            kernel.egraph = eg;
            return (
                Saturated {
                    kernel,
                    ssa_time,
                    sat_time: t1.elapsed(),
                    iters: entry.iters,
                    stop: entry.stop,
                    rule_stats: entry.rule_stats,
                    iter_counts: entry.iter_counts,
                },
                CacheLevel::Saturated,
            );
        }
        // corrupt snapshot: fall through and overwrite it below
    }
    let sat = saturate_body(body, variant, config);
    cache.put_sat(
        key,
        &SatEntry {
            egraph: sat.kernel.egraph.serialize(),
            iters: sat.iters,
            stop: sat.stop,
            rule_stats: sat.rule_stats.clone(),
            iter_counts: sat.iter_counts.clone(),
        },
    );
    (sat, CacheLevel::Miss)
}

/// Try to answer a kernel entirely from the `selected` cache level: both
/// the saturated e-graph snapshot and the certified selection must be
/// present and intact (a selection without its e-graph cannot be lowered,
/// so a partial hit falls back to the lower levels).
fn try_selected_hit(
    body: &Block,
    variant: Variant,
    config: &SaturatorConfig,
    tm: &TypeMap,
    fname: &str,
    sat_key: u64,
    sel_key: u64,
) -> Option<(Block, OptStats)> {
    let cache = config.cache.as_deref()?;
    let sel_entry = cache.get_sel(sel_key)?;
    let sat_entry = cache.get_sat(sat_key)?;
    let eg = EGraph::deserialize(&sat_entry.egraph).ok()?;
    let selection = Selection::deserialize(&sel_entry.selection).ok()?;
    // winner names are interned `&'static str`s in the live pipeline;
    // an unknown name means a stale/corrupt entry — treat as a miss
    let winner = intern_strategy(&sel_entry.winner)?;

    let t0 = Instant::now();
    let mut kernel = accsat_ssa::build_kernel(body);
    kernel.egraph = eg;
    let opts = CodegenOptions { bulk_load: variant.bulk_loads() };
    let new_body = generate(&kernel, &selection, tm, &opts);
    let codegen_time = t0.elapsed();

    Some((
        new_body,
        OptStats {
            function: fname.to_string(),
            ssa_codegen: codegen_time,
            saturation: Duration::ZERO,
            extraction: Duration::ZERO,
            egraph_nodes: kernel.egraph.total_nodes(),
            saturation_iters: sat_entry.iters,
            stop_reason: sat_entry.stop,
            rule_stats: sat_entry.rule_stats,
            iteration_counts: sat_entry.iter_counts,
            extracted_cost: sel_entry.cost,
            extraction_proven: sel_entry.proven,
            extraction_winner: winner,
            extraction_explored: sel_entry.explored,
            extraction_lower_bound: sel_entry.lower_bound,
            extraction_pruned: sel_entry.pruned,
            tuning: None,
            cache_level: CacheLevel::Selected,
        },
    ))
}

/// Run the e-graph pipeline on one kernel body.
pub fn optimize_kernel_body(
    body: &Block,
    variant: Variant,
    config: &SaturatorConfig,
    tm: &TypeMap,
    fname: &str,
) -> Result<(Block, OptStats), String> {
    let _kernel_span = trace::span_named("pipeline", || format!("kernel {fname}"));
    // With a cache configured, claim the kernel's selection key first so
    // concurrent identical requests coalesce (the first computes, the
    // rest wait and hit), then try the deepest cached level.
    let keys = config
        .cache
        .as_deref()
        .map(|_| (sat_stage_key(body, variant, config), sel_stage_key(body, variant, config)));
    let _flight = match (&config.cache, keys) {
        (Some(c), Some((_, sel_key))) => Some(c.single_flight(sel_key)),
        _ => None,
    };
    if let Some((sat_key, sel_key)) = keys {
        if let Some(hit) = try_selected_hit(body, variant, config, tm, fname, sat_key, sel_key) {
            return Ok(hit);
        }
    }

    let (sat, cache_level) = saturate_stage(body, variant, config);
    let Saturated { kernel, ssa_time, sat_time, iters, stop, rule_stats, iter_counts } = sat;

    // 3. extraction (LP objective, step ② part II) — a portfolio of
    // branch-and-bound strategies racing under a deterministic budget
    let t2 = Instant::now();
    let extract_span = trace::span("pipeline", "extract");
    let roots = kernel.extraction_roots();
    let cm = config.cost_model;
    let portfolio_cfg = portfolio_config(config);
    let extraction = extract_portfolio_budgeted(
        &kernel.egraph,
        &roots,
        &cm,
        &portfolio_cfg,
        config.thread_budget.as_deref(),
    );
    let cost = extraction.cost;
    let extract_time = t2.elapsed();
    drop(extract_span);
    let selection = extraction.selection;

    if let (Some(cache), Some((_, sel_key))) = (config.cache.as_deref(), keys) {
        cache.put_sel(
            sel_key,
            &SelEntry {
                selection: selection.serialize(),
                cost,
                proven: extraction.proven_optimal,
                winner: extraction.winner.to_string(),
                explored: extraction.workers.iter().map(|w| w.explored).sum(),
                lower_bound: extraction.lower_bound,
                pruned: extraction.pruned,
            },
        );
    }

    // 4. code generation (step ③)
    let t3 = Instant::now();
    let opts = CodegenOptions { bulk_load: variant.bulk_loads() };
    let new_body = {
        let _span = trace::span("pipeline", "codegen");
        generate(&kernel, &selection, tm, &opts)
    };
    let codegen_time = t3.elapsed();

    Ok((
        new_body,
        OptStats {
            function: fname.to_string(),
            ssa_codegen: ssa_time + codegen_time,
            saturation: sat_time,
            extraction: extract_time,
            egraph_nodes: kernel.egraph.total_nodes(),
            saturation_iters: iters,
            stop_reason: stop,
            rule_stats,
            iteration_counts: iter_counts,
            extracted_cost: cost,
            extraction_proven: extraction.proven_optimal,
            extraction_winner: extraction.winner,
            extraction_explored: extraction.workers.iter().map(|w| w.explored).sum(),
            extraction_lower_bound: extraction.lower_bound,
            extraction_pruned: extraction.pruned,
            tuning: None,
            cache_level,
        },
    ))
}

/// Optimize every function of a program.
pub fn optimize_program(
    prog: &Program,
    variant: Variant,
) -> Result<(Program, Vec<OptStats>), String> {
    optimize_program_with(prog, variant, &SaturatorConfig::default())
}

/// Optimize with an explicit configuration.
pub fn optimize_program_with(
    prog: &Program,
    variant: Variant,
    config: &SaturatorConfig,
) -> Result<(Program, Vec<OptStats>), String> {
    let mut functions = Vec::with_capacity(prog.functions.len());
    let mut stats = Vec::new();
    for f in &prog.functions {
        let (nf, st) = optimize_function(f, variant, config)?;
        functions.push(nf);
        stats.extend(st);
    }
    Ok((Program { functions }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_ir::parse_program;

    #[test]
    fn variant_properties() {
        assert!(!Variant::Cse.saturates());
        assert!(!Variant::Cse.bulk_loads());
        assert!(Variant::CseSat.saturates());
        assert!(!Variant::CseSat.bulk_loads());
        assert!(!Variant::CseBulk.saturates());
        assert!(Variant::CseBulk.bulk_loads());
        assert!(Variant::AccSat.saturates());
        assert!(Variant::AccSat.bulk_loads());
    }

    #[test]
    fn stats_are_populated() {
        let src = r#"
void k(double a[32], double out[32], double c) {
  #pragma acc parallel loop gang vector
  for (int i = 1; i < 31; i++) {
    out[i] = c * a[i - 1] + c * a[i] + c * a[i + 1];
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let (_, stats) = optimize_program(&prog, Variant::AccSat).unwrap();
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.function, "k");
        assert!(s.egraph_nodes > 10);
        assert!(s.extracted_cost > 0);
        assert!(s.stop_reason.is_some());
        assert!(!s.rule_stats.is_empty(), "saturating variants report per-rule stats");
        assert!(s.rule_stats.iter().any(|r| r.matches > 0));
    }

    #[test]
    fn non_saturating_variants_have_no_rule_stats() {
        let src = r#"
void k(double a[8], double out[8]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 8; i++) {
    out[i] = a[i] + a[i];
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let (_, stats) = optimize_program(&prog, Variant::Cse).unwrap();
        assert!(stats.iter().all(|s| s.rule_stats.is_empty()));
    }

    #[test]
    fn tune_function_simulated_winner_beats_all_candidates() {
        let src = r#"
void k(double a[256], double out[256], double c) {
  #pragma acc parallel loop gang vector
  for (int i = 1; i < 255; i++) {
    out[i] = c * a[i - 1] + c * a[i] + c * a[i + 1] + a[i] / c;
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let config = SaturatorConfig::default();
        let tcfg = TuneConfig::default();
        let (tuned, stats) =
            tune_function(&prog.functions[0], Variant::AccSat, &config, &tcfg, &HashMap::new())
                .unwrap();
        assert_eq!(stats.len(), 1);
        let t = stats[0].tuning.as_ref().expect("tune mode records tuning");
        assert!(!t.candidates.is_empty());
        for c in &t.candidates {
            assert!(t.winning().cycles <= c.cycles, "winner must have minimal cycles");
        }
        assert_eq!(stats[0].extracted_cost, t.winning().static_cost);
        assert_eq!(stats[0].extraction_winner, "tune");
        // the tuned function still carries its directive and parses back
        let text = accsat_ir::print_program(&accsat_ir::Program { functions: vec![tuned] });
        assert!(text.contains("#pragma acc parallel loop"));
        assert!(parse_program(&text).is_ok());
    }

    #[test]
    fn multiple_kernels_in_one_function() {
        let src = r#"
void two(double a[32], double b[32]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 32; i++) {
    a[i] = a[i] * 2.0;
  }
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 32; i++) {
    b[i] = b[i] + 1.0;
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let (_, stats) = optimize_program(&prog, Variant::Cse).unwrap();
        assert_eq!(stats.len(), 2);
    }
}
