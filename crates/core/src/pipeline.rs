//! The ACC Saturator pipeline: SSA → e-graph → saturation → extraction →
//! code generation, per innermost parallel loop.

use accsat_codegen::{generate, CodegenOptions, TypeMap};
use accsat_egraph::{all_rules, RuleStats, Runner, RunnerLimits, StopReason};
use accsat_extract::{extract, CostModel};
use accsat_ir::{Block, Function, Program, Stmt};
use std::time::{Duration, Instant};

/// The generated-code variants of the evaluation (§VIII).
///
/// * `Cse` — e-graph round-trip without rewriting: hash-consing alone
///   eliminates redundant loads and expressions.
/// * `CseSat` — plus equality saturation (Table I rules + constant folding).
/// * `CseBulk` — CSE plus bulk load reordering.
/// * `AccSat` — the full tool: CSE + saturation + bulk load.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    Original,
    Cse,
    CseSat,
    CseBulk,
    AccSat,
}

impl Variant {
    /// All evaluated variants, in the paper's plotting order.
    pub fn all() -> [Variant; 4] {
        [Variant::Cse, Variant::CseSat, Variant::CseBulk, Variant::AccSat]
    }

    /// Does this variant run equality saturation?
    pub fn saturates(&self) -> bool {
        matches!(self, Variant::CseSat | Variant::AccSat)
    }

    /// Does this variant reorder loads (bulk load)?
    pub fn bulk_loads(&self) -> bool {
        matches!(self, Variant::CseBulk | Variant::AccSat)
    }

    /// Display label used in figures.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Original => "Original",
            Variant::Cse => "CSE",
            Variant::CseSat => "CSE+SAT",
            Variant::CseBulk => "CSE+BULK",
            Variant::AccSat => "ACCSAT",
        }
    }
}

/// Saturation / extraction configuration. Defaults mirror §VII: 10 000
/// e-nodes, 10 iterations, 10 s saturation, 30 s extraction (scaled down for
/// the in-repo benchmarks, which are far smaller than full NPB kernels).
#[derive(Debug, Clone)]
pub struct SaturatorConfig {
    pub limits: RunnerLimits,
    pub extraction_budget: Duration,
    pub cost_model: CostModel,
}

impl Default for SaturatorConfig {
    fn default() -> SaturatorConfig {
        SaturatorConfig {
            limits: RunnerLimits::default(),
            extraction_budget: Duration::from_millis(500),
            cost_model: CostModel::paper(),
        }
    }
}

/// Per-kernel optimization statistics (the §VII timing numbers).
#[derive(Debug, Clone)]
pub struct OptStats {
    pub function: String,
    /// SSA construction + code generation time.
    pub ssa_codegen: Duration,
    /// Equality saturation time.
    pub saturation: Duration,
    /// Extraction time.
    pub extraction: Duration,
    /// Total e-nodes in the kernel's e-graph after processing.
    pub egraph_nodes: usize,
    /// Saturation iterations performed.
    pub saturation_iters: usize,
    /// Why saturation stopped.
    pub stop_reason: Option<StopReason>,
    /// Per-rule match/apply/ban statistics from the saturation runner
    /// (empty for variants that do not saturate).
    pub rule_stats: Vec<RuleStats>,
    /// Total extracted DAG cost under the paper cost model.
    pub extracted_cost: u64,
}

/// Optimize every kernel (innermost parallel loop) of a function.
pub fn optimize_function(
    f: &Function,
    variant: Variant,
    config: &SaturatorConfig,
) -> Result<(Function, Vec<OptStats>), String> {
    if variant == Variant::Original {
        return Ok((f.clone(), Vec::new()));
    }
    let mut out = f.clone();
    let mut stats = Vec::new();
    let tm = TypeMap::from_function(f);
    optimize_block(&mut out.body, variant, config, &tm, &f.name, &mut stats)?;
    Ok((out, stats))
}

fn optimize_block(
    b: &mut Block,
    variant: Variant,
    config: &SaturatorConfig,
    tm: &TypeMap,
    fname: &str,
    stats: &mut Vec<OptStats>,
) -> Result<(), String> {
    for s in &mut b.stmts {
        match s {
            Stmt::For(l) => {
                if l.directive.is_some() && !accsat_ir::has_directive_loop(&l.body) {
                    let (new_body, st) = optimize_kernel_body(&l.body, variant, config, tm, fname)?;
                    l.body = new_body;
                    stats.push(st);
                } else {
                    optimize_block(&mut l.body, variant, config, tm, fname, stats)?;
                }
            }
            Stmt::If { then, els, .. } => {
                optimize_block(then, variant, config, tm, fname, stats)?;
                if let Some(e) = els {
                    optimize_block(e, variant, config, tm, fname, stats)?;
                }
            }
            Stmt::While { body, .. } => {
                optimize_block(body, variant, config, tm, fname, stats)?;
            }
            Stmt::Block(inner) => {
                optimize_block(inner, variant, config, tm, fname, stats)?;
            }
            _ => {}
        }
    }
    Ok(())
}

/// Run the e-graph pipeline on one kernel body.
pub fn optimize_kernel_body(
    body: &Block,
    variant: Variant,
    config: &SaturatorConfig,
    tm: &TypeMap,
    fname: &str,
) -> Result<(Block, OptStats), String> {
    // 1. SSA construction (paper step ①)
    let t0 = Instant::now();
    let mut kernel = accsat_ssa::build_kernel(body);
    let ssa_time = t0.elapsed();

    // 2. equality saturation (step ②)
    let t1 = Instant::now();
    let (iters, stop, rule_stats) = if variant.saturates() {
        let runner = Runner::new(all_rules()).with_limits(config.limits);
        let report = runner.run(&mut kernel.egraph);
        (report.iterations.len(), Some(report.stop_reason), report.rule_stats)
    } else {
        kernel.egraph.rebuild();
        (0, None, Vec::new())
    };
    let sat_time = t1.elapsed();

    // 3. extraction (LP objective, step ② part II)
    let t2 = Instant::now();
    let roots = kernel.extraction_roots();
    let cm = config.cost_model;
    let selection = extract(&kernel.egraph, &roots, &cm, config.extraction_budget);
    let cost = selection.dag_cost(&kernel.egraph, &cm, &roots);
    let extract_time = t2.elapsed();

    // 4. code generation (step ③)
    let t3 = Instant::now();
    let opts = CodegenOptions { bulk_load: variant.bulk_loads() };
    let new_body = generate(&kernel, &selection, tm, &opts);
    let codegen_time = t3.elapsed();

    Ok((
        new_body,
        OptStats {
            function: fname.to_string(),
            ssa_codegen: ssa_time + codegen_time,
            saturation: sat_time,
            extraction: extract_time,
            egraph_nodes: kernel.egraph.total_nodes(),
            saturation_iters: iters,
            stop_reason: stop,
            rule_stats,
            extracted_cost: cost,
        },
    ))
}

/// Optimize every function of a program.
pub fn optimize_program(
    prog: &Program,
    variant: Variant,
) -> Result<(Program, Vec<OptStats>), String> {
    optimize_program_with(prog, variant, &SaturatorConfig::default())
}

/// Optimize with an explicit configuration.
pub fn optimize_program_with(
    prog: &Program,
    variant: Variant,
    config: &SaturatorConfig,
) -> Result<(Program, Vec<OptStats>), String> {
    let mut functions = Vec::with_capacity(prog.functions.len());
    let mut stats = Vec::new();
    for f in &prog.functions {
        let (nf, st) = optimize_function(f, variant, config)?;
        functions.push(nf);
        stats.extend(st);
    }
    Ok((Program { functions }, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_ir::parse_program;

    #[test]
    fn variant_properties() {
        assert!(!Variant::Cse.saturates());
        assert!(!Variant::Cse.bulk_loads());
        assert!(Variant::CseSat.saturates());
        assert!(!Variant::CseSat.bulk_loads());
        assert!(!Variant::CseBulk.saturates());
        assert!(Variant::CseBulk.bulk_loads());
        assert!(Variant::AccSat.saturates());
        assert!(Variant::AccSat.bulk_loads());
    }

    #[test]
    fn stats_are_populated() {
        let src = r#"
void k(double a[32], double out[32], double c) {
  #pragma acc parallel loop gang vector
  for (int i = 1; i < 31; i++) {
    out[i] = c * a[i - 1] + c * a[i] + c * a[i + 1];
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let (_, stats) = optimize_program(&prog, Variant::AccSat).unwrap();
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.function, "k");
        assert!(s.egraph_nodes > 10);
        assert!(s.extracted_cost > 0);
        assert!(s.stop_reason.is_some());
        assert!(!s.rule_stats.is_empty(), "saturating variants report per-rule stats");
        assert!(s.rule_stats.iter().any(|r| r.matches > 0));
    }

    #[test]
    fn non_saturating_variants_have_no_rule_stats() {
        let src = r#"
void k(double a[8], double out[8]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 8; i++) {
    out[i] = a[i] + a[i];
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let (_, stats) = optimize_program(&prog, Variant::Cse).unwrap();
        assert!(stats.iter().all(|s| s.rule_stats.is_empty()));
    }

    #[test]
    fn multiple_kernels_in_one_function() {
        let src = r#"
void two(double a[32], double b[32]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 32; i++) {
    a[i] = a[i] * 2.0;
  }
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 32; i++) {
    b[i] = b[i] + 1.0;
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let (_, stats) = optimize_program(&prog, Variant::Cse).unwrap();
        assert_eq!(stats.len(), 2);
    }
}
