//! The SSA builder: converts a kernel body into e-graph classes plus a
//! structure tree that code generation later re-walks.

use accsat_egraph::{EGraph, Id, Node, Op};
use accsat_ir::{BinOp, Block, Expr, LValue, Stmt, Type, UnOp};
use std::collections::{HashMap, HashSet};

/// The target of an SSA assignment.
#[derive(Debug, Clone)]
pub enum Target {
    /// Scalar variable; `decl_ty` is `Some` when the original statement was a
    /// declaration (`double t = …`).
    Scalar { name: String, decl_ty: Option<Type> },
    /// Array store: `base[index_exprs…] = value`. `index_classes` are the
    /// e-classes of the index expressions; `index_exprs` the original text.
    Store { base: String, index_exprs: Vec<Expr>, index_classes: Vec<Id> },
}

impl Target {
    /// Variable or array name assigned by this target.
    pub fn base(&self) -> &str {
        match self {
            Target::Scalar { name, .. } => name,
            Target::Store { base, .. } => base,
        }
    }
}

/// A node of the SSA structure tree. Mirrors the original control structure;
/// code generation walks it to rebuild the kernel.
#[derive(Debug, Clone)]
pub enum SsaNode {
    /// An assignment; `class` is the e-class of the right-hand value and
    /// `state_class` (stores only) the e-class of the produced array state.
    Assign { target: Target, class: Id, state_class: Option<Id> },
    /// Bare declaration with no initializer (re-emitted verbatim).
    Decl { name: String, ty: Type },
    /// An `if`; conditions are re-emitted from the original expression.
    If {
        cond: Expr,
        cond_class: Id,
        then: Vec<SsaNode>,
        els: Vec<SsaNode>,
        has_else: bool,
        /// (variable, φ class after the if) — for availability tracking.
        phis: Vec<(String, Id)>,
    },
    /// A sequential `for` inside the kernel body.
    Loop {
        /// Original loop header (body replaced by the SSA nodes below).
        header: accsat_ir::ast::ForLoop,
        body: Vec<SsaNode>,
        /// (variable, entry symbol class, post-loop φ class, init class).
        phis: Vec<(String, Id, Id, Id)>,
    },
    /// Any other statement (function-call statement, `while`) re-emitted
    /// verbatim. Every name the statement may write is *havocked*: rebound
    /// to a fresh opaque symbol (`name@H0`, `name@H1`, …) that nothing
    /// else can alias, so CSE cannot reuse — and bulk load cannot hoist —
    /// a value read across the statement's stores.
    Opaque {
        /// The original statement, re-emitted verbatim.
        stmt: Stmt,
        /// (name, havoc symbol class) for every name the statement may
        /// write, sorted by name. Codegen binds each name to its havoc
        /// class after emitting the statement.
        havocs: Vec<(String, Id)>,
    },
}

/// Result of SSA construction for one kernel body.
#[derive(Debug, Clone)]
pub struct SsaKernel {
    pub egraph: EGraph,
    pub nodes: Vec<SsaNode>,
    /// Initial value class of every name referenced before assignment
    /// (`x → Sym(x)` class). Used by codegen availability tracking.
    pub initial_values: Vec<(String, Id)>,
    /// Names used as arrays (indexed or stored to) anywhere in the body.
    pub array_names: Vec<String>,
    /// Number of sequential loops encountered (labels `L0…`).
    pub num_loops: usize,
}

impl SsaKernel {
    /// E-classes of all assignment right-hand sides, in program order —
    /// the extraction roots.
    pub fn assignment_classes(&self) -> Vec<Id> {
        let mut out = Vec::new();
        collect_assign_classes(&self.nodes, &mut out);
        out
    }

    /// All extraction roots: assignment values plus store index classes.
    pub fn extraction_roots(&self) -> Vec<Id> {
        let mut out = Vec::new();
        collect_roots(&self.nodes, &mut out);
        out
    }
}

fn collect_assign_classes(nodes: &[SsaNode], out: &mut Vec<Id>) {
    for n in nodes {
        match n {
            SsaNode::Assign { class, .. } => out.push(*class),
            SsaNode::If { then, els, .. } => {
                collect_assign_classes(then, out);
                collect_assign_classes(els, out);
            }
            SsaNode::Loop { body, .. } => collect_assign_classes(body, out),
            _ => {}
        }
    }
}

fn collect_roots(nodes: &[SsaNode], out: &mut Vec<Id>) {
    for n in nodes {
        match n {
            SsaNode::Assign { class, target, .. } => {
                out.push(*class);
                if let Target::Store { index_classes, .. } = target {
                    out.extend(index_classes.iter().copied());
                }
            }
            SsaNode::If { then, els, .. } => {
                collect_roots(then, out);
                collect_roots(els, out);
            }
            SsaNode::Loop { body, .. } => collect_roots(body, out),
            _ => {}
        }
    }
}

/// Build the SSA form + e-graph for one kernel body (the body of an
/// innermost parallel loop).
pub fn build_kernel(body: &Block) -> SsaKernel {
    let mut b = Builder {
        eg: EGraph::new(),
        env: HashMap::new(),
        initial: Vec::new(),
        arrays: Vec::new(),
        declared: HashSet::new(),
        loop_counter: 0,
        havoc_counter: 0,
    };
    let nodes = b.block(body);
    SsaKernel {
        egraph: b.eg,
        nodes,
        initial_values: b.initial,
        array_names: b.arrays,
        num_loops: b.loop_counter,
    }
}

struct Builder {
    eg: EGraph,
    /// Current SSA value of each name (scalars and array states).
    env: HashMap<String, Id>,
    initial: Vec<(String, Id)>,
    arrays: Vec<String>,
    /// Names introduced by declarations inside the kernel. Everything else
    /// (parameters, outer-scope variables, array states) has an ambient
    /// value that exists before any branch executes.
    declared: HashSet<String>,
    loop_counter: usize,
    /// Fresh-symbol counter for opaque-statement havocs (`x@H0`, …).
    havoc_counter: usize,
}

impl Builder {
    fn note_array(&mut self, name: &str) {
        if !self.arrays.iter().any(|a| a == name) {
            self.arrays.push(name.to_string());
        }
    }

    /// Current class of a name, creating the initial `Sym` on first read.
    fn value_of(&mut self, name: &str) -> Id {
        if let Some(&id) = self.env.get(name) {
            return id;
        }
        let id = self.ambient(name);
        self.env.insert(name.to_string(), id);
        id
    }

    /// The initial (pre-kernel) value of a name: the incoming array state or
    /// outer-scope variable. Hash-consing guarantees this is the same class
    /// regardless of where the name is first touched, so a branch-local read
    /// and a later kernel-level read of an untouched name agree.
    fn ambient(&mut self, name: &str) -> Id {
        let id = self.eg.add(Node::sym(name));
        if !self.initial.iter().any(|(n, _)| n == name) {
            self.initial.push((name.to_string(), id));
        }
        id
    }

    fn expr(&mut self, e: &Expr) -> Id {
        match e {
            Expr::Int(v) => self.eg.add(Node::int(*v)),
            Expr::Float(v) => self.eg.add(Node::float(*v)),
            Expr::Var(n) => self.value_of(n),
            Expr::Index { base, indices } => {
                self.note_array(base);
                let idx: Vec<Id> = indices.iter().map(|i| self.expr(i)).collect();
                let state = self.value_of(base);
                let mut children = vec![state];
                children.extend(idx);
                self.eg.add(Node::new(Op::Load, children))
            }
            Expr::Unary { op, operand } => {
                let c = self.expr(operand);
                let op = match op {
                    UnOp::Neg => Op::Neg,
                    UnOp::Not => Op::Not,
                };
                self.eg.add(Node::new(op, vec![c]))
            }
            Expr::Binary { op, lhs, rhs } => {
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                self.eg.add(Node::new(binop_to_op(*op), vec![l, r]))
            }
            Expr::Call { name, args } => {
                let a: Vec<Id> = args.iter().map(|x| self.expr(x)).collect();
                self.eg.add(Node::new(Op::Call(name.clone()), a))
            }
            Expr::Ternary { cond, then, els } => {
                let c = self.expr(cond);
                let t = self.expr(then);
                let e2 = self.expr(els);
                self.eg.add(Node::new(Op::Select, vec![c, t, e2]))
            }
            Expr::Cast { ty, expr } => {
                let c = self.expr(expr);
                let op = match ty {
                    Type::Int => Op::CastInt,
                    _ => Op::CastFloat,
                };
                self.eg.add(Node::new(op, vec![c]))
            }
        }
    }

    fn block(&mut self, b: &Block) -> Vec<SsaNode> {
        let mut out = Vec::new();
        for s in &b.stmts {
            self.stmt(s, &mut out);
        }
        out
    }

    fn stmt(&mut self, s: &Stmt, out: &mut Vec<SsaNode>) {
        match s {
            Stmt::Decl { ty, name, init } => match init {
                Some(e) => {
                    let class = self.expr(e);
                    self.declared.insert(name.clone());
                    self.env.insert(name.clone(), class);
                    out.push(SsaNode::Assign {
                        target: Target::Scalar { name: name.clone(), decl_ty: Some(ty.clone()) },
                        class,
                        state_class: None,
                    });
                }
                None => {
                    self.declared.insert(name.clone());
                    out.push(SsaNode::Decl { name: name.clone(), ty: ty.clone() });
                }
            },
            Stmt::Assign { lhs, op, rhs } => {
                let rhs_class = self.expr(rhs);
                let value_class = match op.binop() {
                    None => rhs_class,
                    Some(bop) => {
                        let old = match lhs {
                            LValue::Var(n) => self.value_of(n),
                            LValue::Index { base, indices } => {
                                self.note_array(base);
                                let idx: Vec<Id> = indices.iter().map(|i| self.expr(i)).collect();
                                let state = self.value_of(base);
                                let mut children = vec![state];
                                children.extend(idx);
                                self.eg.add(Node::new(Op::Load, children))
                            }
                        };
                        self.eg.add(Node::new(binop_to_op(bop), vec![old, rhs_class]))
                    }
                };
                match lhs {
                    LValue::Var(n) => {
                        self.env.insert(n.clone(), value_class);
                        out.push(SsaNode::Assign {
                            target: Target::Scalar { name: n.clone(), decl_ty: None },
                            class: value_class,
                            state_class: None,
                        });
                    }
                    LValue::Index { base, indices } => {
                        self.note_array(base);
                        let index_classes: Vec<Id> = indices.iter().map(|i| self.expr(i)).collect();
                        let state = self.value_of(base);
                        let mut children = vec![state];
                        children.extend(index_classes.iter().copied());
                        children.push(value_class);
                        let new_state = self.eg.add(Node::new(Op::Store, children));
                        self.env.insert(base.clone(), new_state);
                        out.push(SsaNode::Assign {
                            target: Target::Store {
                                base: base.clone(),
                                index_exprs: indices.clone(),
                                index_classes,
                            },
                            class: value_class,
                            state_class: Some(new_state),
                        });
                    }
                }
            }
            Stmt::If { cond, then, els } => {
                let cond_class = self.expr(cond);
                let before = self.env.clone();
                let then_nodes = self.block(then);
                let then_env = std::mem::replace(&mut self.env, before.clone());
                let els_nodes = match els {
                    Some(e) => self.block(e),
                    None => Vec::new(),
                };
                let els_env = std::mem::replace(&mut self.env, before.clone());
                // φ for every name whose value differs between the branches
                let mut phis = Vec::new();
                let mut names: Vec<&String> = then_env.keys().chain(els_env.keys()).collect();
                names.sort();
                names.dedup();
                for name in names {
                    let pre = match before.get(name) {
                        Some(&id) => Some(id),
                        // Not bound before the branch, but not declared
                        // inside the kernel either: the name has an ambient
                        // pre-branch value (incoming array state, parameter,
                        // outer-scope variable). A store under `if` must φ
                        // against it, or a later read would alias the
                        // pre-store state and license stale-load reuse.
                        None if !self.declared.contains(name.as_str()) => Some(self.ambient(name)),
                        None => None,
                    };
                    let t = then_env.get(name).copied().or(pre);
                    let e = els_env.get(name).copied().or(pre);
                    let (t, e) = match (t, e) {
                        (Some(t), Some(e)) => (t, e),
                        // declared in only one branch and nowhere before:
                        // reading it after the if is out of scope; skip the φ
                        _ => continue,
                    };
                    if self.eg.find(t) == self.eg.find(e) {
                        self.env.insert(name.clone(), t);
                        continue;
                    }
                    let phi = self.eg.add(Node::new(Op::Select, vec![cond_class, t, e]));
                    self.env.insert(name.clone(), phi);
                    phis.push((name.clone(), phi));
                }
                out.push(SsaNode::If {
                    cond: cond.clone(),
                    cond_class,
                    then: then_nodes,
                    els: els_nodes,
                    has_else: els.is_some(),
                    phis,
                });
            }
            Stmt::For(l) => {
                let label = format!("L{}", self.loop_counter);
                self.loop_counter += 1;
                // variables (and arrays) modified inside the loop
                let mut modified = modified_names(&l.body);
                if !modified.contains(&l.var) {
                    modified.push(l.var.clone());
                }
                // induction variables of nested scoped loops die with
                // their own loop (their handler removes them from the
                // environment), so they take no φ — and no entry symbol —
                // at this level
                let nested_scoped = scoped_loop_vars(&l.body);
                modified.retain(|m| *m == l.var || !nested_scoped.contains(m));
                modified.sort();
                // record init values, then bind entry symbols for the body
                let mut inits = Vec::new();
                for m in &modified {
                    let init = self.value_of(m);
                    inits.push((m.clone(), init));
                    let entry = self.eg.add(Node::sym(&format!("{m}@{label}")));
                    self.env.insert(m.clone(), entry);
                }
                let entry_classes: HashMap<String, Id> =
                    modified.iter().map(|m| (m.clone(), self.env[m])).collect();
                let body_nodes = self.block(&l.body);
                // post-loop φ
                let loop_cond = self.eg.add(Node::leaf(Op::LoopCond(label)));
                let mut phis = Vec::new();
                for (m, init) in &inits {
                    let body_val = self.env[m];
                    let phi = self.eg.add(Node::new(Op::PhiLoop, vec![loop_cond, body_val, *init]));
                    if *m == l.var && l.declares_var {
                        // scoped induction variable disappears after the loop
                        self.env.remove(m);
                    } else {
                        self.env.insert(m.clone(), phi);
                    }
                    phis.push((m.clone(), entry_classes[m], phi, *init));
                }
                let mut header = l.clone();
                header.body = Block::default();
                out.push(SsaNode::Loop { header, body: body_nodes, phis });
            }
            other => {
                // havoc every name the statement may write (it executes
                // out of the e-graph's sight): reading its pre-value first
                // records ambient initial values so codegen tracks array
                // states from kernel entry, then each name is rebound to a
                // fresh opaque symbol no other expression can alias.
                // Names the statement declares itself die with its scope
                // and are not havocked.
                self.note_arrays_in(other);
                let local = locally_declared(other);
                let mut names = modified_names(&Block::new(vec![other.clone()]));
                names.retain(|n| !local.contains(n));
                names.sort();
                let mut havocs = Vec::new();
                for name in names {
                    self.value_of(&name);
                    let sym = format!("{name}@H{}", self.havoc_counter);
                    self.havoc_counter += 1;
                    let id = self.eg.add(Node::sym(&sym));
                    self.env.insert(name.clone(), id);
                    havocs.push((name, id));
                }
                out.push(SsaNode::Opaque { stmt: other.clone(), havocs });
            }
        }
    }

    /// Record every name used as an array anywhere inside `s` (opaque
    /// statements are not lowered, so [`Builder::expr`] never sees their
    /// index expressions).
    fn note_arrays_in(&mut self, s: &Stmt) {
        fn expr(b: &mut Builder, e: &Expr) {
            match e {
                Expr::Index { base, indices } => {
                    b.note_array(base);
                    for i in indices {
                        expr(b, i);
                    }
                }
                Expr::Unary { operand, .. } => expr(b, operand),
                Expr::Binary { lhs, rhs, .. } => {
                    expr(b, lhs);
                    expr(b, rhs);
                }
                Expr::Call { args, .. } => {
                    for a in args {
                        expr(b, a);
                    }
                }
                Expr::Ternary { cond, then, els } => {
                    expr(b, cond);
                    expr(b, then);
                    expr(b, els);
                }
                Expr::Cast { expr: inner, .. } => expr(b, inner),
                Expr::Int(_) | Expr::Float(_) | Expr::Var(_) => {}
            }
        }
        match s {
            Stmt::Decl { init, .. } => {
                if let Some(e) = init {
                    expr(self, e);
                }
            }
            Stmt::Assign { lhs, rhs, .. } => {
                if let LValue::Index { base, indices } = lhs {
                    self.note_array(base);
                    for i in indices {
                        expr(self, i);
                    }
                }
                expr(self, rhs);
            }
            Stmt::If { cond, then, els } => {
                expr(self, cond);
                for s in &then.stmts {
                    self.note_arrays_in(s);
                }
                if let Some(e) = els {
                    for s in &e.stmts {
                        self.note_arrays_in(s);
                    }
                }
            }
            Stmt::For(l) => {
                expr(self, &l.init);
                expr(self, &l.cond);
                expr(self, &l.step);
                for s in &l.body.stmts {
                    self.note_arrays_in(s);
                }
            }
            Stmt::While { cond, body } => {
                expr(self, cond);
                for s in &body.stmts {
                    self.note_arrays_in(s);
                }
            }
            Stmt::Block(b) => {
                for s in &b.stmts {
                    self.note_arrays_in(s);
                }
            }
            Stmt::Expr(e) => expr(self, e),
            Stmt::Return(e) => {
                if let Some(e) = e {
                    expr(self, e);
                }
            }
        }
    }
}

/// Induction variables of scoped `for` loops (`declares_var`) anywhere
/// inside `b`: each dies with its own loop, so an enclosing loop must not
/// treat it as a loop-carried name.
fn scoped_loop_vars(b: &Block) -> Vec<String> {
    let mut out = Vec::new();
    fn go(s: &Stmt, out: &mut Vec<String>) {
        match s {
            Stmt::For(l) => {
                if l.declares_var {
                    out.push(l.var.clone());
                }
                for s in &l.body.stmts {
                    go(s, out);
                }
            }
            Stmt::If { then, els, .. } => {
                for s in &then.stmts {
                    go(s, out);
                }
                if let Some(e) = els {
                    for s in &e.stmts {
                        go(s, out);
                    }
                }
            }
            Stmt::While { body, .. } => {
                for s in &body.stmts {
                    go(s, out);
                }
            }
            Stmt::Block(b) => {
                for s in &b.stmts {
                    go(s, out);
                }
            }
            _ => {}
        }
    }
    for s in &b.stmts {
        go(s, &mut out);
    }
    out
}

/// Names declared *inside* `s` (block-scoped: they die with the statement
/// and must not be havocked at the enclosing scope).
fn locally_declared(s: &Stmt) -> Vec<String> {
    let mut out = Vec::new();
    fn go(s: &Stmt, out: &mut Vec<String>) {
        match s {
            Stmt::Decl { name, .. } => out.push(name.clone()),
            Stmt::If { then, els, .. } => {
                for s in &then.stmts {
                    go(s, out);
                }
                if let Some(e) = els {
                    for s in &e.stmts {
                        go(s, out);
                    }
                }
            }
            Stmt::For(l) => {
                if l.declares_var {
                    out.push(l.var.clone());
                }
                for s in &l.body.stmts {
                    go(s, out);
                }
            }
            Stmt::While { body, .. } => {
                for s in &body.stmts {
                    go(s, out);
                }
            }
            Stmt::Block(b) => {
                for s in &b.stmts {
                    go(s, out);
                }
            }
            _ => {}
        }
    }
    go(s, &mut out);
    out
}

fn binop_to_op(op: BinOp) -> Op {
    match op {
        BinOp::Add => Op::Add,
        BinOp::Sub => Op::Sub,
        BinOp::Mul => Op::Mul,
        BinOp::Div => Op::Div,
        BinOp::Mod => Op::Mod,
        BinOp::Lt => Op::Lt,
        BinOp::Le => Op::Le,
        BinOp::Gt => Op::Gt,
        BinOp::Ge => Op::Ge,
        BinOp::Eq => Op::Eq,
        BinOp::Ne => Op::Ne,
        BinOp::And => Op::And,
        BinOp::Or => Op::Or,
    }
}

/// Names (scalars and arrays) assigned anywhere in a block.
pub fn modified_names(b: &Block) -> Vec<String> {
    let mut out = Vec::new();
    fn go(s: &Stmt, out: &mut Vec<String>) {
        let mut push = |n: &str| {
            if !out.iter().any(|x| x == n) {
                out.push(n.to_string());
            }
        };
        match s {
            Stmt::Decl { name, .. } => push(name),
            Stmt::Assign { lhs, .. } => push(lhs.base()),
            Stmt::If { then, els, .. } => {
                for s in &then.stmts {
                    go(s, out);
                }
                if let Some(e) = els {
                    for s in &e.stmts {
                        go(s, out);
                    }
                }
            }
            Stmt::For(l) => {
                push(&l.var);
                for s in &l.body.stmts {
                    go(s, out);
                }
            }
            Stmt::While { body, .. } => {
                for s in &body.stmts {
                    go(s, out);
                }
            }
            Stmt::Block(b) => {
                for s in &b.stmts {
                    go(s, out);
                }
            }
            _ => {}
        }
    }
    for s in &b.stmts {
        go(s, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_ir::parse_program;

    #[test]
    fn modified_names_finds_all() {
        let src = r#"
void f(double a[4], double b) {
  double t = 1.0;
  a[0] = t;
  if (b > 0.0) {
    t = 2.0;
  }
  for (int l = 0; l < 4; l++) {
    b = b + 1.0;
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let names = modified_names(&prog.functions[0].body);
        for n in ["t", "a", "l", "b"] {
            assert!(names.iter().any(|x| x == n), "missing {n}");
        }
    }

    #[test]
    fn initial_values_recorded() {
        let src = r#"
void f(double out[4], double x, double y) {
  out[0] = x + y;
}
"#;
        let prog = parse_program(src).unwrap();
        let k = build_kernel(&prog.functions[0].body);
        let names: Vec<&str> = k.initial_values.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"x"));
        assert!(names.contains(&"y"));
        assert!(names.contains(&"out"));
    }

    #[test]
    fn extraction_roots_include_store_indices() {
        let src = r#"
void f(double out[8], int base) {
  out[base + 1] = 2.0;
}
"#;
        let prog = parse_program(src).unwrap();
        let k = build_kernel(&prog.functions[0].body);
        let roots = k.extraction_roots();
        // value class + one index class
        assert_eq!(roots.len(), 2);
    }

    #[test]
    fn nested_scoped_loops_build_without_phi_for_inner_vars() {
        // The inner loop's scoped induction variable dies with the inner
        // loop; the outer loop must not demand a φ for it (this used to
        // panic with "no entry found for key").
        let src = r#"
void f(double a[8], double out[8]) {
  #pragma acc parallel loop gang vector
  for (int i = 1; i < 7; i++) {
    double s = a[i];
    for (int l1 = 0; l1 < 3; l1++) {
      for (int l2 = 0; l2 < 2; l2++) {
        s = s + a[i - 1];
      }
    }
    out[i] = s;
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let k = build_kernel(&prog.functions[0].body);
        let outer = k
            .nodes
            .iter()
            .find_map(|n| match n {
                SsaNode::Loop { header, phis, .. } if header.var == "i" => Some(phis),
                _ => None,
            })
            .expect("outer loop lowers to a Loop node");
        let phi_names: Vec<&str> = outer.iter().map(|(n, _, _, _)| n.as_str()).collect();
        assert!(!phi_names.contains(&"l1"), "inner loop var must not φ at the outer level");
        assert!(!phi_names.contains(&"l2"), "inner loop var must not φ at the outer level");
        assert!(phi_names.contains(&"s"), "the accumulator threads through the outer φ");
    }

    #[test]
    fn while_statement_havocs_modified_names() {
        let src = r#"
void f(double a[8], double out[8], double c) {
  double s = a[2] + c;
  int w = 0;
  while (w < 3) {
    a[2] = a[2] + s;
    w = w + 1;
  }
  out[0] = s + a[2];
}
"#;
        let prog = parse_program(src).unwrap();
        let k = build_kernel(&prog.functions[0].body);
        let havocs = k
            .nodes
            .iter()
            .find_map(|n| match n {
                SsaNode::Opaque { havocs, .. } => Some(havocs),
                _ => None,
            })
            .expect("while lowers to an opaque node");
        let names: Vec<&str> = havocs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "w"], "modified names, sorted");
        assert!(k.array_names.iter().any(|a| a == "a"), "arrays inside the while are noted");
        // the store after the while must write through the havocked array
        // state, never the pre-while one: its value class reads a fresh
        // `a@H…` symbol somewhere below
        let last = k.nodes.last().expect("kernel has nodes");
        let SsaNode::Assign { class, .. } = last else { panic!("expected final store") };
        let mut stack = vec![*class];
        let mut seen = std::collections::HashSet::new();
        let mut found_havoc = false;
        while let Some(c) = stack.pop() {
            let c = k.egraph.find(c);
            if !seen.insert(c) {
                continue;
            }
            for n in &k.egraph.class(c).nodes {
                if let Op::Sym(s) = &n.op {
                    found_havoc |= s.contains("@H");
                }
                stack.extend(n.children.iter().copied());
            }
        }
        assert!(found_havoc, "post-while load must read a havoc symbol state");
    }

    #[test]
    fn locally_declared_names_are_not_havocked() {
        let src = r#"
void f(double a[8], double b) {
  while (b < 4.0) {
    double t = a[0] + 1.0;
    a[0] = t;
    b = b + t;
  }
}
"#;
        let prog = parse_program(src).unwrap();
        let k = build_kernel(&prog.functions[0].body);
        let SsaNode::Opaque { havocs, .. } = &k.nodes[0] else { panic!("expected opaque") };
        let names: Vec<&str> = havocs.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b"], "`t` dies with the while body and is not havocked");
    }

    #[test]
    fn no_spurious_phi_when_branches_agree() {
        let src = r#"
void f(double out[4], double x) {
  double t = x;
  if (x > 0.0) {
    out[0] = 1.0;
  }
  out[1] = t;
}
"#;
        let prog = parse_program(src).unwrap();
        let k = build_kernel(&prog.functions[0].body);
        // `t` is not modified in the branch: no φ for it
        if let SsaNode::If { phis, .. } = &k.nodes[1] {
            assert!(phis.iter().all(|(n, _)| n != "t"));
        } else {
            panic!("expected If node");
        }
    }
}
