//! `accsat-ssa` — static single-assignment construction into the e-graph.
//!
//! This implements §IV of the paper. For each innermost parallel loop body:
//!
//! 1. conditional φ nodes represent `if` (`Select(cond, then, else)`) and
//!    sequential `for` (`PhiLoop(loop-cond, body-value, init-value)`) control
//!    structures, merging data flows;
//! 2. every variable/array assignment (and every φ) receives an ID — here,
//!    an e-class id;
//! 3. every variable/array load refers to the latest ID along its data flow;
//! 4. each (ID, expression) pair lands in one e-class.
//!
//! Array accesses are SSA values too (paper Fig. 1):
//! `A[i] = A[i] + 1` becomes `A1 = Store(A0, i, Load(A0, i) + 1)` — a store
//! produces a *new array value*, so load/store ordering is encoded as data
//! dependence and bulk load can never float a read across a conflicting
//! write.
//!
//! Loop-carried values enter the body as fresh *entry symbols*
//! (`x@L0`, the φ at the loop header) which keeps the e-graph acyclic; the
//! post-loop value is a `PhiLoop` node. Code generation re-emits the original
//! control structure, so these φs are never materialized — they only keep
//! data flows of different iterations distinct during rewriting.

pub mod builder;

pub use builder::{build_kernel, SsaKernel, SsaNode, Target};

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_egraph::Op;
    use accsat_ir::parse_program;

    fn kernel_of(src: &str) -> SsaKernel {
        let prog = parse_program(src).unwrap();
        let f = &prog.functions[0];
        let loops = accsat_ir::innermost_parallel_loops(f);
        assert_eq!(loops.len(), 1, "test source must have exactly one kernel loop");
        build_kernel(&loops[0].body)
    }

    #[test]
    fn straight_line_cse_shares_classes() {
        let k = kernel_of(
            r#"
void f(double out[4], double D, double E) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 4; i++) {
    out[0] = D + E;
    out[1] = D + E;
  }
}
"#,
        );
        let roots = k.assignment_classes();
        assert_eq!(roots.len(), 2);
        // identical syntax hash-conses to the same class immediately
        assert_eq!(k.egraph.find(roots[0]), k.egraph.find(roots[1]));
    }

    #[test]
    fn store_load_ssa_chain() {
        // A[i] = A[i] + 1; then reading A[i] must see the *new* array value.
        let k = kernel_of(
            r#"
void f(double A[16], double out[16]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 16; i++) {
    A[i] = A[i] + 1.0;
    out[i] = A[i];
  }
}
"#,
        );
        let classes = k.assignment_classes();
        let out_class = classes[1];
        let class = k.egraph.class(out_class);
        let load = class.nodes.iter().find(|n| n.op == Op::Load).expect("load node");
        let state = load.children[0];
        assert!(
            k.egraph.class(state).nodes.iter().any(|n| n.op == Op::Store),
            "load of A after the store must read the Store state"
        );
    }

    #[test]
    fn if_phi_created() {
        let k = kernel_of(
            r#"
void f(double out[4], double x) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 4; i++) {
    double b = x;
    if (b == 0.0) {
      b = 1.0;
    }
    out[i] = b;
  }
}
"#,
        );
        let classes = k.assignment_classes();
        let out_class = *classes.last().unwrap();
        assert!(
            k.egraph.class(out_class).nodes.iter().any(|n| n.op == Op::Select),
            "if-modified variable must flow through a Select φ"
        );
    }

    #[test]
    fn loop_phi_created() {
        let k = kernel_of(
            r#"
void f(double out[4], double x) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 4; i++) {
    double acc = 0.0;
    for (int l = 0; l < 8; l++) {
      acc = acc + x;
    }
    out[i] = acc;
  }
}
"#,
        );
        let classes = k.assignment_classes();
        let out_class = *classes.last().unwrap();
        assert!(
            k.egraph.class(out_class).nodes.iter().any(|n| n.op == Op::PhiLoop),
            "loop-modified variable must flow through a PhiLoop φ"
        );
    }

    #[test]
    fn loop_body_uses_entry_symbol_not_init() {
        let k = kernel_of(
            r#"
void f(double out[4], double x) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 4; i++) {
    double acc = 0.0;
    for (int l = 0; l < 8; l++) {
      acc = acc + x;
    }
    out[i] = acc;
  }
}
"#,
        );
        let mut found_entry_add = false;
        for (_, class) in k.egraph.classes() {
            for n in &class.nodes {
                if n.op == Op::Add {
                    let lhs = k.egraph.class(n.children[0]);
                    if lhs.nodes.iter().any(|m| matches!(&m.op, Op::Sym(s) if s.contains('@'))) {
                        found_entry_add = true;
                    }
                }
            }
        }
        assert!(found_entry_add, "loop body must read the φ entry symbol");
    }

    #[test]
    fn redundant_loads_share_one_class() {
        let k = kernel_of(
            r#"
void f(double a[16], double out[16])  {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 16; i++) {
    out[i] = a[i] * a[i];
  }
}
"#,
        );
        let classes = k.assignment_classes();
        let class = k.egraph.class(classes[0]);
        let mul = class.nodes.iter().find(|n| n.op == Op::Mul).unwrap();
        assert_eq!(
            k.egraph.find(mul.children[0]),
            k.egraph.find(mul.children[1]),
            "a[i] * a[i] must share one load class"
        );
    }

    #[test]
    fn compound_assignment_desugars() {
        let k = kernel_of(
            r#"
void f(double a[16]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 16; i++) {
    a[i] += 2.0;
  }
}
"#,
        );
        let classes = k.assignment_classes();
        let class = k.egraph.class(classes[0]);
        assert!(class.nodes.iter().any(|n| n.op == Op::Add));
    }

    #[test]
    fn else_branch_phi_merges_both_sides() {
        let k = kernel_of(
            r#"
void f(double out[4], double x) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 4; i++) {
    double b;
    if (x > 0.0) {
      b = x;
    } else {
      b = -x;
    }
    out[i] = b * 2.0;
  }
}
"#,
        );
        let classes = k.assignment_classes();
        let out_class = *classes.last().unwrap();
        let class = k.egraph.class(out_class);
        let mul = class.nodes.iter().find(|n| n.op == Op::Mul).unwrap();
        let b_class = k.egraph.class(mul.children[0]);
        assert!(b_class.nodes.iter().any(|n| n.op == Op::Select));
    }

    #[test]
    fn stores_to_different_arrays_are_independent() {
        let k = kernel_of(
            r#"
void f(double a[8], double b[8], double c[8]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 8; i++) {
    a[i] = c[i] + 1.0;
    b[i] = c[i] + 1.0;
  }
}
"#,
        );
        // both RHS expressions hash-cons to the same class — a store to `a`
        // must not invalidate loads of `c`
        let classes = k.assignment_classes();
        assert_eq!(k.egraph.find(classes[0]), k.egraph.find(classes[1]));
    }
}
