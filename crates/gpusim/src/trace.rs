//! Lowering kernel ASTs to per-thread instruction traces.
//!
//! One trace describes the instruction stream of a single representative
//! thread of the innermost parallel loop body. Loops with statically known
//! bounds are unrolled (capped; the remainder scales the final timing), the
//! taken branch of an `if` is lowered, and every array access is classified
//! by a static coalescing analysis against the vector (thread) index
//! variable.

use accsat_ir::{BinOp, Block, Expr, LValue, Stmt, UnOp};
use std::collections::HashMap;

/// Virtual register id.
pub type Reg = u32;

/// Memory transaction size of one warp-wide access, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coalescing {
    /// Consecutive threads touch consecutive elements: 256 B per warp.
    Full,
    /// Partially strided: 512 B per warp.
    Partial,
    /// Fully strided (e.g. transposed access): one 32 B sector per thread.
    Strided,
    /// All threads read the same element: a single 32 B sector.
    Broadcast,
}

impl Coalescing {
    /// DRAM bytes moved by one warp-wide f64 access.
    pub fn bytes_per_warp(self) -> u32 {
        match self {
            Coalescing::Full => 256,
            Coalescing::Partial => 512,
            Coalescing::Strided => 1024,
            Coalescing::Broadcast => 32,
        }
    }
}

/// Simulator operations. Loads and stores carry a static address key
/// (hash of base array + index expressions) and a base-array key so the
/// compiler models can perform redundant-load elimination with store
/// clobbering.
#[derive(Debug, Clone, PartialEq)]
pub enum SimOp {
    /// FP64 add/mul/fma (one pipe slot each — that is the FMA advantage).
    Flop {
        /// Operation identifier for the compiler models' value numbering
        /// (0=add, 1=sub, 2=mul, 3=fma, 4=neg, 5=select, 6=other).
        kind: u8,
    },
    /// FP64 divide / math call (long-latency special pipe).
    Special,
    /// Integer/logic op.
    IAlu,
    /// Global-memory load.
    Load {
        /// Warp-wide transaction size class from the coalescing analysis.
        coalescing: Coalescing,
        /// Static address key (hash of base array + index expressions).
        key: u64,
        /// Base-array key, for store clobbering in load elimination.
        base: u64,
    },
    /// Global-memory store.
    Store {
        /// Warp-wide transaction size class from the coalescing analysis.
        coalescing: Coalescing,
        /// Static address key (hash of base array + index expressions).
        key: u64,
        /// Base-array key, for store clobbering in load elimination.
        base: u64,
    },
}

/// One instruction: op, source registers, optional destination.
#[derive(Debug, Clone, PartialEq)]
pub struct SimInst {
    /// The simulated operation.
    pub op: SimOp,
    /// Source registers read by the instruction.
    pub srcs: Vec<Reg>,
    /// Destination register written, if any.
    pub dst: Option<Reg>,
}

/// A per-thread instruction trace.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// The instruction stream of one representative thread.
    pub insts: Vec<SimInst>,
    /// Number of virtual registers used.
    pub num_regs: u32,
    /// Work multiplier for loop iterations beyond the unroll cap.
    pub work_scale: f64,
}

impl Trace {
    /// Count instructions by category: (flops, specials, ialu, loads, stores).
    pub fn op_counts(&self) -> (usize, usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0, 0);
        for i in &self.insts {
            match i.op {
                SimOp::Flop { .. } => c.0 += 1,
                SimOp::Special => c.1 += 1,
                SimOp::IAlu => c.2 += 1,
                SimOp::Load { .. } => c.3 += 1,
                SimOp::Store { .. } => c.4 += 1,
            }
        }
        c
    }

    /// Peak number of simultaneously live registers (linear-scan liveness) —
    /// the compiler models turn this into a register count.
    pub fn peak_live_regs(&self) -> u32 {
        let mut last_use: HashMap<Reg, usize> = HashMap::new();
        for (i, inst) in self.insts.iter().enumerate() {
            for &s in &inst.srcs {
                last_use.insert(s, i);
            }
            if let Some(d) = inst.dst {
                last_use.entry(d).or_insert(i);
            }
        }
        let mut birth: HashMap<Reg, usize> = HashMap::new();
        for (i, inst) in self.insts.iter().enumerate() {
            if let Some(d) = inst.dst {
                birth.entry(d).or_insert(i);
            }
            for &s in &inst.srcs {
                birth.entry(s).or_insert(0); // inputs live from the start
            }
        }
        let n = self.insts.len();
        let mut delta = vec![0i64; n + 2];
        for (&r, &b) in &birth {
            let e = last_use.get(&r).copied().unwrap_or(b);
            delta[b] += 1;
            delta[e + 1] -= 1;
        }
        let mut live = 0i64;
        let mut peak = 0i64;
        for d in delta {
            live += d;
            peak = peak.max(live);
        }
        peak.max(0) as u32
    }
}

/// Lowering context.
#[derive(Debug, Clone)]
pub struct LowerCtx {
    /// The thread-parallel (vector) loop variable; consecutive threads hold
    /// consecutive values of it.
    pub vector_var: String,
    /// Known compile-time constants (problem sizes) for trip counts.
    pub bindings: HashMap<String, i64>,
    /// Cap on unrolled iterations per sequential loop.
    pub max_unroll: usize,
}

impl Default for LowerCtx {
    fn default() -> LowerCtx {
        LowerCtx { vector_var: String::new(), bindings: HashMap::new(), max_unroll: 64 }
    }
}

/// Lower a kernel body to a trace.
pub fn lower_body(body: &Block, ctx: &LowerCtx) -> Trace {
    let mut l = Lowerer {
        ctx: ctx.clone(),
        trace: Trace { insts: Vec::new(), num_regs: 0, work_scale: 1.0 },
        scalars: HashMap::new(),
        consts: HashMap::new(),
        const_regs: HashMap::new(),
    };
    l.block(body);
    l.trace.num_regs = l.trace.num_regs.max(1);
    l.trace
}

struct Lowerer {
    ctx: LowerCtx,
    trace: Trace,
    /// Scalar name → register currently holding it.
    scalars: HashMap<String, Reg>,
    /// Constant-valued integer scalars (loop unrolling bookkeeping).
    consts: HashMap<String, i64>,
    /// Literal constant → register, so repeated literals share one register
    /// and value numbering can see through them.
    const_regs: HashMap<u64, Reg>,
}

impl Lowerer {
    fn fresh(&mut self) -> Reg {
        let r = self.trace.num_regs;
        self.trace.num_regs += 1;
        r
    }

    fn emit(&mut self, op: SimOp, srcs: Vec<Reg>) -> Reg {
        let dst = self.fresh();
        self.trace.insts.push(SimInst { op, srcs, dst: Some(dst) });
        dst
    }

    fn reg_of(&mut self, name: &str) -> Reg {
        if let Some(&r) = self.scalars.get(name) {
            return r;
        }
        let r = self.fresh();
        self.scalars.insert(name.to_string(), r);
        r
    }

    /// Try to evaluate an integer expression from known bindings.
    fn const_eval(&self, e: &Expr) -> Option<i64> {
        match e {
            Expr::Int(v) => Some(*v),
            Expr::Float(v) if v.fract() == 0.0 => Some(*v as i64),
            Expr::Var(n) => {
                self.consts.get(n).copied().or_else(|| self.ctx.bindings.get(n).copied())
            }
            Expr::Unary { op: UnOp::Neg, operand } => Some(-self.const_eval(operand)?),
            Expr::Binary { op, lhs, rhs } => {
                let (a, b) = (self.const_eval(lhs)?, self.const_eval(rhs)?);
                Some(match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a.checked_div(b)?,
                    BinOp::Mod => a.checked_rem(b)?,
                    BinOp::Lt => (a < b) as i64,
                    BinOp::Le => (a <= b) as i64,
                    BinOp::Gt => (a > b) as i64,
                    BinOp::Ge => (a >= b) as i64,
                    BinOp::Eq => (a == b) as i64,
                    BinOp::Ne => (a != b) as i64,
                    BinOp::And => ((a != 0) && (b != 0)) as i64,
                    BinOp::Or => ((a != 0) || (b != 0)) as i64,
                })
            }
            Expr::Cast { expr, .. } => self.const_eval(expr),
            _ => None,
        }
    }

    /// Linear coefficient of `var` in `e` (0 = absent, None = nonlinear).
    fn linear_coeff(&self, e: &Expr, var: &str) -> Option<i64> {
        match e {
            Expr::Int(_) | Expr::Float(_) => Some(0),
            Expr::Var(n) => Some(if n == var { 1 } else { 0 }),
            Expr::Unary { op: UnOp::Neg, operand } => Some(-self.linear_coeff(operand, var)?),
            Expr::Binary { op: BinOp::Add, lhs, rhs } => {
                Some(self.linear_coeff(lhs, var)? + self.linear_coeff(rhs, var)?)
            }
            Expr::Binary { op: BinOp::Sub, lhs, rhs } => {
                Some(self.linear_coeff(lhs, var)? - self.linear_coeff(rhs, var)?)
            }
            Expr::Binary { op: BinOp::Mul, lhs, rhs } => {
                let (cl, cr) = (self.linear_coeff(lhs, var)?, self.linear_coeff(rhs, var)?);
                if cl == 0 {
                    let k = self.const_eval(lhs)?;
                    Some(k * cr)
                } else if cr == 0 {
                    let k = self.const_eval(rhs)?;
                    Some(cl * k)
                } else {
                    None
                }
            }
            Expr::Cast { expr, .. } => self.linear_coeff(expr, var),
            _ => {
                // conservatively nonlinear if the var appears at all
                let mut appears = false;
                accsat_ir::walk_expr(e, &mut |x: &Expr| {
                    if let Expr::Var(n) = x {
                        if n == var {
                            appears = true;
                        }
                    }
                });
                if appears {
                    None
                } else {
                    Some(0)
                }
            }
        }
    }

    /// Static address identity of an access: `(full key, base key)`.
    /// Index expressions are printed with known constants substituted, so
    /// distinct unrolled iterations get distinct keys while the same access
    /// repeated in one iteration shares a key.
    fn addr_keys(&self, base: &str, indices: &[Expr]) -> (u64, u64) {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        base.hash(&mut h);
        let base_key = h.finish();
        for i in indices {
            self.subst_print(i).hash(&mut h);
        }
        (h.finish(), base_key)
    }

    /// Print an index expression with known integer constants substituted.
    fn subst_print(&self, e: &Expr) -> String {
        if let Some(v) = self.const_eval(e) {
            return v.to_string();
        }
        match e {
            Expr::Var(n) => n.clone(),
            Expr::Int(v) => v.to_string(),
            Expr::Float(v) => v.to_string(),
            Expr::Unary { op, operand } => {
                let inner = self.subst_print(operand);
                match op {
                    UnOp::Neg => format!("-({inner})"),
                    UnOp::Not => format!("!({inner})"),
                }
            }
            Expr::Binary { op, lhs, rhs } => {
                format!("({}{}{})", self.subst_print(lhs), op.c_name(), self.subst_print(rhs))
            }
            Expr::Index { base, indices } => {
                let idx: Vec<String> = indices.iter().map(|i| self.subst_print(i)).collect();
                format!("{base}[{}]", idx.join("]["))
            }
            Expr::Call { name, args } => {
                let a: Vec<String> = args.iter().map(|x| self.subst_print(x)).collect();
                format!("{name}({})", a.join(","))
            }
            Expr::Ternary { cond, then, els } => format!(
                "({}?{}:{})",
                self.subst_print(cond),
                self.subst_print(then),
                self.subst_print(els)
            ),
            Expr::Cast { expr, .. } => self.subst_print(expr),
        }
    }

    /// Coalescing classification for an access `base[indices…]`.
    fn classify(&self, indices: &[Expr]) -> Coalescing {
        let v = &self.ctx.vector_var;
        if v.is_empty() {
            return Coalescing::Full;
        }
        let last = match indices.last() {
            Some(l) => l,
            None => return Coalescing::Full,
        };
        match self.linear_coeff(last, v) {
            Some(0) => {
                // vector var absent from the fastest dimension
                let in_outer =
                    indices[..indices.len() - 1].iter().any(|i| self.linear_coeff(i, v) != Some(0));
                if in_outer {
                    Coalescing::Strided
                } else {
                    Coalescing::Broadcast
                }
            }
            Some(1) | Some(-1) => Coalescing::Full,
            Some(_) => Coalescing::Partial,
            None => Coalescing::Strided,
        }
    }

    fn const_reg(&mut self, bits: u64) -> Reg {
        if let Some(&r) = self.const_regs.get(&bits) {
            return r;
        }
        let r = self.fresh();
        self.const_regs.insert(bits, r);
        r
    }

    fn expr(&mut self, e: &Expr) -> Reg {
        match e {
            Expr::Int(v) => self.const_reg(*v as u64 ^ 0x5555_5555_0000_0000),
            Expr::Float(v) => self.const_reg(v.to_bits()),
            Expr::Var(n) => self.reg_of(n),
            Expr::Index { base, indices } => {
                let coalescing = self.classify(indices);
                let (key, base_key) = self.addr_keys(base, indices);
                // affine indices fold into addressing; only data-dependent
                // indices (gathers like p[colidx[k]]) create operand deps
                let mut srcs = Vec::new();
                for i in indices {
                    if expr_has_memory(i) {
                        srcs.push(self.expr(i));
                    }
                }
                self.emit(SimOp::Load { coalescing, key, base: base_key }, srcs)
            }
            Expr::Unary { operand, .. } => {
                let r = self.expr(operand);
                self.emit(SimOp::Flop { kind: 4 }, vec![r])
            }
            Expr::Binary { op, lhs, rhs } => {
                // note: a + b*c is NOT fused here — FMA selection belongs to
                // the compiler models (fuse_fma), after value numbering,
                // exactly as real back ends fuse at instruction selection
                let l = self.expr(lhs);
                let r = self.expr(rhs);
                let op = match op {
                    BinOp::Div | BinOp::Mod => SimOp::Special,
                    BinOp::Lt
                    | BinOp::Le
                    | BinOp::Gt
                    | BinOp::Ge
                    | BinOp::Eq
                    | BinOp::Ne
                    | BinOp::And
                    | BinOp::Or => SimOp::IAlu,
                    BinOp::Add => SimOp::Flop { kind: 0 },
                    BinOp::Sub => SimOp::Flop { kind: 1 },
                    BinOp::Mul => SimOp::Flop { kind: 2 },
                };
                self.emit(op, vec![l, r])
            }
            Expr::Call { args, .. } => {
                let srcs: Vec<Reg> = args.iter().map(|a| self.expr(a)).collect();
                self.emit(SimOp::Special, srcs)
            }
            Expr::Ternary { cond, then, els } => {
                let c = self.expr(cond);
                let t = self.expr(then);
                let e2 = self.expr(els);
                self.emit(SimOp::IAlu, vec![c, t, e2]) // select
            }
            Expr::Cast { expr, .. } => self.expr(expr),
        }
    }

    fn block(&mut self, b: &Block) {
        for s in &b.stmts {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { name, init, .. } => {
                if let Some(e) = init {
                    if let Some(v) = self.const_eval(e) {
                        self.consts.insert(name.clone(), v);
                    } else {
                        self.consts.remove(name);
                    }
                    let r = self.expr(e);
                    self.scalars.insert(name.clone(), r);
                } else {
                    let r = self.fresh();
                    self.scalars.insert(name.clone(), r);
                }
            }
            Stmt::Assign { lhs, op, rhs } => {
                let mut val = self.expr(rhs);
                if let Some(bop) = op.binop() {
                    let old = match lhs {
                        LValue::Var(n) => self.reg_of(n),
                        LValue::Index { base, indices } => {
                            let c = self.classify(indices);
                            let (key, base_key) = self.addr_keys(base, indices);
                            self.emit(SimOp::Load { coalescing: c, key, base: base_key }, vec![])
                        }
                    };
                    let simop = match bop {
                        BinOp::Div => SimOp::Special,
                        BinOp::Add => SimOp::Flop { kind: 0 },
                        BinOp::Sub => SimOp::Flop { kind: 1 },
                        BinOp::Mul => SimOp::Flop { kind: 2 },
                        _ => SimOp::Flop { kind: 6 },
                    };
                    val = self.emit(simop, vec![old, val]);
                }
                match lhs {
                    LValue::Var(n) => {
                        if let Some(v) = self.const_eval(rhs) {
                            if op.binop().is_none() {
                                self.consts.insert(n.clone(), v);
                            } else {
                                self.consts.remove(n);
                            }
                        } else {
                            self.consts.remove(n);
                        }
                        self.scalars.insert(n.clone(), val);
                    }
                    LValue::Index { base, indices } => {
                        let coalescing = self.classify(indices);
                        let (key, base_key) = self.addr_keys(base, indices);
                        let mut srcs = vec![val];
                        for i in indices {
                            if expr_has_memory(i) {
                                srcs.push(self.expr(i));
                            }
                        }
                        self.trace.insts.push(SimInst {
                            op: SimOp::Store { coalescing, key, base: base_key },
                            srcs,
                            dst: None,
                        });
                    }
                }
            }
            Stmt::If { cond, then, els } => {
                let c = self.expr(cond);
                // branch condition consumes an IAlu slot
                self.trace.insts.push(SimInst { op: SimOp::IAlu, srcs: vec![c], dst: None });
                // lower the statically taken branch if decidable, else `then`
                match self.const_eval(cond) {
                    Some(0) => {
                        if let Some(e) = els {
                            self.block(e);
                        }
                    }
                    _ => self.block(then),
                }
            }
            Stmt::For(l) => {
                let trip = self.trip_count(l).unwrap_or(8);
                let emit_iters = trip.min(self.ctx.max_unroll as i64).max(0) as usize;
                if trip > emit_iters as i64 && emit_iters > 0 {
                    self.trace.work_scale *= trip as f64 / emit_iters as f64;
                }
                // induction variable register (updated each iteration)
                let ivar = self.reg_of(&l.var);
                let init_known = self.const_eval(&l.init);
                let step_known = self.const_eval(&l.step);
                for it in 0..emit_iters {
                    // track constant induction values for nested trip counts
                    if let (Some(i0), Some(st)) = (init_known, step_known) {
                        self.consts.insert(l.var.clone(), i0 + st * it as i64);
                    } else {
                        self.consts.remove(&l.var);
                    }
                    self.block(&l.body);
                    // i += step and loop-back compare
                    let nv = self.emit(SimOp::IAlu, vec![ivar]);
                    self.scalars.insert(l.var.clone(), nv);
                }
                self.consts.remove(&l.var);
            }
            Stmt::While { cond, body } => {
                // rare in kernels: lower one iteration with the condition
                let c = self.expr(cond);
                self.trace.insts.push(SimInst { op: SimOp::IAlu, srcs: vec![c], dst: None });
                self.block(body);
            }
            Stmt::Block(b) => self.block(b),
            Stmt::Expr(e) => {
                let _ = self.expr(e);
            }
            Stmt::Return(_) => {}
        }
    }

    fn trip_count(&self, l: &accsat_ir::ast::ForLoop) -> Option<i64> {
        let init = self.const_eval(&l.init)?;
        let step = self.const_eval(&l.step)?;
        if step == 0 {
            return None;
        }
        // cond forms: var < bound, var <= bound, var > bound, var >= bound
        if let Expr::Binary { op, lhs, rhs } = &l.cond {
            let bound_expr = match (lhs.as_ref(), rhs.as_ref()) {
                (Expr::Var(v), b) if *v == l.var => b,
                (b, Expr::Var(v)) if *v == l.var => b,
                _ => return None,
            };
            let bound = self.const_eval(bound_expr)?;
            let n = match op {
                BinOp::Lt => (bound - init + step - 1).div_euclid(step),
                BinOp::Le => (bound - init + step).div_euclid(step),
                BinOp::Gt => (init - bound - step - 1).div_euclid(-step),
                BinOp::Ge => (init - bound - step).div_euclid(-step),
                _ => return None,
            };
            Some(n.max(0))
        } else {
            None
        }
    }
}

/// Does an expression read memory (or call a function)? Such indices form
/// real operand dependencies; purely affine indices fold into addressing.
fn expr_has_memory(e: &Expr) -> bool {
    let mut found = false;
    accsat_ir::walk_expr(e, &mut |x: &Expr| {
        if matches!(x, Expr::Index { .. } | Expr::Call { .. }) {
            found = true;
        }
    });
    found
}

/// Fuse `add/sub(a, mul(b, c))` pairs into single FMA slots when the
/// multiply has exactly one use — the instruction-selection step of the
/// fastmath back ends (`-gpu=fastmath`, `-ffast-math`). Run *after* value
/// numbering so shared multiplies stay shared instead of being folded into
/// several FMAs.
pub fn fuse_fma(trace: &Trace) -> Trace {
    // count uses of each register
    let mut uses: HashMap<Reg, usize> = HashMap::new();
    for inst in &trace.insts {
        for &s in &inst.srcs {
            *uses.entry(s).or_insert(0) += 1;
        }
    }
    // dst reg → index of the single-use mul defining it
    let mut mul_def: HashMap<Reg, usize> = HashMap::new();
    for (i, inst) in trace.insts.iter().enumerate() {
        if inst.op == (SimOp::Flop { kind: 2 }) && inst.srcs.len() == 2 {
            if let Some(d) = inst.dst {
                if uses.get(&d).copied() == Some(1) {
                    mul_def.insert(d, i);
                }
            }
        }
    }
    // phase 1: decide fusions
    let n = trace.insts.len();
    let mut dead = vec![false; n];
    let mut fused_ops: Vec<Option<SimInst>> = vec![None; n];
    for (i, inst) in trace.insts.iter().enumerate() {
        if let SimOp::Flop { kind } = inst.op {
            if (kind == 0 || kind == 1) && inst.srcs.len() == 2 {
                // a + b*c (either side) or a - b*c (rhs only)
                let candidates: &[Reg] =
                    if kind == 0 { &[inst.srcs[1], inst.srcs[0]] } else { &inst.srcs[1..2] };
                for &r in candidates {
                    if let Some(&mi) = mul_def.get(&r) {
                        if !dead[mi] && mi < i {
                            let other = if inst.srcs[0] == r { inst.srcs[1] } else { inst.srcs[0] };
                            let b = trace.insts[mi].srcs[0];
                            let c = trace.insts[mi].srcs[1];
                            dead[mi] = true;
                            fused_ops[i] = Some(SimInst {
                                op: SimOp::Flop { kind: 3 },
                                srcs: vec![other, b, c],
                                dst: inst.dst,
                            });
                            break;
                        }
                    }
                }
            }
        }
    }
    // phase 2: emit, skipping fused-away muls
    let mut out = Vec::with_capacity(n);
    for (i, inst) in trace.insts.iter().enumerate() {
        if dead[i] {
            continue;
        }
        match fused_ops[i].take() {
            Some(f) => out.push(f),
            None => out.push(inst.clone()),
        }
    }
    Trace { insts: out, num_regs: trace.num_regs, work_scale: trace.work_scale }
}

/// Local list scheduling: hoist each load as early as its operands (and
/// store ordering) allow, limited to `window` slots of motion — the back
/// ends' basic-block scheduler. NVHPC schedules within a moderate window;
/// GCC barely moves anything. Source-level bulk load hoists loads across
/// the *whole kernel* (beyond any scheduler window) with "intentional high
/// memory pressure" (paper §VI-B), which is why it still wins after this
/// pass also runs on its output.
pub fn schedule_loads(trace: &Trace, window: usize) -> Trace {
    let mut insts: Vec<SimInst> = trace.insts.clone();
    let mut i = 0usize;
    while i < insts.len() {
        if !matches!(insts[i].op, SimOp::Load { .. }) {
            i += 1;
            continue;
        }
        let load = insts[i].clone();
        let load_base = match load.op {
            SimOp::Load { base, .. } => base,
            _ => unreachable!(),
        };
        // earliest legal slot: after the defs of its operands, after any
        // store to the same array, and at most `window` slots earlier
        let mut target = i.saturating_sub(window);
        for j in (target..i).rev() {
            let inst = &insts[j];
            let defines_src = inst.dst.is_some_and(|d| load.srcs.contains(&d));
            let conflicting_store =
                matches!(inst.op, SimOp::Store { base, .. } if base == load_base);
            if defines_src || conflicting_store {
                target = j + 1;
                break;
            }
        }
        if target < i {
            let inst = insts.remove(i);
            insts.insert(target, inst);
        }
        i += 1;
    }
    Trace { insts, num_regs: trace.num_regs, work_scale: trace.work_scale }
}

#[cfg(test)]
mod tests {
    use super::*;
    use accsat_ir::parse_program;

    fn lower(src: &str, vector_var: &str, bindings: &[(&str, i64)]) -> Trace {
        let prog = parse_program(src).unwrap();
        let f = &prog.functions[0];
        let loops = accsat_ir::innermost_parallel_loops(f);
        let ctx = LowerCtx {
            vector_var: vector_var.to_string(),
            bindings: bindings.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            max_unroll: 64,
        };
        lower_body(&loops[0].body, &ctx)
    }

    const AXPY: &str = r#"
void axpy(double x[64], double y[64], double a) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 64; i++) {
    y[i] = a * x[i] + y[i];
  }
}
"#;

    #[test]
    fn axpy_lowers_then_fuses_to_fma() {
        let t = lower(AXPY, "i", &[]);
        let (flops, _, _, loads, stores) = t.op_counts();
        assert_eq!(loads, 2);
        assert_eq!(stores, 1);
        assert_eq!(flops, 2, "unfused: one mul + one add");
        let f = fuse_fma(&t);
        let (flops, _, _, loads, stores) = f.op_counts();
        assert_eq!((loads, stores), (2, 1));
        assert_eq!(flops, 1, "a*x + y must fuse into one FMA slot");
        assert!(f.insts.iter().any(|i| i.op == SimOp::Flop { kind: 3 }));
    }

    #[test]
    fn shared_mul_is_not_fused() {
        // t = b*c used twice: u = a + t; v = d + t — the mul must survive
        let t = lower(
            r#"
void k(double a[64], double d[64], double o[64], double b, double c) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 64; i++) {
    double t = b * c;
    o[i] = (a[i] + t) * (d[i] + t);
  }
}
"#,
            "i",
            &[],
        );
        let f = fuse_fma(&t);
        assert!(
            f.insts.iter().any(|i| i.op == SimOp::Flop { kind: 2 }),
            "the shared multiply must not be duplicated into FMAs"
        );
    }

    #[test]
    fn coalescing_classification() {
        let t = lower(
            r#"
void k(double a[64][64], double out[64][64], int j) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 64; i++) {
    out[j][i] = a[i][j] + a[j][i] + a[j][j] + a[j][2 * i];
  }
}
"#,
            "i",
            &[],
        );
        let cs: Vec<Coalescing> = t
            .insts
            .iter()
            .filter_map(|ins| match ins.op {
                SimOp::Load { coalescing, .. } => Some(coalescing),
                _ => None,
            })
            .collect();
        assert_eq!(
            cs,
            vec![
                Coalescing::Strided,   // a[i][j]
                Coalescing::Full,      // a[j][i]
                Coalescing::Broadcast, // a[j][j]
                Coalescing::Partial,   // a[j][2*i]
            ]
        );
    }

    #[test]
    fn loop_unrolls_with_known_trip() {
        let t = lower(
            r#"
void k(double a[64][8], double out[64]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 64; i++) {
    double s = 0.0;
    for (int l = 0; l < 8; l++) {
      s = s + a[i][l];
    }
    out[i] = s;
  }
}
"#,
            "i",
            &[],
        );
        let (_, _, _, loads, _) = t.op_counts();
        assert_eq!(loads, 8, "8 iterations fully unrolled");
        assert_eq!(t.work_scale, 1.0);
    }

    #[test]
    fn long_loop_scales_work() {
        let t = lower(
            r#"
void k(double a[100000], double out[64], int n) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 64; i++) {
    double s = 0.0;
    for (int l = 0; l < n; l++) {
      s = s + a[l];
    }
    out[i] = s;
  }
}
"#,
            "i",
            &[("n", 1000)],
        );
        let (_, _, _, loads, _) = t.op_counts();
        assert_eq!(loads, 64, "capped at max_unroll");
        assert!((t.work_scale - 1000.0 / 64.0).abs() < 1e-9);
    }

    #[test]
    fn trip_count_from_bindings() {
        let t = lower(
            r#"
void k(double a[64][16], double out[64], int gp) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 64; i++) {
    double s = 0.0;
    for (int l = 1; l <= gp; l++) {
      s = s + a[i][l - 1];
    }
    out[i] = s;
  }
}
"#,
            "i",
            &[("gp", 12)],
        );
        let (_, _, _, loads, _) = t.op_counts();
        assert_eq!(loads, 12);
    }

    #[test]
    fn peak_live_registers_reflect_bulk_style() {
        // bulk style holds 4 loads live at once; chained style holds ~2
        let bulk = lower(
            r#"
void k(double a[64], double b[64], double c[64], double d[64], double o[64]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 64; i++) {
    double v0 = a[i];
    double v1 = b[i];
    double v2 = c[i];
    double v3 = d[i];
    o[i] = ((v0 + v1) + v2) + v3;
  }
}
"#,
            "i",
            &[],
        );
        let chained = lower(
            r#"
void k(double a[64], double b[64], double c[64], double d[64], double o[64]) {
  #pragma acc parallel loop gang vector
  for (int i = 0; i < 64; i++) {
    double s = a[i];
    s = s + b[i];
    s = s + c[i];
    s = s + d[i];
    o[i] = s;
  }
}
"#,
            "i",
            &[],
        );
        assert!(
            bulk.peak_live_regs() >= chained.peak_live_regs(),
            "bulk ({}) must hold at least as many live values as chained ({})",
            bulk.peak_live_regs(),
            chained.peak_live_regs()
        );
    }
}
